"""Documentation is executable: every ``python`` block in
``docs/observability.md``, ``docs/distributed_solve.md`` and
``README.md`` runs, and the documented metric catalog matches the
live registry in both directions."""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
OBS_DOC = REPO_ROOT / "docs" / "observability.md"
DSOLVE_DOC = REPO_ROOT / "docs" / "distributed_solve.md"
README = REPO_ROOT / "README.md"

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)
_CATALOG_SECTION = re.compile(
    r"<!-- metric-catalog:begin -->\n(.*?)<!-- metric-catalog:end -->",
    re.DOTALL,
)
_METRIC_ROW = re.compile(r"^\| `([a-z0-9_.]+)` \|", re.MULTILINE)


def python_blocks(path):
    return [(path.name, i, block) for i, block in
            enumerate(_FENCE.findall(path.read_text(encoding="utf-8")))]


def documented_metric_names():
    section = _CATALOG_SECTION.search(OBS_DOC.read_text(encoding="utf-8"))
    assert section, "docs/observability.md lost its metric-catalog markers"
    return _METRIC_ROW.findall(section.group(1))


@pytest.mark.parametrize(
    "doc,index,block",
    python_blocks(OBS_DOC) + python_blocks(DSOLVE_DOC) + python_blocks(README),
    ids=lambda v: v if isinstance(v, (str, int)) else "code",
)
def test_documented_python_block_runs(doc, index, block):
    # Each block is a self-contained example; a failure means the
    # docs show code that no longer works.
    exec(compile(block, f"{doc}[block {index}]", "exec"), {"__name__": "__doc_example__"})


class TestMetricCatalogSync:
    """The docs table and the registry must agree exactly — the CI
    docs job runs these to fail on drift in either direction."""

    def test_table_is_generated_from_the_catalog(self):
        from repro.obs import CATALOG

        assert [name for _, name, *_ in CATALOG] == documented_metric_names()

    def test_every_documented_metric_is_registered(self):
        from repro.obs import get_registry

        registry = get_registry()
        undocumented_sources = [
            name for name in documented_metric_names() if name not in registry
        ]
        assert not undocumented_sources, (
            f"documented but unregistered: {undocumented_sources}"
        )

    def test_every_registered_metric_is_documented(self):
        from repro.obs import get_registry

        documented = set(documented_metric_names())
        # Tests and examples may register scratch metrics on the shared
        # registry; only the catalog namespaces are doc-mandatory.
        prefixes = tuple(sorted({name.split(".")[0] for name in documented}))
        undocumented = [
            name for name in get_registry().names()
            if name.startswith(prefixes) and name not in documented
        ]
        assert not undocumented, f"registered but undocumented: {undocumented}"

    def test_dsolve_owners_exist_and_are_documented(self):
        # The dsolve.* rows name two owner modules; both must be
        # importable and the public API they export must carry
        # NumPy-style docstrings (the distributed solve is spec'd in
        # docs/distributed_solve.md, so its API is doc-mandatory).
        import importlib
        import inspect

        section = _CATALOG_SECTION.search(OBS_DOC.read_text(encoding="utf-8"))
        owners = {
            match.group(1)
            for match in re.finditer(r"\| `(repro\.[a-z_.]+)` \|", section.group(1))
        }
        dsolve_owners = {o for o in owners if "distributed" in o}
        assert dsolve_owners == {
            "repro.lp.distributed",
            "repro.simulation.distributed",
        }, dsolve_owners
        for owner in sorted(dsolve_owners):
            module = importlib.import_module(owner)
            for name in module.__all__:
                doc = inspect.getdoc(getattr(module, name)) or ""
                assert doc, f"{owner}.{name} has no docstring"
                has_section = any(
                    f"{header}\n" + "-" * len(header) in doc
                    for header in ("Parameters", "Attributes", "Returns")
                )
                assert has_section, (
                    f"{owner}.{name} docstring lacks a NumPy-style "
                    "Parameters/Attributes/Returns section"
                )

    def test_documented_rows_carry_unit_and_owner(self):
        section = _CATALOG_SECTION.search(OBS_DOC.read_text(encoding="utf-8"))
        rows = [
            line for line in section.group(1).splitlines()
            if line.startswith("| `")
        ]
        assert rows, "metric-catalog table is empty"
        for row in rows:
            cells = [c.strip() for c in row.strip("|").split("|")]
            assert len(cells) == 5, row
            name, kind, unit, owner, description = cells
            assert kind in ("counter", "gauge", "histogram"), row
            assert unit, row
            assert owner.startswith("`repro."), row
            assert description, row
