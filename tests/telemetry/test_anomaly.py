"""Tests for the streaming anomaly detectors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TelemetryError
from repro.telemetry import (
    EwmaDetector,
    RateOfChangeDetector,
    TimeSeriesDatabase,
    scan_series,
)


class TestEwmaDetector:
    def test_spike_flagged_after_warmup(self):
        detector = EwmaDetector(alpha=0.1, threshold=4.0, warmup=20)
        rng = np.random.default_rng(0)
        false_positives = sum(
            detector.is_anomalous(float(rng.normal(10.0, 1.0))) for _ in range(50)
        )
        assert false_positives <= 2  # steady stream stays mostly quiet
        assert detector.is_anomalous(100.0)  # 90-sigma spike flags

    def test_warmup_suppresses_scores(self):
        detector = EwmaDetector(warmup=5)
        scores = [detector.update(v) for v in (0.0, 100.0, -100.0, 50.0, 0.0)]
        assert scores == [0.0] * 5

    def test_stats_track_stream(self):
        detector = EwmaDetector(alpha=0.5, warmup=0)
        for v in (10.0, 10.0, 10.0):
            detector.update(v)
        assert detector.mean == pytest.approx(10.0)
        assert detector.std == pytest.approx(0.0, abs=1e-9)
        assert detector.samples_seen == 3

    def test_score_uses_pre_update_stats(self):
        """The outlier scores against history, not against itself."""
        detector = EwmaDetector(alpha=0.3, threshold=3.0, warmup=0)
        for v in (10.0, 10.5, 9.5, 10.2, 9.8, 10.0):
            detector.update(v)
        score = detector.update(50.0)
        assert score > 3.0

    def test_adapts_to_level_shift(self):
        """After enough samples at a new level the detector re-baselines."""
        detector = EwmaDetector(alpha=0.3, threshold=3.0, warmup=3)
        for _ in range(20):
            detector.update(10.0)
        detector.update(50.0)  # the shift itself is anomalous
        for _ in range(40):
            detector.update(50.0)
        assert detector.update(50.0) < 1.0  # new normal

    def test_validation(self):
        with pytest.raises(TelemetryError):
            EwmaDetector(alpha=0.0)
        with pytest.raises(TelemetryError):
            EwmaDetector(alpha=1.5)
        with pytest.raises(TelemetryError):
            EwmaDetector(threshold=0.0)
        with pytest.raises(TelemetryError):
            EwmaDetector(warmup=-1)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=5000))
    def test_property_steady_stream_rarely_flags(self, seed):
        """False-positive sanity: an i.i.d. normal stream at 3 sigma
        flags well under 5% of samples after warmup."""
        rng = np.random.default_rng(seed)
        detector = EwmaDetector(alpha=0.05, threshold=3.5, warmup=20)
        flags = sum(
            detector.is_anomalous(float(v)) for v in rng.normal(0, 1, 300)
        )
        assert flags <= 15


class TestRateOfChangeDetector:
    def test_first_sample_never_flags(self):
        detector = RateOfChangeDetector(max_rate_per_s=10.0)
        assert detector.update(0.0, 5.0) == 0.0

    def test_fast_ramp_flagged(self):
        detector = RateOfChangeDetector(max_rate_per_s=10.0)
        detector.update(0.0, 0.0)
        assert detector.is_anomalous(1.0, 100.0)  # 100/s >> 10/s

    def test_slow_ramp_passes(self):
        detector = RateOfChangeDetector(max_rate_per_s=10.0)
        detector.update(0.0, 0.0)
        assert not detector.is_anomalous(1.0, 5.0)

    def test_zero_dt_ignored(self):
        detector = RateOfChangeDetector(max_rate_per_s=1.0)
        detector.update(1.0, 0.0)
        assert detector.update(1.0, 99.0) == 0.0

    def test_validation(self):
        with pytest.raises(TelemetryError):
            RateOfChangeDetector(max_rate_per_s=0.0)


class TestScanSeries:
    def test_scan_finds_injected_spikes(self):
        tsdb = TimeSeriesDatabase()
        rng = np.random.default_rng(1)
        spike_times = {40.0, 80.0}
        for t in range(120):
            value = 100.0 if float(t) in spike_times else float(rng.normal(10, 1))
            tsdb.append("fault_score", float(t), value)
        events = scan_series(
            tsdb, "fault_score", EwmaDetector(alpha=0.1, threshold=4.0, warmup=10)
        )
        found = {e.timestamp for e in events}
        assert spike_times <= found
        # Not everything is an anomaly.
        assert len(events) < 15

    def test_scan_empty_series(self):
        tsdb = TimeSeriesDatabase()
        tsdb.create_series("m")
        assert scan_series(tsdb, "m") == []
