"""Tests for monitor agents and the device resource model."""

import numpy as np
import pytest

from repro.errors import TelemetryError
from repro.telemetry import (
    PAPER_AGENT_MEMORY_MB,
    DeviceProfile,
    MonitorAgent,
    MonitorAgentSpec,
    NetworkDevice,
    StateDatabase,
    TimeSeriesDatabase,
    paper_agent_specs,
)


def small_spec(name="agent", tables=("t1",)):
    return MonitorAgentSpec(
        name=name,
        tables=tuple(tables),
        cpu_ms_per_update=1.0,
        cpu_ms_per_interval=100.0,
        memory_mb=50.0,
        emits=("metric_a",),
    )


def small_profile(name="dev", cores=4, memory_gb=8.0):
    return DeviceProfile(
        name=name, cores=cores, memory_gb=memory_gb,
        base_cpu_pct=10.0, base_memory_mb=1024.0,
    )


class TestPaperAgentSet:
    def test_ten_agents(self):
        assert len(paper_agent_specs()) == 10

    def test_memory_totals_about_1_2_gib(self):
        """Paper: 'retaining around 1.2 GiB memory usage'."""
        assert PAPER_AGENT_MEMORY_MB == pytest.approx(1228.0)

    def test_names_match_footnote(self):
        names = {s.name for s in paper_agent_specs()}
        assert "routing-protocol-health" in names
        assert "rx-tx-packet-rates" in names
        assert "fault-finder" in names

    def test_unique_names(self):
        names = [s.name for s in paper_agent_specs()]
        assert len(names) == len(set(names))


class TestMonitorAgent:
    def test_counts_updates_and_charges_cpu(self):
        db = StateDatabase()
        tsdb = TimeSeriesDatabase()
        agent = MonitorAgent(small_spec(), db, tsdb)
        agent.attach()
        db.upsert("t1", "k", {})
        db.record_synthetic_updates("t1", 99)
        assert agent.pending_updates == 100
        cpu_s = agent.run_interval(now=60.0)
        # 100 ms fixed + 100 updates x 1 ms = 200 ms.
        assert cpu_s == pytest.approx(0.2)
        assert agent.pending_updates == 0
        assert agent.total_updates_processed == 100

    def test_emits_metrics(self):
        db = StateDatabase()
        tsdb = TimeSeriesDatabase()
        agent = MonitorAgent(small_spec(), db, tsdb, tags={"device": "d1"})
        agent.attach()
        agent.run_interval(now=1.0)
        assert tsdb.has_series("metric_a", {"device": "d1"})

    def test_detach_stops_counting(self):
        db = StateDatabase()
        agent = MonitorAgent(small_spec(), db, TimeSeriesDatabase())
        agent.attach()
        agent.detach()
        db.record_synthetic_updates("t1", 10)
        assert agent.pending_updates == 0

    def test_double_attach_rejected(self):
        agent = MonitorAgent(small_spec(), StateDatabase(), TimeSeriesDatabase())
        agent.attach()
        with pytest.raises(TelemetryError, match="already attached"):
            agent.attach()

    def test_spec_validation(self):
        with pytest.raises(TelemetryError):
            MonitorAgentSpec("a", (), 1.0, 1.0, 10.0, ())
        with pytest.raises(TelemetryError):
            MonitorAgentSpec("a", ("t",), -1.0, 1.0, 10.0, ())
        with pytest.raises(TelemetryError):
            MonitorAgentSpec("a", ("t",), 1.0, 1.0, 0.0, ())


class TestDeviceLifecycle:
    def test_install_and_duplicate(self):
        dev = NetworkDevice(small_profile())
        dev.install_agent(small_spec())
        assert dev.local_agents == ("agent",)
        with pytest.raises(TelemetryError, match="already present"):
            dev.install_agent(small_spec())

    def test_offload_leaves_stub(self):
        dev = NetworkDevice(small_profile())
        dev.install_agent(small_spec())
        spec = dev.offload_agent("agent")
        assert spec.name == "agent"
        assert dev.local_agents == ()
        assert dev.offloaded_agents == ("agent",)

    def test_offload_unknown_rejected(self):
        dev = NetworkDevice(small_profile())
        with pytest.raises(TelemetryError, match="not running locally"):
            dev.offload_agent("ghost")

    def test_reclaim_restores_local(self):
        dev = NetworkDevice(small_profile())
        dev.install_agent(small_spec())
        dev.offload_agent("agent")
        dev.reclaim_agent("agent")
        assert dev.local_agents == ("agent",)
        assert dev.offloaded_agents == ()

    def test_host_and_evict_remote(self):
        dev = NetworkDevice(small_profile())
        dev.host_remote_agent(small_spec(), "src")
        assert dev.remote_agents == (("src", "agent"),)
        with pytest.raises(TelemetryError, match="already hosting"):
            dev.host_remote_agent(small_spec(), "src")
        dev.evict_remote_agent("agent", "src")
        assert dev.remote_agents == ()


class TestShipmentFlow:
    def test_stub_ships_and_remote_charges(self):
        src = NetworkDevice(small_profile("src"))
        dst = NetworkDevice(small_profile("dst"))
        src.install_agent(small_spec())
        spec = src.offload_agent("agent")
        dst.host_remote_agent(spec, "src")

        src.database.record_synthetic_updates("t1", 1000)
        src.step(now=60.0, interval_s=60.0)
        shipments = src.drain_outbox()
        assert len(shipments) == 1
        assert shipments[0].updates == 1000
        assert shipments[0].data_mb > 0

        dst.deliver(shipments[0])
        sample = dst.step(now=60.0, interval_s=60.0)
        # Remote pays fixed + per-update analytics cost.
        expected_cpu_s = (100.0 + 1000 * 1.0) / 1000.0
        assert sample.monitoring_cpu_pct == pytest.approx(
            100.0 * expected_cpu_s / 60.0
        )

    def test_outbox_drains_once(self):
        src = NetworkDevice(small_profile())
        src.install_agent(small_spec())
        src.offload_agent("agent")
        src.step(now=60.0, interval_s=60.0)
        assert src.drain_outbox()
        assert src.drain_outbox() == []

    def test_misdelivered_shipment_rejected(self):
        src = NetworkDevice(small_profile("src"))
        dst = NetworkDevice(small_profile("dst"))
        src.install_agent(small_spec())
        src.offload_agent("agent")
        src.step(now=60.0, interval_s=60.0)
        shipment = src.drain_outbox()[0]
        with pytest.raises(TelemetryError, match="does not host"):
            dst.deliver(shipment)


class TestResourceAccounting:
    def test_memory_includes_agents_and_tsdb(self):
        dev = NetworkDevice(small_profile(), tsdb_capacity=1000)
        base_pct = dev.memory_pct()
        dev.install_agent(small_spec())
        assert dev.monitoring_memory_mb() >= 50.0
        assert dev.memory_pct() > base_pct

    def test_offload_drops_memory_to_stub(self):
        dev = NetworkDevice(small_profile())
        dev.install_agent(small_spec())
        before = dev.monitoring_memory_mb()
        dev.offload_agent("agent")
        after = dev.monitoring_memory_mb()
        assert after < before

    def test_module_cpu_saturates_at_core_count(self):
        spec = MonitorAgentSpec(
            name="hog", tables=("t",), cpu_ms_per_update=1e6,
            cpu_ms_per_interval=0.0, memory_mb=1.0, emits=(),
        )
        dev = NetworkDevice(small_profile(cores=4))
        dev.install_agent(spec)
        dev.database.record_synthetic_updates("t", 10_000)
        sample = dev.step(now=1.0, interval_s=1.0)
        assert sample.monitoring_cpu_pct == 400.0
        assert sample.device_cpu_pct == 100.0

    def test_invalid_interval(self):
        dev = NetworkDevice(small_profile())
        with pytest.raises(TelemetryError, match="positive"):
            dev.step(now=0.0, interval_s=0.0)

    def test_history_accumulates(self):
        dev = NetworkDevice(small_profile())
        for i in range(3):
            dev.step(now=float(i), interval_s=1.0)
        assert len(dev.history) == 3

    def test_profile_validation(self):
        with pytest.raises(TelemetryError):
            DeviceProfile("x", cores=0, memory_gb=1.0, base_cpu_pct=1.0, base_memory_mb=0.0)
        with pytest.raises(TelemetryError):
            DeviceProfile("x", cores=1, memory_gb=0.0, base_cpu_pct=1.0, base_memory_mb=0.0)
        with pytest.raises(TelemetryError):
            DeviceProfile("x", cores=1, memory_gb=1.0, base_cpu_pct=101.0, base_memory_mb=0.0)
