"""Tests for the workload driver and the TSDB federation."""

import numpy as np
import pytest

from repro.errors import TelemetryError
from repro.telemetry import (
    BurstModel,
    DeviceProfile,
    DeviceWorkloadDriver,
    NetworkDevice,
    TimeSeriesDatabase,
    TimeSeriesFederation,
    UpdateRateProfile,
)


def device():
    return NetworkDevice(DeviceProfile(
        name="d", cores=4, memory_gb=8.0, base_cpu_pct=10.0, base_memory_mb=512.0,
    ))


class TestUpdateRateProfile:
    def test_default_total_rate(self):
        profile = UpdateRateProfile()
        assert profile.total_rate_per_s == pytest.approx(3080.0)

    def test_scaled(self):
        profile = UpdateRateProfile({"a": 10.0}).scaled(2.5)
        assert profile.rates_per_s["a"] == 25.0

    def test_negative_rate_rejected(self):
        with pytest.raises(TelemetryError):
            UpdateRateProfile({"a": -1.0})

    def test_negative_scale_rejected(self):
        with pytest.raises(TelemetryError):
            UpdateRateProfile({"a": 1.0}).scaled(-1.0)


class TestBurstModel:
    def test_no_burst_is_unity(self):
        model = BurstModel(burst_probability=0.0)
        rng = np.random.default_rng(0)
        assert all(model.sample_multiplier(rng) == 1.0 for _ in range(20))

    def test_always_burst_in_range(self):
        model = BurstModel(burst_probability=1.0, min_multiplier=2.0, max_multiplier=5.0)
        rng = np.random.default_rng(0)
        for _ in range(50):
            m = model.sample_multiplier(rng)
            assert 2.0 <= m <= 5.0

    def test_validation(self):
        with pytest.raises(TelemetryError):
            BurstModel(burst_probability=1.5)
        with pytest.raises(TelemetryError):
            BurstModel(min_multiplier=0.5)
        with pytest.raises(TelemetryError):
            BurstModel(min_multiplier=5.0, max_multiplier=2.0)


class TestDeviceWorkloadDriver:
    def test_advance_generates_poisson_volume(self):
        dev = device()
        driver = DeviceWorkloadDriver(
            dev, profile=UpdateRateProfile({"t": 100.0}), seed=0
        )
        total = driver.advance(10.0)
        # Poisson(1000): overwhelmingly within +-20%.
        assert 800 <= total <= 1200
        assert dev.database.stats("t").updates_total == total

    def test_intensity_scales_volume(self):
        totals = []
        for intensity in (0.5, 2.0):
            dev = device()
            driver = DeviceWorkloadDriver(
                dev, profile=UpdateRateProfile({"t": 200.0}),
                intensity=intensity, seed=1,
            )
            totals.append(driver.advance(10.0))
        assert totals[1] > totals[0] * 2.5

    def test_zero_intensity_silent(self):
        dev = device()
        driver = DeviceWorkloadDriver(
            dev, profile=UpdateRateProfile({"t": 100.0}), intensity=0.0, seed=0
        )
        assert driver.advance(10.0) == 0

    def test_deterministic_for_seed(self):
        runs = []
        for _ in range(2):
            dev = device()
            driver = DeviceWorkloadDriver(
                dev, profile=UpdateRateProfile({"t": 50.0}), seed=9
            )
            runs.append([driver.advance(5.0) for _ in range(4)])
        assert runs[0] == runs[1]

    def test_invalid_dt(self):
        driver = DeviceWorkloadDriver(device(), profile=UpdateRateProfile({"t": 1.0}))
        with pytest.raises(TelemetryError):
            driver.advance(0.0)

    def test_invalid_intensity(self):
        with pytest.raises(TelemetryError):
            DeviceWorkloadDriver(device(), intensity=-1.0)


class TestFederation:
    def build(self):
        fed = TimeSeriesFederation()
        a, b = TimeSeriesDatabase("a"), TimeSeriesDatabase("b")
        for t in range(3):
            a.append("cpu", float(t), 10.0 + t)
            b.append("cpu", float(t) + 0.5, 20.0 + t)
        fed.register("node-a", a)
        fed.register("node-b", b)
        return fed

    def test_query_merges_time_ordered(self):
        fed = self.build()
        points = fed.query("cpu")
        assert len(points) == 6
        times = [p.timestamp for p in points]
        assert times == sorted(times)

    def test_latest_by_member(self):
        fed = self.build()
        latest = fed.latest_by_member("cpu")
        assert latest == {"node-a": 12.0, "node-b": 22.0}

    def test_aggregate_across(self):
        fed = self.build()
        assert fed.aggregate_across("cpu", "max") == 22.0
        assert fed.aggregate_across("cpu", "count") == 6.0
        assert np.isnan(fed.aggregate_across("missing"))

    def test_federated_downsample_mean(self):
        fed = self.build()
        times, values = fed.federated_downsample("cpu", bucket_s=1.0)
        assert times.size == 3
        # Bucket 0 holds a@0 (10) and b@0.5 (20).
        assert values[0] == pytest.approx(15.0)

    def test_duplicate_member_rejected(self):
        fed = TimeSeriesFederation()
        fed.register("x", TimeSeriesDatabase())
        with pytest.raises(TelemetryError, match="already registered"):
            fed.register("x", TimeSeriesDatabase())

    def test_unregister(self):
        fed = TimeSeriesFederation()
        fed.register("x", TimeSeriesDatabase())
        fed.unregister("x")
        assert fed.members == ()
        with pytest.raises(TelemetryError):
            fed.unregister("x")

    def test_member_lookup(self):
        fed = TimeSeriesFederation()
        tsdb = TimeSeriesDatabase()
        fed.register("x", tsdb)
        assert fed.member("x") is tsdb
        with pytest.raises(TelemetryError):
            fed.member("y")

    def test_tagged_queries_respect_tags(self):
        fed = TimeSeriesFederation()
        tsdb = TimeSeriesDatabase()
        tsdb.append("cpu", 0.0, 1.0, tags={"src": "a"})
        tsdb.append("cpu", 0.0, 2.0, tags={"src": "b"})
        fed.register("n", tsdb)
        points = fed.query("cpu", tags={"src": "a"})
        assert [p.value for p in points] == [1.0]
