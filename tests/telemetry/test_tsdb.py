"""Tests for the ring-buffer time-series database."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TelemetryError
from repro.telemetry import (
    BYTES_PER_SAMPLE,
    Series,
    ThresholdRule,
    TimeSeriesDatabase,
    series_key,
)


class TestSeriesKey:
    def test_no_tags(self):
        assert series_key("cpu") == "cpu"

    def test_tags_sorted(self):
        assert series_key("cpu", {"b": "2", "a": "1"}) == "cpu{a=1,b=2}"

    def test_empty_tags_equals_none(self):
        assert series_key("cpu", {}) == series_key("cpu")


class TestSeries:
    def test_append_and_latest(self):
        s = Series("cpu", capacity=4)
        s.append(1.0, 10.0)
        s.append(2.0, 20.0)
        assert len(s) == 2
        assert s.latest() == (2.0, 20.0)

    def test_ring_overwrites_oldest(self):
        s = Series("cpu", capacity=3)
        for t in range(5):
            s.append(float(t), float(t * 10))
        times, values = s.range()
        np.testing.assert_allclose(times, [2.0, 3.0, 4.0])
        np.testing.assert_allclose(values, [20.0, 30.0, 40.0])
        assert s.total_appended == 5

    def test_range_filters(self):
        s = Series("cpu", capacity=10)
        for t in range(10):
            s.append(float(t), float(t))
        times, _ = s.range(3.0, 6.0)
        np.testing.assert_allclose(times, [3.0, 4.0, 5.0, 6.0])

    def test_out_of_order_timestamp_rejected(self):
        s = Series("cpu", capacity=4)
        s.append(5.0, 1.0)
        with pytest.raises(TelemetryError, match="older"):
            s.append(4.0, 1.0)

    def test_equal_timestamps_allowed(self):
        s = Series("cpu", capacity=4)
        s.append(5.0, 1.0)
        s.append(5.0, 2.0)
        assert len(s) == 2

    def test_empty_latest_raises(self):
        with pytest.raises(TelemetryError, match="empty"):
            Series("cpu", capacity=2).latest()

    def test_memory_is_capacity_based(self):
        s = Series("cpu", capacity=100)
        assert s.memory_bytes() == 100 * BYTES_PER_SAMPLE

    def test_invalid_capacity(self):
        with pytest.raises(TelemetryError):
            Series("cpu", capacity=0)

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=1, max_value=20),
        st.lists(st.floats(min_value=0, max_value=1e6), min_size=0, max_size=60),
    )
    def test_property_ring_keeps_last_k_sorted(self, capacity, raw_times):
        """After any append sequence the buffer holds the last
        min(n, capacity) samples in chronological order."""
        times = sorted(raw_times)
        s = Series("x", capacity=capacity)
        for t in times:
            s.append(t, t)
        got_t, got_v = s.range()
        expect = times[-min(len(times), capacity):]
        np.testing.assert_allclose(got_t, expect)
        np.testing.assert_allclose(got_v, expect)


class TestTimeSeriesDatabase:
    def test_append_creates_series(self):
        tsdb = TimeSeriesDatabase()
        tsdb.append("cpu", 1.0, 50.0, tags={"device": "sw1"})
        assert tsdb.has_series("cpu", {"device": "sw1"})
        assert not tsdb.has_series("cpu")

    def test_query(self):
        tsdb = TimeSeriesDatabase()
        for t in range(5):
            tsdb.append("cpu", float(t), float(t))
        times, values = tsdb.query("cpu", 1.0, 3.0)
        np.testing.assert_allclose(values, [1.0, 2.0, 3.0])

    def test_unknown_series_raises(self):
        with pytest.raises(TelemetryError, match="unknown series"):
            TimeSeriesDatabase().query("nope")

    def test_aggregate(self):
        tsdb = TimeSeriesDatabase()
        for t, v in enumerate([1.0, 2.0, 3.0, 4.0]):
            tsdb.append("cpu", float(t), v)
        assert tsdb.aggregate("cpu", "mean") == pytest.approx(2.5)
        assert tsdb.aggregate("cpu", "max") == 4.0
        assert tsdb.aggregate("cpu", "sum") == 10.0
        assert tsdb.aggregate("cpu", "count") == 4.0
        assert tsdb.aggregate("cpu", "last") == 4.0

    def test_aggregate_empty_is_nan(self):
        tsdb = TimeSeriesDatabase()
        tsdb.create_series("cpu")
        assert np.isnan(tsdb.aggregate("cpu", "mean"))

    def test_unknown_aggregate(self):
        tsdb = TimeSeriesDatabase()
        tsdb.append("cpu", 0.0, 1.0)
        with pytest.raises(TelemetryError, match="unknown aggregate"):
            tsdb.aggregate("cpu", "median")

    def test_downsample_means(self):
        tsdb = TimeSeriesDatabase()
        for t in range(10):
            tsdb.append("cpu", float(t), float(t))
        times, values = tsdb.downsample("cpu", bucket_s=5.0)
        np.testing.assert_allclose(times, [0.0, 5.0])
        np.testing.assert_allclose(values, [2.0, 7.0])

    def test_downsample_max(self):
        tsdb = TimeSeriesDatabase()
        for t in range(4):
            tsdb.append("cpu", float(t), float(t))
        _, values = tsdb.downsample("cpu", bucket_s=2.0, aggregate="max")
        np.testing.assert_allclose(values, [1.0, 3.0])

    def test_downsample_empty(self):
        tsdb = TimeSeriesDatabase()
        tsdb.create_series("cpu")
        times, values = tsdb.downsample("cpu", bucket_s=5.0)
        assert times.size == 0 and values.size == 0

    def test_drop_series(self):
        tsdb = TimeSeriesDatabase()
        tsdb.append("cpu", 0.0, 1.0)
        tsdb.drop_series("cpu")
        assert not tsdb.has_series("cpu")
        with pytest.raises(TelemetryError):
            tsdb.drop_series("cpu")

    def test_memory_accounting(self):
        tsdb = TimeSeriesDatabase(default_capacity=100)
        tsdb.create_series("a")
        tsdb.create_series("b", capacity=50)
        assert tsdb.memory_bytes() == (100 + 50) * BYTES_PER_SAMPLE

    def test_total_samples(self):
        tsdb = TimeSeriesDatabase()
        for t in range(7):
            tsdb.append("cpu", float(t), 1.0)
        assert tsdb.total_samples() == 7


class TestRules:
    def make_tsdb(self):
        tsdb = TimeSeriesDatabase()
        for t in range(10):
            tsdb.append("cpu_pct", float(t), 50.0 + t * 5)  # 50..95
        return tsdb

    def test_rule_fires_above_bound(self):
        tsdb = self.make_tsdb()
        tsdb.add_rule(ThresholdRule("busy", "cpu_pct", window_s=3.0, aggregate="mean",
                                    comparison=">", bound=80.0))
        assert tsdb.evaluate_rules(now=9.0) == ["busy"]

    def test_rule_quiet_below_bound(self):
        tsdb = self.make_tsdb()
        tsdb.add_rule(ThresholdRule("busy", "cpu_pct", window_s=3.0, aggregate="mean",
                                    comparison=">", bound=99.0))
        assert tsdb.evaluate_rules(now=9.0) == []

    def test_less_than_rule(self):
        tsdb = self.make_tsdb()
        tsdb.add_rule(ThresholdRule("idle", "cpu_pct", window_s=2.0, aggregate="min",
                                    comparison="<", bound=60.0))
        assert tsdb.evaluate_rules(now=1.0) == ["idle"]

    def test_rule_on_missing_series_is_silent(self):
        tsdb = TimeSeriesDatabase()
        tsdb.add_rule(ThresholdRule("r", "nope", window_s=1.0, aggregate="mean",
                                    comparison=">", bound=0.0))
        assert tsdb.evaluate_rules(now=0.0) == []

    def test_duplicate_rule_rejected(self):
        tsdb = TimeSeriesDatabase()
        rule = ThresholdRule("r", "cpu", window_s=1.0, aggregate="mean",
                             comparison=">", bound=0.0)
        tsdb.add_rule(rule)
        with pytest.raises(TelemetryError, match="duplicate"):
            tsdb.add_rule(rule)

    def test_remove_rule(self):
        tsdb = TimeSeriesDatabase()
        tsdb.add_rule(ThresholdRule("r", "cpu", window_s=1.0, aggregate="mean",
                                    comparison=">", bound=0.0))
        tsdb.remove_rule("r")
        assert tsdb.rules == ()
        with pytest.raises(TelemetryError):
            tsdb.remove_rule("r")

    def test_rule_validation(self):
        with pytest.raises(TelemetryError):
            ThresholdRule("r", "cpu", window_s=0.0, aggregate="mean",
                          comparison=">", bound=0.0)
        with pytest.raises(TelemetryError):
            ThresholdRule("r", "cpu", window_s=1.0, aggregate="nope",
                          comparison=">", bound=0.0)
        with pytest.raises(TelemetryError):
            ThresholdRule("r", "cpu", window_s=1.0, aggregate="mean",
                          comparison=">=", bound=0.0)
