"""Tests for the subscription state database."""

import pytest

from repro.errors import TelemetryError
from repro.telemetry import StateDatabase


@pytest.fixture
def db():
    database = StateDatabase("test")
    database.create_table("interfaces")
    return database


class TestSchema:
    def test_create_and_list(self, db):
        db.create_table("routes")
        assert set(db.tables) == {"interfaces", "routes"}

    def test_duplicate_create_rejected(self, db):
        with pytest.raises(TelemetryError, match="already exists"):
            db.create_table("interfaces")

    def test_ensure_table_idempotent(self, db):
        db.ensure_table("interfaces")
        db.ensure_table("new")
        assert "new" in db.tables

    def test_unknown_table_rejected(self, db):
        with pytest.raises(TelemetryError, match="unknown table"):
            db.rows("nope")


class TestWrites:
    def test_upsert_and_get(self, db):
        db.upsert("interfaces", "eth0", {"speed": 10_000})
        assert db.get("interfaces", "eth0") == {"speed": 10_000}
        assert db.get("interfaces", "eth1") is None

    def test_upsert_replaces(self, db):
        db.upsert("interfaces", "eth0", {"speed": 10})
        db.upsert("interfaces", "eth0", {"speed": 25})
        assert db.get("interfaces", "eth0") == {"speed": 25}
        assert db.row_count("interfaces") == 1

    def test_update_fields_merges(self, db):
        db.upsert("interfaces", "eth0", {"speed": 10, "mtu": 1500})
        db.update_fields("interfaces", "eth0", mtu=9000)
        assert db.get("interfaces", "eth0") == {"speed": 10, "mtu": 9000}

    def test_update_fields_missing_row(self, db):
        with pytest.raises(TelemetryError, match="not found"):
            db.update_fields("interfaces", "eth9", mtu=9000)

    def test_bulk_upsert(self, db):
        count = db.bulk_upsert(
            "interfaces", ((f"eth{i}", {"idx": i}) for i in range(5))
        )
        assert count == 5
        assert db.row_count("interfaces") == 5

    def test_rows_returns_copy(self, db):
        db.upsert("interfaces", "eth0", {"speed": 10})
        rows = db.rows("interfaces")
        rows.clear()
        assert db.row_count("interfaces") == 1


class TestSubscriptions:
    def test_subscriber_called_per_write(self, db):
        seen = []
        db.subscribe("interfaces", lambda t, k, r: seen.append((t, k, dict(r))))
        db.upsert("interfaces", "eth0", {"v": 1})
        db.upsert("interfaces", "eth0", {"v": 2})
        assert seen == [("interfaces", "eth0", {"v": 1}), ("interfaces", "eth0", {"v": 2})]

    def test_unsubscribe_stops_delivery(self, db):
        seen = []
        cb = lambda t, k, r: seen.append(k)  # noqa: E731
        db.subscribe("interfaces", cb)
        db.upsert("interfaces", "a", {})
        db.unsubscribe("interfaces", cb)
        db.upsert("interfaces", "b", {})
        assert seen == ["a"]

    def test_unsubscribe_unknown_is_noop(self, db):
        db.unsubscribe("interfaces", lambda t, k, r: None)

    def test_reentrant_write_rejected(self, db):
        def evil(table, key, row):
            db.upsert("interfaces", "other", {})

        db.subscribe("interfaces", evil)
        with pytest.raises(TelemetryError, match="re-entrant"):
            db.upsert("interfaces", "x", {})

    def test_subscriber_count(self, db):
        assert db.subscriber_count("interfaces") == 0
        db.subscribe("interfaces", lambda t, k, r: None)
        assert db.subscriber_count("interfaces") == 1


class TestBulkNotifications:
    def test_bulk_counts_reach_bulk_subscribers(self, db):
        counts = []
        db.subscribe_bulk("interfaces", lambda t, c: counts.append(c))
        db.record_synthetic_updates("interfaces", 500)
        db.record_synthetic_updates("interfaces", 250)
        assert counts == [500, 250]

    def test_bulk_updates_counted_in_stats(self, db):
        db.record_synthetic_updates("interfaces", 100)
        db.upsert("interfaces", "eth0", {})
        stats = db.stats("interfaces")
        assert stats.updates_total == 101

    def test_zero_count_is_noop(self, db):
        hits = []
        db.subscribe_bulk("interfaces", lambda t, c: hits.append(c))
        db.record_synthetic_updates("interfaces", 0)
        assert hits == []

    def test_negative_count_rejected(self, db):
        with pytest.raises(TelemetryError, match="non-negative"):
            db.record_synthetic_updates("interfaces", -1)

    def test_unsubscribe_bulk(self, db):
        hits = []
        cb = lambda t, c: hits.append(c)  # noqa: E731
        db.subscribe_bulk("interfaces", cb)
        db.unsubscribe_bulk("interfaces", cb)
        db.record_synthetic_updates("interfaces", 10)
        assert hits == []


class TestStats:
    def test_drain_resets_window(self, db):
        db.upsert("interfaces", "a", {})
        db.record_synthetic_updates("interfaces", 9)
        counts = db.drain_update_counts()
        assert counts["interfaces"] == 10
        assert db.drain_update_counts()["interfaces"] == 0
        # Total survives draining.
        assert db.stats("interfaces").updates_total == 10
