"""Chaos test: random crash/recover churn against the control plane.

An exponential failure/repair process batters client nodes for two
simulated hours while hot nodes keep needing offload. At periodic
checkpoints and at the end, the system must satisfy the global
invariants: no workload parked on a dead node past a sweep, capacity
bounds respected, distributed state consistent for alive endpoints.
This is the failure-injection coverage the unit tests cannot provide.
"""

import numpy as np
import pytest

from repro.core import DUSTClient, DUSTManager, ThresholdPolicy, audit_system
from repro.simulation import FailureInjector, MessageNetwork, SimulationEngine
from repro.topology import LinkUtilizationModel, build_fat_tree

POLICY = ThresholdPolicy(c_max=80.0, co_max=50.0, x_min=10.0)
HOT = (5, 9, 14)
HORIZON = 7200.0


@pytest.fixture(scope="module", params=[0, 1, 2])
def chaos_run(request):
    seed = request.param
    topology = build_fat_tree(4)
    LinkUtilizationModel(0.2, 0.7, seed=seed).apply(topology)
    engine = SimulationEngine()
    network = MessageNetwork(topology, engine)
    manager = DUSTManager(
        node_id=0, topology=topology, engine=engine, network=network,
        policy=POLICY, update_interval_s=30.0, optimization_period_s=60.0,
        keepalive_timeout_s=45.0,
    )
    manager.start()
    rng = np.random.default_rng(seed)
    clients = {}
    for node in range(1, topology.num_nodes):
        client = DUSTClient(
            node_id=node, engine=engine, network=network, manager_node=0,
            policy=POLICY,
            base_capacity=92.0 if node in HOT else float(rng.uniform(15.0, 42.0)),
            keepalive_period_s=10.0,
        )
        client.start()
        clients[node] = client

    # Crash/repair churn on the cool nodes (hot sources stay up so the
    # need for offloading persists throughout).
    injector = FailureInjector(engine, clients)
    churn_nodes = [n for n in clients if n not in HOT]
    events = injector.schedule_exponential(
        horizon_s=HORIZON - 600.0,  # leave a settle window at the end
        mtbf_s=1800.0,
        mttr_s=300.0,
        seed=seed + 100,
        nodes=churn_nodes,
    )

    checkpoint_violations = []
    for checkpoint in np.arange(900.0, HORIZON + 1, 900.0):
        engine.run_until(float(checkpoint))
        report = audit_system(manager, clients)
        if not report.clean:
            checkpoint_violations.append((checkpoint, report))
    return manager, clients, engine, events, checkpoint_violations


def test_chaos_injected_real_failures(chaos_run):
    _, clients, _, events, _ = chaos_run
    assert events, "the failure process generated no events"
    crashes = [e for e in events if e.kind == "crash"]
    assert crashes, "expected at least one crash over four MTBFs"


def test_chaos_audits_clean_at_every_checkpoint(chaos_run):
    _, _, _, _, violations = chaos_run
    assert violations == [], violations


def test_chaos_no_workload_on_dead_nodes(chaos_run):
    manager, clients, engine, _, _ = chaos_run
    for offload in manager.ledger.active:
        destination = clients[offload.destination]
        assert destination.alive, (
            f"ledger still routes {offload.source}->{offload.destination} "
            "to a dead node after the settle window"
        )


def test_chaos_hot_nodes_still_served(chaos_run):
    manager, clients, engine, _, _ = chaos_run
    now = engine.now
    for node in HOT:
        capacity = clients[node].current_capacity(now)
        # Served (at C_max) or explainably stuck (capacity crunch during
        # churn); never silently above base.
        assert capacity <= 92.0 + 1e-6
        if capacity > POLICY.c_max + 1e-6:
            assert (
                manager.counters.infeasible_rounds > 0
                or manager.counters.offloads_rejected > 0
                or len(manager._pending) > 0
            )


def test_chaos_recovery_machinery_exercised(chaos_run):
    manager, _, _, _, _ = chaos_run
    counters = manager.counters
    if counters.destinations_failed:
        assert counters.replicas_installed + counters.workloads_returned > 0


def test_chaos_destination_bounds_hold(chaos_run):
    manager, clients, engine, _, _ = chaos_run
    now = engine.now
    for client in clients.values():
        if client.alive and client.hosted_amount > 0:
            assert client.current_capacity(now) <= POLICY.co_max + 1e-6
