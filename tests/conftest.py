"""Suite-wide guards.

A per-test wall-clock limit so a cycling simplex pivot (or any other
accidental infinite loop) can never hang the suite. When the real
``pytest-timeout`` plugin is installed (CI installs it) it takes over
and this guard steps aside; otherwise a stdlib ``SIGALRM`` fallback
enforces the same limit on POSIX hosts. Windows (no ``SIGALRM``) runs
unguarded rather than skipping tests.
"""

import signal

import pytest

#: Generous per-test ceiling — the slowest legitimate tests (hypothesis
#: sweeps over LP instances) finish in well under a minute.
TEST_TIMEOUT_S = 120


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    plugin_active = item.config.pluginmanager.hasplugin("timeout")
    if plugin_active or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _expired(signum, frame):
        raise TimeoutError(
            f"test exceeded the {TEST_TIMEOUT_S}s suite guard "
            "(possible pivot cycle or infinite loop)"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(TEST_TIMEOUT_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
