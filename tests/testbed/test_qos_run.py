"""Tests for the QoS congestion harness (Section III-C guarantee)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TelemetryError
from repro.testbed import run_congestion_experiment


class TestQoSGuarantee:
    def test_production_never_loses_under_headroom(self):
        """Paper: remote nodes 'are not expected to experience any
        traffic loss' — production fits, so only monitoring drops."""
        result = run_congestion_experiment(
            intervals=30, egress_capacity_mbps=2.0,
            production_load_fraction=0.9, seed=0,
        )
        assert result.total_production_loss_mb == 0.0
        assert result.congested_intervals > 0  # link genuinely congested
        assert result.total_monitoring_dropped_mb > 0.0

    def test_ample_capacity_delivers_everything(self):
        result = run_congestion_experiment(
            intervals=20, egress_capacity_mbps=10_000.0,
            production_load_fraction=0.1, seed=1,
        )
        assert result.congested_intervals == 0
        assert result.monitoring_delivery_ratio == pytest.approx(1.0)

    def test_delivery_ratio_monotone_in_capacity(self):
        ratios = [
            run_congestion_experiment(
                intervals=20, egress_capacity_mbps=cap,
                production_load_fraction=0.9, seed=2,
            ).monitoring_delivery_ratio
            for cap in (1.0, 5.0, 50.0)
        ]
        assert ratios[0] <= ratios[1] <= ratios[2]

    def test_validation(self):
        with pytest.raises(TelemetryError):
            run_congestion_experiment(intervals=0)
        with pytest.raises(TelemetryError):
            run_congestion_experiment(egress_capacity_mbps=0.0)
        with pytest.raises(TelemetryError):
            run_congestion_experiment(production_load_fraction=1.5)

    @settings(max_examples=10, deadline=None)
    @given(
        st.floats(min_value=0.5, max_value=0.99),
        st.integers(min_value=0, max_value=1000),
    )
    def test_property_strict_priority_invariant(self, load, seed):
        """For any production load <= capacity, production loss is 0."""
        result = run_congestion_experiment(
            intervals=10,
            egress_capacity_mbps=3.0,
            production_load_fraction=load,
            production_burst_fraction=min(0.99 - load, 0.1),
            seed=seed,
        )
        assert result.total_production_loss_mb == 0.0
        # Conservation per interval.
        for s in result.samples:
            assert s.delivered_monitoring_mb + s.dropped_monitoring_mb == (
                pytest.approx(s.offered_monitoring_mb)
            )
