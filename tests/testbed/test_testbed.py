"""Tests for the hardware-testbed emulation (Figs. 1/5/6 substrate)."""

import numpy as np
import pytest

from repro.errors import TelemetryError
from repro.testbed import (
    VxlanWorkload,
    aruba_8325_profile,
    build_dut,
    compare_local_vs_offloaded,
    dpu_profile,
    offload_server_profile,
    run_monitoring,
)


class TestProfiles:
    def test_aruba_specs_match_paper(self):
        profile = aruba_8325_profile()
        assert profile.cores == 8
        assert profile.memory_gb == 16.0

    def test_dut_has_all_ten_agents(self):
        dut = build_dut()
        assert len(dut.local_agents) == 10

    def test_other_profiles_valid(self):
        assert offload_server_profile().cores > aruba_8325_profile().cores
        assert dpu_profile().cores == 16


class TestVxlanWorkload:
    def test_reference_intensity(self):
        workload = VxlanWorkload()
        assert workload.line_rate_fraction == 0.20
        assert workload.intensity == pytest.approx(1.3)

    def test_intensity_linear_in_line_rate(self):
        assert VxlanWorkload(line_rate_fraction=0.4).intensity == pytest.approx(2.6)
        assert VxlanWorkload(line_rate_fraction=0.0).intensity == 0.0

    def test_invalid_fraction(self):
        with pytest.raises(TelemetryError):
            VxlanWorkload(line_rate_fraction=1.5)

    def test_driver_attached_to_device(self):
        dut = build_dut()
        driver = VxlanWorkload(seed=0).driver_for(dut)
        assert driver.advance(60.0) > 0


class TestMonitoringRun:
    def test_local_mode_bands(self):
        """Fig. 1 band: module CPU ~100% average on the 8-core DUT."""
        result = run_monitoring("local", intervals=40, seed=42)
        assert result.mode == "local"
        assert 80.0 <= result.avg_module_cpu_pct <= 200.0
        assert result.peak_module_cpu_pct <= 800.0  # 8 cores cap
        assert result.remote_samples == ()

    def test_offloaded_mode_has_remote_samples(self):
        result = run_monitoring("offloaded", intervals=10, seed=42)
        assert len(result.remote_samples) == 10
        # The DUT only pays stub costs now.
        assert result.avg_module_cpu_pct < 30.0

    def test_invalid_mode(self):
        with pytest.raises(TelemetryError):
            run_monitoring("hybrid")

    def test_invalid_intervals(self):
        with pytest.raises(TelemetryError):
            run_monitoring("local", intervals=0)

    def test_monitoring_memory_footprint_about_1_2_gib(self):
        result = run_monitoring("local", intervals=5, seed=1)
        assert 1150.0 <= result.monitoring_memory_mb <= 1350.0


class TestOffloadComparison:
    @pytest.fixture(scope="class")
    def cmp(self):
        return compare_local_vs_offloaded(intervals=40, seed=42)

    def test_cpu_reduction_in_paper_band(self, cmp):
        """Paper: 31% -> 15% (~52% relative). Accept 35-65%."""
        assert 25.0 <= cmp.local.avg_device_cpu_pct <= 38.0
        assert 12.0 <= cmp.offloaded.avg_device_cpu_pct <= 20.0
        assert 35.0 <= cmp.cpu_reduction_pct <= 65.0

    def test_memory_reduction_in_paper_band(self, cmp):
        """Paper: 70% -> 62% (~12% relative). Accept 5-20%."""
        assert 65.0 <= cmp.local.avg_memory_pct <= 75.0
        assert 58.0 <= cmp.offloaded.avg_memory_pct <= 67.0
        assert 5.0 <= cmp.memory_reduction_pct <= 20.0

    def test_offloading_always_helps(self, cmp):
        assert cmp.offloaded.avg_device_cpu_pct < cmp.local.avg_device_cpu_pct
        assert cmp.offloaded.avg_memory_pct < cmp.local.avg_memory_pct
