"""Tests for the zoned deployment (paper's <= 80-node-zone guidance)."""

import numpy as np
import pytest

from repro.core import (
    PlacementEngine,
    ThresholdPolicy,
    Zone,
    ZonedPlacementEngine,
    classify_network,
    partition_bfs,
    partition_by_pod,
    validate_partition,
)
from repro.errors import PlacementError, TopologyError
from repro.routing import PathEngine, ResponseTimeModel
from repro.topology import (
    CapacityModel,
    LinkUtilizationModel,
    build_fat_tree,
    build_line,
    build_random_connected,
)


class TestPartitioning:
    def test_pod_partition_covers_fat_tree(self):
        topo = build_fat_tree(4)
        zones = partition_by_pod(topo)
        assert len(zones) == 4  # one per pod
        validate_partition(topo, zones)
        # Each zone: 4 pod switches + 1 core (4 cores round-robined).
        assert sorted(len(z) for z in zones) == [5, 5, 5, 5]

    def test_pod_partition_requires_annotations(self):
        topo = build_line(5)
        with pytest.raises(TopologyError):
            partition_by_pod(topo)

    def test_bfs_partition_respects_budget(self):
        topo = build_fat_tree(8)  # 80 nodes
        zones = partition_bfs(topo, max_zone_nodes=20)
        validate_partition(topo, zones)
        assert all(len(z) <= 20 for z in zones)
        assert sum(len(z) for z in zones) == 80

    def test_bfs_partition_deterministic(self):
        topo = build_random_connected(40, 0.1, seed=2)
        a = partition_bfs(topo, 10)
        b = partition_bfs(topo, 10)
        assert [z.nodes for z in a] == [z.nodes for z in b]

    def test_bfs_budget_validation(self):
        with pytest.raises(PlacementError):
            partition_bfs(build_line(3), 0)

    def test_validate_partition_catches_overlap(self):
        topo = build_line(3)
        with pytest.raises(PlacementError, match="appears in zones"):
            validate_partition(topo, [Zone(0, (0, 1)), Zone(1, (1, 2))])

    def test_validate_partition_catches_missing(self):
        topo = build_line(3)
        with pytest.raises(PlacementError, match="belong to no zone"):
            validate_partition(topo, [Zone(0, (0, 1))])

    def test_zone_validation(self):
        with pytest.raises(PlacementError):
            Zone(0, ())
        with pytest.raises(PlacementError):
            Zone(0, (1, 1))


class TestZonedPlacement:
    def setup_case(self, seed=0):
        topo = build_fat_tree(4)
        LinkUtilizationModel(0.2, 0.8, seed=seed).apply(topo)
        policy = ThresholdPolicy(c_max=80.0, co_max=50.0, x_min=10.0)
        caps = CapacityModel(x_min=10.0, seed=seed + 1).sample(topo.num_nodes)
        roles = classify_network(caps, policy)
        busy, cands = roles.busy, roles.candidates
        cs = [policy.excess_load(caps[b]) for b in busy]
        cd = [policy.spare_capacity(caps[c]) for c in cands]
        return topo, busy, cands, cs, cd

    def test_zoned_solve_places_load_in_zone(self):
        topo, busy, cands, cs, cd = self.setup_case(seed=3)
        if not busy:
            pytest.skip("no busy nodes in this draw")
        zones = partition_by_pod(topo)
        engine = ZonedPlacementEngine(max_hops=7)
        report = engine.solve(topo, zones, busy, cands, cs, cd, [10.0] * len(busy))
        # Every assignment stays inside one zone.
        zone_of = {}
        for zone in zones:
            for node in zone.nodes:
                zone_of[node] = zone.zone_id
        for a in report.assignments():
            assert zone_of[a.busy] == zone_of[a.candidate]
        # Conservation: offloaded + unplaced == excess.
        assert report.total_offloaded + report.total_unplaced == pytest.approx(
            sum(cs)
        )

    def test_zoning_never_beats_global_optimum(self):
        topo, busy, cands, cs, cd = self.setup_case(seed=5)
        if not busy:
            pytest.skip("no busy nodes in this draw")
        from repro.core import PlacementProblem

        global_report = PlacementEngine(
            response_model=ResponseTimeModel(engine=PathEngine.DP),
            with_routes=False,
        ).solve(
            PlacementProblem(
                topology=topo, busy=tuple(busy), candidates=tuple(cands),
                cs=np.asarray(cs), cd=np.asarray(cd),
                data_mb=np.full(len(busy), 10.0),
            )
        )
        zoned = ZonedPlacementEngine(
            engine=PlacementEngine(
                response_model=ResponseTimeModel(engine=PathEngine.DP),
                with_routes=False,
            ),
            max_hops=None,
        ).solve(topo, partition_by_pod(topo), busy, cands, cs, cd, [10.0] * len(busy))
        if global_report.feasible:
            assert zoned.total_offloaded <= global_report.total_offloaded + 1e-9

    def test_zone_failure_rate_zero_when_all_fit(self):
        topo = build_fat_tree(4)
        for link in topo.links:
            link.utilization = 0.5
        zones = partition_by_pod(topo)
        # Busy node 4 (pod 0 agg) with abundant candidates in its own pod.
        busy, cands = [4], [5, 6, 7]
        report = ZonedPlacementEngine(max_hops=4).solve(
            topo, zones, busy, cands, [5.0], [10.0, 10.0, 10.0], [10.0]
        )
        assert report.zone_failure_rate_pct == 0.0
        assert report.total_offloaded == pytest.approx(5.0)

    def test_zone_failure_when_candidates_elsewhere(self):
        """Busy node whose only candidate lives in another zone."""
        topo = build_fat_tree(4)
        for link in topo.links:
            link.utilization = 0.5
        zones = partition_by_pod(topo)
        # Node 4 is pod 0; node 16 is pod 3.
        report = ZonedPlacementEngine(max_hops=None).solve(
            topo, zones, [4], [16], [5.0], [10.0], [10.0]
        )
        assert report.total_unplaced == pytest.approx(5.0)
        assert report.zone_failure_rate_pct == pytest.approx(100.0)

    def test_max_zone_seconds_below_total(self):
        topo, busy, cands, cs, cd = self.setup_case(seed=7)
        if not busy:
            pytest.skip("no busy nodes in this draw")
        report = ZonedPlacementEngine(max_hops=5).solve(
            topo, partition_by_pod(topo), busy, cands, cs, cd, [10.0] * len(busy)
        )
        assert report.max_zone_seconds <= report.total_seconds + 1e-9


class TestHeuristicRelief:
    """Algorithm-1 relief of infeasible zones (heuristic_relief=True)."""

    def infeasible_zone_case(self):
        # One 2-node zone: busy node 0 needs 20% but its only candidate
        # has 5% spare -> Eq. 3 is infeasible, the heuristic places 5.
        topo = build_line(2)
        for link in topo.links:
            link.utilization = 0.2
        zones = [Zone(zone_id=0, nodes=(0, 1))]
        return topo, zones

    def test_infeasible_zone_gets_partial_relief(self):
        topo, zones = self.infeasible_zone_case()
        report = ZonedPlacementEngine(heuristic_relief=True).solve(
            topo, zones, [0], [1], [20.0], [5.0], [10.0]
        )
        assert not report.zone_reports[0][1].feasible
        relief = report.heuristic_relief_per_zone[0]
        assert relief.total_offloaded == pytest.approx(5.0)
        # Relieved load no longer counts as unplaced...
        assert report.unplaced_per_zone[0] == pytest.approx(15.0)
        assert report.total_offloaded == pytest.approx(5.0)
        # ...and its assignments surface in the aggregate view.
        rows = report.assignments()
        assert any(a.busy == 0 and a.candidate == 1 for a in rows)

    def test_relief_off_by_default(self):
        topo, zones = self.infeasible_zone_case()
        report = ZonedPlacementEngine().solve(
            topo, zones, [0], [1], [20.0], [5.0], [10.0]
        )
        assert report.heuristic_relief_per_zone == {}
        assert report.unplaced_per_zone[0] == pytest.approx(20.0)
        assert report.assignments() == []
