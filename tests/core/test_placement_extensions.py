"""Tests for the heterogeneous-coefficient and integral placement
extensions (paper's 'coefficient factor' remark and ILP naming)."""

import numpy as np
import pytest

from repro.core import PlacementEngine, PlacementProblem
from repro.errors import PlacementError
from repro.lp import SolveStatus
from repro.topology import Link, Topology, build_line, build_star


def star(cs=10.0, cd=(8.0, 8.0)):
    topo = build_star(2)
    for link in topo.links:
        link.utilization = 0.5
    return topo, (0,), (1, 2), np.array([cs]), np.asarray(cd, dtype=float)


class TestHeterogeneousCoefficients:
    def test_coefficient_shrinks_effective_capacity(self):
        """h=2 means each offloaded point costs 2 points at the
        destination: capacity 8 absorbs only 4 source points."""
        topo, busy, cands, cs, cd = star(cs=10.0, cd=(8.0, 8.0))
        problem = PlacementProblem(
            topology=topo, busy=busy, candidates=cands, cs=cs, cd=cd,
            data_mb=np.array([5.0]),
            capacity_coefficients=np.array([[2.0, 1.0]]),
        )
        report = PlacementEngine(lp_backend="scipy").solve(problem)
        assert report.feasible
        flows = {a.candidate: a.amount_pct for a in report.assignments}
        # Destination 1 can host at most 4 source-points (8 / 2).
        assert flows.get(1, 0.0) <= 4.0 + 1e-9
        assert sum(flows.values()) == pytest.approx(10.0)

    def test_coefficients_can_make_problem_infeasible(self):
        topo, busy, cands, cs, cd = star(cs=10.0, cd=(8.0, 8.0))
        problem = PlacementProblem(
            topology=topo, busy=busy, candidates=cands, cs=cs, cd=cd,
            data_mb=np.array([5.0]),
            capacity_coefficients=np.array([[2.0, 2.0]]),  # 16/2 = 8 < 10
        )
        report = PlacementEngine(lp_backend="scipy").solve(problem)
        assert report.status is SolveStatus.INFEASIBLE

    def test_unit_coefficients_match_homogeneous(self):
        topo, busy, cands, cs, cd = star()
        base = PlacementProblem(
            topology=topo, busy=busy, candidates=cands, cs=cs, cd=cd,
            data_mb=np.array([5.0]),
        )
        unit = PlacementProblem(
            topology=topo, busy=busy, candidates=cands, cs=cs, cd=cd,
            data_mb=np.array([5.0]),
            capacity_coefficients=np.ones((1, 2)),
        )
        r_base = PlacementEngine(lp_backend="scipy").solve(base)
        r_unit = PlacementEngine(lp_backend="scipy").solve(unit)
        assert r_base.objective_beta == pytest.approx(r_unit.objective_beta)

    def test_transportation_backend_transparently_upgraded(self):
        topo, busy, cands, cs, cd = star()
        problem = PlacementProblem(
            topology=topo, busy=busy, candidates=cands, cs=cs, cd=cd,
            data_mb=np.array([5.0]),
            capacity_coefficients=np.array([[1.5, 1.0]]),
        )
        report = PlacementEngine(lp_backend="transportation").solve(problem)
        assert report.feasible  # no crash, handled by the general path

    def test_shape_and_sign_validation(self):
        topo, busy, cands, cs, cd = star()
        with pytest.raises(PlacementError, match="shape"):
            PlacementProblem(
                topology=topo, busy=busy, candidates=cands, cs=cs, cd=cd,
                data_mb=np.array([5.0]),
                capacity_coefficients=np.ones((2, 2)),
            )
        with pytest.raises(PlacementError, match="positive"):
            PlacementProblem(
                topology=topo, busy=busy, candidates=cands, cs=cs, cd=cd,
                data_mb=np.array([5.0]),
                capacity_coefficients=np.array([[0.0, 1.0]]),
            )

    def test_is_homogeneous_flag(self):
        topo, busy, cands, cs, cd = star()
        base = PlacementProblem(
            topology=topo, busy=busy, candidates=cands, cs=cs, cd=cd,
            data_mb=np.array([5.0]),
        )
        assert base.is_homogeneous
        het = PlacementProblem(
            topology=topo, busy=busy, candidates=cands, cs=cs, cd=cd,
            data_mb=np.array([5.0]),
            capacity_coefficients=np.ones((1, 2)),
        )
        assert not het.is_homogeneous


class TestIntegralPlacement:
    @pytest.mark.parametrize("backend", ["scipy", "simplex"])
    def test_integral_flows_are_whole_units(self, backend):
        topo, busy, cands, cs, cd = star(cs=7.0, cd=(4.5, 5.5))
        problem = PlacementProblem(
            topology=topo, busy=busy, candidates=cands, cs=cs, cd=cd,
            data_mb=np.array([5.0]), integral=True,
        )
        report = PlacementEngine(lp_backend=backend).solve(problem)
        assert report.feasible
        for a in report.assignments:
            assert a.amount_pct == pytest.approx(round(a.amount_pct))
        assert report.total_offloaded == pytest.approx(7.0)

    def test_integral_respects_fractional_capacity(self):
        """Capacity 4.5 admits at most 4 whole units."""
        topo, busy, cands, cs, cd = star(cs=7.0, cd=(4.5, 5.5))
        problem = PlacementProblem(
            topology=topo, busy=busy, candidates=cands, cs=cs, cd=cd,
            data_mb=np.array([5.0]), integral=True,
        )
        report = PlacementEngine(lp_backend="scipy").solve(problem)
        flows = {a.candidate: a.amount_pct for a in report.assignments}
        assert flows.get(1, 0.0) <= 4.0 + 1e-9
        assert flows.get(2, 0.0) <= 5.0 + 1e-9

    def test_integral_infeasible_when_rounding_blocks(self):
        """cs=9 but capacities 4.5+4.5 floor to 4+4=8 whole units."""
        topo, busy, cands, cs, cd = star(cs=9.0, cd=(4.5, 4.5))
        problem = PlacementProblem(
            topology=topo, busy=busy, candidates=cands, cs=cs, cd=cd,
            data_mb=np.array([5.0]), integral=True,
        )
        report = PlacementEngine(lp_backend="scipy").solve(problem)
        assert report.status is SolveStatus.INFEASIBLE
        # The continuous relaxation, by contrast, is feasible.
        relaxed = PlacementProblem(
            topology=topo, busy=busy, candidates=cands, cs=cs, cd=cd,
            data_mb=np.array([5.0]),
        )
        assert PlacementEngine(lp_backend="scipy").solve(relaxed).feasible

    def test_integral_requires_integer_excess(self):
        topo, busy, cands, cs, cd = star(cs=7.3)
        with pytest.raises(PlacementError, match="integer excess"):
            PlacementProblem(
                topology=topo, busy=busy, candidates=cands, cs=cs, cd=cd,
                data_mb=np.array([5.0]), integral=True,
            )

    def test_integral_objective_at_least_continuous(self):
        """Integrality can only cost response time, never save it."""
        topo, busy, cands, cs, cd = star(cs=6.0, cd=(3.5, 9.0))
        kwargs = dict(
            topology=topo, busy=busy, candidates=cands, cs=cs, cd=cd,
            data_mb=np.array([5.0]),
        )
        cont = PlacementEngine(lp_backend="scipy").solve(PlacementProblem(**kwargs))
        integ = PlacementEngine(lp_backend="scipy").solve(
            PlacementProblem(**kwargs, integral=True)
        )
        assert integ.objective_beta >= cont.objective_beta - 1e-9
