"""Tests for the Eq. 3 placement engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PlacementEngine, PlacementProblem, ThresholdPolicy, classify_network
from repro.core.nmdb import NMDB
from repro.errors import PlacementError
from repro.lp import SolveStatus
from repro.routing import PathEngine, ResponseTimeModel
from repro.topology import (
    CapacityModel,
    Link,
    LinkUtilizationModel,
    Topology,
    build_fat_tree,
    build_line,
)


def simple_problem():
    """0 (busy) - 1 (candidate) - 2 (candidate); equal links."""
    topo = build_line(3)
    for link in topo.links:
        link.utilization = 0.5
    return PlacementProblem(
        topology=topo,
        busy=(0,),
        candidates=(1, 2),
        cs=np.array([10.0]),
        cd=np.array([6.0, 20.0]),
        data_mb=np.array([5.0]),
    )


class TestProblemValidation:
    def test_shape_checks(self):
        topo = build_line(3)
        with pytest.raises(PlacementError, match="cs has shape"):
            PlacementProblem(topo, (0,), (1,), np.zeros(2), np.zeros(1), np.zeros(1))
        with pytest.raises(PlacementError, match="cd has shape"):
            PlacementProblem(topo, (0,), (1,), np.zeros(1), np.zeros(2), np.zeros(1))
        with pytest.raises(PlacementError, match="data_mb has shape"):
            PlacementProblem(topo, (0,), (1,), np.zeros(1), np.zeros(1), np.zeros(2))

    def test_negative_values_rejected(self):
        topo = build_line(3)
        with pytest.raises(PlacementError, match="non-negative"):
            PlacementProblem(
                topo, (0,), (1,), np.array([-1.0]), np.zeros(1), np.zeros(1)
            )

    def test_overlap_rejected(self):
        topo = build_line(3)
        with pytest.raises(PlacementError, match="both busy and candidate"):
            PlacementProblem(
                topo, (0,), (0,), np.zeros(1), np.zeros(1), np.zeros(1)
            )

    def test_unknown_node_rejected(self):
        topo = build_line(3)
        with pytest.raises(Exception):
            PlacementProblem(
                topo, (9,), (1,), np.zeros(1), np.zeros(1), np.zeros(1)
            )

    def test_totals(self):
        problem = simple_problem()
        assert problem.total_excess == 10.0
        assert problem.total_spare == 26.0


class TestSolve:
    @pytest.mark.parametrize("backend", ["transportation", "scipy", "simplex"])
    def test_supply_constraint_3b_met(self, backend):
        problem = simple_problem()
        report = PlacementEngine(lp_backend=backend).solve(problem)
        assert report.feasible
        assert report.total_offloaded == pytest.approx(10.0)

    @pytest.mark.parametrize("backend", ["transportation", "scipy", "simplex"])
    def test_capacity_constraint_3a_respected(self, backend):
        problem = simple_problem()
        report = PlacementEngine(lp_backend=backend).solve(problem)
        to_1 = sum(a.amount_pct for a in report.assignments if a.candidate == 1)
        to_2 = sum(a.amount_pct for a in report.assignments if a.candidate == 2)
        assert to_1 <= 6.0 + 1e-9
        assert to_2 <= 20.0 + 1e-9

    def test_prefers_cheaper_nearer_candidate(self):
        """Node 1 is one hop away, node 2 two hops: fill node 1 first."""
        problem = simple_problem()
        report = PlacementEngine().solve(problem)
        flows = {a.candidate: a.amount_pct for a in report.assignments}
        assert flows[1] == pytest.approx(6.0)
        assert flows[2] == pytest.approx(4.0)

    def test_beta_equals_sum_of_flow_times_trmin(self):
        problem = simple_problem()
        report = PlacementEngine().solve(problem)
        recomputed = sum(a.amount_pct * a.response_time_s for a in report.assignments)
        assert report.objective_beta == pytest.approx(recomputed)

    def test_infeasible_when_spare_insufficient(self):
        topo = build_line(2)
        topo.links[0].utilization = 0.5
        problem = PlacementProblem(
            topo, (0,), (1,), np.array([10.0]), np.array([3.0]), np.array([1.0])
        )
        report = PlacementEngine().solve(problem)
        assert report.status is SolveStatus.INFEASIBLE
        assert report.assignments == ()

    def test_infeasible_when_no_candidates(self):
        topo = build_line(2)
        problem = PlacementProblem(
            topo, (0,), (), np.array([10.0]), np.zeros(0), np.array([1.0])
        )
        assert PlacementEngine().solve(problem).status is SolveStatus.INFEASIBLE

    def test_trivial_when_no_busy(self):
        topo = build_line(2)
        problem = PlacementProblem(
            topo, (), (1,), np.zeros(0), np.array([5.0]), np.zeros(0)
        )
        report = PlacementEngine().solve(problem)
        assert report.feasible
        assert report.objective_beta == 0.0

    def test_max_hops_infeasibility(self):
        """Candidate out of hop range => no lane => infeasible."""
        topo = build_line(4)
        for link in topo.links:
            link.utilization = 0.5
        problem = PlacementProblem(
            topo, (0,), (3,), np.array([5.0]), np.array([10.0]),
            np.array([1.0]), max_hops=2,
        )
        assert PlacementEngine().solve(problem).status is SolveStatus.INFEASIBLE
        problem_ok = PlacementProblem(
            topo, (0,), (3,), np.array([5.0]), np.array([10.0]),
            np.array([1.0]), max_hops=3,
        )
        assert PlacementEngine().solve(problem_ok).feasible

    def test_routes_materialized(self):
        problem = simple_problem()
        report = PlacementEngine(with_routes=True).solve(problem)
        for a in report.assignments:
            assert a.route is not None
            assert a.route.source == a.busy
            assert a.route.destination == a.candidate
            assert a.route.num_hops == a.hops

    def test_report_helpers(self):
        problem = simple_problem()
        report = PlacementEngine().solve(problem)
        assert report.destinations() == [1, 2]
        assert len(report.flows_from(0)) == 2
        assert len(report.flows_to(1)) == 1

    def test_timings_recorded(self):
        report = PlacementEngine().solve(simple_problem())
        assert report.total_seconds > 0
        assert report.trmin_seconds >= 0
        assert report.lp_seconds >= 0

    def test_invalid_backend(self):
        with pytest.raises(PlacementError, match="unknown lp_backend"):
            PlacementEngine(lp_backend="gurobi")

    def test_from_snapshot(self):
        topo = build_fat_tree(4)
        LinkUtilizationModel(0.2, 0.8, seed=0).apply(topo)
        policy = ThresholdPolicy()
        nmdb = NMDB(topo, policy)
        caps = CapacityModel(x_min=10.0, seed=1).sample(topo.num_nodes)
        nmdb.bulk_set_capacities(caps, np.full(topo.num_nodes, 10.0))
        snapshot = nmdb.snapshot()
        problem = PlacementProblem.from_snapshot(topo, snapshot, max_hops=6)
        assert list(problem.busy) == snapshot.busy
        report = PlacementEngine().solve(problem)
        assert report.status in (SolveStatus.OPTIMAL, SolveStatus.INFEASIBLE)


class TestBackendEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=2000))
    def test_property_backends_agree_on_random_states(self, seed):
        topo = build_fat_tree(4)
        LinkUtilizationModel(0.1, 0.9, seed=seed).apply(topo)
        policy = ThresholdPolicy(c_max=75.0, co_max=50.0, x_min=10.0)
        caps = CapacityModel(x_min=10.0, seed=seed + 1).sample(topo.num_nodes)
        roles = classify_network(caps, policy)
        if not roles.busy or not roles.candidates:
            return
        problem = PlacementProblem(
            topology=topo,
            busy=tuple(roles.busy),
            candidates=tuple(roles.candidates),
            cs=np.array([policy.excess_load(caps[b]) for b in roles.busy]),
            cd=np.array([policy.spare_capacity(caps[c]) for c in roles.candidates]),
            data_mb=np.full(len(roles.busy), 10.0),
            max_hops=6,
        )
        reports = {
            backend: PlacementEngine(
                response_model=ResponseTimeModel(engine=PathEngine.DP, max_hops=6),
                lp_backend=backend,
                with_routes=False,
            ).solve(problem)
            for backend in ("transportation", "scipy", "simplex")
        }
        statuses = {r.status for r in reports.values()}
        assert len(statuses) == 1, reports
        if reports["scipy"].feasible:
            betas = [r.objective_beta for r in reports.values()]
            assert max(betas) - min(betas) < 1e-6
            # Duals certify the optimum via weak duality: every binding
            # candidate capacity has a non-positive shadow price.
            assert all(v <= 1e-9 for v in reports["scipy"].capacity_duals.values())
