"""Bit-identity of the vectorized Algorithm-1 kernel vs the reference.

The CSR kernel behind :func:`solve_heuristic` must produce reports that
are *bit-identical* to :func:`solve_heuristic_reference` — same
amounts, same HFR, same lane order, same routes — across hundreds of
randomized fat-tree instances and every degenerate shape we can think
of. Any drift here silently changes Fig. 11/12.
"""

import numpy as np
import pytest

from repro.core import (
    PlacementProblem,
    ThresholdPolicy,
    classify_network,
    solve_heuristic,
    solve_heuristic_reference,
)
from repro.errors import PlacementError
from repro.obs import get_registry
from repro.topology import (
    CapacityModel,
    LinkUtilizationModel,
    build_fat_tree,
    build_line,
    build_star,
)

#: 70 seeds per fat-tree size -> 210 random instances, the ISSUE's
#: >= 200-instance floor for the bit-identity property.
SEEDS_PER_K = 70
KS = (4, 8, 16)


def random_instance(k: int, seed: int) -> PlacementProblem:
    """A randomized fat-tree placement instance, fully seeded."""
    rng = np.random.default_rng(seed * 1009 + k)
    topo = build_fat_tree(k)
    LinkUtilizationModel(0.05, 0.95, seed=int(rng.integers(2**31))).apply(topo)
    policy = ThresholdPolicy(
        c_max=float(rng.uniform(60.0, 90.0)),
        co_max=float(rng.uniform(20.0, 55.0)),
        x_min=10.0,
    )
    caps = CapacityModel(x_min=10.0, seed=int(rng.integers(2**31))).sample(
        topo.num_nodes
    )
    roles = classify_network(caps, policy)
    busy, candidates = tuple(roles.busy), tuple(roles.candidates)
    return PlacementProblem(
        topology=topo,
        busy=busy,
        candidates=candidates,
        cs=np.array([policy.excess_load(caps[b]) for b in busy]),
        cd=np.array([policy.spare_capacity(caps[c]) for c in candidates]),
        data_mb=np.full(len(busy), float(rng.uniform(1.0, 50.0))),
    )


def assert_reports_identical(kernel, reference):
    """Bit-for-bit equality of every externally visible report field."""
    # Dict contents AND insertion order (callers iterate these).
    assert list(kernel.offloaded_per_busy.items()) == list(
        reference.offloaded_per_busy.items()
    )
    assert list(kernel.failed_per_busy.items()) == list(
        reference.failed_per_busy.items()
    )
    assert kernel.hfr_pct == reference.hfr_pct
    assert kernel.hop_radius == reference.hop_radius
    assert len(kernel.assignments) == len(reference.assignments)
    for got, want in zip(kernel.assignments, reference.assignments):
        assert got.busy == want.busy
        assert got.candidate == want.candidate
        assert got.amount_pct == want.amount_pct  # exact, not approx
        assert got.response_time_s == want.response_time_s
        assert got.hops == want.hops
        assert got.route is not None and want.route is not None
        assert got.route.nodes == want.route.nodes
        assert got.route.edges == want.route.edges


class TestBitIdentityProperty:
    @pytest.mark.parametrize("k", KS)
    def test_kernel_matches_reference_on_random_instances(self, k):
        for seed in range(SEEDS_PER_K):
            problem = random_instance(k, seed)
            assert_reports_identical(
                solve_heuristic(problem), solve_heuristic_reference(problem)
            )

    def test_hfr_never_nan_on_random_instances(self):
        for k in KS:
            for seed in range(0, SEEDS_PER_K, 7):
                report = solve_heuristic(random_instance(k, seed))
                assert np.isfinite(report.hfr_pct)
                assert 0.0 <= report.hfr_pct <= 100.0


def star_problem(**overrides):
    """Hub (busy) with two leaf candidates; keyword overrides."""
    topo = build_star(2)
    for link in topo.links:
        link.utilization = 0.5
    spec = dict(
        topology=topo,
        busy=(0,),
        candidates=(1, 2),
        cs=np.array([10.0]),
        cd=np.array([6.0, 20.0]),
        data_mb=np.array([5.0]),
    )
    spec.update(overrides)
    return PlacementProblem(**spec)


class TestDegenerateShapes:
    """The edge shapes the random sweep can miss, both solvers."""

    def both(self, problem):
        kernel = solve_heuristic(problem)
        reference = solve_heuristic_reference(problem)
        assert_reports_identical(kernel, reference)
        return kernel

    def test_no_busy_nodes(self):
        report = self.both(
            star_problem(busy=(), cs=np.array([]), data_mb=np.array([]))
        )
        assert report.assignments == ()
        assert report.hfr_pct == 0.0

    def test_no_candidates(self):
        report = self.both(star_problem(candidates=(), cd=np.array([])))
        assert report.assignments == ()
        assert report.failed_per_busy[0] == 10.0
        assert report.hfr_pct == 100.0

    def test_zero_capacity_candidates(self):
        report = self.both(star_problem(cd=np.array([0.0, 0.0])))
        assert report.assignments == ()
        assert report.hfr_pct == 100.0

    def test_zero_need_busy_node(self):
        report = self.both(star_problem(cs=np.array([0.0])))
        assert report.assignments == ()
        assert report.offloaded_per_busy == {0: 0.0}
        assert report.failed_per_busy == {0: 0.0}
        assert report.hfr_pct == 0.0

    def test_single_busy_single_candidate(self):
        topo = build_line(2)
        for link in topo.links:
            link.utilization = 0.2
        report = self.both(
            PlacementProblem(
                topology=topo,
                busy=(0,),
                candidates=(1,),
                cs=np.array([7.0]),
                cd=np.array([9.0]),
                data_mb=np.array([2.0]),
            )
        )
        assert len(report.assignments) == 1
        assert report.assignments[0].amount_pct == 7.0
        assert report.fully_offloaded

    def test_busy_node_with_no_adjacent_candidate(self):
        # Line 0-1-2: node 0 busy, node 2 the only candidate, 2 hops away.
        topo = build_line(3)
        for link in topo.links:
            link.utilization = 0.2
        report = self.both(
            PlacementProblem(
                topology=topo,
                busy=(0,),
                candidates=(2,),
                cs=np.array([5.0]),
                cd=np.array([50.0]),
                data_mb=np.array([1.0]),
            )
        )
        assert report.assignments == ()
        assert report.hfr_pct == 100.0


class TestResidualSharing:
    """Regression for the hoisted residual array: capacity consumed by
    one busy node must stay consumed for every later busy node, in both
    the kernel and the reference loop."""

    def shared_candidate_problem(self):
        # Star hub as the lone candidate, two leaves busy: both leaves
        # compete for the hub's single pool.
        topo = build_star(2)
        for link in topo.links:
            link.utilization = 0.5
        return PlacementProblem(
            topology=topo,
            busy=(1, 2),
            candidates=(0,),
            cs=np.array([8.0, 8.0]),
            cd=np.array([10.0]),
            data_mb=np.array([5.0, 5.0]),
        )

    @pytest.mark.parametrize(
        "solver", [solve_heuristic, solve_heuristic_reference]
    )
    def test_residual_capacity_shared_across_busy_nodes(self, solver):
        report = solver(self.shared_candidate_problem())
        # Node 1 (first in busy order) drains 8 of the 10 points; node 2
        # only sees the 2 left over — not a fresh pool.
        assert report.offloaded_per_busy[1] == 8.0
        assert report.offloaded_per_busy[2] == 2.0
        assert report.failed_per_busy[2] == 6.0
        assert report.hfr_pct == pytest.approx(100.0 * 6.0 / 16.0)


class TestKernelDispatch:
    def test_rejects_nonpositive_radius(self):
        with pytest.raises(PlacementError):
            solve_heuristic(star_problem(), hop_radius=0)

    def test_radius_one_observes_batch_size(self):
        before = _histogram_count("heuristic.kernel.batch_size")
        solve_heuristic(star_problem())
        assert _histogram_count("heuristic.kernel.batch_size") == before + 1

    def test_wider_radius_counts_fallback(self):
        before = _counter_value("heuristic.kernel.fallbacks")
        solve_heuristic(star_problem(), hop_radius=2)
        assert _counter_value("heuristic.kernel.fallbacks") == before + 1


def _counter_value(name: str) -> float:
    metric = get_registry().snapshot()["metrics"].get(name)
    return metric["value"] if metric else 0.0


def _histogram_count(name: str) -> float:
    metric = get_registry().snapshot()["metrics"].get(name)
    return metric["count"] if metric else 0.0
