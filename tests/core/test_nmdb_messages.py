"""Tests for the NMDB and the protocol message types."""

import numpy as np
import pytest

from repro.core import (
    Ack,
    Keepalive,
    MessageType,
    NMDB,
    OffloadAck,
    OffloadCapable,
    OffloadRequest,
    Reclaim,
    Redirect,
    Rep,
    Stat,
    ThresholdPolicy,
)
from repro.errors import ProtocolError
from repro.topology import build_fat_tree, build_line


@pytest.fixture
def nmdb():
    topo = build_line(4)
    return NMDB(topo, ThresholdPolicy(c_max=80.0, co_max=50.0, x_min=10.0))


class TestMessages:
    def test_types_tagged(self):
        assert OffloadCapable(node_id=1, capable=True, c_max=80, co_max=50).type is (
            MessageType.OFFLOAD_CAPABLE
        )
        assert Ack(node_id=1, update_interval_s=60.0).type is MessageType.ACK
        assert Stat(node_id=1, capacity_pct=50, data_mb=1, num_agents=3,
                    timestamp=0.0).type is MessageType.STAT
        assert OffloadRequest(destination=2, source=1, amount_pct=5, data_mb=1,
                              route=(1, 2)).type is MessageType.OFFLOAD_REQUEST
        assert OffloadAck(destination=2, source=1, accepted=True).type is (
            MessageType.OFFLOAD_ACK
        )
        assert Redirect(source=1, destination=2, amount_pct=5,
                        route=(1, 2)).type is MessageType.REDIRECT
        assert Keepalive(node_id=2, hosted_sources=(1,), timestamp=0.0).type is (
            MessageType.KEEPALIVE
        )
        assert Rep(replica=3, failed_destination=2, source=1, amount_pct=5,
                   route=(1, 3)).type is MessageType.REP
        assert Reclaim(source=1, destination=2, amount_pct=5).type is (
            MessageType.RECLAIM
        )

    def test_message_ids_unique(self):
        a = Ack(node_id=1, update_interval_s=60.0)
        b = Ack(node_id=1, update_interval_s=60.0)
        assert a.msg_id != b.msg_id


class TestNMDBIngestion:
    def test_capability_registration(self, nmdb):
        nmdb.register_capability(
            OffloadCapable(node_id=2, capable=False, c_max=70.0, co_max=40.0)
        )
        rec = nmdb.record(2)
        assert not rec.capable
        assert rec.c_max == 70.0

    def test_stat_updates_record(self, nmdb):
        nmdb.apply_stat(Stat(node_id=1, capacity_pct=66.0, data_mb=12.0,
                             num_agents=9, timestamp=5.0))
        rec = nmdb.record(1)
        assert rec.capacity_pct == 66.0
        assert rec.data_mb == 12.0
        assert rec.num_agents == 9

    def test_out_of_order_stat_rejected(self, nmdb):
        nmdb.apply_stat(Stat(node_id=1, capacity_pct=66.0, data_mb=1.0,
                             num_agents=1, timestamp=10.0))
        with pytest.raises(ProtocolError, match="out-of-order"):
            nmdb.apply_stat(Stat(node_id=1, capacity_pct=60.0, data_mb=1.0,
                                 num_agents=1, timestamp=5.0))

    def test_unknown_node_rejected(self, nmdb):
        with pytest.raises(ProtocolError, match="unknown node"):
            nmdb.apply_stat(Stat(node_id=99, capacity_pct=1.0, data_mb=1.0,
                                 num_agents=1, timestamp=0.0))

    def test_bulk_set_capacities(self, nmdb):
        nmdb.bulk_set_capacities(np.array([90.0, 30.0, 60.0, 20.0]),
                                 np.array([1.0, 2.0, 3.0, 4.0]))
        assert nmdb.record(0).capacity_pct == 90.0
        assert nmdb.record(3).data_mb == 4.0

    def test_bulk_shape_validated(self, nmdb):
        with pytest.raises(ProtocolError):
            nmdb.bulk_set_capacities(np.array([1.0]))

    def test_stale_nodes(self, nmdb):
        nmdb.apply_stat(Stat(node_id=0, capacity_pct=1.0, data_mb=1.0,
                             num_agents=1, timestamp=180.0))
        stale = nmdb.stale_nodes(now=200.0, max_age_s=50.0)
        assert 0 not in stale  # reported 20s ago, within the 50s window
        assert set(stale) == {1, 2, 3}  # never reported


class TestSnapshot:
    def test_snapshot_roles_and_arrays(self, nmdb):
        nmdb.bulk_set_capacities(np.array([90.0, 30.0, 60.0, 95.0]),
                                 np.full(4, 10.0))
        snapshot = nmdb.snapshot(now=7.0)
        assert snapshot.busy == [0, 3]
        assert snapshot.candidates == [1]
        assert snapshot.timestamp == 7.0
        np.testing.assert_allclose(snapshot.excess_loads(), [10.0, 15.0])
        np.testing.assert_allclose(snapshot.spare_capacities(), [20.0])

    def test_snapshot_respects_participation(self, nmdb):
        nmdb.register_capability(
            OffloadCapable(node_id=0, capable=False, c_max=80.0, co_max=50.0)
        )
        nmdb.bulk_set_capacities(np.array([90.0, 30.0, 60.0, 95.0]))
        snapshot = nmdb.snapshot()
        assert snapshot.busy == [3]
        assert 0 in snapshot.roles.opted_out

    def test_snapshot_is_consistent_copy(self, nmdb):
        nmdb.bulk_set_capacities(np.array([90.0, 30.0, 60.0, 95.0]))
        snapshot = nmdb.snapshot()
        nmdb.set_capacity(0, 10.0)
        assert snapshot.capacities[0] == 90.0  # snapshot unaffected
