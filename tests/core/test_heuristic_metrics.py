"""Tests for Algorithm 1 and the evaluation metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PlacementEngine,
    PlacementProblem,
    SuccessCategory,
    ThresholdPolicy,
    categorize_iteration,
    classify_network,
    fit_power_law,
    hfr_pct,
    infeasible_rate_pct,
    mean_hops,
    solve_heuristic,
    summarize_categories,
)
from repro.errors import PlacementError
from repro.lp import SolveStatus
from repro.topology import (
    CapacityModel,
    Link,
    LinkUtilizationModel,
    Topology,
    build_fat_tree,
    build_line,
    build_star,
)


def star_problem(cs=10.0, neighbor_cd=(6.0, 20.0)):
    """Hub (busy) with two leaf candidates at one hop."""
    topo = build_star(2)
    for link in topo.links:
        link.utilization = 0.5
    return PlacementProblem(
        topology=topo,
        busy=(0,),
        candidates=(1, 2),
        cs=np.array([cs]),
        cd=np.asarray(neighbor_cd, dtype=float),
        data_mb=np.array([5.0]),
    )


class TestAlgorithmOne:
    def test_full_offload_when_one_hop_capacity_suffices(self):
        report = solve_heuristic(star_problem())
        assert report.fully_offloaded
        assert report.hfr_pct == 0.0
        assert report.total_offloaded == pytest.approx(10.0)
        assert all(a.hops == 1 for a in report.assignments)

    def test_partial_failure_measured_by_hfr(self):
        report = solve_heuristic(star_problem(cs=30.0))
        # One-hop capacity is 26: Cse = 4 => HFR = 4/30.
        assert report.total_offloaded == pytest.approx(26.0)
        assert report.hfr_pct == pytest.approx(100.0 * 4.0 / 30.0)
        assert not report.fully_offloaded

    def test_zero_offload_when_candidates_beyond_one_hop(self):
        """Line 0-1-2 with busy 0 and candidate only at node 2."""
        topo = build_line(3)
        for link in topo.links:
            link.utilization = 0.5
        problem = PlacementProblem(
            topo, (0,), (2,), np.array([5.0]), np.array([10.0]), np.array([1.0])
        )
        report = solve_heuristic(problem)
        assert report.nothing_offloaded
        assert report.hfr_pct == 100.0

    def test_hop_radius_generalization_reaches_further(self):
        topo = build_line(3)
        for link in topo.links:
            link.utilization = 0.5
        problem = PlacementProblem(
            topo, (0,), (2,), np.array([5.0]), np.array([10.0]), np.array([1.0])
        )
        report = solve_heuristic(problem, hop_radius=2)
        assert report.fully_offloaded
        assert report.assignments[0].hops == 2

    def test_shared_pool_consumed_in_node_order(self):
        """Two busy nodes share one candidate: first (lower id) wins."""
        topo = Topology()
        b1, cand, b2 = topo.add_node(), topo.add_node(), topo.add_node()
        topo.add_edge(b1, cand, Link(utilization=0.5))
        topo.add_edge(b2, cand, Link(utilization=0.5))
        problem = PlacementProblem(
            topo, (b1, b2), (cand,),
            cs=np.array([8.0, 8.0]), cd=np.array([10.0]),
            data_mb=np.array([1.0, 1.0]),
        )
        report = solve_heuristic(problem)
        assert report.offloaded_per_busy[b1] == pytest.approx(8.0)
        assert report.offloaded_per_busy[b2] == pytest.approx(2.0)
        assert report.failed_per_busy[b2] == pytest.approx(6.0)

    def test_cheapest_lane_filled_first(self):
        """Lower-resistance (less utilized) link is preferred."""
        topo = build_star(2)
        topo.links[0].utilization = 0.9  # to candidate 1: slow
        topo.links[1].utilization = 0.1  # to candidate 2: fast
        problem = PlacementProblem(
            topo, (0,), (1, 2), np.array([5.0]), np.array([20.0, 20.0]),
            np.array([5.0]),
        )
        report = solve_heuristic(problem)
        assert len(report.assignments) == 1
        assert report.assignments[0].candidate == 2

    def test_busy_with_zero_excess_skipped(self):
        problem = star_problem(cs=0.0)
        report = solve_heuristic(problem)
        assert report.assignments == ()
        assert report.hfr_pct == 0.0

    def test_invalid_radius(self):
        with pytest.raises(PlacementError):
            solve_heuristic(star_problem(), hop_radius=0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2000))
    def test_property_heuristic_never_beats_ilp_and_respects_cd(self, seed):
        """Invariants: (a) heuristic offload <= ILP offload (optimum
        places everything whenever feasible); (b) per-candidate inflow
        <= Cd_j; (c) offloaded + failed == required per busy node."""
        topo = build_fat_tree(4)
        LinkUtilizationModel(0.1, 0.9, seed=seed).apply(topo)
        policy = ThresholdPolicy(c_max=75.0, co_max=45.0, x_min=10.0)
        caps = CapacityModel(x_min=10.0, seed=seed + 1).sample(topo.num_nodes)
        roles = classify_network(caps, policy)
        if not roles.busy or not roles.candidates:
            return
        problem = PlacementProblem(
            topology=topo,
            busy=tuple(roles.busy),
            candidates=tuple(roles.candidates),
            cs=np.array([policy.excess_load(caps[b]) for b in roles.busy]),
            cd=np.array([policy.spare_capacity(caps[c]) for c in roles.candidates]),
            data_mb=np.full(len(roles.busy), 10.0),
        )
        heuristic = solve_heuristic(problem)
        # (c) bookkeeping identity.
        for i, b in enumerate(problem.busy):
            assert (
                heuristic.offloaded_per_busy[b] + heuristic.failed_per_busy[b]
                == pytest.approx(float(problem.cs[i]))
            )
        # (b) candidate capacity.
        inflow = {}
        for a in heuristic.assignments:
            inflow[a.candidate] = inflow.get(a.candidate, 0.0) + a.amount_pct
        for j, c in enumerate(problem.candidates):
            assert inflow.get(c, 0.0) <= problem.cd[j] + 1e-9
        # (a) optimum dominance.
        ilp = PlacementEngine(with_routes=False).solve(problem)
        if ilp.feasible:
            assert heuristic.total_offloaded <= ilp.total_offloaded + 1e-9


class TestHfrEdgeCases:
    """Eq. 4 at its degenerate corners: defined, bounded, NaN-free."""

    def test_no_busy_nodes_reports_zero(self):
        # Nothing required -> HFR is 0 by definition, not 0/0.
        assert hfr_pct([], []) == 0.0
        topo = build_star(2)
        for link in topo.links:
            link.utilization = 0.5
        report = solve_heuristic(
            PlacementProblem(
                topology=topo,
                busy=(),
                candidates=(1, 2),
                cs=np.array([]),
                cd=np.array([6.0, 20.0]),
                data_mb=np.array([]),
            )
        )
        assert report.hfr_pct == 0.0
        assert np.isfinite(report.hfr_pct)

    def test_zero_total_capacity_reports_exactly_100(self):
        # Every percent of required load fails -> HFR is exactly 100.
        assert hfr_pct([4.0, 4.0], [4.0, 4.0]) == 100.0
        report = solve_heuristic(star_problem(neighbor_cd=(0.0, 0.0)))
        assert report.hfr_pct == 100.0
        assert report.total_offloaded == 0.0

    def test_hfr_is_nan_free_on_zero_denominators(self):
        # All-zero required (busy nodes present but nothing to move)
        # must short-circuit before the division.
        assert hfr_pct([0.0, 0.0], [0.0, 0.0]) == 0.0
        report = solve_heuristic(star_problem(cs=0.0))
        for value in (
            report.hfr_pct,
            report.total_offloaded,
            report.total_failed,
            report.total_required,
        ):
            assert np.isfinite(value)
        assert report.hfr_pct == 0.0


class TestMetrics:
    def test_hfr_pct(self):
        assert hfr_pct([2.0, 0.0], [4.0, 4.0]) == pytest.approx(25.0)
        assert hfr_pct([], []) == 0.0
        assert hfr_pct([0.0], [0.0]) == 0.0

    def test_infeasible_rate(self):
        statuses = [SolveStatus.OPTIMAL, SolveStatus.INFEASIBLE, SolveStatus.OPTIMAL]
        assert infeasible_rate_pct(statuses) == pytest.approx(100.0 / 3.0)
        assert infeasible_rate_pct([]) == 0.0

    def test_categorize_full(self):
        heuristic = solve_heuristic(star_problem())
        ilp = PlacementEngine().solve(star_problem())
        assert categorize_iteration(heuristic, ilp) is SuccessCategory.HEURISTIC_FULL

    def test_categorize_partial_and_zero(self):
        # Partial: heuristic places some, not all.
        problem = star_problem(cs=30.0)
        heuristic = solve_heuristic(problem)
        ilp = PlacementEngine().solve(problem)  # infeasible here (26 < 30)
        assert categorize_iteration(heuristic, ilp) is SuccessCategory.BOTH_INFEASIBLE

        topo = build_line(3)
        for link in topo.links:
            link.utilization = 0.5
        p2 = PlacementProblem(
            topo, (0,), (2,), np.array([5.0]), np.array([10.0]), np.array([1.0])
        )
        h2 = solve_heuristic(p2)
        ilp2 = PlacementEngine().solve(p2)
        assert categorize_iteration(h2, ilp2) is SuccessCategory.HEURISTIC_ZERO

    def test_summary_percentages(self):
        cats = [SuccessCategory.HEURISTIC_FULL] * 2 + [SuccessCategory.PARTIAL] * 6 + [
            SuccessCategory.HEURISTIC_ZERO
        ] * 2 + [SuccessCategory.NO_OVERLOAD] * 5
        summary = summarize_categories(cats)
        assert summary.total_considered == 10
        assert summary.pct(SuccessCategory.HEURISTIC_FULL) == pytest.approx(20.0)
        assert summary.pct(SuccessCategory.PARTIAL) == pytest.approx(60.0)

    def test_mean_hops_weighted(self):
        problem = simple = star_problem()
        report = PlacementEngine().solve(simple)
        assert mean_hops(report) == pytest.approx(1.0)

    def test_mean_hops_empty_nan(self):
        topo = build_line(2)
        problem = PlacementProblem(
            topo, (), (1,), np.zeros(0), np.array([5.0]), np.zeros(0)
        )
        report = PlacementEngine().solve(problem)
        assert np.isnan(mean_hops(report))

    def test_fit_power_law_recovers_exponent(self):
        x = np.array([10.0, 100.0, 1000.0])
        y = 5.0 * x ** -0.5
        assert fit_power_law(x, y) == pytest.approx(-0.5)

    def test_fit_power_law_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0], [1.0])
        with pytest.raises(ValueError):
            fit_power_law([1.0, -2.0], [1.0, 1.0])
