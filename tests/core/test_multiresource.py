"""Tests for the multi-resource (CPU + memory) placement extension."""

import numpy as np
import pytest

from repro.core import MultiResourceProblem, solve_multiresource
from repro.errors import PlacementError
from repro.lp import SolveStatus
from repro.topology import Link, Topology, build_star


def star_problem(demands, spares, resources=("cpu_pct", "memory_pct")):
    topo = build_star(len(spares))
    for link in topo.links:
        link.utilization = 0.5
    return MultiResourceProblem(
        topology=topo,
        busy=(0,),
        candidates=tuple(range(1, len(spares) + 1)),
        demands=np.asarray(demands, dtype=float),
        spares=np.asarray(spares, dtype=float),
        data_mb=np.array([10.0]),
        resources=resources,
    )


class TestValidation:
    def test_shape_checks(self):
        topo = build_star(1)
        with pytest.raises(PlacementError, match="demands shape"):
            MultiResourceProblem(
                topology=topo, busy=(0,), candidates=(1,),
                demands=np.ones((2, 2)), spares=np.ones((1, 2)),
                data_mb=np.array([1.0]),
            )
        with pytest.raises(PlacementError, match="spares shape"):
            MultiResourceProblem(
                topology=topo, busy=(0,), candidates=(1,),
                demands=np.ones((1, 2)), spares=np.ones((2, 2)),
                data_mb=np.array([1.0]),
            )

    def test_negative_rejected(self):
        topo = build_star(1)
        with pytest.raises(PlacementError, match="non-negative"):
            MultiResourceProblem(
                topology=topo, busy=(0,), candidates=(1,),
                demands=np.array([[-1.0, 1.0]]), spares=np.ones((1, 2)),
                data_mb=np.array([1.0]),
            )

    def test_overlap_rejected(self):
        topo = build_star(1)
        with pytest.raises(PlacementError, match="overlap"):
            MultiResourceProblem(
                topology=topo, busy=(1,), candidates=(1,),
                demands=np.ones((1, 2)), spares=np.ones((1, 2)),
                data_mb=np.array([1.0]),
            )


class TestSolve:
    def test_single_candidate_full_offload(self):
        problem = star_problem(demands=[[10.0, 4.0]], spares=[[12.0, 6.0]])
        report = solve_multiresource(problem)
        assert report.feasible
        assert report.fractions[0, 0] == pytest.approx(1.0)
        np.testing.assert_allclose(
            report.per_resource_usage["cpu_pct"], [10.0]
        )
        np.testing.assert_allclose(
            report.per_resource_usage["memory_pct"], [4.0]
        )

    def test_memory_is_the_binding_resource(self):
        """CPU fits on candidate 1 alone, memory forces a split."""
        problem = star_problem(
            demands=[[10.0, 8.0]],
            spares=[[20.0, 4.0], [20.0, 20.0]],
        )
        report = solve_multiresource(problem)
        assert report.feasible
        # Candidate 0 can hold at most 4/8 = 50% of the workload.
        assert report.fractions[0, 0] <= 0.5 + 1e-9
        assert report.fractions.sum() == pytest.approx(1.0)
        assert report.per_resource_usage["memory_pct"][0] <= 4.0 + 1e-9

    def test_infeasible_when_any_resource_short(self):
        problem = star_problem(
            demands=[[10.0, 8.0]],
            spares=[[100.0, 3.0], [100.0, 4.0]],  # memory 7 < 8 needed
        )
        report = solve_multiresource(problem)
        assert report.status is SolveStatus.INFEASIBLE

    def test_reduces_to_single_resource_case(self):
        """With one resource the optimum matches PlacementEngine."""
        from repro.core import PlacementEngine, PlacementProblem

        topo = build_star(2)
        for link in topo.links:
            link.utilization = 0.5
        multi = MultiResourceProblem(
            topology=topo, busy=(0,), candidates=(1, 2),
            demands=np.array([[10.0]]), spares=np.array([[6.0], [20.0]]),
            data_mb=np.array([10.0]), resources=("cpu_pct",),
        )
        multi_report = solve_multiresource(multi)
        single = PlacementProblem(
            topology=topo, busy=(0,), candidates=(1, 2),
            cs=np.array([10.0]), cd=np.array([6.0, 20.0]),
            data_mb=np.array([10.0]),
        )
        single_report = PlacementEngine(lp_backend="scipy").solve(single)
        assert multi_report.feasible and single_report.feasible
        assert multi_report.objective_beta * 10.0 == pytest.approx(
            single_report.objective_beta, rel=1e-6
        )

    def test_no_busy_trivial(self):
        topo = build_star(1)
        problem = MultiResourceProblem(
            topology=topo, busy=(), candidates=(1,),
            demands=np.zeros((0, 2)), spares=np.ones((1, 2)),
            data_mb=np.zeros(0),
        )
        report = solve_multiresource(problem)
        assert report.feasible
        assert report.objective_beta == 0.0

    def test_no_candidates_infeasible(self):
        topo = build_star(1)
        problem = MultiResourceProblem(
            topology=topo, busy=(0,), candidates=(),
            demands=np.ones((1, 2)), spares=np.zeros((0, 2)),
            data_mb=np.array([1.0]),
        )
        assert solve_multiresource(problem).status is SolveStatus.INFEASIBLE

    def test_assignments_report_dominant_resource_amount(self):
        problem = star_problem(demands=[[10.0, 4.0]], spares=[[12.0, 6.0]])
        report = solve_multiresource(problem)
        assert len(report.assignments) == 1
        assert report.assignments[0].amount_pct == pytest.approx(10.0)
        assert report.assignments[0].route is not None
