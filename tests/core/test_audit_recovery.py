"""Tests for the system auditor and client crash/recover cycles."""

import pytest

from repro.core import audit_system
from repro.core.audit import AuditReport
from repro.errors import ProtocolError
from tests.core.test_manager_client import build_system


class TestAuditClean:
    def test_steady_state_audits_clean(self):
        engine, manager, clients = build_system(hot_nodes=(5, 9))
        engine.run_until(600.0)
        report = audit_system(manager, clients)
        assert report.clean, report

    def test_no_offloads_audits_clean(self):
        engine, manager, clients = build_system(hot_nodes=())
        engine.run_until(300.0)
        assert audit_system(manager, clients)

    def test_audit_clean_after_failure_recovery_settles(self):
        engine, manager, clients = build_system(hot_nodes=(5,))
        engine.run_until(300.0)
        failed = manager.ledger.active[0].destination
        clients[failed].fail()
        engine.run_until(1200.0)
        report = audit_system(manager, clients)
        assert report.clean, report

    def test_audit_clean_after_reclaim(self):
        engine, manager, clients = build_system(hot_nodes=(5,))
        engine.run_until(300.0)
        clients[5]._base_capacity = 30.0
        engine.run_until(900.0)
        assert audit_system(manager, clients)


class TestAuditDetectsCorruption:
    def test_ghost_hosting_flagged(self):
        engine, manager, clients = build_system(hot_nodes=(5,))
        engine.run_until(600.0)
        # Corrupt: a client claims to host load nobody assigned.
        from repro.core.client import HostedWorkload

        clients[3].hosted[17] = HostedWorkload(source=17, amount_pct=5.0, data_mb=1.0)
        report = audit_system(manager, clients)
        assert not report.clean
        assert any("ghost" not in v and "ledger knows only" in v for v in report.violations)

    def test_lost_redirect_flagged(self):
        engine, manager, clients = build_system(hot_nodes=(5,))
        engine.run_until(600.0)
        source = manager.ledger.active[0].source
        clients[source].offloaded_to.clear()  # simulate lost state
        report = audit_system(manager, clients)
        assert not report.clean

    def test_report_repr(self):
        report = AuditReport(violations=())
        assert "clean" in repr(report)
        bad = AuditReport(violations=("problem",))
        assert "problem" in repr(bad)
        assert not bad


class TestClientRecovery:
    def test_recover_rejoins_and_reports(self):
        engine, manager, clients = build_system(hot_nodes=(5,))
        engine.run_until(300.0)
        victim = manager.ledger.active[0].destination
        clients[victim].fail()
        engine.run_until(600.0)
        stats_before = clients[victim].stats_sent
        clients[victim].recover()
        engine.run_until(900.0)
        assert clients[victim].alive
        assert clients[victim].stats_sent > stats_before
        # Fresh boot: no stale hosted state survived the crash.
        hosted_in_ledger = manager.ledger.hosted_amount(victim)
        assert clients[victim].hosted_amount == pytest.approx(hosted_in_ledger, abs=1e-6)

    def test_recover_when_alive_rejected(self):
        engine, manager, clients = build_system()
        engine.run_until(60.0)
        with pytest.raises(ProtocolError, match="not failed"):
            clients[3].recover()

    def test_recovered_node_can_host_again(self):
        engine, manager, clients = build_system(hot_nodes=(5,))
        engine.run_until(300.0)
        victim = manager.ledger.active[0].destination
        clients[victim].fail()
        engine.run_until(700.0)
        clients[victim].recover()
        engine.run_until(2000.0)
        assert audit_system(manager, clients).clean
