"""Tests for PlacementSession: LP warm basis + route cache, together."""

import numpy as np
import pytest

from repro.core.placement import (
    PlacementEngine,
    PlacementProblem,
    PlacementSession,
)
from repro.routing.response_time import PathEngine, ResponseTimeModel
from repro.topology.fattree import build_fat_tree


def make_problem(topology, cs_scale=1.0, busy=(0, 1), candidates=(2, 3, 4)):
    return PlacementProblem(
        topology=topology,
        busy=tuple(busy),
        candidates=tuple(candidates),
        cs=np.array([20.0, 10.0]) * cs_scale,
        cd=np.array([15.0, 15.0, 10.0]),
        data_mb=np.full(2, 10.0),
    )


@pytest.fixture
def topology():
    topo = build_fat_tree(4)
    rng = np.random.default_rng(13)
    topo.set_link_utilizations(rng.uniform(0.0, 0.8, topo.num_edges))
    return topo


@pytest.fixture
def session():
    return PlacementSession(
        engine=PlacementEngine(
            response_model=ResponseTimeModel(engine=PathEngine.DP),
            with_routes=False,
        )
    )


class TestWarmReuse:
    def test_perturbed_resolve_warm_starts_and_matches_cold(
        self, topology, session
    ):
        first = session.solve(make_problem(topology))
        assert first.feasible
        assert not first.lp_warm_started
        assert session.warm_attempts == 0

        perturbed = make_problem(topology, cs_scale=0.9)
        warm = session.solve(perturbed)
        assert warm.feasible
        assert session.warm_attempts == 1
        assert session.warm_hits == 1
        assert warm.lp_warm_started

        cold = PlacementEngine(
            response_model=ResponseTimeModel(engine=PathEngine.DP),
            with_routes=False,
        ).solve(perturbed)
        assert warm.objective_beta == pytest.approx(
            cold.objective_beta, abs=1e-9
        )

    def test_route_pricing_comes_from_the_trmin_cache(self, topology, session):
        session.solve(make_problem(topology))
        session.solve(make_problem(topology, cs_scale=0.9))
        # Same topology + endpoints: the second solve must not re-price.
        assert session.trmin_engine.stats.cache_hits >= 1

    def test_identical_resolve_takes_zero_lp_pivots(self, topology, session):
        session.solve(make_problem(topology))
        again = session.solve(make_problem(topology))
        assert again.lp_warm_started
        assert again.lp_iterations == 0


class TestWarmSkips:
    def test_different_busy_set_solves_cold(self, topology, session):
        session.solve(make_problem(topology))
        other = session.solve(
            make_problem(topology, busy=(0, 5), candidates=(2, 3, 4))
        )
        assert session.warm_attempts == 0
        assert not other.lp_warm_started

    def test_scipy_backend_keeps_no_basis(self, topology):
        session = PlacementSession(
            engine=PlacementEngine(
                response_model=ResponseTimeModel(engine=PathEngine.DP),
                lp_backend="scipy",
                with_routes=False,
            )
        )
        session.solve(make_problem(topology))
        report = session.solve(make_problem(topology, cs_scale=0.9))
        assert session.warm_attempts == 0
        assert not report.lp_warm_started

    def test_infeasible_solve_drops_the_stored_basis(self, topology, session):
        session.solve(make_problem(topology))
        # Excess far beyond total spare: INFEASIBLE, basis must be dropped.
        bad = PlacementProblem(
            topology=topology,
            busy=(0, 1),
            candidates=(2, 3, 4),
            cs=np.array([500.0, 400.0]),
            cd=np.array([15.0, 15.0, 10.0]),
            data_mb=np.full(2, 10.0),
        )
        report = session.solve(bad)
        assert not report.feasible
        follow_up = session.solve(make_problem(topology))
        assert follow_up.feasible
        assert not follow_up.lp_warm_started

    def test_reset_forces_the_next_solve_cold(self, topology, session):
        session.solve(make_problem(topology))
        session.reset()
        report = session.solve(make_problem(topology))
        assert session.warm_attempts == 0
        assert not report.lp_warm_started
