"""Protocol edge-case tests for DUSTClient message handling."""

import pytest

from repro.core import (
    Ack,
    DUSTClient,
    OffloadRequest,
    Reclaim,
    Redirect,
    Rep,
    Stat,
    ThresholdPolicy,
)
from repro.errors import ProtocolError
from repro.simulation import MessageNetwork, SimulationEngine
from repro.simulation.network_sim import Message
from repro.topology import build_line

POLICY = ThresholdPolicy(c_max=80.0, co_max=50.0, x_min=10.0)


def make_client(node_id=1, base=30.0):
    topology = build_line(3)
    engine = SimulationEngine()
    network = MessageNetwork(topology, engine)
    client = DUSTClient(
        node_id=node_id, engine=engine, network=network, manager_node=0,
        policy=POLICY, base_capacity=base,
    )
    return client, engine, network


def deliver(client, payload):
    client._receive(Message(
        source=0, destination=client.node_id, payload=payload,
        sent_at=0.0, delivered_at=0.0,
    ))


class TestMisaddressedMessages:
    def test_ack_for_other_node_rejected(self):
        client, _, _ = make_client()
        with pytest.raises(ProtocolError, match="addressed to"):
            deliver(client, Ack(node_id=9, update_interval_s=60.0))

    def test_offload_request_for_other_destination(self):
        client, _, _ = make_client()
        with pytest.raises(ProtocolError, match="Offload-Request"):
            deliver(client, OffloadRequest(
                destination=9, source=2, amount_pct=1.0, data_mb=1.0, route=(2, 9),
            ))

    def test_rep_for_other_replica(self):
        client, _, _ = make_client()
        with pytest.raises(ProtocolError, match="REP"):
            deliver(client, Rep(
                replica=9, failed_destination=2, source=1, amount_pct=1.0,
                route=(1, 9),
            ))

    def test_redirect_for_other_source(self):
        client, _, _ = make_client()
        with pytest.raises(ProtocolError, match="Redirect"):
            deliver(client, Redirect(
                source=9, destination=2, amount_pct=1.0, route=(9, 2),
            ))

    def test_reclaim_for_unrelated_pair(self):
        client, _, _ = make_client()
        with pytest.raises(ProtocolError, match="Reclaim"):
            deliver(client, Reclaim(source=8, destination=9, amount_pct=1.0))

    def test_stat_is_not_a_client_message(self):
        client, _, _ = make_client()
        with pytest.raises(ProtocolError, match="cannot handle"):
            deliver(client, Stat(
                node_id=1, capacity_pct=1.0, data_mb=1.0, num_agents=1, timestamp=0.0,
            ))

    def test_non_dust_payload_rejected(self):
        client, _, _ = make_client()
        with pytest.raises(ProtocolError, match="non-DUST"):
            deliver(client, {"hello": "world"})


class TestHostingDecisions:
    def test_rejects_when_projection_exceeds_co_max(self):
        client, engine, _ = make_client(base=45.0)  # spare = 5
        deliver(client, OffloadRequest(
            destination=1, source=2, amount_pct=10.0, data_mb=1.0, route=(2, 1),
        ))
        assert client.hosted_amount == 0.0
        assert client.requests_rejected == 1

    def test_accepts_exactly_to_co_max(self):
        client, engine, _ = make_client(base=40.0)  # spare = 10
        deliver(client, OffloadRequest(
            destination=1, source=2, amount_pct=10.0, data_mb=1.0, route=(2, 1),
        ))
        assert client.hosted_amount == pytest.approx(10.0)
        assert client.current_capacity(engine.now) == pytest.approx(50.0)

    def test_repeated_hosting_accumulates(self):
        client, _, _ = make_client(base=30.0)
        for _ in range(2):
            deliver(client, OffloadRequest(
                destination=1, source=2, amount_pct=5.0, data_mb=1.0, route=(2, 1),
            ))
        assert client.hosted.get(2).amount_pct == pytest.approx(10.0)

    def test_partial_reclaim_keeps_remainder(self):
        client, _, _ = make_client(base=30.0)
        deliver(client, OffloadRequest(
            destination=1, source=2, amount_pct=10.0, data_mb=1.0, route=(2, 1),
        ))
        deliver(client, Reclaim(source=2, destination=1, amount_pct=4.0))
        assert client.hosted[2].amount_pct == pytest.approx(6.0)
        deliver(client, Reclaim(source=2, destination=1, amount_pct=6.0))
        assert 2 not in client.hosted

    def test_source_side_partial_reclaim(self):
        client, _, _ = make_client(base=90.0)
        deliver(client, Redirect(source=1, destination=2, amount_pct=10.0, route=(1, 2)))
        assert client.offloaded_amount == pytest.approx(10.0)
        deliver(client, Reclaim(source=1, destination=2, amount_pct=4.0))
        assert client.offloaded_amount == pytest.approx(6.0)


class TestCapacityClamping:
    def test_reported_capacity_clamped_to_bounds(self):
        client, engine, _ = make_client(base=95.0)
        deliver(client, Redirect(source=1, destination=2, amount_pct=90.0, route=(1, 2)))
        # 95 - 90 = 5 < x_min: clamps up to x_min.
        assert client.current_capacity(engine.now) == POLICY.x_min
        client2, engine2, _ = make_client(base=95.0)
        deliver(client2, OffloadRequest(
            destination=1, source=2, amount_pct=1.0, data_mb=1.0, route=(2, 1),
        ))
        # 95 + rejected (over CO_max) => nothing hosted.
        assert client2.current_capacity(engine2.now) == pytest.approx(95.0)

    def test_callable_base_capacity(self):
        client, engine, _ = make_client(base=30.0)
        client._base_capacity = lambda t: 20.0 + t / 100.0
        assert client.base_capacity(1000.0) == pytest.approx(30.0)
        assert client.current_capacity(0.0) == pytest.approx(20.0)


class TestDeadClientSilent:
    def test_failed_client_ignores_messages(self):
        client, _, _ = make_client(base=30.0)
        client.network.register(client.node_id, client._receive)
        client.alive = False
        deliver(client, OffloadRequest(
            destination=1, source=2, amount_pct=5.0, data_mb=1.0, route=(2, 1),
        ))
        assert client.hosted_amount == 0.0
