"""Tests for threshold policy (Eq. 5) and role assignment."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    NodeRole,
    RECOMMENDED_K_IO,
    ThresholdPolicy,
    classify_network,
    classify_node,
)
from repro.errors import CapacityError


class TestThresholdPolicy:
    def test_defaults_valid(self):
        policy = ThresholdPolicy()
        assert policy.c_max == 80.0
        assert policy.co_max == 50.0

    def test_busy_and_candidate_classification(self):
        policy = ThresholdPolicy(c_max=80.0, co_max=50.0, x_min=10.0)
        assert policy.is_busy(80.0)  # boundary: >= C_max
        assert policy.is_busy(95.0)
        assert not policy.is_busy(79.9)
        assert policy.is_candidate(50.0)  # boundary: <= CO_max
        assert not policy.is_candidate(50.1)

    def test_excess_load_eq_3c(self):
        policy = ThresholdPolicy(c_max=80.0, co_max=50.0)
        assert policy.excess_load(92.5) == pytest.approx(12.5)
        assert policy.excess_load(70.0) == 0.0

    def test_spare_capacity_eq_3d(self):
        policy = ThresholdPolicy(c_max=80.0, co_max=50.0)
        assert policy.spare_capacity(30.0) == pytest.approx(20.0)
        assert policy.spare_capacity(60.0) == 0.0

    def test_delta_io_eq_5(self):
        policy = ThresholdPolicy(c_max=80.0, co_max=50.0, x_min=10.0)
        assert policy.delta_o == pytest.approx(40.0)
        assert policy.delta_b == pytest.approx(20.0)
        assert policy.delta_io == pytest.approx(2.0)
        assert policy.satisfies_k_io(RECOMMENDED_K_IO)

    def test_delta_io_infinite_when_cmax_100(self):
        policy = ThresholdPolicy(c_max=100.0, co_max=50.0, x_min=10.0)
        assert policy.delta_io == float("inf")

    def test_with_delta_io_roundtrip(self):
        for delta in (0.8, 1.5, 2.0, 3.0):
            policy = ThresholdPolicy.with_delta_io(delta, c_max=82.0, x_min=10.0)
            assert policy.delta_io == pytest.approx(delta)

    def test_with_delta_io_impossible_target(self):
        # delta so big co_max would exceed c_max.
        with pytest.raises(CapacityError, match="lower delta_io"):
            ThresholdPolicy.with_delta_io(4.0, c_max=80.0, x_min=10.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"x_min": -1.0},
            {"x_min": 100.0},
            {"co_max": 5.0, "x_min": 10.0},
            {"c_max": 0.0},
            {"c_max": 101.0},
            {"co_max": 90.0, "c_max": 80.0},  # co_max >= c_max
            {"co_max": 80.0, "c_max": 80.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(CapacityError):
            ThresholdPolicy(**kwargs)

    @settings(max_examples=40, deadline=None)
    @given(st.floats(min_value=0.0, max_value=99.0),
           st.floats(min_value=0.1, max_value=99.9),
           st.floats(min_value=0.1, max_value=99.0))
    def test_property_no_node_is_both_busy_and_candidate(self, x_min, a, b):
        """co_max < c_max enforcement makes the role sets disjoint."""
        lo, hi = sorted((a, b))
        if lo <= x_min or lo == hi:
            return
        policy = ThresholdPolicy(c_max=hi, co_max=lo, x_min=min(x_min, lo))
        for cap in np.linspace(policy.x_min, 100.0, 23):
            assert not (policy.is_busy(cap) and policy.is_candidate(cap))


class TestRoles:
    policy = ThresholdPolicy(c_max=80.0, co_max=50.0, x_min=10.0)

    def test_classify_node(self):
        assert classify_node(90.0, self.policy) is NodeRole.BUSY
        assert classify_node(40.0, self.policy) is NodeRole.OFFLOAD_CANDIDATE
        assert classify_node(65.0, self.policy) is NodeRole.NEUTRAL
        assert classify_node(90.0, self.policy, participating=False) is (
            NodeRole.NONE_OFFLOADING
        )

    def test_classify_network_sets(self):
        caps = [90.0, 40.0, 65.0, 85.0, 20.0]
        roles = classify_network(caps, self.policy)
        assert roles.busy == [0, 3]
        assert roles.candidates == [1, 4]
        assert roles.relays == [2]
        assert roles.opted_out == []

    def test_participation_mask(self):
        caps = [90.0, 40.0]
        roles = classify_network(caps, self.policy, participating=[False, True])
        assert roles.busy == []
        assert roles.opted_out == [0]
        assert roles.candidates == [1]

    def test_mask_shape_validated(self):
        with pytest.raises(ValueError, match="participation mask"):
            classify_network([1.0, 2.0], self.policy, participating=[True])

    def test_counts(self):
        caps = [90.0, 40.0, 65.0]
        counts = classify_network(caps, self.policy).counts()
        assert counts[NodeRole.BUSY] == 1
        assert counts[NodeRole.OFFLOAD_CANDIDATE] == 1
        assert counts[NodeRole.NEUTRAL] == 1
        assert counts[NodeRole.NONE_OFFLOADING] == 0

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=10.0, max_value=100.0), max_size=40))
    def test_property_partition_is_total(self, caps):
        """Every participating node lands in exactly one role."""
        roles = classify_network(caps, self.policy)
        all_nodes = sorted(
            roles.busy + roles.candidates + roles.relays + roles.opted_out
        )
        assert all_nodes == list(range(len(caps)))
