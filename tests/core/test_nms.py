"""Tests for the Network Monitor Service (Fig. 2 front-end)."""

import pytest

from repro.core import MonitoringRequest, NetworkMonitorService, default_catalog
from repro.errors import TelemetryError
from repro.telemetry import DeviceProfile, NetworkDevice


def device(name="dut"):
    return NetworkDevice(DeviceProfile(
        name=name, cores=8, memory_gb=16.0, base_cpu_pct=15.0, base_memory_mb=8192.0,
    ))


class TestCatalog:
    def test_catalog_covers_all_paper_metrics(self):
        catalog = default_catalog()
        for metric in ("cpu_pct", "rx_pps", "fault_score", "temperature_c"):
            assert metric in catalog

    def test_agents_for_deduplicates(self):
        nms = NetworkMonitorService()
        # rx_pps and tx_pps come from the same agent.
        specs = nms.agents_for(["rx_pps", "tx_pps"])
        assert len(specs) == 1
        assert specs[0].name == "rx-tx-packet-rates"

    def test_unknown_metric_rejected(self):
        nms = NetworkMonitorService()
        with pytest.raises(TelemetryError, match="no agent"):
            nms.agents_for(["quantum_flux"])


class TestRequestLifecycle:
    def test_submit_installs_needed_agents(self):
        nms = NetworkMonitorService()
        dev = device()
        installed = nms.submit(
            MonitoringRequest(name="r1", metrics=("cpu_pct", "rx_pps")), dev
        )
        assert set(installed) == {"system-resource-utilization", "rx-tx-packet-rates"}
        assert set(dev.local_agents) == set(installed)

    def test_submit_skips_present_agents(self):
        nms = NetworkMonitorService()
        dev = device()
        nms.submit(MonitoringRequest(name="r1", metrics=("cpu_pct",)), dev)
        installed = nms.submit(
            MonitoringRequest(name="r2", metrics=("cpu_pct", "fault_score")), dev
        )
        assert installed == ["fault-finder"]

    def test_duplicate_request_rejected(self):
        nms = NetworkMonitorService()
        dev = device()
        nms.submit(MonitoringRequest(name="r1", metrics=("cpu_pct",)), dev)
        with pytest.raises(TelemetryError, match="already active"):
            nms.submit(MonitoringRequest(name="r1", metrics=("cpu_pct",)), dev)

    def test_alert_rules_installed_and_withdrawn(self):
        nms = NetworkMonitorService()
        dev = device()
        nms.submit(
            MonitoringRequest(
                name="r1", metrics=("cpu_pct",), alert_above={"cpu_pct": 90.0}
            ),
            dev,
        )
        assert any(r.name == "r1/cpu_pct" for r in dev.tsdb.rules)
        nms.withdraw("r1")
        assert not dev.tsdb.rules
        assert nms.active_requests == ()

    def test_withdraw_unknown(self):
        with pytest.raises(TelemetryError, match="unknown request"):
            NetworkMonitorService().withdraw("ghost")

    def test_request_validation(self):
        with pytest.raises(TelemetryError, match="no metrics"):
            MonitoringRequest(name="r", metrics=())
        with pytest.raises(TelemetryError, match="unmonitored"):
            MonitoringRequest(
                name="r", metrics=("cpu_pct",), alert_above={"rx_pps": 1.0}
            )
        with pytest.raises(TelemetryError):
            MonitoringRequest(name="r", metrics=("cpu_pct",), window_s=0.0)


class TestTriggers:
    def test_trigger_fires_when_metric_exceeds_bound(self):
        nms = NetworkMonitorService()
        dev = device()
        nms.submit(
            MonitoringRequest(
                name="hot", metrics=("cpu_pct",),
                alert_above={"cpu_pct": 50.0}, window_s=600.0,
            ),
            dev,
        )
        # Drive the agent: updates become the emitted metric value.
        dev.database.record_synthetic_updates("system_stats", 100)
        dev.step(now=60.0, interval_s=60.0)
        events = nms.poll_triggers(now=60.0)
        assert len(events) == 1
        assert events[0].rule == "hot/cpu_pct"
        assert events[0].device == "dut"
        assert nms.trigger_log == events

    def test_no_trigger_below_bound(self):
        nms = NetworkMonitorService()
        dev = device()
        nms.submit(
            MonitoringRequest(
                name="hot", metrics=("cpu_pct",),
                alert_above={"cpu_pct": 1e9}, window_s=600.0,
            ),
            dev,
        )
        dev.database.record_synthetic_updates("system_stats", 100)
        dev.step(now=60.0, interval_s=60.0)
        assert nms.poll_triggers(now=60.0) == []
