"""Manager edge cases: fallback, double start, unexpected messages."""

import numpy as np
import pytest

from repro.core import (
    DUSTClient,
    DUSTManager,
    OffloadAck,
    ThresholdPolicy,
)
from repro.errors import ProtocolError
from repro.simulation import MessageNetwork, SimulationEngine
from repro.simulation.network_sim import Message
from repro.topology import LinkUtilizationModel, build_fat_tree, build_line


def make_manager(topology=None, **kwargs):
    topology = topology or build_fat_tree(4)
    engine = SimulationEngine()
    network = MessageNetwork(topology, engine)
    manager = DUSTManager(
        node_id=0, topology=topology, engine=engine, network=network,
        policy=ThresholdPolicy(c_max=80.0, co_max=50.0, x_min=10.0), **kwargs,
    )
    return manager, engine, network


class TestLifecycle:
    def test_double_start_rejected(self):
        manager, _, _ = make_manager()
        manager.start()
        with pytest.raises(ProtocolError, match="already started"):
            manager.start()

    def test_unexpected_offload_ack_rejected(self):
        manager, _, _ = make_manager()
        manager.start()
        with pytest.raises(ProtocolError, match="unexpected Offload-ACK"):
            manager._receive(Message(
                source=5, destination=0,
                payload=OffloadAck(destination=5, source=3, accepted=True),
                sent_at=0.0, delivered_at=0.0,
            ))

    def test_non_dust_payload_rejected(self):
        manager, _, _ = make_manager()
        manager.start()
        with pytest.raises(ProtocolError, match="non-DUST"):
            manager._receive(Message(
                source=5, destination=0, payload=42, sent_at=0.0, delivered_at=0.0,
            ))


class TestHeuristicFallback:
    def build_starved_system(self, heuristic_fallback):
        """A line where the ILP is infeasible (total spare < excess) but
        the one-hop heuristic can still place *something*."""
        topology = build_line(3)
        for link in topology.links:
            link.utilization = 0.5
        engine = SimulationEngine()
        network = MessageNetwork(topology, engine)
        manager = DUSTManager(
            node_id=0, topology=topology, engine=engine, network=network,
            policy=ThresholdPolicy(c_max=80.0, co_max=50.0, x_min=10.0),
            update_interval_s=30.0, optimization_period_s=60.0,
            heuristic_fallback=heuristic_fallback,
        )
        manager.start()
        clients = {}
        # Node 1: very busy (excess 15). Node 2: candidate with spare 5.
        for node, base in ((1, 95.0), (2, 45.0)):
            clients[node] = DUSTClient(
                node_id=node, engine=engine, network=network, manager_node=0,
                policy=manager.policy, base_capacity=base,
            )
            clients[node].start()
        engine.run_until(400.0)
        return manager, clients

    def test_fallback_places_partial_load(self):
        manager, clients = self.build_starved_system(heuristic_fallback=True)
        assert manager.counters.infeasible_rounds >= 1
        assert manager.counters.heuristic_fallbacks >= 1
        # Partial relief: the candidate filled to CO_max.
        assert clients[2].hosted_amount == pytest.approx(5.0)
        assert clients[1].offloaded_amount == pytest.approx(5.0)

    def test_no_fallback_leaves_load_in_place(self):
        manager, clients = self.build_starved_system(heuristic_fallback=False)
        assert manager.counters.infeasible_rounds >= 1
        assert manager.counters.heuristic_fallbacks == 0
        assert clients[2].hosted_amount == 0.0


class TestStaleExclusion:
    def test_never_admitted_nodes_are_not_candidates(self):
        """Nodes that never sent a STAT must not be selected."""
        topology = build_fat_tree(4)
        LinkUtilizationModel(0.2, 0.7, seed=1).apply(topology)
        engine = SimulationEngine()
        network = MessageNetwork(topology, engine)
        manager = DUSTManager(
            node_id=0, topology=topology, engine=engine, network=network,
            policy=ThresholdPolicy(c_max=80.0, co_max=50.0, x_min=10.0),
            update_interval_s=30.0, optimization_period_s=60.0,
        )
        manager.start()
        # Only nodes 5 (busy) and 7 (candidate) exist as clients.
        clients = {}
        for node, base in ((5, 92.0), (7, 30.0)):
            clients[node] = DUSTClient(
                node_id=node, engine=engine, network=network, manager_node=0,
                policy=manager.policy, base_capacity=base,
            )
            clients[node].start()
        engine.run_until(500.0)
        # All offloads must target node 7 — the only live candidate.
        assert manager.ledger.active
        assert {o.destination for o in manager.ledger.active} == {7}
        # And nothing was dropped on the floor toward silent nodes.
        assert network.messages_dropped == 0
