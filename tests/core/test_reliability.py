"""Reliability layer: retry policy, dedup, ACK-gated retransmission,
and the hardened manager/client behaviour they enable."""

import pytest

from repro.core import (
    DUSTClient,
    DUSTManager,
    DedupCache,
    OffloadAck,
    OffloadCapable,
    OffloadRequest,
    Rep,
    ReliableSender,
    RetryPolicy,
    Stat,
    ThresholdPolicy,
)
from repro.errors import ProtocolError
from repro.simulation import MessageNetwork, SimulationEngine
from repro.simulation.network_sim import Message
from repro.topology import LinkUtilizationModel, build_fat_tree, build_line

POLICY = ThresholdPolicy(c_max=80.0, co_max=50.0, x_min=10.0)
FAST_RETRY = RetryPolicy(base_timeout_s=1.0, backoff=2.0, max_timeout_s=4.0, max_retries=2)


def make_manager(topology=None, **kwargs):
    topology = topology or build_fat_tree(4)
    engine = SimulationEngine()
    network = MessageNetwork(topology, engine)
    manager = DUSTManager(
        node_id=0, topology=topology, engine=engine, network=network,
        policy=POLICY, **kwargs,
    )
    return manager, engine, network


def deliver(manager, source, payload):
    manager._receive(Message(
        source=source, destination=manager.node_id, payload=payload,
        sent_at=manager.engine.now, delivered_at=manager.engine.now,
    ))


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_timeout_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(base_timeout_s=10.0, max_timeout_s=5.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)

    def test_backoff_caps_at_max(self):
        policy = RetryPolicy(base_timeout_s=1.0, backoff=2.0, max_timeout_s=4.0)
        assert [policy.timeout_for(a) for a in range(4)] == [1.0, 2.0, 4.0, 4.0]


class TestDecorrelatedJitter:
    """Retry storms must decorrelate: jittered timeouts differ across
    senders but are fully deterministic under (seed, node_id)."""

    JITTERED = RetryPolicy(
        base_timeout_s=1.0, backoff=2.0, max_timeout_s=8.0, max_retries=4,
        jitter=0.5,
    )

    def make_sender(self, node_id=0, seed=0, policy=None):
        topology = build_line(3)
        engine = SimulationEngine()
        network = MessageNetwork(topology, engine)
        sender = ReliableSender(
            network, engine, node_id=node_id, policy=policy or self.JITTERED,
            seed=seed,
        )
        return sender, engine, network

    def send_and_collect_timeouts(self, sender, engine):
        """Fire a full retry budget into the void, spying on every
        timeout draw (the budget's worth plus the initial arm)."""
        payload = OffloadRequest(destination=1, source=sender.node_id,
                                 amount_pct=5.0, data_mb=1.0, route=(0, 1))
        drawn = []
        original = sender._timeout_for

        def spying(entry):
            timeout = original(entry)
            drawn.append(timeout)
            return timeout

        sender._timeout_for = spying
        sender.send(1, payload)
        engine.run_until(200.0)
        return drawn

    def test_jitter_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_jittered_timeouts_stay_inside_envelope(self):
        """Each drawn timeout lives in the decorrelated-jitter window
        [base, min(max, prev*backoff)] — and within the configured
        jitter fraction of its top."""
        sender, engine, _ = self.make_sender()
        gaps = self.send_and_collect_timeouts(sender, engine)
        assert len(gaps) == self.JITTERED.max_retries + 1
        prev = self.JITTERED.base_timeout_s
        for gap in gaps:
            cap = min(self.JITTERED.max_timeout_s,
                      max(self.JITTERED.base_timeout_s, prev * self.JITTERED.backoff))
            low = self.JITTERED.base_timeout_s + (1.0 - self.JITTERED.jitter) * (
                cap - self.JITTERED.base_timeout_s
            )
            assert low - 1e-9 <= gap <= cap + 1e-9
            prev = gap

    def test_deterministic_under_seed_and_node(self):
        first, e1, _ = self.make_sender(node_id=4, seed=7)
        second, e2, _ = self.make_sender(node_id=4, seed=7)
        assert self.send_and_collect_timeouts(first, e1) == (
            self.send_and_collect_timeouts(second, e2)
        )

    def test_distinct_nodes_decorrelate(self):
        a, ea, _ = self.make_sender(node_id=1, seed=7)
        b, eb, _ = self.make_sender(node_id=2, seed=7)
        assert self.send_and_collect_timeouts(a, ea) != (
            self.send_and_collect_timeouts(b, eb)
        )

    def test_zero_jitter_is_byte_identical_to_deterministic_backoff(self):
        """jitter=0 must not even draw from the RNG: the schedule is
        exactly the old deterministic exponential-backoff ladder."""
        sender, engine, _ = self.make_sender(policy=FAST_RETRY)
        gaps = self.send_and_collect_timeouts(sender, engine)
        assert gaps == [FAST_RETRY.timeout_for(a) for a in range(len(gaps))]
        assert sender._jitter_rng is None


class TestDedupCache:
    def test_duplicate_detection_and_reply_replay(self):
        cache = DedupCache()
        assert cache.check(1, 100) == (False, None)
        cache.remember(1, 100, "the-reply")
        assert cache.check(1, 100) == (True, "the-reply")
        # Same msg_id from a different sender is a different message.
        assert cache.check(2, 100) == (False, None)

    def test_lru_eviction(self):
        cache = DedupCache(capacity=2)
        cache.remember(1, 1, None)
        cache.remember(1, 2, None)
        cache.remember(1, 3, None)  # evicts (1, 1)
        assert cache.check(1, 1) == (False, None)
        assert cache.check(1, 3)[0] is True

    def test_clear(self):
        cache = DedupCache()
        cache.remember(1, 1, "r")
        cache.clear()
        assert cache.check(1, 1) == (False, None)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            DedupCache(capacity=0)

    def test_ttl_validation(self):
        with pytest.raises(ValueError):
            DedupCache(ttl_s=0.0, clock=lambda: 0.0)
        with pytest.raises(ValueError, match="clock"):
            DedupCache(ttl_s=10.0)

    def test_ttl_expiration(self):
        from repro.obs.registry import get_registry

        clock = {"now": 0.0}
        cache = DedupCache(ttl_s=10.0, clock=lambda: clock["now"])
        before = get_registry().counter("transport.dedup_ttl_expirations").value
        cache.remember(1, 1, "r")
        clock["now"] = 9.0
        assert cache.check(1, 1) == (True, "r")  # still fresh (and touched)
        clock["now"] = 18.0
        assert cache.check(1, 1) == (True, "r")  # touch at t=9 reset the TTL
        clock["now"] = 29.0
        assert cache.check(1, 1) == (False, None)  # untouched for > ttl
        assert cache.ttl_expirations == 1
        after = get_registry().counter("transport.dedup_ttl_expirations").value
        assert after - before == 1

    def test_ttl_expires_oldest_batch(self):
        clock = {"now": 0.0}
        cache = DedupCache(ttl_s=5.0, clock=lambda: clock["now"])
        cache.remember(1, 1)
        cache.remember(1, 2)
        clock["now"] = 4.0
        cache.remember(1, 3)
        clock["now"] = 6.0
        cache.remember(1, 4)  # sweeps msg 1 and 2, keeps 3
        assert cache.ttl_expirations == 2
        assert len(cache) == 2
        assert cache.check(1, 3)[0] is True

    def test_lru_eviction_counter(self):
        from repro.obs.registry import get_registry

        before = get_registry().counter("transport.dedup_lru_evictions").value
        cache = DedupCache(capacity=2)
        for msg_id in range(4):
            cache.remember(1, msg_id)
        assert cache.lru_evictions == 2
        after = get_registry().counter("transport.dedup_lru_evictions").value
        assert after - before == 2


class TestReliableSender:
    def make_sender(self, policy=FAST_RETRY):
        topology = build_line(2)
        engine = SimulationEngine()
        network = MessageNetwork(topology, engine)
        sender = ReliableSender(network, engine, node_id=0, policy=policy)
        return sender, engine, network

    def test_gives_up_after_retry_budget(self):
        """Timeouts 1s, 2s, 4s: two retransmissions, then the give-up
        hook fires at t=7 with the destination and payload."""
        sender, engine, network = self.make_sender()
        gave_up = []
        payload = OffloadRequest(destination=1, source=0, amount_pct=5.0,
                                 data_mb=1.0, route=(0, 1))
        # Node 1 has no receiver: every attempt is silently dropped.
        sender.send(1, payload, on_give_up=lambda d, p: gave_up.append((engine.now, d, p)))
        engine.run_until(60.0)
        assert sender.retransmissions == 2
        assert sender.gave_up == 1
        assert sender.pending == 0
        assert gave_up == [(7.0, 1, payload)]
        assert network.messages_dropped == 3  # original + 2 retransmissions

    def test_acknowledge_cancels_retransmission(self):
        sender, engine, network = self.make_sender()
        network.register(1, lambda m: None)
        payload = OffloadRequest(destination=1, source=0, amount_pct=5.0,
                                 data_mb=1.0, route=(0, 1))
        sender.send(1, payload)
        assert sender.acknowledge(payload.msg_id)
        engine.run_until(60.0)
        assert sender.retransmissions == 0
        assert sender.gave_up == 0
        assert network.messages_sent == 1

    def test_duplicate_send_keeps_existing_timer(self):
        sender, engine, network = self.make_sender()
        network.register(1, lambda m: None)
        payload = OffloadRequest(destination=1, source=0, amount_pct=5.0,
                                 data_mb=1.0, route=(0, 1))
        sender.send(1, payload)
        sender.send(1, payload)  # same msg_id: no second wire copy
        assert network.messages_sent == 1
        assert sender.pending == 1

    def test_unknown_and_none_acknowledge(self):
        sender, _, _ = self.make_sender()
        assert not sender.acknowledge(None)
        assert not sender.acknowledge(12345)

    def test_cancel_all(self):
        sender, engine, _ = self.make_sender()
        payload = OffloadRequest(destination=1, source=0, amount_pct=5.0,
                                 data_mb=1.0, route=(0, 1))
        sender.send(1, payload)
        sender.cancel_all()
        engine.run_until(60.0)
        assert sender.retransmissions == 0
        assert sender.pending == 0


class TestClientHardening:
    def test_announce_give_up_then_reannounce(self):
        """With no manager listening the client exhausts its announce
        retries, falls back to local monitoring, and re-announces after
        the quiet period — forever hopeful, never crashing."""
        topology = build_line(3)
        engine = SimulationEngine()
        network = MessageNetwork(topology, engine)
        client = DUSTClient(
            node_id=1, engine=engine, network=network, manager_node=0,
            policy=POLICY, retry_policy=FAST_RETRY, reannounce_delay_s=5.0,
        )
        client.start()
        engine.run_until(30.0)
        # Give-ups at t=7 and t=19 (re-announce at 12, give up 7s later).
        assert client.announce_give_ups == 2
        assert client.retransmissions == 6  # two per announce attempt
        assert client.alive
        assert client.hosted == {} and client.offloaded_to == {}

    def test_duplicate_request_not_applied_twice(self):
        """A retransmitted Offload-Request must not double-book hosting;
        the cached Offload-ACK is replayed instead."""
        topology = build_line(3)
        engine = SimulationEngine()
        network = MessageNetwork(topology, engine)
        client = DUSTClient(
            node_id=1, engine=engine, network=network, manager_node=0,
            policy=POLICY, base_capacity=30.0, retry_policy=FAST_RETRY,
        )
        acks = []
        network.register(0, lambda m: acks.append(m.payload))
        client.start()
        engine.run_until(1.0)
        req = OffloadRequest(destination=1, source=2, amount_pct=10.0,
                             data_mb=5.0, route=(2, 1))
        for _ in range(2):
            client._receive(Message(
                source=0, destination=1, payload=req,
                sent_at=engine.now, delivered_at=engine.now,
            ))
        engine.run_until(2.0)
        assert client.hosted_amount == pytest.approx(10.0)
        assert client.duplicates_ignored == 1
        replayed = [a for a in acks if isinstance(a, OffloadAck)]
        assert len(replayed) == 2
        assert replayed[0].msg_id == replayed[1].msg_id  # cached reply


class TestManagerHardening:
    def test_duplicate_announce_replays_cached_ack(self):
        manager, engine, network = make_manager()
        manager.start()
        acks = []
        network.register(5, lambda m: acks.append(m.payload))
        announce = OffloadCapable(node_id=5, capable=True, c_max=80.0, co_max=50.0)
        for _ in range(2):
            deliver(manager, 5, announce)
        engine.run_until(1.0)
        assert manager.counters.acks_sent == 1
        assert manager.counters.duplicates_ignored == 1
        assert len(acks) == 2
        assert acks[0].msg_id == acks[1].msg_id

    def test_stale_stat_dropped_when_hardened(self):
        manager, engine, _ = make_manager(retry_policy=FAST_RETRY)
        manager.start()
        deliver(manager, 5, Stat(node_id=5, capacity_pct=50.0, data_mb=1.0,
                                 num_agents=3, timestamp=10.0))
        deliver(manager, 5, Stat(node_id=5, capacity_pct=99.0, data_mb=1.0,
                                 num_agents=3, timestamp=5.0))
        assert manager.counters.stats_received == 2
        assert manager.counters.stale_stats_dropped == 1
        # The newer report's capacity survived.
        assert manager.nmdb.export_records()[5].capacity_pct == 50.0

    def test_stale_stat_raises_on_reliable_fabric(self):
        manager, _, _ = make_manager()
        manager.start()
        deliver(manager, 5, Stat(node_id=5, capacity_pct=50.0, data_mb=1.0,
                                 num_agents=3, timestamp=10.0))
        with pytest.raises(ProtocolError, match="out-of-order STAT"):
            deliver(manager, 5, Stat(node_id=5, capacity_pct=99.0, data_mb=1.0,
                                     num_agents=3, timestamp=5.0))

    def test_give_up_quarantines_destination(self):
        manager, engine, _ = make_manager(retry_policy=FAST_RETRY, quarantine_s=100.0)
        manager.start()
        req = OffloadRequest(destination=7, source=5, amount_pct=10.0,
                             data_mb=5.0, route=(5, 7))
        manager._on_request_give_up(7, req)
        assert manager.counters.destinations_quarantined == 1
        assert manager.quarantined_nodes() == {7}
        engine.run_until(150.0)
        assert manager.quarantined_nodes() == set()  # expired

    def test_rep_give_up_quarantines_replica(self):
        manager, _, _ = make_manager(retry_policy=FAST_RETRY)
        manager.start()
        rep = Rep(replica=11, failed_destination=7, source=5,
                  amount_pct=10.0, route=(5, 11))
        manager._on_request_give_up(11, rep)
        assert manager.quarantined_nodes() == {11}


class TestAckRaceRegression:
    """Keepalive eviction + REP substitution racing a late Offload-ACK
    from the evicted destination (the classic lost-ack orphan)."""

    def build_evicted_system(self):
        topology = build_fat_tree(4)
        LinkUtilizationModel(0.2, 0.7, seed=3).apply(topology)
        engine = SimulationEngine()
        network = MessageNetwork(topology, engine)
        manager = DUSTManager(
            node_id=0, topology=topology, engine=engine, network=network,
            policy=POLICY, update_interval_s=30.0, optimization_period_s=60.0,
            keepalive_timeout_s=30.0, retry_policy=FAST_RETRY,
        )
        manager.start()
        clients = {}
        for node, base in ((5, 92.0), (7, 30.0), (11, 30.0)):
            clients[node] = DUSTClient(
                node_id=node, engine=engine, network=network, manager_node=0,
                policy=POLICY, base_capacity=base, retry_policy=FAST_RETRY,
            )
            clients[node].start()
        engine.run_until(200.0)
        assert {o.destination for o in manager.ledger.active} == {7}
        clients[7].fail()
        engine.run_until(400.0)
        # Keepalive eviction re-homed the workload onto replica 11.
        assert manager.counters.destinations_failed >= 1
        assert manager.counters.replicas_installed >= 1
        assert {o.destination for o in manager.ledger.active} == {11}
        return manager, engine, clients

    def test_late_accepted_ack_triggers_orphan_reclaim(self):
        manager, engine, clients = self.build_evicted_system()
        before = tuple(manager.ledger.active)
        late_ack = OffloadAck(destination=7, source=5, accepted=True,
                              amount_pct=12.0)
        deliver(manager, 7, late_ack)
        # The orphaned hosting gets a Reclaim, the ledger is untouched.
        assert manager.counters.orphans_reclaimed == 1
        assert manager.ledger.active == before
        # A retransmitted copy of the same ack is dedup-suppressed.
        dup_before = manager.counters.duplicates_ignored
        deliver(manager, 7, late_ack)
        assert manager.counters.duplicates_ignored == dup_before + 1
        assert manager.counters.orphans_reclaimed == 1

    def test_late_rejected_ack_is_ignored(self):
        manager, engine, clients = self.build_evicted_system()
        deliver(manager, 7, OffloadAck(destination=7, source=5, accepted=False))
        assert manager.counters.stale_acks_ignored == 1
        assert manager.counters.orphans_reclaimed == 0
