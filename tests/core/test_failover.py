"""Manager failover: snapshot store, standby takeover, resync."""

import pytest

from repro.core import (
    DUSTClient,
    DUSTManager,
    ManagerSnapshot,
    OffloadAck,
    RetryPolicy,
    SnapshotStore,
    StandbyManager,
    ThresholdPolicy,
    assignment_signature,
)
from repro.errors import SimulationError
from repro.simulation import MessageNetwork, SimulationEngine
from repro.topology import LinkUtilizationModel, build_fat_tree

POLICY = ThresholdPolicy(c_max=80.0, co_max=50.0, x_min=10.0)
RETRY = RetryPolicy(base_timeout_s=2.0, max_retries=4)


class TestSnapshotStore:
    def test_latest_wins_and_regressions_ignored(self):
        store = SnapshotStore()
        assert store.version == -1 and store.load() is None
        snap = lambda v: ManagerSnapshot(
            version=v, timestamp=float(v), records={}, ledger_rows=(),
            keepalive_watch={},
        )
        store.save(snap(1))
        store.save(snap(3))
        store.save(snap(2))  # out-of-date writer: must not regress
        assert store.version == 3
        assert store.load().version == 3
        assert store.saves == 2


def build_system(crash_at=None, run_to=900.0):
    """Fat-tree with a primary (node 0), a standby (node 1), and three
    clients; returns everything after running to ``run_to``."""
    topology = build_fat_tree(4)
    LinkUtilizationModel(0.2, 0.7, seed=5).apply(topology)
    engine = SimulationEngine()
    network = MessageNetwork(topology, engine)
    store = SnapshotStore()
    manager_kwargs = dict(
        update_interval_s=30.0, optimization_period_s=60.0,
        keepalive_timeout_s=45.0, retry_policy=RETRY,
    )
    manager = DUSTManager(
        node_id=0, topology=topology, engine=engine, network=network,
        policy=POLICY, snapshot_store=store, standby_node=1,
        heartbeat_period_s=10.0, **manager_kwargs,
    )
    manager.start()
    standby = StandbyManager(
        node_id=1, topology=topology, engine=engine, network=network,
        policy=POLICY, snapshot_store=store, primary_node=0,
        takeover_silence_s=30.0, check_period_s=10.0,
        manager_kwargs=manager_kwargs,
    )
    standby.start()
    clients = {}
    for node, base in ((5, 92.0), (7, 30.0), (11, 30.0)):
        clients[node] = DUSTClient(
            node_id=node, engine=engine, network=network, manager_node=0,
            policy=POLICY, base_capacity=base, retry_policy=RETRY,
        )
        clients[node].start()
    if crash_at is not None:
        engine.schedule_at(crash_at, lambda engine: manager.crash())
    engine.run_until(run_to)
    return manager, standby, clients, engine, store


class TestPersistence:
    def test_primary_persists_on_update(self):
        manager, standby, clients, engine, store = build_system(run_to=300.0)
        assert store.saves > 0
        assert store.version == manager._snapshot_version
        snapshot = store.load()
        # The snapshot carries the live ledger and the admitted nodes.
        assert assignment_signature(snapshot.ledger_rows) == assignment_signature(
            manager.ledger.active
        )
        assert manager.ledger.active  # the scenario actually offloaded
        assert set(snapshot.keepalive_watch) == {
            o.destination for o in manager.ledger.active
        }
        assert snapshot.records[5].capacity_pct > 0

    def test_heartbeats_reach_standby(self):
        manager, standby, clients, engine, store = build_system(run_to=100.0)
        assert standby.heartbeats_seen >= 9
        assert not standby.promoted


class TestTakeover:
    def test_standby_recovers_ledger_after_crash(self):
        manager, standby, clients, engine, store = build_system(
            crash_at=400.0, run_to=1200.0
        )
        assert not manager.alive
        assert standby.promoted
        # Silence threshold 30s + 10s check period: takeover within 40s.
        assert 400.0 < standby.took_over_at <= 445.0
        promoted = standby.manager
        assert promoted.node_id == 0  # VIP takeover: same address
        assert promoted.counters.resync_rounds == 1
        # The ledger converged back to the pre-crash assignment.
        pre_crash = assignment_signature(store.load().ledger_rows)
        assert assignment_signature(promoted.ledger.active) == pre_crash
        assert pre_crash  # non-trivial assignment
        # Clients kept talking to node 0 and were not evicted.
        for client in clients.values():
            assert client.alive

    def test_no_spurious_takeover_while_primary_lives(self):
        manager, standby, clients, engine, store = build_system(run_to=1200.0)
        assert manager.alive
        assert not standby.promoted
        assert standby.takeover_aborts == 0

    def test_split_brain_abort_when_primary_still_registered(self):
        """Heartbeat silence without a crash (here: heartbeats simply
        never sent) must not yield two live managers."""
        topology = build_fat_tree(4)
        engine = SimulationEngine()
        network = MessageNetwork(topology, engine)
        store = SnapshotStore()
        # Primary never heartbeats (no standby_node configured).
        manager = DUSTManager(
            node_id=0, topology=topology, engine=engine, network=network,
            policy=POLICY, snapshot_store=store,
        )
        manager.start()
        standby = StandbyManager(
            node_id=1, topology=topology, engine=engine, network=network,
            policy=POLICY, snapshot_store=store, primary_node=0,
            takeover_silence_s=20.0, check_period_s=10.0,
        )
        standby.start()
        engine.run_until(200.0)
        assert manager.alive
        assert not standby.promoted
        assert standby.takeover_aborts >= 1

    def test_standby_on_primary_node_rejected(self):
        topology = build_fat_tree(4)
        engine = SimulationEngine()
        network = MessageNetwork(topology, engine)
        with pytest.raises(SimulationError, match="different node"):
            StandbyManager(
                node_id=0, topology=topology, engine=engine, network=network,
                policy=POLICY, snapshot_store=SnapshotStore(), primary_node=0,
            )

    def test_double_start_rejected(self):
        topology = build_fat_tree(4)
        engine = SimulationEngine()
        network = MessageNetwork(topology, engine)
        standby = StandbyManager(
            node_id=1, topology=topology, engine=engine, network=network,
            policy=POLICY, snapshot_store=SnapshotStore(), primary_node=0,
        )
        standby.start()
        with pytest.raises(SimulationError, match="already started"):
            standby.start()


class TestResync:
    def test_resync_rebuilds_rows_missing_from_snapshot(self):
        """A client's resync re-confirmation restores a ledger row the
        snapshot never saw (persisted state lagged the crash)."""
        topology = build_fat_tree(4)
        engine = SimulationEngine()
        network = MessageNetwork(topology, engine)
        manager = DUSTManager(
            node_id=0, topology=topology, engine=engine, network=network,
            policy=POLICY, retry_policy=RETRY, resync_window_s=60.0,
        )
        manager.start()
        manager.begin_resync()
        from repro.simulation.network_sim import Message

        ack = OffloadAck(destination=7, source=5, accepted=True,
                         reason="resync", amount_pct=12.0)
        manager._receive(Message(source=7, destination=0, payload=ack,
                                 sent_at=0.0, delivered_at=0.0))
        assert manager.counters.resync_recovered == 1
        assert assignment_signature(manager.ledger.active) == (
            (5, 7, 12.0),
        )
        # A duplicate re-confirmation does not double the row.
        ack2 = OffloadAck(destination=7, source=5, accepted=True,
                          reason="resync", amount_pct=12.0)
        manager._receive(Message(source=7, destination=0, payload=ack2,
                                 sent_at=0.0, delivered_at=0.0))
        assert manager.counters.resync_recovered == 1
        assert len(manager.ledger.active) == 1

    def test_resync_window_closes(self):
        topology = build_fat_tree(4)
        engine = SimulationEngine()
        network = MessageNetwork(topology, engine)
        manager = DUSTManager(
            node_id=0, topology=topology, engine=engine, network=network,
            policy=POLICY, retry_policy=RETRY, resync_window_s=60.0,
        )
        manager.start()
        manager.begin_resync()
        engine.run_until(120.0)  # past the window
        from repro.simulation.network_sim import Message

        ack = OffloadAck(destination=7, source=5, accepted=True,
                         reason="resync", amount_pct=12.0)
        manager._receive(Message(source=7, destination=0, payload=ack,
                                 sent_at=engine.now, delivered_at=engine.now))
        # Outside the window this is the orphan path, not a rebuild.
        assert manager.counters.resync_recovered == 0
        assert manager.counters.orphans_reclaimed == 1
        assert not manager.ledger.active
