"""Manager failover: snapshot store, standby takeover, resync."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    DUSTClient,
    DUSTManager,
    ManagerSnapshot,
    OffloadAck,
    RetryPolicy,
    SnapshotStore,
    StandbyManager,
    ThresholdPolicy,
    assignment_signature,
    audit_system,
)
from repro.errors import SimulationError
from repro.simulation import MessageNetwork, SimulationEngine
from repro.simulation.network_sim import FaultConfig, FaultyNetwork
from repro.topology import LinkUtilizationModel, build_fat_tree

POLICY = ThresholdPolicy(c_max=80.0, co_max=50.0, x_min=10.0)
RETRY = RetryPolicy(base_timeout_s=2.0, max_retries=4)


class TestSnapshotStore:
    def test_latest_wins_and_regressions_ignored(self):
        store = SnapshotStore()
        assert store.version == -1 and store.load() is None
        snap = lambda v: ManagerSnapshot(
            version=v, timestamp=float(v), records={}, ledger_rows=(),
            keepalive_watch={},
        )
        store.save(snap(1))
        store.save(snap(3))
        store.save(snap(2))  # out-of-date writer: must not regress
        assert store.version == 3
        assert store.load().version == 3
        assert store.saves == 2

    @staticmethod
    def snap(version):
        return ManagerSnapshot(
            version=version, timestamp=float(version), records={},
            ledger_rows=(), keepalive_watch={},
        )

    def test_persist_survives_process_restart(self, tmp_path):
        path = tmp_path / "manager.snap"
        store = SnapshotStore(path=path)
        store.save(self.snap(7))
        # A brand-new store (fresh process) reloads it from disk.
        reborn = SnapshotStore(path=path)
        assert reborn.version == 7
        assert reborn.load().timestamp == 7.0
        assert reborn.load_failures == 0

    def test_torn_write_leaves_previous_snapshot_loadable(self, tmp_path):
        """A crash mid-persist (temp file written partially, never
        renamed) must not poison standby takeover: the previous good
        snapshot is still what loads."""
        path = tmp_path / "manager.snap"
        store = SnapshotStore(path=path)
        store.save(self.snap(4))
        # Simulate the torn write: a partial record in the temp file.
        good = path.read_bytes()
        (tmp_path / "manager.snap.tmp").write_bytes(good[: len(good) // 2])
        reborn = SnapshotStore(path=path)
        assert reborn.version == 4
        assert reborn.load_failures == 0

    def test_corrupted_file_detected_and_treated_as_absent(self, tmp_path):
        from repro.obs.registry import get_registry

        path = tmp_path / "manager.snap"
        store = SnapshotStore(path=path)
        store.save(self.snap(4))
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF  # flip a payload byte: CRC must catch it
        path.write_bytes(bytes(raw))
        before = get_registry().counter("failover.snapshot_load_failures").value
        reborn = SnapshotStore(path=path)
        assert reborn.load() is None
        assert reborn.version == -1
        assert reborn.load_failures == 1
        assert get_registry().counter("failover.snapshot_load_failures").value - before == 1

    def test_truncated_file_detected(self, tmp_path):
        path = tmp_path / "manager.snap"
        store = SnapshotStore(path=path)
        store.save(self.snap(2))
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 3])  # short payload
        reborn = SnapshotStore(path=path)
        assert reborn.load() is None
        assert reborn.load_failures == 1

    def test_newer_save_overwrites_on_disk(self, tmp_path):
        path = tmp_path / "manager.snap"
        store = SnapshotStore(path=path)
        store.save(self.snap(1))
        store.save(self.snap(5))
        store.save(self.snap(3))  # regression: not persisted either
        assert SnapshotStore(path=path).version == 5


def build_system(crash_at=None, run_to=900.0):
    """Fat-tree with a primary (node 0), a standby (node 1), and three
    clients; returns everything after running to ``run_to``."""
    topology = build_fat_tree(4)
    LinkUtilizationModel(0.2, 0.7, seed=5).apply(topology)
    engine = SimulationEngine()
    network = MessageNetwork(topology, engine)
    store = SnapshotStore()
    manager_kwargs = dict(
        update_interval_s=30.0, optimization_period_s=60.0,
        keepalive_timeout_s=45.0, retry_policy=RETRY,
    )
    manager = DUSTManager(
        node_id=0, topology=topology, engine=engine, network=network,
        policy=POLICY, snapshot_store=store, standby_node=1,
        heartbeat_period_s=10.0, **manager_kwargs,
    )
    manager.start()
    standby = StandbyManager(
        node_id=1, topology=topology, engine=engine, network=network,
        policy=POLICY, snapshot_store=store, primary_node=0,
        takeover_silence_s=30.0, check_period_s=10.0,
        manager_kwargs=manager_kwargs,
    )
    standby.start()
    clients = {}
    for node, base in ((5, 92.0), (7, 30.0), (11, 30.0)):
        clients[node] = DUSTClient(
            node_id=node, engine=engine, network=network, manager_node=0,
            policy=POLICY, base_capacity=base, retry_policy=RETRY,
        )
        clients[node].start()
    if crash_at is not None:
        engine.schedule_at(crash_at, lambda engine: manager.crash())
    engine.run_until(run_to)
    return manager, standby, clients, engine, store


class TestPersistence:
    def test_primary_persists_on_update(self):
        manager, standby, clients, engine, store = build_system(run_to=300.0)
        assert store.saves > 0
        assert store.version == manager._snapshot_version
        snapshot = store.load()
        # The snapshot carries the live ledger and the admitted nodes.
        assert assignment_signature(snapshot.ledger_rows) == assignment_signature(
            manager.ledger.active
        )
        assert manager.ledger.active  # the scenario actually offloaded
        assert set(snapshot.keepalive_watch) == {
            o.destination for o in manager.ledger.active
        }
        assert snapshot.records[5].capacity_pct > 0

    def test_heartbeats_reach_standby(self):
        manager, standby, clients, engine, store = build_system(run_to=100.0)
        assert standby.heartbeats_seen >= 9
        assert not standby.promoted


class TestTakeover:
    def test_standby_recovers_ledger_after_crash(self):
        manager, standby, clients, engine, store = build_system(
            crash_at=400.0, run_to=1200.0
        )
        assert not manager.alive
        assert standby.promoted
        # Silence threshold 30s + 10s check period: takeover within 40s.
        assert 400.0 < standby.took_over_at <= 445.0
        promoted = standby.manager
        assert promoted.node_id == 0  # VIP takeover: same address
        assert promoted.counters.resync_rounds == 1
        # The ledger converged back to the pre-crash assignment.
        pre_crash = assignment_signature(store.load().ledger_rows)
        assert assignment_signature(promoted.ledger.active) == pre_crash
        assert pre_crash  # non-trivial assignment
        # Clients kept talking to node 0 and were not evicted.
        for client in clients.values():
            assert client.alive

    def test_no_spurious_takeover_while_primary_lives(self):
        manager, standby, clients, engine, store = build_system(run_to=1200.0)
        assert manager.alive
        assert not standby.promoted
        assert standby.takeover_aborts == 0

    def test_split_brain_abort_when_primary_still_registered(self):
        """Heartbeat silence without a crash (here: heartbeats simply
        never sent) must not yield two live managers."""
        topology = build_fat_tree(4)
        engine = SimulationEngine()
        network = MessageNetwork(topology, engine)
        store = SnapshotStore()
        # Primary never heartbeats (no standby_node configured).
        manager = DUSTManager(
            node_id=0, topology=topology, engine=engine, network=network,
            policy=POLICY, snapshot_store=store,
        )
        manager.start()
        standby = StandbyManager(
            node_id=1, topology=topology, engine=engine, network=network,
            policy=POLICY, snapshot_store=store, primary_node=0,
            takeover_silence_s=20.0, check_period_s=10.0,
        )
        standby.start()
        engine.run_until(200.0)
        assert manager.alive
        assert not standby.promoted
        assert standby.takeover_aborts >= 1

    def test_standby_on_primary_node_rejected(self):
        topology = build_fat_tree(4)
        engine = SimulationEngine()
        network = MessageNetwork(topology, engine)
        with pytest.raises(SimulationError, match="different node"):
            StandbyManager(
                node_id=0, topology=topology, engine=engine, network=network,
                policy=POLICY, snapshot_store=SnapshotStore(), primary_node=0,
            )

    def test_double_start_rejected(self):
        topology = build_fat_tree(4)
        engine = SimulationEngine()
        network = MessageNetwork(topology, engine)
        standby = StandbyManager(
            node_id=1, topology=topology, engine=engine, network=network,
            policy=POLICY, snapshot_store=SnapshotStore(), primary_node=0,
        )
        standby.start()
        with pytest.raises(SimulationError, match="already started"):
            standby.start()


class TestResync:
    def test_resync_rebuilds_rows_missing_from_snapshot(self):
        """A client's resync re-confirmation restores a ledger row the
        snapshot never saw (persisted state lagged the crash)."""
        topology = build_fat_tree(4)
        engine = SimulationEngine()
        network = MessageNetwork(topology, engine)
        manager = DUSTManager(
            node_id=0, topology=topology, engine=engine, network=network,
            policy=POLICY, retry_policy=RETRY, resync_window_s=60.0,
        )
        manager.start()
        manager.begin_resync()
        from repro.simulation.network_sim import Message

        ack = OffloadAck(destination=7, source=5, accepted=True,
                         reason="resync", amount_pct=12.0)
        manager._receive(Message(source=7, destination=0, payload=ack,
                                 sent_at=0.0, delivered_at=0.0))
        assert manager.counters.resync_recovered == 1
        assert assignment_signature(manager.ledger.active) == (
            (5, 7, 12.0),
        )
        # A duplicate re-confirmation does not double the row.
        ack2 = OffloadAck(destination=7, source=5, accepted=True,
                          reason="resync", amount_pct=12.0)
        manager._receive(Message(source=7, destination=0, payload=ack2,
                                 sent_at=0.0, delivered_at=0.0))
        assert manager.counters.resync_recovered == 1
        assert len(manager.ledger.active) == 1

    def test_resync_window_closes(self):
        topology = build_fat_tree(4)
        engine = SimulationEngine()
        network = MessageNetwork(topology, engine)
        manager = DUSTManager(
            node_id=0, topology=topology, engine=engine, network=network,
            policy=POLICY, retry_policy=RETRY, resync_window_s=60.0,
        )
        manager.start()
        manager.begin_resync()
        engine.run_until(120.0)  # past the window
        from repro.simulation.network_sim import Message

        ack = OffloadAck(destination=7, source=5, accepted=True,
                         reason="resync", amount_pct=12.0)
        manager._receive(Message(source=7, destination=0, payload=ack,
                                 sent_at=engine.now, delivered_at=engine.now))
        # Outside the window this is the orphan path, not a rebuild.
        assert manager.counters.resync_recovered == 0
        assert manager.counters.orphans_reclaimed == 1
        assert not manager.ledger.active


class TestTakeoverConsistencyProperty:
    """Satellite invariant: no offload is double-applied or lost across
    a StandbyManager takeover on a 20%-lossy fabric with retransmissions
    still in flight at the moment of the crash."""

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        hot=st.sets(st.integers(min_value=4, max_value=19), min_size=1, max_size=4),
        crash_at=st.floats(min_value=120.0, max_value=400.0),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_no_offload_double_applied_or_lost(self, hot, crash_at, seed):
        topology = build_fat_tree(4)
        LinkUtilizationModel(0.2, 0.7, seed=seed).apply(topology)
        engine = SimulationEngine()
        network = FaultyNetwork(
            topology, engine,
            faults=FaultConfig(drop_probability=0.20), seed=seed,
        )
        store = SnapshotStore()
        manager_kwargs = dict(
            update_interval_s=15.0, optimization_period_s=30.0,
            keepalive_timeout_s=45.0, retry_policy=RETRY,
        )
        primary = DUSTManager(
            node_id=0, topology=topology, engine=engine, network=network,
            policy=POLICY, snapshot_store=store, standby_node=1,
            heartbeat_period_s=10.0, **manager_kwargs,
        )
        primary.start()
        standby = StandbyManager(
            node_id=1, topology=topology, engine=engine, network=network,
            policy=POLICY, snapshot_store=store, primary_node=0,
            takeover_silence_s=30.0, check_period_s=10.0,
            manager_kwargs=manager_kwargs,
        )
        standby.start()
        rng = np.random.default_rng(seed)
        clients = {}
        for node in range(2, topology.num_nodes):
            clients[node] = DUSTClient(
                node_id=node, engine=engine, network=network, manager_node=0,
                policy=POLICY,
                base_capacity=92.0 if node in hot else float(rng.uniform(15, 40)),
                data_mb=10.0, retry_policy=RETRY,
            )
            clients[node].start()
        # Crash mid-traffic: the lossy fabric guarantees retransmission
        # timers are pending at essentially any crash instant.
        engine.schedule_at(crash_at, lambda engine: primary.crash())
        engine.run_until(crash_at + 600.0)

        assert standby.promoted
        active = standby.manager
        # The promoted ledger and the live client state must agree
        # exactly: nothing applied twice, nothing silently dropped.
        report = audit_system(active, clients)
        assert report.clean, report.violations
        # And the promoted manager's books balance against both sides.
        ledger_total = sum(o.amount_pct for o in active.ledger.active)
        hosted_total = sum(c.hosted_amount for c in clients.values() if c.alive)
        offloaded_total = sum(
            c.offloaded_amount for c in clients.values() if c.alive
        )
        assert hosted_total == pytest.approx(ledger_total, abs=1e-6)
        assert offloaded_total == pytest.approx(ledger_total, abs=1e-6)
