"""Tests for offload plans/ledger and the post-offload machinery."""

import numpy as np
import pytest

from repro.core import (
    ActiveOffload,
    KeepaliveTracker,
    OffloadLedger,
    OffloadPlan,
    PlacementAssignment,
    QoSClass,
    ReplicaSelector,
    StrictPriorityQueue,
    ThresholdPolicy,
)
from repro.errors import PlacementError, ProtocolError
from repro.routing import PathEngine, ResponseTimeModel
from repro.topology import Link, LinkUtilizationModel, Topology, build_fat_tree


def make_assignment(busy=0, candidate=1, amount=5.0):
    return PlacementAssignment(
        busy=busy, candidate=candidate, amount_pct=amount,
        response_time_s=0.01, hops=1, route=None,
    )


class TestOffloadPlan:
    def test_apply_moves_capacity(self):
        plan = OffloadPlan(assignments=(make_assignment(0, 1, 5.0),))
        caps = plan.apply_to_capacities([90.0, 30.0])
        np.testing.assert_allclose(caps, [85.0, 35.0])

    def test_rollback_inverts(self):
        plan = OffloadPlan(assignments=(make_assignment(0, 1, 5.0),))
        caps = [90.0, 30.0]
        after = plan.apply_to_capacities(caps)
        back = plan.rollback_from_capacities(after)
        np.testing.assert_allclose(back, caps)

    def test_sources_destinations_totals(self):
        plan = OffloadPlan(assignments=(
            make_assignment(0, 1, 5.0), make_assignment(0, 2, 3.0),
            make_assignment(4, 2, 1.0),
        ))
        assert plan.sources == [0, 4]
        assert plan.destinations == [1, 2]
        assert plan.total_amount == pytest.approx(9.0)

    def test_validate_against_catches_overload(self):
        plan = OffloadPlan(assignments=(make_assignment(0, 1, 25.0),))
        with pytest.raises(PlacementError, match="CO_max"):
            plan.validate_against([95.0, 40.0], c_max=70.0, co_max=50.0)

    def test_validate_against_catches_excess_overdraw(self):
        plan = OffloadPlan(assignments=(make_assignment(0, 1, 25.0),))
        with pytest.raises(PlacementError, match="excess"):
            plan.validate_against([90.0, 10.0], c_max=80.0, co_max=50.0)

    def test_valid_plan_passes(self):
        plan = OffloadPlan(assignments=(make_assignment(0, 1, 10.0),))
        plan.validate_against([90.0, 30.0], c_max=80.0, co_max=50.0)


class TestLedger:
    def make(self):
        ledger = OffloadLedger()
        ledger.add(ActiveOffload(source=0, destination=1, amount_pct=5.0,
                                 route=(0, 1), established_at=0.0))
        ledger.add(ActiveOffload(source=0, destination=2, amount_pct=3.0,
                                 route=(0, 2), established_at=1.0))
        ledger.add(ActiveOffload(source=4, destination=1, amount_pct=2.0,
                                 route=(4, 1), established_at=2.0))
        return ledger

    def test_queries(self):
        ledger = self.make()
        assert ledger.hosted_amount(1) == pytest.approx(7.0)
        assert ledger.offloaded_amount(0) == pytest.approx(8.0)
        assert ledger.destinations == [1, 2]
        assert ledger.sources == [0, 4]
        assert len(ledger) == 3

    def test_reclaim_removes_by_source(self):
        ledger = self.make()
        reclaimed = ledger.reclaim(0)
        assert len(reclaimed) == 2
        assert ledger.offloaded_amount(0) == 0.0
        assert len(ledger) == 1

    def test_evict_destination(self):
        ledger = self.make()
        evicted = ledger.evict_destination(1)
        assert {o.source for o in evicted} == {0, 4}
        assert ledger.destinations == [2]

    def test_zero_amount_rejected(self):
        with pytest.raises(PlacementError):
            OffloadLedger().add(ActiveOffload(0, 1, 0.0, (0, 1), 0.0))


class TestStrictPriorityQueue:
    def test_monitoring_dropped_first(self):
        queue = StrictPriorityQueue(capacity_mb=100.0)
        outcome = queue.transmit({
            QoSClass.PRODUCTION: 80.0,
            QoSClass.MONITORING_OFFLOAD: 50.0,
        })
        assert outcome.delivered(QoSClass.PRODUCTION) == pytest.approx(80.0)
        assert outcome.delivered(QoSClass.MONITORING_OFFLOAD) == pytest.approx(20.0)
        assert outcome.dropped(QoSClass.MONITORING_OFFLOAD) == pytest.approx(30.0)
        assert outcome.production_loss_mb == 0.0

    def test_no_loss_when_capacity_sufficient(self):
        queue = StrictPriorityQueue(capacity_mb=1000.0)
        outcome = queue.transmit({
            QoSClass.NETWORK_CONTROL: 10.0,
            QoSClass.PRODUCTION: 100.0,
            QoSClass.MONITORING_OFFLOAD: 200.0,
        })
        assert outcome.production_loss_mb == 0.0
        assert outcome.dropped(QoSClass.MONITORING_OFFLOAD) == 0.0

    def test_priority_ordering_respected(self):
        queue = StrictPriorityQueue(capacity_mb=15.0)
        outcome = queue.transmit({
            QoSClass.MONITORING_OFFLOAD: 10.0,
            QoSClass.NETWORK_CONTROL: 10.0,
        })
        assert outcome.delivered(QoSClass.NETWORK_CONTROL) == pytest.approx(10.0)
        assert outcome.delivered(QoSClass.MONITORING_OFFLOAD) == pytest.approx(5.0)

    def test_paper_qos_guarantee(self):
        """Remote nodes 'are not expected to experience any traffic
        loss': production never loses data while monitoring still has
        anything to drop."""
        queue = StrictPriorityQueue(capacity_mb=50.0)
        outcome = queue.transmit({
            QoSClass.PRODUCTION: 50.0,
            QoSClass.MONITORING_OFFLOAD: 100.0,
        })
        assert outcome.production_loss_mb == 0.0
        assert outcome.dropped(QoSClass.MONITORING_OFFLOAD) == pytest.approx(100.0)

    def test_negative_volume_rejected(self):
        queue = StrictPriorityQueue(capacity_mb=10.0)
        with pytest.raises(PlacementError):
            queue.transmit({QoSClass.PRODUCTION: -1.0})

    def test_negative_capacity_rejected(self):
        with pytest.raises(PlacementError):
            StrictPriorityQueue(capacity_mb=-1.0)


class TestKeepaliveTracker:
    def test_expiry_detection(self):
        tracker = KeepaliveTracker(timeout_s=30.0)
        tracker.record(1, timestamp=100.0)
        tracker.record(2, timestamp=120.0)
        assert tracker.expired(now=125.0) == []
        assert tracker.expired(now=131.0) == [1]
        assert tracker.expired(now=151.0) == [1, 2]

    def test_watch_starts_grace_period(self):
        tracker = KeepaliveTracker(timeout_s=10.0)
        tracker.watch(5, timestamp=0.0)
        assert tracker.expired(now=5.0) == []
        assert tracker.expired(now=11.0) == [5]

    def test_watch_does_not_reset_existing(self):
        tracker = KeepaliveTracker(timeout_s=10.0)
        tracker.record(5, timestamp=100.0)
        tracker.watch(5, timestamp=0.0)
        assert tracker.last_seen(5) == 100.0

    def test_record_keeps_max(self):
        tracker = KeepaliveTracker(timeout_s=10.0)
        tracker.record(1, timestamp=50.0)
        tracker.record(1, timestamp=40.0)  # late-arriving old beat
        assert tracker.last_seen(1) == 50.0

    def test_forget(self):
        tracker = KeepaliveTracker(timeout_s=10.0)
        tracker.record(1, timestamp=0.0)
        tracker.forget(1)
        assert tracker.expired(now=100.0) == []
        assert tracker.tracked == ()

    def test_invalid_timeout(self):
        with pytest.raises(ProtocolError):
            KeepaliveTracker(timeout_s=0.0)


class TestReplicaSelector:
    def selector(self):
        return ReplicaSelector(ResponseTimeModel(engine=PathEngine.DP))

    def test_picks_feasible_minimum_cost(self):
        topo = build_fat_tree(4)
        LinkUtilizationModel(0.3, 0.7, seed=1).apply(topo)
        policy = ThresholdPolicy(c_max=80.0, co_max=50.0, x_min=10.0)
        caps = np.full(topo.num_nodes, 30.0)
        caps[5] = 90.0  # source is busy
        replica = self.selector().select(
            topo, source=5, amount_pct=10.0, data_mb=5.0,
            capacities=caps, policy=policy, exclude=[7],
        )
        assert replica is not None
        assert replica not in (5, 7)
        assert policy.spare_capacity(caps[replica]) >= 10.0

    def test_none_when_no_capacity(self):
        topo = build_fat_tree(4)
        policy = ThresholdPolicy(c_max=80.0, co_max=50.0, x_min=10.0)
        caps = np.full(topo.num_nodes, 45.0)  # spare = 5 < needed 10
        replica = self.selector().select(
            topo, source=0, amount_pct=10.0, data_mb=5.0,
            capacities=caps, policy=policy,
        )
        assert replica is None

    def test_excluded_nodes_skipped(self):
        topo = build_fat_tree(4)
        LinkUtilizationModel(0.3, 0.7, seed=2).apply(topo)
        policy = ThresholdPolicy(c_max=80.0, co_max=50.0, x_min=10.0)
        caps = np.full(topo.num_nodes, 60.0)
        caps[3] = 20.0
        caps[9] = 20.0
        chosen = self.selector().select(
            topo, source=0, amount_pct=10.0, data_mb=5.0,
            capacities=caps, policy=policy, exclude=[3],
        )
        assert chosen == 9
