"""Property-based tests over the full manager/client control loop.

Hypothesis draws random hot-node sets and load levels; after the system
settles, the paper's invariants must hold regardless of the draw:
hot nodes are relieved to C_max when capacity allows, destinations stay
at/below CO_max, and the distributed state audits clean.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import DUSTClient, DUSTManager, ThresholdPolicy, audit_system
from repro.simulation import MessageNetwork, SimulationEngine
from repro.topology import LinkUtilizationModel, build_fat_tree

POLICY = ThresholdPolicy(c_max=80.0, co_max=50.0, x_min=10.0)


def run_scenario(hot_nodes, hot_level, seed):
    topology = build_fat_tree(4)
    LinkUtilizationModel(0.2, 0.7, seed=seed).apply(topology)
    engine = SimulationEngine()
    network = MessageNetwork(topology, engine)
    manager = DUSTManager(
        node_id=0, topology=topology, engine=engine, network=network,
        policy=POLICY, update_interval_s=30.0, optimization_period_s=60.0,
    )
    manager.start()
    rng = np.random.default_rng(seed)
    clients = {}
    for node in range(1, topology.num_nodes):
        clients[node] = DUSTClient(
            node_id=node, engine=engine, network=network, manager_node=0,
            policy=POLICY,
            base_capacity=hot_level if node in hot_nodes else float(rng.uniform(15, 40)),
            data_mb=10.0,
        )
        clients[node].start()
    engine.run_until(800.0)
    return manager, clients, engine


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    hot=st.sets(st.integers(min_value=1, max_value=19), min_size=0, max_size=4),
    hot_level=st.floats(min_value=81.0, max_value=99.0),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_control_loop_invariants(hot, hot_level, seed):
    manager, clients, engine = run_scenario(hot, hot_level, seed)
    now = engine.now

    # 1. Destinations never exceed CO_max.
    for client in clients.values():
        if client.hosted_amount > 0:
            assert client.current_capacity(now) <= POLICY.co_max + 1e-6

    # 2. Hot nodes end at C_max when the system placed their excess; a
    #    node still above C_max must be explained by infeasible rounds
    #    or rejected/pending requests, not silent loss.
    for node in hot:
        client = clients[node]
        relieved = client.current_capacity(now) <= POLICY.c_max + 1e-6
        if not relieved:
            assert (
                manager.counters.infeasible_rounds > 0
                or manager.counters.offloads_rejected > 0
                or len(manager._pending) > 0
            ), f"node {node} stuck busy with no recorded reason"

    # 3. Nobody offloads more than their actual excess.
    for node in hot:
        client = clients[node]
        assert client.offloaded_amount <= max(0.0, hot_level - POLICY.c_max) + 1e-6

    # 4. Cold nodes never offload.
    for node, client in clients.items():
        if node not in hot:
            assert client.offloaded_amount == 0.0

    # 5. Distributed state is consistent.
    report = audit_system(manager, clients)
    assert report.clean, report
