"""Tests for capacity shadow prices (LP duals) on placement reports."""

import numpy as np
import pytest

from repro.core import PlacementEngine, PlacementProblem
from repro.lp import LinearProgram, lp_sum, solve_scipy
from repro.topology import build_star


def star_problem():
    topo = build_star(2)
    topo.links[0].utilization = 0.2  # cheap lane to candidate 1
    topo.links[1].utilization = 0.8  # expensive lane to candidate 2
    return PlacementProblem(
        topology=topo, busy=(0,), candidates=(1, 2),
        cs=np.array([10.0]), cd=np.array([6.0, 20.0]),
        data_mb=np.array([5.0]),
    )


class TestPlacementDuals:
    def test_binding_capacity_has_negative_dual(self):
        report = PlacementEngine(lp_backend="scipy").solve(star_problem())
        assert report.capacity_duals[1] < 0
        assert report.capacity_duals[2] == pytest.approx(0.0)

    def test_dual_equals_cost_difference(self):
        """Textbook LP: the binding cheap lane's shadow price equals the
        (cheap - expensive) unit-cost gap."""
        report = PlacementEngine(lp_backend="scipy").solve(star_problem())
        cheap = 5.0 / (10_000.0 * 0.8)  # D / available bandwidth
        pricey = 5.0 / (10_000.0 * 0.2)
        assert report.capacity_duals[1] == pytest.approx(cheap - pricey)

    def test_dual_predicts_objective_change(self):
        """beta(cd + eps) - beta(cd) ≈ dual * eps for a small increase
        of the binding capacity."""
        base = star_problem()
        report = PlacementEngine(lp_backend="scipy").solve(base)
        eps = 0.5
        bumped = PlacementProblem(
            topology=base.topology, busy=base.busy, candidates=base.candidates,
            cs=base.cs, cd=base.cd + np.array([eps, 0.0]), data_mb=base.data_mb,
        )
        bumped_report = PlacementEngine(lp_backend="scipy").solve(bumped)
        predicted = report.objective_beta + report.capacity_duals[1] * eps
        assert bumped_report.objective_beta == pytest.approx(predicted, rel=1e-6)

    def test_transportation_backend_has_no_duals(self):
        report = PlacementEngine(lp_backend="transportation").solve(star_problem())
        assert report.capacity_duals == {}


class TestScipyDualExtraction:
    def test_ge_constraint_dual_sign_restored(self):
        """>= rows are negated in dense form; duals must flip back."""
        lp = LinearProgram()
        x = lp.add_variable("x", upper=10.0)
        con = lp.add_constraint(x >= 3, name="floor")
        lp.set_objective(x)  # minimum is x = 3, constraint binding
        solution = solve_scipy(lp)
        # Raising the floor by 1 raises the objective by 1 => dual +1.
        assert solution.duals["floor"] == pytest.approx(1.0)

    def test_equality_dual_present(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        y = lp.add_variable("y")
        lp.add_constraint(x + y == 5, name="bal")
        lp.set_objective(2 * x + 3 * y)
        solution = solve_scipy(lp)
        # All mass on x; marginal cost of one more unit of balance = 2.
        assert solution.duals["bal"] == pytest.approx(2.0)

    def test_slack_constraint_dual_zero(self):
        lp = LinearProgram()
        x = lp.add_variable("x", upper=1.0)
        lp.add_constraint(x <= 100, name="loose")
        lp.set_objective(-x)
        solution = solve_scipy(lp)
        assert solution.duals["loose"] == pytest.approx(0.0)
