"""Integration tests: DUST-Manager + DUST-Clients on the event engine."""

import numpy as np
import pytest

from repro.core import DUSTClient, DUSTManager, ThresholdPolicy
from repro.simulation import MessageNetwork, SimulationEngine
from repro.topology import LinkUtilizationModel, build_fat_tree

POLICY = ThresholdPolicy(c_max=80.0, co_max=50.0, x_min=10.0)


def build_system(
    hot_nodes=(5,),
    hot_capacity=92.0,
    cool_capacity=30.0,
    optimization_period_s=60.0,
    keepalive_timeout_s=30.0,
    seed=3,
):
    topology = build_fat_tree(4)
    LinkUtilizationModel(0.2, 0.7, seed=seed).apply(topology)
    engine = SimulationEngine()
    network = MessageNetwork(topology, engine)
    manager = DUSTManager(
        node_id=0,
        topology=topology,
        engine=engine,
        network=network,
        policy=POLICY,
        update_interval_s=30.0,
        optimization_period_s=optimization_period_s,
        keepalive_timeout_s=keepalive_timeout_s,
    )
    manager.start()
    clients = {}
    for node in range(1, topology.num_nodes):
        client = DUSTClient(
            node_id=node,
            engine=engine,
            network=network,
            manager_node=0,
            policy=POLICY,
            base_capacity=hot_capacity if node in hot_nodes else cool_capacity,
            data_mb=10.0,
            keepalive_period_s=10.0,
        )
        client.start()
        clients[node] = client
    return engine, manager, clients


class TestAdmission:
    def test_clients_receive_ack_and_start_stats(self):
        engine, manager, clients = build_system()
        engine.run_until(120.0)
        assert manager.counters.acks_sent == len(clients)
        assert manager.counters.stats_received > 0
        for client in clients.values():
            assert client.update_interval_s == 30.0
            assert client.stats_sent > 0

    def test_non_capable_client_recorded(self):
        engine, manager, clients = build_system()
        # Recreate node 7 as non-capable on a fresh system instead:
        engine2 = SimulationEngine()
        topology = manager.topology
        # simpler: check NMDB after manual capability message
        from repro.core import OffloadCapable

        manager.nmdb.register_capability(
            OffloadCapable(node_id=7, capable=False, c_max=80.0, co_max=50.0)
        )
        assert not manager.nmdb.record(7).capable


class TestOffloadWorkflow:
    def test_busy_node_gets_offloaded_to_cmax(self):
        engine, manager, clients = build_system(hot_nodes=(5,))
        engine.run_until(600.0)
        hot = clients[5]
        assert hot.offloaded_amount == pytest.approx(12.0)  # 92 - 80
        assert hot.current_capacity(engine.now) == pytest.approx(80.0)
        assert manager.counters.offloads_established >= 1

    def test_destinations_stay_within_co_max(self):
        engine, manager, clients = build_system(hot_nodes=(5, 9, 14))
        engine.run_until(900.0)
        for client in clients.values():
            if client.hosted_amount > 0:
                assert client.current_capacity(engine.now) <= POLICY.co_max + 1e-6

    def test_ledger_matches_client_state(self):
        engine, manager, clients = build_system(hot_nodes=(5,))
        engine.run_until(600.0)
        for offload in manager.ledger.active:
            src = clients[offload.source]
            dst = clients[offload.destination]
            assert src.offloaded_to.get(offload.destination, 0.0) >= offload.amount_pct - 1e-9
            assert dst.hosted.get(offload.source) is not None

    def test_no_offload_when_nothing_busy(self):
        engine, manager, clients = build_system(hot_nodes=())
        engine.run_until(400.0)
        assert manager.counters.offload_requests_sent == 0
        assert len(manager.ledger) == 0

    def test_keepalives_flow_from_destinations(self):
        engine, manager, clients = build_system(hot_nodes=(5,))
        engine.run_until(600.0)
        assert manager.counters.keepalives_received > 0


class TestFailureRecovery:
    def test_destination_failure_triggers_replica(self):
        engine, manager, clients = build_system(hot_nodes=(5,))
        engine.run_until(300.0)
        assert manager.ledger.active
        failed = manager.ledger.active[0].destination
        clients[failed].fail()
        engine.run_until(900.0)
        assert manager.counters.destinations_failed >= 1
        # Workload was either re-homed or returned — never left dangling.
        assert manager.counters.replicas_installed + manager.counters.workloads_returned >= 1
        assert all(o.destination != failed for o in manager.ledger.active)

    def test_replica_receives_workload(self):
        engine, manager, clients = build_system(hot_nodes=(5,))
        engine.run_until(300.0)
        first = manager.ledger.active[0]
        clients[first.destination].fail()
        engine.run_until(900.0)
        if manager.counters.replicas_installed:
            replicas = [o for o in manager.ledger.active if o.via_replica]
            assert replicas
            for offload in replicas:
                host = clients[offload.destination]
                assert host.hosted_amount >= offload.amount_pct - 1e-9


class TestReclaim:
    def test_recovered_source_reclaims_workload(self):
        engine, manager, clients = build_system(hot_nodes=(5,))
        engine.run_until(300.0)
        hot = clients[5]
        assert hot.offloaded_amount > 0
        # Load subsides far below C_max (hysteresis-safe).
        hot._base_capacity = 40.0
        engine.run_until(900.0)
        assert manager.counters.reclaims_issued >= 1
        assert hot.offloaded_amount == 0.0
        assert manager.ledger.offloaded_amount(5) == 0.0
        # Nobody still hosts for node 5.
        for client in clients.values():
            assert 5 not in client.hosted


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        outcomes = []
        for _ in range(2):
            engine, manager, clients = build_system(hot_nodes=(5, 9), seed=4)
            engine.run_until(600.0)
            outcomes.append(
                (
                    manager.counters.offloads_established,
                    tuple(
                        (o.source, o.destination, round(o.amount_pct, 9))
                        for o in manager.ledger.active
                    ),
                )
            )
        assert outcomes[0] == outcomes[1]
