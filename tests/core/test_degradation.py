"""Degradation ladder: escalation, hysteresis, and implied policy."""

import pytest

from repro.core import DegradationLadder, DegradationLevel, LadderConfig
from repro.errors import SimulationError

CONFIG = LadderConfig(shed_low_at=0.5, widen_at=0.75, freeze_at=0.92,
                      recover_margin=0.15, widen_factor=2.0)


class TestLadderConfig:
    def test_threshold_per_level(self):
        assert CONFIG.threshold(DegradationLevel.NORMAL) == 0.0
        assert CONFIG.threshold(DegradationLevel.SHED_LOW) == 0.5
        assert CONFIG.threshold(DegradationLevel.WIDEN) == 0.75
        assert CONFIG.threshold(DegradationLevel.FREEZE) == 0.92

    @pytest.mark.parametrize("bad", [
        dict(shed_low_at=0.0),
        dict(freeze_at=1.5),
        dict(shed_low_at=0.8, widen_at=0.7),
        dict(widen_at=0.95),  # >= freeze_at
        dict(recover_margin=0.0),
        dict(recover_margin=0.6),  # >= shed_low_at
        dict(widen_factor=0.5),
    ])
    def test_validation(self, bad):
        with pytest.raises(SimulationError):
            LadderConfig(**bad)


class TestEscalation:
    def test_starts_normal(self):
        ladder = DegradationLadder(CONFIG)
        assert ladder.level is DegradationLevel.NORMAL
        assert not ladder.shedding_low_tier
        assert not ladder.frozen

    def test_escalates_one_rung_at_threshold(self):
        ladder = DegradationLadder(CONFIG)
        assert ladder.update(0.49, now=1.0) is DegradationLevel.NORMAL
        assert ladder.update(0.5, now=2.0) is DegradationLevel.SHED_LOW
        assert ladder.shedding_low_tier
        assert not ladder.frozen

    def test_escalates_straight_to_justified_rung(self):
        """A queue that fills in one tick jumps NORMAL -> FREEZE without
        visiting the intermediate rungs."""
        ladder = DegradationLadder(CONFIG)
        assert ladder.update(0.95, now=1.0) is DegradationLevel.FREEZE
        assert ladder.frozen
        assert ladder.transitions == [
            (1.0, DegradationLevel.NORMAL, DegradationLevel.FREEZE, 0.95)
        ]

    def test_fill_may_exceed_one_under_overflow(self):
        ladder = DegradationLadder(CONFIG)
        assert ladder.update(1.3, now=0.0) is DegradationLevel.FREEZE

    def test_max_level_tracks_high_water_mark(self):
        ladder = DegradationLadder(CONFIG)
        ladder.update(0.8, now=0.0)
        ladder.update(0.1, now=1.0)
        ladder.update(0.1, now=2.0)
        assert ladder.level is DegradationLevel.NORMAL
        assert ladder.max_level is DegradationLevel.WIDEN


class TestHysteresis:
    def test_recovers_one_rung_at_a_time(self):
        ladder = DegradationLadder(CONFIG)
        ladder.update(0.95, now=0.0)  # FREEZE
        # Far below every threshold, yet only one rung down per update.
        assert ladder.update(0.0, now=1.0) is DegradationLevel.WIDEN
        assert ladder.update(0.0, now=2.0) is DegradationLevel.SHED_LOW
        assert ladder.update(0.0, now=3.0) is DegradationLevel.NORMAL
        assert ladder.update(0.0, now=4.0) is DegradationLevel.NORMAL
        assert len(ladder.transitions) == 4

    def test_hovering_below_threshold_does_not_flap(self):
        """Fill just under the engage threshold but above the recovery
        point keeps the current rung."""
        ladder = DegradationLadder(CONFIG)
        ladder.update(0.5, now=0.0)  # SHED_LOW
        # Recovery point is 0.5 - 0.15 = 0.35.
        assert ladder.update(0.36, now=1.0) is DegradationLevel.SHED_LOW
        assert ladder.update(0.49, now=2.0) is DegradationLevel.SHED_LOW
        assert ladder.update(0.35, now=3.0) is DegradationLevel.NORMAL

    def test_no_transition_recorded_when_level_holds(self):
        ladder = DegradationLadder(CONFIG)
        ladder.update(0.1, now=0.0)
        ladder.update(0.2, now=1.0)
        assert ladder.transitions == []


class TestImpliedPolicy:
    def test_resolve_period_widens_geometrically(self):
        ladder = DegradationLadder(CONFIG)
        assert ladder.resolve_period(30.0) == 30.0
        ladder.update(0.5, now=0.0)  # SHED_LOW: not widened yet
        assert ladder.resolve_period(30.0) == 30.0
        ladder.update(0.75, now=1.0)  # WIDEN
        assert ladder.resolve_period(30.0) == 60.0
        ladder.update(0.95, now=2.0)  # FREEZE widens once more
        assert ladder.resolve_period(30.0) == 120.0

    def test_transition_counter_published(self):
        from repro.obs.registry import get_registry

        registry = get_registry()
        before = registry.counter("soak.ladder_transitions").value
        ladder = DegradationLadder(CONFIG)
        ladder.update(0.6, now=0.0)
        ladder.update(0.0, now=1.0)
        assert registry.counter("soak.ladder_transitions").value - before == 2
        assert registry.gauge("soak.ladder_level").value == 0.0
