"""Tests for the branch-and-bound MILP layer."""

import numpy as np
import pytest

from repro.lp import (
    LinearProgram,
    SolveStatus,
    lp_sum,
    solve_branch_and_bound,
    solve_scipy,
)


def knapsack_lp(weights, values, capacity):
    lp = LinearProgram("knapsack")
    xs = [lp.add_variable(f"v{i}", upper=1.0, is_integer=True) for i in range(len(weights))]
    lp.add_constraint(lp_sum(w * x for w, x in zip(weights, xs)) <= capacity)
    lp.set_objective(lp_sum(-v * x for v, x in zip(values, xs)))
    return lp


def test_knapsack_optimum():
    lp = knapsack_lp([3, 4, 5, 8, 9], [4, 5, 6, 10, 11], 13)
    sol = solve_branch_and_bound(lp)
    assert sol.status is SolveStatus.OPTIMAL
    assert -sol.objective == pytest.approx(16.0)
    chosen = {k for k, v in sol.values.items() if v > 0.5}
    assert chosen == {"v2", "v3"}


def test_continuous_program_falls_back_to_lp():
    lp = LinearProgram()
    x = lp.add_variable("x", upper=4.0)
    lp.set_objective(-x)
    sol = solve_branch_and_bound(lp)
    assert sol.status is SolveStatus.OPTIMAL
    assert sol["x"] == pytest.approx(4.0)
    assert sol.backend == "branch-and-bound"


def test_integer_values_are_integral():
    lp = LinearProgram()
    x = lp.add_variable("x", upper=10.0, is_integer=True)
    y = lp.add_variable("y", upper=10.0)
    lp.add_constraint(2 * x + y <= 7.5)
    lp.set_objective(-(x + 0.1 * y))
    sol = solve_branch_and_bound(lp)
    assert sol.status is SolveStatus.OPTIMAL
    assert sol["x"] == pytest.approx(round(sol["x"]))


def test_infeasible_milp():
    lp = LinearProgram()
    x = lp.add_variable("x", upper=5.0, is_integer=True)
    lp.add_constraint(x >= 6)
    lp.set_objective(x)
    assert solve_branch_and_bound(lp).status is SolveStatus.INFEASIBLE


def test_fractional_only_feasible_region_forces_branching():
    """x in [0.4, 0.6] has no integer point: must come back infeasible."""
    lp = LinearProgram()
    x = lp.add_variable("x", is_integer=True)
    lp.add_constraint(x >= 0.4)
    lp.add_constraint(x <= 0.6)
    lp.set_objective(x)
    assert solve_branch_and_bound(lp).status is SolveStatus.INFEASIBLE


@pytest.mark.parametrize("seed", range(8))
def test_matches_scipy_milp_on_random_knapsacks(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(3, 8))
    weights = rng.integers(1, 10, n).tolist()
    values = rng.integers(1, 12, n).tolist()
    capacity = int(max(1, sum(weights) * 0.4))
    lp = knapsack_lp(weights, values, capacity)
    own = solve_branch_and_bound(lp)
    ref = solve_scipy(lp)  # dispatches to scipy.optimize.milp
    assert own.status == ref.status
    if ref.status is SolveStatus.OPTIMAL:
        assert own.objective == pytest.approx(ref.objective, abs=1e-6)
