"""Distributed transportation solve: exactness against the centralized LP.

The distributed protocol IS the transportation simplex with its
candidate-list pricing split across zones, so the bar is not
"approximately right" — on every instance the status must match the
centralized solver's and (when optimal) the objective must agree to
float noise, with the certified gap below 1e-6.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.placement import PlacementEngine, PlacementProblem, PlacementSession
from repro.core.roles import classify_network
from repro.core.thresholds import ThresholdPolicy
from repro.core.zoning import (
    DistributedPlacementEngine,
    DistributedPlacementReport,
    partition_by_pod,
    zone_boundaries,
    zone_relief_views,
)
from repro.core.metrics import merge_partial_relief, relief_by_source, relief_divergence
from repro.errors import PlacementError
from repro.experiments.common import IterationSampler
from repro.lp import (
    SolveStatus,
    TransportationProblem,
    solve_distributed,
    solve_transportation,
)
from repro.lp.distributed import extract_zone_subproblems, run_protocol
from repro.routing.response_time import PathEngine, ResponseTimeModel
from repro.topology.fattree import build_fat_tree

GAP_TOL = 1e-6


def _random_problem(rng: np.random.Generator):
    """A random (possibly infeasible, possibly forbidden-laned) instance."""
    m = int(rng.integers(1, 15))
    n = int(rng.integers(1, 18))
    supply = rng.uniform(0.5, 12.0, m)
    demand = rng.uniform(0.5, 12.0, n)
    if rng.random() < 0.85:  # mostly feasible: scale demand above supply
        demand *= (supply.sum() / demand.sum()) * float(rng.uniform(1.05, 1.8))
    cost = rng.uniform(0.1, 60.0, (m, n))
    if rng.random() < 0.6:  # heterogeneous cost scales per row
        cost *= rng.uniform(0.2, 5.0, (m, 1))
    forbidden = rng.random((m, n)) < 0.25
    cost = np.where(forbidden, np.inf, cost)
    return TransportationProblem(supply, demand, cost)


def _random_zones(rng: np.random.Generator, m: int, n: int):
    """A random partition of rows and columns into 1-5 zones."""
    zones = int(rng.integers(1, 6))
    row_owner = rng.integers(0, zones, m)
    col_owner = rng.integers(0, zones, n)
    zone_rows = [list(np.flatnonzero(row_owner == z)) for z in range(zones)]
    zone_cols = [list(np.flatnonzero(col_owner == z)) for z in range(zones)]
    return zone_rows, zone_cols


class TestConvergenceCorpus:
    """>= 50 seeded instances: exact parity with the centralized LP."""

    @pytest.mark.parametrize("seed", range(60))
    def test_matches_centralized(self, seed):
        rng = np.random.default_rng(seed)
        problem = _random_problem(rng)
        zone_rows, zone_cols = _random_zones(
            rng, problem.num_sources, problem.num_destinations
        )
        price_rule = "dantzig" if seed % 5 == 0 else "block"
        reference = solve_transportation(problem)
        result = solve_distributed(
            problem, zone_rows, zone_cols, price_rule=price_rule
        )
        assert result.status == reference.status, seed
        if reference.status is SolveStatus.OPTIMAL:
            scale = max(1.0, abs(reference.objective))
            assert abs(result.objective - reference.objective) <= GAP_TOL * scale
            assert result.gap <= GAP_TOL
            # The flows must satisfy the constraints they claim to.
            flow = result.flow
            np.testing.assert_allclose(
                flow.sum(axis=1), problem.supply, atol=1e-6
            )
            assert (flow.sum(axis=0) <= problem.demand + 1e-6).all()
            assert (flow >= -1e-9).all()

    def test_gap_tol_early_stop_is_certified(self):
        rng = np.random.default_rng(123)
        problem = _random_problem(rng)
        zone_rows, zone_cols = _random_zones(
            rng, problem.num_sources, problem.num_destinations
        )
        reference = solve_transportation(problem)
        result = solve_distributed(
            problem, zone_rows, zone_cols, gap_tol=1e-2
        )
        if reference.status is SolveStatus.OPTIMAL:
            assert result.status is SolveStatus.OPTIMAL
            # The certificate must hold: true gap within the claimed bound.
            scale = max(1.0, abs(reference.objective))
            assert result.objective >= reference.objective - 1e-9
            assert (
                result.objective - reference.objective
            ) / scale <= result.gap + 1e-9

    def test_worker_reuse_warm_starts_presolve(self):
        rng = np.random.default_rng(7)
        problem = _random_problem(rng)
        zone_rows, zone_cols = _random_zones(
            rng, problem.num_sources, problem.num_destinations
        )
        workers = extract_zone_subproblems(problem, zone_rows, zone_cols)
        first = run_protocol(workers)
        # Perturb costs slightly and re-run through the same workers:
        # their presolves should warm-start from the previous basis.
        for worker in workers:
            worker.cost_rows = np.where(
                np.isfinite(worker.cost_rows),
                worker.cost_rows * 1.01,
                worker.cost_rows,
            )
            worker.final_flows = ()
            worker.final_status = None
        second = run_protocol(workers)
        assert second.status == first.status
        if first.status is SolveStatus.OPTIMAL:
            assert second.presolve_warm_hits >= 1


class TestTopologyLevel:
    """The DistributedPlacementEngine against the warm-started session
    on real fat-tree snapshots, k in {4, 8, 16}."""

    @pytest.mark.parametrize("k", [4, 8, 16])
    def test_fat_tree_parity(self, k):
        policy = ThresholdPolicy(c_max=80.0, co_max=50.0, x_min=10.0)
        topology = build_fat_tree(k)
        sampler = IterationSampler(topology, x_min=policy.x_min, seed=k)
        _, capacities = next(iter(sampler.states(1)))
        roles = classify_network(capacities, policy)
        problem = PlacementProblem(
            topology=topology,
            busy=tuple(roles.busy),
            candidates=tuple(roles.candidates),
            cs=np.array([policy.excess_load(capacities[b]) for b in roles.busy]),
            cd=np.array(
                [policy.spare_capacity(capacities[c]) for c in roles.candidates]
            ),
            data_mb=np.full(len(roles.busy), 10.0),
            max_hops=4,
        )

        def engine():
            return PlacementEngine(
                response_model=ResponseTimeModel(engine=PathEngine.DP, max_hops=4),
                with_routes=False,
            )

        central = PlacementSession(engine=engine()).solve(problem)
        zones = partition_by_pod(topology)
        distributed = DistributedPlacementEngine(zones=zones, engine=engine()).solve(
            problem
        )
        assert isinstance(distributed, DistributedPlacementReport)
        assert distributed.status == central.status
        scale = max(1.0, abs(central.objective_beta))
        assert (
            abs(distributed.objective_beta - central.objective_beta)
            <= GAP_TOL * scale
        )
        # Same total relief per source, however the lanes were split.
        assert (
            relief_divergence(
                relief_by_source(
                    type("O", (), {"source": a.busy, "amount_pct": a.amount_pct})()
                    for a in central.assignments
                ),
                zone_relief_views(zones, distributed.assignments),
            )
            <= 1e-6
        )
        assert distributed.boundary_sizes == {
            zid: len(nodes)
            for zid, nodes in zone_boundaries(topology, zones).items()
        }

    def test_partial_views_merge_to_global(self):
        topology = build_fat_tree(4)
        zones = partition_by_pod(topology)
        policy = ThresholdPolicy(c_max=80.0, co_max=50.0, x_min=10.0)
        sampler = IterationSampler(topology, x_min=policy.x_min, seed=2)
        _, capacities = next(iter(sampler.states(1)))
        roles = classify_network(capacities, policy)
        problem = PlacementProblem(
            topology=topology,
            busy=tuple(roles.busy),
            candidates=tuple(roles.candidates),
            cs=np.array([policy.excess_load(capacities[b]) for b in roles.busy]),
            cd=np.array(
                [policy.spare_capacity(capacities[c]) for c in roles.candidates]
            ),
            data_mb=np.full(len(roles.busy), 10.0),
        )
        report = DistributedPlacementEngine(zones=zones).solve(problem)
        views = zone_relief_views(zones, report.assignments)
        merged = merge_partial_relief(views)
        direct = {}
        for a in report.assignments:
            direct[a.busy] = direct.get(a.busy, 0.0) + a.amount_pct
        assert merged.keys() == direct.keys()
        for key in direct:
            assert merged[key] == pytest.approx(direct[key])
        # And the divergence metric scores the sliced view as identical.
        assert relief_divergence(direct, views) == 0.0

    def test_rejects_integral_problems(self):
        topology = build_fat_tree(4)
        zones = partition_by_pod(topology)
        problem = PlacementProblem(
            topology=topology,
            busy=(0,),
            candidates=(5,),
            cs=np.array([4.0]),
            cd=np.array([10.0]),
            data_mb=np.array([10.0]),
            integral=True,
        )
        with pytest.raises(PlacementError):
            DistributedPlacementEngine(zones=zones).solve(problem)


class TestEdgeCases:
    def test_infeasible_matches_centralized(self):
        problem = TransportationProblem(
            np.array([5.0, 7.0]), np.array([3.0]), np.array([[1.0], [2.0]])
        )
        reference = solve_transportation(problem)
        result = solve_distributed(problem, [[0], [1]], [[0], []])
        assert result.status == reference.status
        assert result.status is SolveStatus.INFEASIBLE
        assert not result.feasible

    def test_all_forbidden_is_infeasible(self):
        problem = TransportationProblem(
            np.array([2.0]), np.array([5.0]), np.array([[np.inf]])
        )
        result = solve_distributed(problem, [[0]], [[0]])
        assert result.status is SolveStatus.INFEASIBLE

    def test_zero_supply_trivially_optimal(self):
        problem = TransportationProblem(
            np.array([0.0, 0.0]), np.array([4.0]), np.array([[1.0], [2.0]])
        )
        result = solve_distributed(problem, [[0, 1]], [[0]])
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(0.0)

    def test_empty_zone_participates_harmlessly(self):
        problem = TransportationProblem(
            np.array([3.0]), np.array([2.0, 2.0]), np.array([[1.0, 4.0]])
        )
        result = solve_distributed(problem, [[0], []], [[0], [1]])
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(1.0 * 2.0 + 4.0 * 1.0)

    def test_invalid_partition_rejected(self):
        problem = TransportationProblem(
            np.array([3.0]), np.array([4.0]), np.array([[1.0]])
        )
        with pytest.raises(Exception):
            solve_distributed(problem, [[0], [0]], [[0], []])
