"""Warm-start equivalence suite for the LP layer.

The contract under test: a warm start never changes *what* is computed
— cold Vogel starts, warm re-solves from a previous basis (including
stale bases repaired after a perturbation) and scipy/HiGHS must agree
on status and objective to 1e-6 — it only changes how many pivots the
solve spends getting there.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lp import (
    LinearProgram,
    SimplexBasis,
    SolveStatus,
    TransportationBasis,
    TransportationProblem,
    lp_sum,
    solve_branch_and_bound,
    solve_scipy,
    solve_simplex,
    solve_transportation,
)


def scipy_reference(supply, demand, cost):
    """HiGHS solve of the (possibly unbalanced) transportation instance."""
    m, n = cost.shape
    lp = LinearProgram()
    xs = {}
    for i in range(m):
        for j in range(n):
            if np.isfinite(cost[i, j]):
                xs[(i, j)] = lp.add_variable(f"x_{i}_{j}")
    for i in range(m):
        row = [xs[(i, j)] for j in range(n) if (i, j) in xs]
        if not row:
            if supply[i] > 1e-12:
                return None  # cut-off supply row: trivially infeasible
            continue
        lp.add_constraint(lp_sum(row) == float(supply[i]))
    for j in range(n):
        col = [xs[(i, j)] for i in range(m) if (i, j) in xs]
        if col:
            lp.add_constraint(lp_sum(col) <= float(demand[j]))
    lp.set_objective(lp_sum(cost[i, j] * v for (i, j), v in xs.items()))
    return solve_scipy(lp)


def random_instance(seed, m, n, with_forbidden, degenerate):
    """Unbalanced instance; optionally forbidden lanes and tying supplies."""
    rng = np.random.default_rng(seed)
    if degenerate:
        # Repeated integer supplies/demands force flow ties, the classic
        # breeding ground for degenerate pivots and cycling.
        supply = rng.integers(1, 4, m).astype(float)
        demand = rng.integers(1, 4, n).astype(float)
    else:
        supply = rng.uniform(0.0, 10.0, m)
        demand = rng.uniform(0.0, 10.0, n)
    if supply.sum() > demand.sum():
        supply *= 0.85 * demand.sum() / supply.sum()
    cost = rng.uniform(1.0, 10.0, (m, n))
    if with_forbidden:
        cost = np.where(rng.random((m, n)) < 0.25, np.inf, cost)
    return supply, demand, cost


def assert_matches_reference(result, ref, supply, demand, cost):
    if ref is None:
        assert result.status is SolveStatus.INFEASIBLE
        return
    assert result.status == ref.status, (result.status, ref.status)
    if ref.status is SolveStatus.OPTIMAL:
        assert result.objective == pytest.approx(ref.objective, abs=1e-6)
        np.testing.assert_allclose(result.flow.sum(axis=1), supply, atol=1e-6)
        assert (result.flow.sum(axis=0) <= demand + 1e-6).all()
        assert (result.flow[~np.isfinite(cost)] <= 1e-9).all()


class TestTransportationWarmStart:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=100_000),
        st.booleans(),
        st.booleans(),
    )
    def test_cold_warm_and_scipy_agree_under_perturbation(
        self, m, n, seed, with_forbidden, degenerate
    ):
        supply, demand, cost = random_instance(
            seed, m, n, with_forbidden, degenerate
        )
        cold = solve_transportation(TransportationProblem(supply, demand, cost))
        assert_matches_reference(
            cold, scipy_reference(supply, demand, cost), supply, demand, cost
        )
        if cold.status is not SolveStatus.OPTIMAL:
            return
        assert isinstance(cold.basis, TransportationBasis)
        assert not cold.warm_started

        # Perturb one supply (stays feasible: supplies only shrink) and
        # re-solve warm from the stale basis.
        rng = np.random.default_rng(seed + 1)
        perturbed = supply.copy()
        perturbed[rng.integers(0, m)] *= rng.uniform(0.3, 0.999)
        warm = solve_transportation(
            TransportationProblem(perturbed, demand, cost),
            warm_start=cold.basis,
        )
        # warm_started may be False here: a shrunk supply can make the
        # old tree primal-infeasible, and the documented behaviour is a
        # silent Vogel fallback. Either way the optimum must match.
        assert_matches_reference(
            warm,
            scipy_reference(perturbed, demand, cost),
            perturbed,
            demand,
            cost,
        )

    def test_identical_resolve_takes_zero_pivots(self):
        supply = np.array([6.0, 4.0])
        demand = np.array([5.0, 5.0, 3.0])
        cost = np.array([[1.0, 4.0, 6.0], [3.0, 2.0, 2.0]])
        cold = solve_transportation(TransportationProblem(supply, demand, cost))
        warm = solve_transportation(
            TransportationProblem(supply, demand, cost), warm_start=cold.basis
        )
        assert warm.status is SolveStatus.OPTIMAL
        assert warm.warm_started
        assert warm.iterations == 0
        assert warm.objective == pytest.approx(cold.objective, abs=1e-9)

    def test_mismatched_shape_hint_is_ignored(self):
        small = solve_transportation(
            TransportationProblem(
                np.array([1.0]), np.array([2.0]), np.array([[1.0]])
            )
        )
        big = solve_transportation(
            TransportationProblem(
                np.array([3.0, 2.0]),
                np.array([4.0, 4.0]),
                np.array([[1.0, 2.0], [2.0, 1.0]]),
            ),
            warm_start=small.basis,
        )
        assert big.status is SolveStatus.OPTIMAL
        assert not big.warm_started


def simplex_fixture(rhs_scale=1.0):
    """A small LP whose RHS can be perturbed without changing structure."""
    lp = LinearProgram("warm-fixture")
    x = lp.add_variable("x")
    y = lp.add_variable("y")
    z = lp.add_variable("z")
    lp.add_constraint(x + y + z == 10.0 * rhs_scale, name="mass")
    lp.add_constraint(2.0 * x + y <= 12.0 * rhs_scale, name="cap_a")
    lp.add_constraint(y + 3.0 * z <= 15.0 * rhs_scale, name="cap_b")
    lp.set_objective(3.0 * x + 1.0 * y + 2.0 * z)
    return lp


class TestSimplexWarmStart:
    def test_warm_resolve_after_rhs_perturbation(self):
        cold = solve_simplex(simplex_fixture())
        assert cold.status is SolveStatus.OPTIMAL
        assert isinstance(cold.basis, SimplexBasis)

        perturbed = simplex_fixture(rhs_scale=0.9)
        warm = solve_simplex(perturbed, warm_start=cold.basis)
        reference = solve_scipy(perturbed)
        assert warm.status is SolveStatus.OPTIMAL
        assert warm.warm_started
        assert warm.objective == pytest.approx(reference.objective, abs=1e-6)

        cold_perturbed = solve_simplex(perturbed)
        assert cold_perturbed.objective == pytest.approx(
            reference.objective, abs=1e-6
        )
        assert warm.iterations <= cold_perturbed.iterations

    def test_bare_name_hint_still_accepted(self):
        cold = solve_simplex(simplex_fixture())
        warm = solve_simplex(simplex_fixture(), warm_start=cold.basis.names)
        assert warm.status is SolveStatus.OPTIMAL
        assert warm.objective == pytest.approx(cold.objective, abs=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_random_rhs_perturbations_keep_the_optimum(self, seed):
        rng = np.random.default_rng(seed)
        cold = solve_simplex(simplex_fixture())
        scale = float(rng.uniform(0.5, 1.5))
        perturbed = simplex_fixture(rhs_scale=scale)
        warm = solve_simplex(perturbed, warm_start=cold.basis)
        reference = solve_scipy(perturbed)
        assert warm.status == reference.status
        if reference.status is SolveStatus.OPTIMAL:
            assert warm.objective == pytest.approx(reference.objective, abs=1e-6)


def heterogeneous_ilp(seed, m=3, n=4):
    """Placement-shaped ILP; non-unit coefficients break unimodularity."""
    rng = np.random.default_rng(seed)
    cost = rng.uniform(1.0, 10.0, (m, n))
    coeff = rng.uniform(0.6, 1.7, (m, n))
    supply = rng.integers(2, 6, m).astype(float)
    cap = np.full(n, supply.sum() * coeff.mean() * 1.25 / n)
    lp = LinearProgram(f"warm-ilp-{seed}")
    x = {
        (i, j): lp.add_variable(f"x_{i}_{j}", is_integer=True)
        for i in range(m)
        for j in range(n)
    }
    for i in range(m):
        lp.add_constraint(
            lp_sum(x[(i, j)] for j in range(n)) == float(supply[i]),
            name=f"supply_{i}",
        )
    for j in range(n):
        lp.add_constraint(
            lp_sum(float(coeff[i, j]) * x[(i, j)] for i in range(m))
            <= float(cap[j]),
            name=f"capacity_{j}",
        )
    lp.set_objective(lp_sum(float(cost[i, j]) * x[(i, j)] for (i, j) in x))
    return lp


class TestBranchAndBoundWarmStart:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_warm_start_never_changes_the_optimum(self, seed):
        lp = heterogeneous_ilp(seed)
        reference = solve_scipy(lp)
        cold = solve_branch_and_bound(lp, warm_start=False)
        warm = solve_branch_and_bound(lp, warm_start=True)
        assert cold.status == reference.status
        assert warm.status == reference.status
        if reference.status is SolveStatus.OPTIMAL:
            assert cold.objective == pytest.approx(reference.objective, abs=1e-6)
            assert warm.objective == pytest.approx(reference.objective, abs=1e-6)

    def test_warm_start_reduces_pivots_in_aggregate(self):
        # Per instance the dual restart can lose (a different starting
        # basis reshapes the whole branching trajectory); the perf claim
        # is aggregate. Also guard that the fixtures don't collapse to
        # integral relaxations (totally unimodular => nothing to do).
        cold_total = warm_total = branched = 0
        for seed in range(6):
            lp = heterogeneous_ilp(seed)
            cold = solve_branch_and_bound(lp, warm_start=False)
            warm = solve_branch_and_bound(lp, warm_start=True)
            cold_total += cold.total_pivots
            warm_total += warm.total_pivots
            if cold.total_pivots > cold.iterations:  # more than the root LP
                branched += 1
        assert branched >= 2
        assert warm_total < cold_total
