"""Tests for the transportation (NW-corner + MODI) solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SolverError
from repro.lp import (
    LinearProgram,
    SolveStatus,
    TransportationProblem,
    lp_sum,
    solve_scipy,
    solve_transportation,
)


def test_textbook_instance():
    problem = TransportationProblem(
        supply=np.array([10.0, 5.0]),
        demand=np.array([8.0, 9.0, 4.0]),
        cost=np.array([[1.0, 2.0, 3.0], [4.0, 1.0, 2.0]]),
    )
    result = solve_transportation(problem)
    assert result.status is SolveStatus.OPTIMAL
    assert result.objective == pytest.approx(17.0)
    # Supplies shipped exactly.
    np.testing.assert_allclose(result.flow.sum(axis=1), problem.supply, atol=1e-9)
    # Demands respected.
    assert (result.flow.sum(axis=0) <= problem.demand + 1e-9).all()


def test_zero_supply_trivial():
    problem = TransportationProblem(
        supply=np.zeros(2), demand=np.array([5.0]), cost=np.ones((2, 1))
    )
    result = solve_transportation(problem)
    assert result.status is SolveStatus.OPTIMAL
    assert result.objective == 0.0
    assert not result.flow.any()


def test_oversupply_is_infeasible():
    problem = TransportationProblem(
        supply=np.array([10.0]), demand=np.array([5.0]), cost=np.array([[1.0]])
    )
    assert solve_transportation(problem).status is SolveStatus.INFEASIBLE


def test_no_destinations_infeasible():
    problem = TransportationProblem(
        supply=np.array([1.0]), demand=np.zeros(0), cost=np.zeros((1, 0))
    )
    assert solve_transportation(problem).status is SolveStatus.INFEASIBLE


def test_forbidden_lane_forces_infeasibility():
    problem = TransportationProblem(
        supply=np.array([3.0]),
        demand=np.array([5.0, 5.0]),
        cost=np.array([[np.inf, np.inf]]),
    )
    assert solve_transportation(problem).status is SolveStatus.INFEASIBLE


def test_forbidden_lane_routes_around():
    problem = TransportationProblem(
        supply=np.array([3.0]),
        demand=np.array([5.0, 5.0]),
        cost=np.array([[np.inf, 2.0]]),
    )
    result = solve_transportation(problem)
    assert result.status is SolveStatus.OPTIMAL
    assert result.flow[0, 0] == 0.0
    assert result.flow[0, 1] == pytest.approx(3.0)


def test_exact_balance_no_dummy():
    problem = TransportationProblem(
        supply=np.array([4.0, 6.0]),
        demand=np.array([5.0, 5.0]),
        cost=np.array([[1.0, 9.0], [9.0, 1.0]]),
    )
    result = solve_transportation(problem)
    assert result.status is SolveStatus.OPTIMAL
    np.testing.assert_allclose(result.flow.sum(axis=0), problem.demand, atol=1e-9)
    assert result.objective == pytest.approx(4.0 * 1 + 1.0 * 9 + 5.0 * 1)


def test_shape_mismatch_rejected():
    with pytest.raises(SolverError):
        TransportationProblem(
            supply=np.array([1.0]), demand=np.array([1.0]), cost=np.ones((2, 2))
        )


def test_negative_supply_rejected():
    with pytest.raises(SolverError):
        TransportationProblem(
            supply=np.array([-1.0]), demand=np.array([1.0]), cost=np.ones((1, 1))
        )


def test_to_solution_exposes_named_values():
    problem = TransportationProblem(
        supply=np.array([2.0]), demand=np.array([3.0]), cost=np.array([[1.5]])
    )
    solution = solve_transportation(problem).to_solution()
    assert solution.status is SolveStatus.OPTIMAL
    assert solution["x_0_0"] == pytest.approx(2.0)
    assert solution.backend == "transportation"


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=1, max_value=7),
    st.integers(min_value=1, max_value=7),
    st.integers(min_value=0, max_value=100_000),
    st.booleans(),
)
def test_property_optimal_matches_highs(m, n, seed, with_forbidden):
    """MODI's optimum equals HiGHS on random instances, including ones
    with forbidden lanes."""
    rng = np.random.default_rng(seed)
    supply = rng.uniform(0.0, 10.0, m)
    demand = rng.uniform(0.0, 10.0, n)
    if supply.sum() > demand.sum():
        supply *= 0.85 * demand.sum() / supply.sum()
    cost = rng.uniform(1.0, 10.0, (m, n))
    if with_forbidden:
        mask = rng.random((m, n)) < 0.25
        cost = np.where(mask, np.inf, cost)
    problem = TransportationProblem(supply, demand, cost)
    own = solve_transportation(problem)

    lp = LinearProgram()
    xs = {}
    for i in range(m):
        for j in range(n):
            if np.isfinite(cost[i, j]):
                xs[(i, j)] = lp.add_variable(f"x_{i}_{j}")
    feasible_model = True
    for i in range(m):
        row = [xs[(i, j)] for j in range(n) if (i, j) in xs]
        if not row:
            feasible_model = supply[i] <= 1e-12
            if not feasible_model:
                break
            continue
        lp.add_constraint(lp_sum(row) == float(supply[i]))
    if feasible_model:
        for j in range(n):
            col = [xs[(i, j)] for i in range(m) if (i, j) in xs]
            if col:
                lp.add_constraint(lp_sum(col) <= float(demand[j]))
        lp.set_objective(lp_sum(cost[i, j] * v for (i, j), v in xs.items()))
        ref = solve_scipy(lp)
    else:
        ref = None

    if ref is None:
        assert own.status is SolveStatus.INFEASIBLE
    else:
        assert own.status == ref.status, (own.status, ref.status)
        if ref.status is SolveStatus.OPTIMAL:
            assert own.objective == pytest.approx(ref.objective, abs=1e-5)
            # Flow is feasible: supplies met, demands respected, no
            # forbidden lane used.
            np.testing.assert_allclose(own.flow.sum(axis=1), supply, atol=1e-6)
            assert (own.flow.sum(axis=0) <= demand + 1e-6).all()
            assert (own.flow[~np.isfinite(cost)] <= 1e-9).all()
