"""Tests for backend dispatch and the Solution container."""

import math

import pytest

from repro.errors import SolverError
from repro.lp import (
    LinearProgram,
    Solution,
    SolveStatus,
    available_backends,
    solve,
)


def small_lp():
    lp = LinearProgram()
    x = lp.add_variable("x", upper=3.0)
    lp.set_objective(-x)
    return lp


def test_auto_picks_scipy_for_continuous():
    sol = solve(small_lp(), "auto")
    assert sol.backend == "scipy"
    assert sol.objective == pytest.approx(-3.0)


def test_auto_picks_bnb_for_integer():
    lp = LinearProgram()
    x = lp.add_variable("x", upper=3.0, is_integer=True)
    lp.set_objective(-x)
    sol = solve(lp, "auto")
    assert sol.backend == "branch-and-bound"


def test_explicit_backends_agree():
    results = {b: solve(small_lp(), b) for b in ("simplex", "scipy")}
    objectives = {b: r.objective for b, r in results.items()}
    assert objectives["simplex"] == pytest.approx(objectives["scipy"])


def test_unknown_backend_raises():
    with pytest.raises(SolverError, match="unknown LP backend"):
        solve(small_lp(), "gurobi")


def test_available_backends_lists_auto():
    names = available_backends()
    assert "auto" in names
    assert "simplex" in names


class TestSolution:
    def test_getitem_and_value(self):
        sol = Solution(status=SolveStatus.OPTIMAL, objective=1.0, values={"x": 2.0})
        assert sol["x"] == 2.0
        assert sol.value("x") == 2.0
        assert sol.value("missing", default=7.0) == 7.0

    def test_default_objective_is_nan(self):
        sol = Solution(status=SolveStatus.INFEASIBLE)
        assert math.isnan(sol.objective)

    def test_status_is_optimal_property(self):
        assert SolveStatus.OPTIMAL.is_optimal
        assert not SolveStatus.INFEASIBLE.is_optimal
        assert not SolveStatus.UNBOUNDED.is_optimal
