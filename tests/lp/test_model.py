"""Tests for the LP modeling layer."""

import math

import numpy as np
import pytest

from repro.errors import SolverError
from repro.lp.model import INF, Constraint, LinearProgram, LinExpr, Variable, lp_sum


class TestLinExpr:
    def test_variable_addition_builds_terms(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        y = lp.add_variable("y")
        expr = x + y
        assert expr.terms[x] == 1.0
        assert expr.terms[y] == 1.0
        assert expr.constant == 0.0

    def test_scalar_multiplication(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        expr = 3 * x
        assert expr.terms[x] == 3.0

    def test_right_and_left_multiplication_agree(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        assert (2 * x).terms[x] == (x * 2).terms[x]

    def test_subtraction_and_negation(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        y = lp.add_variable("y")
        expr = x - 2 * y
        assert expr.terms[x] == 1.0
        assert expr.terms[y] == -2.0
        neg = -expr
        assert neg.terms[x] == -1.0
        assert neg.terms[y] == 2.0

    def test_rsub_constant_minus_variable(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        expr = 5 - x
        assert expr.constant == 5.0
        assert expr.terms[x] == -1.0

    def test_division(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        expr = (4 * x) / 2
        assert expr.terms[x] == pytest.approx(2.0)

    def test_repeated_variable_coefficients_accumulate(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        expr = x + x + 3 * x
        assert expr.terms[x] == pytest.approx(5.0)

    def test_constant_folding(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        expr = x + 2 + 3
        assert expr.constant == pytest.approx(5.0)

    def test_evaluate(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        y = lp.add_variable("y")
        expr = 2 * x - y + 1
        assert expr.evaluate({"x": 3.0, "y": 4.0}) == pytest.approx(3.0)

    def test_evaluate_missing_variable_defaults_zero(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        assert (x + 1).evaluate({}) == pytest.approx(1.0)


class TestConstraint:
    def test_le_builds_constraint(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        con = x + 1 <= 5
        assert con.sense == "<="
        assert con.rhs == pytest.approx(4.0)

    def test_ge_builds_constraint(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        con = 2 * x >= 3
        assert con.sense == ">="
        assert con.rhs == pytest.approx(3.0)

    def test_eq_builds_constraint(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        con = x == 7
        assert isinstance(con, Constraint)
        assert con.sense == "=="
        assert con.rhs == pytest.approx(7.0)

    def test_both_sides_expressions(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        y = lp.add_variable("y")
        con = x + 2 <= y - 1
        # x - y <= -3
        assert con.rhs == pytest.approx(-3.0)
        assert con.expr.terms[x] == 1.0
        assert con.expr.terms[y] == -1.0

    def test_violation_metrics(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        le = x <= 3
        assert le.violation({"x": 5.0}) == pytest.approx(2.0)
        assert le.violation({"x": 2.0}) == 0.0
        eq = x == 3
        assert eq.violation({"x": 5.0}) == pytest.approx(2.0)


class TestVariable:
    def test_bounds_validation(self):
        with pytest.raises(SolverError):
            Variable("bad", lower=2.0, upper=1.0)

    def test_duplicate_name_rejected(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(SolverError, match="duplicate"):
            lp.add_variable("x")

    def test_lookup(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        assert lp.variable("x") is x
        with pytest.raises(SolverError):
            lp.variable("nope")


class TestLinearProgram:
    def test_constraint_foreign_variable_rejected(self):
        lp1 = LinearProgram("a")
        lp2 = LinearProgram("b")
        x1 = lp1.add_variable("x")
        with pytest.raises(SolverError, match="not.*registered"):
            lp2.add_constraint(x1 <= 1)

    def test_add_constraint_requires_comparison(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        with pytest.raises(SolverError, match="expression comparison"):
            lp.add_constraint(x + 1)  # type: ignore[arg-type]

    def test_to_dense_shapes(self):
        lp = LinearProgram()
        x = lp.add_variable("x", upper=10.0)
        y = lp.add_variable("y")
        lp.add_constraint(x + y <= 4)
        lp.add_constraint(x - y >= 1)
        lp.add_constraint(x + 2 * y == 3)
        lp.set_objective(x + y)
        dense = lp.to_dense()
        assert dense.A_ub.shape == (2, 2)  # <= and flipped >=
        assert dense.A_eq.shape == (1, 2)
        assert dense.c.tolist() == [1.0, 1.0]
        assert dense.upper[0] == 10.0
        assert math.isinf(dense.upper[1])

    def test_ge_row_is_negated(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        lp.add_constraint(x >= 2)
        dense = lp.to_dense()
        assert dense.A_ub[0, 0] == -1.0
        assert dense.b_ub[0] == -2.0

    def test_is_feasible_checks_bounds_and_constraints(self):
        lp = LinearProgram()
        x = lp.add_variable("x", lower=0.0, upper=5.0)
        lp.add_constraint(x <= 4)
        assert lp.is_feasible({"x": 3.0})
        assert not lp.is_feasible({"x": 4.5})
        assert not lp.is_feasible({"x": -1.0})

    def test_evaluate_objective_with_constant(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        lp.set_objective(2 * x + 7)
        assert lp.evaluate_objective({"x": 1.5}) == pytest.approx(10.0)

    def test_iteration_and_counts(self):
        lp = LinearProgram()
        names = [lp.add_variable(f"v{i}").name for i in range(4)]
        assert [v.name for v in lp] == names
        assert lp.num_variables == 4
        assert lp.num_constraints == 0

    def test_has_integer_variables(self):
        lp = LinearProgram()
        lp.add_variable("x")
        assert not lp.has_integer_variables
        lp.add_variable("n", is_integer=True)
        assert lp.has_integer_variables


class TestLpSum:
    def test_sums_mixed_items(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        y = lp.add_variable("y")
        expr = lp_sum([x, 2 * y, 3])
        assert expr.terms[x] == 1.0
        assert expr.terms[y] == 2.0
        assert expr.constant == 3.0

    def test_empty_sum_is_zero(self):
        expr = lp_sum([])
        assert expr.constant == 0.0
        assert not expr.terms
