"""Tests for the from-scratch two-phase simplex."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lp import LinearProgram, SolveStatus, lp_sum, solve_scipy, solve_simplex


def test_basic_maximization_via_negation():
    lp = LinearProgram()
    x = lp.add_variable("x")
    y = lp.add_variable("y")
    lp.add_constraint(x + 2 * y <= 14)
    lp.add_constraint(3 * x - y >= 0)
    lp.add_constraint(x - y <= 2)
    lp.set_objective(-(3 * x + 4 * y))
    sol = solve_simplex(lp)
    assert sol.status is SolveStatus.OPTIMAL
    assert sol.objective == pytest.approx(-34.0)
    assert sol["x"] == pytest.approx(6.0)
    assert sol["y"] == pytest.approx(4.0)


def test_equality_constraints():
    lp = LinearProgram()
    x = lp.add_variable("x")
    y = lp.add_variable("y")
    lp.add_constraint(x + y == 10)
    lp.set_objective(2 * x + y)
    sol = solve_simplex(lp)
    assert sol.status is SolveStatus.OPTIMAL
    # Minimize 2x + y with x + y = 10: push everything to y.
    assert sol.objective == pytest.approx(10.0)
    assert sol["y"] == pytest.approx(10.0)


def test_infeasible_detected():
    lp = LinearProgram()
    x = lp.add_variable("x", upper=1.0)
    lp.add_constraint(x >= 2)
    lp.set_objective(x)
    assert solve_simplex(lp).status is SolveStatus.INFEASIBLE


def test_unbounded_detected():
    lp = LinearProgram()
    x = lp.add_variable("x")
    lp.set_objective(-x)  # minimize -x with x unbounded above
    assert solve_simplex(lp).status is SolveStatus.UNBOUNDED


def test_nonzero_lower_bounds_shift():
    lp = LinearProgram()
    x = lp.add_variable("x", lower=5.0)
    y = lp.add_variable("y", lower=2.0, upper=8.0)
    lp.add_constraint(x + y <= 20)
    lp.set_objective(x - y)
    sol = solve_simplex(lp)
    assert sol.status is SolveStatus.OPTIMAL
    assert sol["x"] == pytest.approx(5.0)
    assert sol["y"] == pytest.approx(8.0)


def test_objective_constant_carried_through():
    lp = LinearProgram()
    x = lp.add_variable("x", upper=3.0)
    lp.set_objective(x + 100)
    sol = solve_simplex(lp)
    assert sol.objective == pytest.approx(100.0)


def test_empty_program_is_trivially_optimal():
    lp = LinearProgram()
    lp.set_objective(5)
    sol = solve_simplex(lp)
    assert sol.status is SolveStatus.OPTIMAL
    assert sol.objective == pytest.approx(5.0)


def test_degenerate_redundant_constraints():
    lp = LinearProgram()
    x = lp.add_variable("x")
    lp.add_constraint(x <= 4)
    lp.add_constraint(x <= 4)
    lp.add_constraint(2 * x <= 8)
    lp.set_objective(-x)
    sol = solve_simplex(lp)
    assert sol.status is SolveStatus.OPTIMAL
    assert sol["x"] == pytest.approx(4.0)


def test_solution_values_satisfy_constraints():
    lp = LinearProgram()
    xs = [lp.add_variable(f"x{i}") for i in range(4)]
    lp.add_constraint(lp_sum(xs) == 10)
    lp.add_constraint(xs[0] + 2 * xs[1] <= 8)
    lp.add_constraint(xs[2] - xs[3] >= -2)
    lp.set_objective(lp_sum((i + 1) * x for i, x in enumerate(xs)))
    sol = solve_simplex(lp)
    assert sol.status is SolveStatus.OPTIMAL
    assert lp.is_feasible(dict(sol.values), tol=1e-6)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=5),
       st.integers(min_value=0, max_value=10_000))
def test_property_matches_scipy_on_random_transportation(m, n, seed):
    """The from-scratch simplex agrees with HiGHS on random feasible
    transportation LPs (the placement program's structure)."""
    rng = np.random.default_rng(seed)
    supply = rng.uniform(0.0, 10.0, m)
    demand = rng.uniform(0.0, 10.0, n)
    if supply.sum() > demand.sum():
        supply *= 0.9 * demand.sum() / supply.sum()
    cost = rng.uniform(1.0, 10.0, (m, n))
    lp = LinearProgram()
    xs = [[lp.add_variable(f"x_{i}_{j}") for j in range(n)] for i in range(m)]
    for i in range(m):
        lp.add_constraint(lp_sum(xs[i]) == float(supply[i]))
    for j in range(n):
        lp.add_constraint(lp_sum(xs[i][j] for i in range(m)) <= float(demand[j]))
    lp.set_objective(lp_sum(cost[i, j] * xs[i][j] for i in range(m) for j in range(n)))
    own = solve_simplex(lp)
    ref = solve_scipy(lp)
    assert own.status == ref.status
    if ref.status is SolveStatus.OPTIMAL:
        assert own.objective == pytest.approx(ref.objective, abs=1e-6)
        assert lp.is_feasible(dict(own.values), tol=1e-6)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_random_general_lps_match_scipy(seed):
    """Random small general LPs: statuses and optima agree with HiGHS."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 5))
    m = int(rng.integers(1, 6))
    lp = LinearProgram()
    xs = [lp.add_variable(f"x{i}", upper=float(rng.uniform(1, 20))) for i in range(n)]
    for _ in range(m):
        coefs = rng.uniform(-2.0, 3.0, n)
        rhs = float(rng.uniform(0.0, 20.0))
        sense = rng.choice(["<=", ">=", "=="])
        expr = lp_sum(float(c) * x for c, x in zip(coefs, xs))
        if sense == "<=":
            lp.add_constraint(expr <= rhs)
        elif sense == ">=":
            lp.add_constraint(expr >= rhs)
        else:
            lp.add_constraint(expr == rhs)
    lp.set_objective(lp_sum(float(c) * x for c, x in zip(rng.uniform(-1, 1, n), xs)))
    own = solve_simplex(lp)
    ref = solve_scipy(lp)
    # Bounded variables: unboundedness impossible, only OPTIMAL/INFEASIBLE.
    assert own.status == ref.status
    if ref.status is SolveStatus.OPTIMAL:
        assert own.objective == pytest.approx(ref.objective, abs=1e-5)
