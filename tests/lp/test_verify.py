"""Tests for the independent solution verifier."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lp import LinearProgram, Solution, SolveStatus, lp_sum, solve_scipy, solve_simplex
from repro.lp.verify import (
    check_feasibility,
    dual_objective,
    duality_gap_bound,
    verify_solution,
)


def transport_lp(supply, demand, cost):
    m, n = cost.shape
    lp = LinearProgram()
    xs = [[lp.add_variable(f"x_{i}_{j}") for j in range(n)] for i in range(m)]
    for i in range(m):
        lp.add_constraint(lp_sum(xs[i]) == float(supply[i]), name=f"s{i}")
    for j in range(n):
        lp.add_constraint(
            lp_sum(xs[i][j] for i in range(m)) <= float(demand[j]), name=f"d{j}"
        )
    lp.set_objective(lp_sum(cost[i, j] * xs[i][j] for i in range(m) for j in range(n)))
    return lp


class TestFeasibilityCheck:
    def test_clean_solution(self):
        lp = LinearProgram()
        x = lp.add_variable("x", upper=5.0)
        lp.add_constraint(x <= 4, name="cap")
        assert check_feasibility(lp, {"x": 3.0}) == []

    def test_bound_violations_reported(self):
        lp = LinearProgram()
        lp.add_variable("x", lower=1.0, upper=5.0)
        msgs = check_feasibility(lp, {"x": 0.0})
        assert any("below lower bound" in m for m in msgs)
        msgs = check_feasibility(lp, {"x": 9.0})
        assert any("above upper bound" in m for m in msgs)

    def test_constraint_violation_reported(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        lp.add_constraint(x <= 2, name="cap")
        msgs = check_feasibility(lp, {"x": 3.0})
        assert any("cap" in m for m in msgs)

    def test_integrality_checked(self):
        lp = LinearProgram()
        lp.add_variable("n", is_integer=True)
        assert check_feasibility(lp, {"n": 1.5})
        assert check_feasibility(lp, {"n": 2.0}) == []


class TestDualityCertificate:
    def test_scipy_solution_certified_optimal(self):
        rng = np.random.default_rng(0)
        lp = transport_lp(
            np.array([5.0, 3.0]), np.array([4.0, 6.0]), rng.uniform(1, 5, (2, 2))
        )
        solution = solve_scipy(lp)
        verdict = verify_solution(lp, solution)
        assert verdict.feasible
        assert verdict.certified_optimal, verdict

    def test_simplex_solution_feasible_but_uncertified(self):
        """The from-scratch simplex returns no duals: feasibility holds
        but no optimality certificate is produced."""
        lp = transport_lp(
            np.array([5.0]), np.array([10.0]), np.array([[2.0]])
        )
        solution = solve_simplex(lp)
        verdict = verify_solution(lp, solution)
        assert verdict.feasible
        assert verdict.duality_gap is None
        assert not verdict.certified_optimal

    def test_suboptimal_claim_gets_positive_gap(self):
        """Hand a feasible-but-suboptimal point to the verifier with the
        true dual prices: the gap exposes the slack."""
        lp = transport_lp(
            np.array([5.0]), np.array([10.0, 10.0]), np.array([[1.0, 3.0]])
        )
        optimal = solve_scipy(lp)
        assert optimal.objective == pytest.approx(5.0)
        # Suboptimal primal: ship on the expensive lane.
        fake = Solution(
            status=SolveStatus.OPTIMAL,
            objective=15.0,
            values={"x_0_0": 0.0, "x_0_1": 5.0},
            duals=dict(optimal.duals),
        )
        gap = duality_gap_bound(lp, fake)
        assert gap == pytest.approx(10.0)
        assert not verify_solution(lp, fake).certified_optimal

    def test_non_optimal_status_rejected(self):
        lp = LinearProgram()
        lp.add_variable("x")
        verdict = verify_solution(lp, Solution(status=SolveStatus.INFEASIBLE))
        assert not verdict.feasible

    def test_dual_objective_includes_constant(self):
        lp = LinearProgram()
        x = lp.add_variable("x", upper=4.0)
        lp.add_constraint(x >= 1, name="floor")
        lp.set_objective(x + 10)
        solution = solve_scipy(lp)
        assert solution.objective == pytest.approx(11.0)
        assert dual_objective(lp, solution.duals) == pytest.approx(11.0)

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_property_scipy_transportation_always_certifies(self, m, n, seed):
        """For the placement program's structure, HiGHS optima always
        pass the weak-duality certificate (x = 0 optimal bases aside,
        these LPs don't lean on variable upper bounds)."""
        rng = np.random.default_rng(seed)
        supply = rng.uniform(0.0, 10.0, m)
        demand = rng.uniform(0.0, 10.0, n)
        if supply.sum() > demand.sum():
            supply *= 0.9 * demand.sum() / supply.sum()
        lp = transport_lp(supply, demand, rng.uniform(1.0, 9.0, (m, n)))
        solution = solve_scipy(lp)
        if solution.status is SolveStatus.OPTIMAL:
            verdict = verify_solution(lp, solution)
            assert verdict.feasible, verdict.violations
            assert verdict.duality_gap == pytest.approx(0.0, abs=1e-6)
