"""Chaos harness: lossy-run convergence, determinism, acceptance."""

import json

import pytest

from repro.simulation import (
    ChaosScenario,
    FaultConfig,
    default_scenario,
    evaluate_scenario,
    run_scenario,
)

#: The satellite property: up to 20% drop plus duplication/reordering.
LOSSY = FaultConfig(
    drop_probability=0.20,
    duplicate_probability=0.10,
    jitter_s=0.25,
    reorder_probability=0.20,
)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_lossy_run_converges_to_reliable_ledger(seed):
    """Dropping up to 20% of control messages (with duplication and
    reordering) must still converge to the exact OffloadLedger the
    fault-free run produces from the same seed."""
    scenario = ChaosScenario(seed=seed, horizon_s=1800.0, faults=LOSSY)
    comparison = evaluate_scenario(scenario)
    assert comparison.converged
    assert comparison.divergence == 0.0
    assert comparison.faulty.signature == comparison.reference.signature
    assert comparison.faulty.signature  # the scenario actually offloads
    # The faults were real: messages died and the protocol paid for it.
    assert comparison.faulty.faults_dropped > 0
    assert comparison.faulty.duplicates_injected > 0


def test_same_seed_is_bit_identical():
    """A chaos run is a pure function of (scenario, seed): the fault
    event log, checkpoints and final signature all replay exactly."""
    scenario = default_scenario(seed=1)
    a = run_scenario(scenario)
    b = run_scenario(scenario)
    assert a.event_log == b.event_log
    assert a.checkpoints == b.checkpoints
    assert a.signature == b.signature
    assert a.messages_sent == b.messages_sent
    assert a.took_over_at == b.took_over_at


def test_different_seeds_diverge():
    log0 = run_scenario(default_scenario(seed=0)).event_log
    log1 = run_scenario(default_scenario(seed=1)).event_log
    assert log0 != log1


class TestDefaultScenarioAcceptance:
    """The PR's acceptance scenario: 10% drop, dup+reorder, one mid-run
    manager crash — reconverges with zero production-class loss."""

    @pytest.fixture(scope="class")
    def comparison(self):
        return evaluate_scenario(default_scenario(seed=0))

    def test_reconverges_to_fault_free_placement(self, comparison):
        assert comparison.converged
        assert comparison.divergence == 0.0

    def test_failover_happened_and_recovery_is_reported(self, comparison):
        faulty = comparison.faulty
        crash_at = faulty.scenario.manager_crash_at
        assert faulty.took_over_at is not None
        assert faulty.took_over_at > crash_at
        assert comparison.recovery_s is not None
        promoted = faulty.active_manager()
        assert promoted is not faulty.manager
        assert promoted.counters.resync_rounds == 1

    def test_zero_production_loss(self, comparison):
        qos = comparison.faulty.qos
        assert qos.offloads_audited > 0
        assert qos.production_loss_mb == 0.0
        assert qos.monitoring_delivered_mb > 0.0

    def test_overhead_is_reported(self, comparison):
        # Retransmissions happened; the overhead metric is finite.
        counters = comparison.faulty.counters
        total_retx = counters.retransmissions + comparison.faulty.client_retransmissions
        assert total_retx > 0
        assert comparison.overhead_pct == comparison.overhead_pct  # not NaN


class TestZeroFaultTransparency:
    """With zero faults the hardened stack must be invisible: no
    retransmissions, no fault events, no reliability counter activity."""

    def test_reference_run_is_clean(self):
        result = run_scenario(default_scenario(seed=0).reference())
        assert result.event_log == ()
        assert result.faults_dropped == 0
        assert result.duplicates_injected == 0
        assert result.counters.retransmissions == 0
        assert result.counters.sends_gave_up == 0
        assert result.counters.duplicates_ignored == 0
        assert result.counters.stale_stats_dropped == 0
        assert result.client_retransmissions == 0
        assert result.client_duplicates_ignored == 0
        assert result.took_over_at is None


class TestScenarioValidation:
    def test_crash_outside_horizon_rejected(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError, match="inside the horizon"):
            ChaosScenario(horizon_s=100.0, manager_crash_at=200.0)

    def test_crash_without_standby_rejected(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError, match="needs a standby"):
            ChaosScenario(standby_node=None, manager_crash_at=100.0)

    def test_reference_strips_all_disruptions(self):
        reference = default_scenario(seed=3).reference()
        assert reference.faults.is_null
        assert reference.manager_crash_at is None
        assert reference.seed == 3  # same wiring, same seed


def test_resilience_experiment_writes_artifact(tmp_path):
    from repro.experiments.extra_resilience import run

    artifact = tmp_path / "resilience.json"
    result = run(seeds=(0,), horizon_s=900.0, json_path=str(artifact))
    assert result.experiment_id == "resilience"
    assert len(result.rows) == 1
    payload = json.loads(artifact.read_text())
    (record,) = payload["runs"]
    assert record["converged"] is True
    assert record["production_loss_mb"] == 0.0
    assert {"recovery_time_s", "message_overhead_pct", "counters",
            "manager_took_over_at"} <= set(record)
    # Per-run counters use the metric-catalog vocabulary, nothing else
    # (regression guard for the retransmits/retransmissions drift).
    assert {"transport.retransmissions", "network.messages_dropped",
            "network.faults_dropped",
            "network.duplicates_injected"} <= set(record["counters"])
    assert not any("retransmit" in key for key in record)
    # The artifact carries the observability bundle: registry snapshot
    # with catalog metrics, span summary, profile numbers.
    obs = payload["observability"]
    assert {"metrics", "spans", "profile"} <= set(obs)
    assert "transport.retransmissions" in obs["metrics"]["metrics"]
