"""Pool-death hardening in :func:`repro.parallel.map_with_pool_retry`."""

from concurrent.futures import BrokenExecutor

import pytest

import repro.parallel as parallel
from repro.parallel import chunk_evenly, make_executor, map_with_pool_retry


def double(x):
    return 2 * x


class FlakyExecutor:
    """Executor double whose map() raises for the first ``failures``
    pools built, then behaves; built via a monkeypatched make_executor
    so the retry loop is exercised without killing real workers."""

    built = 0

    def __init__(self, failures, exc):
        self.failures = failures
        self.exc = exc

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    def map(self, fn, payloads):
        type(self).built += 1
        if type(self).built <= self.failures:
            raise self.exc
        return map(fn, payloads)


@pytest.fixture
def flaky(monkeypatch):
    def install(failures, exc=BrokenExecutor("worker died")):
        FlakyExecutor.built = 0
        monkeypatch.setattr(
            parallel, "make_executor", lambda w, k="process": FlakyExecutor(failures, exc)
        )

    return install


def test_plain_success_thread_pool():
    assert map_with_pool_retry(double, [1, 2, 3], workers=2, kind="thread") == [2, 4, 6]


def test_broken_pool_once_is_rebuilt_and_replayed(flaky):
    flaky(failures=1)
    assert map_with_pool_retry(double, [1, 2, 3], workers=2) == [2, 4, 6]
    assert FlakyExecutor.built == 2  # one death, one full replay


def test_broken_pool_twice_gives_up_to_serial_fallback(flaky):
    flaky(failures=2)
    assert map_with_pool_retry(double, [1], workers=2) is None


def test_non_pool_errors_are_not_retried(flaky):
    flaky(failures=2, exc=RuntimeError("cannot schedule new futures"))
    assert map_with_pool_retry(double, [1], workers=2) is None
    assert FlakyExecutor.built == 1  # no pointless rebuild


def test_make_executor_rejects_unknown_kind():
    from repro.parallel import ParallelismError

    with pytest.raises(ParallelismError, match="unknown executor kind"):
        make_executor(2, kind="fiber")


def test_chunk_evenly_round_trips():
    items = list(range(10))
    chunks = chunk_evenly(items, 3)
    assert [len(c) for c in chunks] == [4, 3, 3]
    assert [x for c in chunks for x in c] == items
