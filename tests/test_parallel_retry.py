"""Pool-death hardening in :func:`repro.parallel.map_with_pool_retry`."""

import os
from concurrent.futures import BrokenExecutor

import numpy as np
import pytest

import repro.parallel as parallel
from repro.parallel import (
    ShmArena,
    active_arena_segments,
    attach_shared,
    chunk_evenly,
    make_executor,
    map_with_pool_retry,
)


def double(x):
    return 2 * x


class FlakyExecutor:
    """Executor double whose map() raises for the first ``failures``
    pools built, then behaves; built via a monkeypatched make_executor
    so the retry loop is exercised without killing real workers."""

    built = 0

    def __init__(self, failures, exc):
        self.failures = failures
        self.exc = exc

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    def map(self, fn, payloads):
        type(self).built += 1
        if type(self).built <= self.failures:
            raise self.exc
        return map(fn, payloads)


@pytest.fixture
def flaky(monkeypatch):
    def install(failures, exc=BrokenExecutor("worker died")):
        FlakyExecutor.built = 0
        monkeypatch.setattr(
            parallel, "make_executor", lambda w, k="process": FlakyExecutor(failures, exc)
        )

    return install


def test_plain_success_thread_pool():
    assert map_with_pool_retry(double, [1, 2, 3], workers=2, kind="thread") == [2, 4, 6]


def test_broken_pool_once_is_rebuilt_and_replayed(flaky):
    flaky(failures=1)
    assert map_with_pool_retry(double, [1, 2, 3], workers=2) == [2, 4, 6]
    assert FlakyExecutor.built == 2  # one death, one full replay


def test_broken_pool_twice_gives_up_to_serial_fallback(flaky):
    flaky(failures=2)
    assert map_with_pool_retry(double, [1], workers=2) is None


def test_non_pool_errors_are_not_retried(flaky):
    flaky(failures=2, exc=RuntimeError("cannot schedule new futures"))
    assert map_with_pool_retry(double, [1], workers=2) is None
    assert FlakyExecutor.built == 1  # no pointless rebuild


def test_make_executor_rejects_unknown_kind():
    from repro.parallel import ParallelismError

    with pytest.raises(ParallelismError, match="unknown executor kind"):
        make_executor(2, kind="fiber")


def test_chunk_evenly_round_trips():
    items = list(range(10))
    chunks = chunk_evenly(items, 3)
    assert [len(c) for c in chunks] == [4, 3, 3]
    assert [x for c in chunks for x in c] == items


def _resolve_or_die(payload):
    """Kills every pool worker; in the parent (the serial fallback) it
    proves the unlinked arena still resolves through the cache."""
    if os.getpid() != payload["parent"]:
        os._exit(1)
    arena = attach_shared(payload["segment"])
    return int(arena.arrays["wiring"][payload["x"]])


class TestBrokenPoolArenaCleanup:
    def test_killed_worker_leaves_no_orphan_segments(self):
        """A worker dying mid-sweep must not orphan ``/dev/shm`` names:
        the rebuilt pool and the final serial fallback still complete
        (the parent's mapping outlives the unlink), but the segment
        name is gone the moment the first pool breaks."""
        arena = ShmArena.create({"wiring": np.arange(64, dtype=np.int64)})
        name = arena.name
        try:
            payloads = [
                {"x": i, "parent": os.getpid(), "segment": name} for i in range(3)
            ]
            from repro.experiments.common import run_sharded_sweep

            results = run_sharded_sweep(
                _resolve_or_die, payloads, workers=2, arenas=(arena,)
            )
            # Serial fallback completed the sweep through the cached mapping.
            assert results == [0, 1, 2]
            # Broken-pool cleanup already unlinked; nothing is orphaned.
            assert not arena.linked
            assert name not in active_arena_segments()
            assert name.lstrip("/") not in os.listdir("/dev/shm")
            arena.unlink()  # the caller's own finally-unlink stays a no-op
        finally:
            arena.close()

    def test_clean_run_leaves_arena_linked_for_the_caller(self):
        arena = ShmArena.create({"wiring": np.arange(8, dtype=np.int64)})
        try:
            assert map_with_pool_retry(
                double, [1, 2], workers=2, kind="thread", arenas=(arena,)
            ) == [2, 4]
            assert arena.linked  # cleanup is the caller's duty on success
        finally:
            arena.close()
