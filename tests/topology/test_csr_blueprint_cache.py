"""CSR adjacency export, bulk array import/export, fat-tree blueprint LRU."""

import numpy as np
import pytest

from repro.obs import get_registry
from repro.topology import (
    BandwidthConvention,
    LinkUtilizationModel,
    Topology,
    build_fat_tree,
    build_fat_tree_with_layout,
    build_random_connected,
    fat_tree_arrays,
    fat_tree_cache_clear,
    fat_tree_cache_info,
)


def _counter(name: str) -> float:
    metric = get_registry().snapshot()["metrics"].get(name)
    return metric["value"] if metric else 0.0


class TestCSRAdjacency:
    @pytest.mark.parametrize(
        "topo",
        [build_fat_tree(4), build_fat_tree(8), build_random_connected(40, 0.2, seed=3)],
        ids=["fat4", "fat8", "random40"],
    )
    def test_matches_incident_lists(self, topo):
        csr = topo.csr_adjacency()
        for v in range(topo.num_nodes):
            lanes = list(
                zip(
                    csr.indices[csr.indptr[v] : csr.indptr[v + 1]].tolist(),
                    csr.edge_ids[csr.indptr[v] : csr.indptr[v + 1]].tolist(),
                )
            )
            assert lanes == topo.incident(v)

    def test_edge_costs_are_inverse_effective_bandwidth(self):
        topo = build_fat_tree(4)
        LinkUtilizationModel(0.2, 0.8, seed=5).apply(topo)
        csr = topo.csr_adjacency(BandwidthConvention.AVAILABLE)
        expected = 1.0 / topo.effective_bandwidths(BandwidthConvention.AVAILABLE)
        np.testing.assert_array_equal(csr.edge_costs, expected)

    def test_cache_hit_returns_same_object_and_counts(self):
        topo = build_fat_tree(4)
        misses0, hits0 = _counter("topology.csr_cache_misses"), _counter(
            "topology.csr_cache_hits"
        )
        first = topo.csr_adjacency()
        second = topo.csr_adjacency()
        assert second is first
        assert _counter("topology.csr_cache_misses") == misses0 + 1
        assert _counter("topology.csr_cache_hits") == hits0 + 1

    def test_link_state_mutation_invalidates_costs_not_structure(self):
        topo = build_fat_tree(4)
        before = topo.csr_adjacency()
        topo.set_utilization(0, 0.77)
        after = topo.csr_adjacency()
        assert after is not before
        assert after.version == topo.version > before.version
        # Structure arrays survive a pure link-state change ...
        assert after.indptr is before.indptr
        assert after.indices is before.indices
        assert after.edge_ids is before.edge_ids
        # ... but the costed view is fresh.
        assert after.edge_costs[0] != before.edge_costs[0]

    def test_structure_rebuilt_when_graph_grows(self):
        topo = build_fat_tree(4)
        before = topo.csr_adjacency()
        n = topo.add_node(name="extra")
        topo.add_edge(0, n)
        after = topo.csr_adjacency()
        assert len(after.indptr) == len(before.indptr) + 1
        assert len(after.indices) == len(before.indices) + 2

    def test_arrays_are_read_only(self):
        csr = build_fat_tree(4).csr_adjacency()
        for arr in (csr.indptr, csr.indices, csr.edge_ids, csr.edge_costs):
            with pytest.raises(ValueError):
                arr[0] = 1

    def test_per_convention_views(self):
        topo = build_fat_tree(4)
        LinkUtilizationModel(0.2, 0.8, seed=5).apply(topo)
        available = topo.csr_adjacency(BandwidthConvention.AVAILABLE)
        literal = topo.csr_adjacency(BandwidthConvention.UTILIZED_LITERAL)
        assert not np.array_equal(available.edge_costs, literal.edge_costs)
        assert topo.csr_adjacency(BandwidthConvention.UTILIZED_LITERAL) is literal


class TestTopologyArraysRoundtrip:
    def test_roundtrip_preserves_graph(self):
        original = build_fat_tree(4)
        LinkUtilizationModel(0.1, 0.9, seed=2).apply(original)
        clone = Topology.from_arrays(original.to_arrays())
        assert clone.num_nodes == original.num_nodes
        assert clone.num_edges == original.num_edges
        for v in range(original.num_nodes):
            assert clone.incident(v) == original.incident(v)
            assert clone.node(v).name == original.node(v).name
            assert clone.node(v).kind == original.node(v).kind
            assert clone.node(v).pod == original.node(v).pod
        for eid in range(original.num_edges):
            assert clone.link(eid).utilization == original.link(eid).utilization
            assert clone.link(eid).capacity_mbps == original.link(eid).capacity_mbps

    def test_clone_is_independent(self):
        original = build_fat_tree(4)
        clone = Topology.from_arrays(original.to_arrays())
        clone.set_utilization(0, 0.99)
        assert original.link(0).utilization != 0.99


class TestFatTreeBlueprintLRU:
    def setup_method(self):
        fat_tree_cache_clear()

    def test_second_build_hits_blueprint_cache(self):
        build_fat_tree(4)
        info = fat_tree_cache_info()
        build_fat_tree(4)
        assert fat_tree_cache_info().hits == info.hits + 1
        assert fat_tree_cache_info().misses == info.misses

    def test_distinct_parameters_miss(self):
        build_fat_tree(4)
        build_fat_tree(4, capacity_mbps=1000.0)
        build_fat_tree(4, with_servers=True)
        assert fat_tree_cache_info().misses == 3

    def test_builds_are_independent_and_version_still_bumps(self):
        first = build_fat_tree(4)
        v0 = first.version
        first.set_utilization(0, 0.5)
        assert first.version > v0  # memoization must not freeze versioning
        second = build_fat_tree(4)  # cache hit ...
        assert fat_tree_cache_info().hits >= 1
        # ... yet a fresh graph: the mutation did not leak through.
        assert second.link(0).utilization == 0.0
        second.add_node(name="extra")
        assert first.num_nodes == second.num_nodes - 1

    def test_layout_lists_are_fresh_per_call(self):
        _, layout_a = build_fat_tree_with_layout(4)
        _, layout_b = build_fat_tree_with_layout(4)
        layout_a.core.append(-1)
        assert -1 not in layout_b.core

    def test_fat_tree_arrays_matches_built_topology(self):
        arrays = fat_tree_arrays(8)
        topo = build_fat_tree(8)
        assert arrays.num_nodes == topo.num_nodes
        assert len(arrays.us) == topo.num_edges
        rebuilt = Topology.from_arrays(arrays)
        for v in range(topo.num_nodes):
            assert rebuilt.incident(v) == topo.incident(v)
