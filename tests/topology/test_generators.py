"""Tests for the auxiliary topology generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.topology import (
    build_grid,
    build_leaf_spine,
    build_line,
    build_random_connected,
    build_ring,
    build_star,
)


class TestLeafSpine:
    def test_counts(self):
        topo = build_leaf_spine(4, 8)
        assert topo.num_nodes == 12
        assert topo.num_edges == 32

    def test_full_bipartite(self):
        topo = build_leaf_spine(2, 3)
        for spine in range(2):
            for leaf in range(2, 5):
                assert topo.has_edge(spine, leaf)

    def test_invalid_sizes(self):
        with pytest.raises(TopologyError):
            build_leaf_spine(0, 3)


class TestRingLineStar:
    def test_ring_degree_two(self):
        topo = build_ring(6)
        assert all(topo.degree(n) == 2 for n in range(6))
        assert topo.num_edges == 6

    def test_ring_minimum_size(self):
        with pytest.raises(TopologyError):
            build_ring(2)

    def test_line_endpoints(self):
        topo = build_line(5)
        assert topo.degree(0) == 1
        assert topo.degree(4) == 1
        assert topo.num_edges == 4

    def test_star_hub(self):
        topo = build_star(7)
        assert topo.degree(0) == 7
        assert all(topo.degree(n) == 1 for n in range(1, 8))


class TestGrid:
    def test_grid_counts(self):
        topo = build_grid(3, 4)
        assert topo.num_nodes == 12
        assert topo.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_grid_connected(self):
        assert build_grid(5, 5).is_connected()

    def test_degenerate_grid_rejected(self):
        with pytest.raises(TopologyError):
            build_grid(1, 1)


class TestRandomConnected:
    def test_always_connected(self):
        for seed in range(5):
            topo = build_random_connected(30, edge_probability=0.02, seed=seed)
            assert topo.is_connected()

    def test_deterministic_for_seed(self):
        a = build_random_connected(20, 0.2, seed=7)
        b = build_random_connected(20, 0.2, seed=7)
        assert a.num_edges == b.num_edges
        assert a.edges == b.edges

    def test_spanning_tree_minimum_edges(self):
        topo = build_random_connected(10, edge_probability=0.0, seed=1)
        assert topo.num_edges == 9  # exactly a tree

    def test_invalid_probability(self):
        with pytest.raises(TopologyError):
            build_random_connected(5, edge_probability=1.5)

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=2, max_value=40),
        st.integers(min_value=0, max_value=1000),
    )
    def test_property_connected_and_simple(self, n, seed):
        topo = build_random_connected(n, edge_probability=0.1, seed=seed)
        assert topo.is_connected()
        # No duplicate edges by construction: endpoint set size == edge count.
        assert len(set(topo.edges)) == topo.num_edges
