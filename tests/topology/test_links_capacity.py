"""Tests for link models and capacity sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CapacityError, TopologyError
from repro.topology import (
    MIN_EFFECTIVE_BANDWIDTH_MBPS,
    BandwidthConvention,
    CapacityDistribution,
    CapacityModel,
    Link,
    LinkUtilizationModel,
    build_ring,
    effective_bandwidths,
)


class TestLink:
    def test_available_and_utilized(self):
        link = Link(capacity_mbps=1000.0, utilization=0.3)
        assert link.available_mbps == pytest.approx(700.0)
        assert link.utilized_mbps == pytest.approx(300.0)

    def test_effective_respects_convention(self):
        link = Link(capacity_mbps=1000.0, utilization=0.3)
        assert link.effective_mbps(BandwidthConvention.AVAILABLE) == pytest.approx(700.0)
        assert link.effective_mbps(BandwidthConvention.UTILIZED_LITERAL) == pytest.approx(300.0)

    def test_effective_floor_prevents_zero_division(self):
        saturated = Link(capacity_mbps=1000.0, utilization=1.0)
        assert saturated.effective_mbps(BandwidthConvention.AVAILABLE) == (
            MIN_EFFECTIVE_BANDWIDTH_MBPS
        )
        idle = Link(capacity_mbps=1000.0, utilization=0.0)
        assert idle.effective_mbps(BandwidthConvention.UTILIZED_LITERAL) == (
            MIN_EFFECTIVE_BANDWIDTH_MBPS
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"capacity_mbps": 0.0},
            {"capacity_mbps": -5.0},
            {"utilization": -0.1},
            {"utilization": 1.1},
            {"latency_ms": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(TopologyError):
            Link(**kwargs)


class TestLinkUtilizationModel:
    def test_apply_sets_all_links(self):
        topo = build_ring(5)
        LinkUtilizationModel(0.2, 0.6, seed=1).apply(topo)
        utils = [link.utilization for link in topo.links]
        assert all(0.2 <= u <= 0.6 for u in utils)

    def test_deterministic(self):
        a = LinkUtilizationModel(0.1, 0.9, seed=5).sample(10)
        b = LinkUtilizationModel(0.1, 0.9, seed=5).sample(10)
        np.testing.assert_array_equal(a, b)

    def test_invalid_range(self):
        with pytest.raises(TopologyError):
            LinkUtilizationModel(0.8, 0.2)
        with pytest.raises(TopologyError):
            LinkUtilizationModel(-0.1, 0.5)

    def test_effective_bandwidths_helper(self):
        links = [Link(capacity_mbps=100.0, utilization=0.5) for _ in range(3)]
        np.testing.assert_allclose(effective_bandwidths(links), [50.0, 50.0, 50.0])


class TestCapacityModel:
    def test_uniform_within_bounds(self):
        caps = CapacityModel(x_min=20.0, seed=0).sample(500)
        assert caps.min() >= 20.0
        assert caps.max() <= 100.0

    @pytest.mark.parametrize("dist", list(CapacityDistribution))
    def test_all_distributions_respect_bounds(self, dist):
        caps = CapacityModel(x_min=15.0, distribution=dist, seed=3).sample(300)
        assert caps.min() >= 15.0
        assert caps.max() <= 100.0

    def test_bimodal_has_two_modes(self):
        caps = CapacityModel(
            x_min=10.0,
            distribution=CapacityDistribution.BIMODAL,
            hot_fraction=0.5,
            seed=1,
        ).sample(2000)
        # Hot mode mass near the top, cool mass near the bottom.
        assert (caps > 80).mean() > 0.15
        assert (caps < 40).mean() > 0.15

    def test_reseed_reproduces(self):
        model = CapacityModel(x_min=10.0, seed=0)
        model.reseed(42)
        a = model.sample(10)
        model.reseed(42)
        b = model.sample(10)
        np.testing.assert_array_equal(a, b)

    def test_invalid_x_min(self):
        with pytest.raises(CapacityError):
            CapacityModel(x_min=100.0)
        with pytest.raises(CapacityError):
            CapacityModel(x_min=-1.0)

    def test_negative_count_rejected(self):
        with pytest.raises(CapacityError):
            CapacityModel().sample(-1)

    @settings(max_examples=25, deadline=None)
    @given(
        st.floats(min_value=0.0, max_value=99.0),
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_property_samples_in_constraint_3e_range(self, x_min, n, seed):
        """Constraint 3e: every sampled capacity is in [x_min, 100]."""
        caps = CapacityModel(x_min=x_min, seed=seed).sample(n)
        assert caps.shape == (n,)
        if n:
            assert caps.min() >= x_min - 1e-9
            assert caps.max() <= 100.0 + 1e-9
