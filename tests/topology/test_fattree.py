"""Tests for the fat-tree builder — counts must match the paper."""

import pytest

from repro.errors import TopologyError
from repro.topology import (
    NodeKind,
    build_fat_tree,
    build_fat_tree_with_layout,
    fat_tree_edge_count,
    fat_tree_node_count,
)


@pytest.mark.parametrize(
    "k,nodes,edges",
    [(4, 20, 32), (8, 80, 256), (16, 320, 2048)],
)
def test_paper_sizes(k, nodes, edges):
    """The paper's table: 4-k => 20/32, 8-k => 80/256, 16-k => 320/2048."""
    topo = build_fat_tree(k)
    assert topo.num_nodes == nodes == fat_tree_node_count(k)
    assert topo.num_edges == edges == fat_tree_edge_count(k)


def test_64k_formulas():
    """5120 nodes / 131072 edges claimed for 64-k (formula check only —
    building it is exercised in the scalability experiment)."""
    assert fat_tree_node_count(64) == 5120
    assert fat_tree_edge_count(64) == 131072


def test_layer_populations():
    topo, layout = build_fat_tree_with_layout(4)
    assert len(layout.core) == 4
    assert len(layout.aggregation) == 8
    assert len(layout.edge) == 8
    assert not layout.servers
    assert set(layout.switches) == set(range(20))


def test_connected():
    assert build_fat_tree(4).is_connected()
    assert build_fat_tree(8).is_connected()


def test_degrees():
    """Core switches have degree k; agg degree k; edge degree k/2
    (switch-only graph)."""
    k = 4
    topo, layout = build_fat_tree_with_layout(k)
    for c in layout.core:
        assert topo.degree(c) == k
    for a in layout.aggregation:
        assert topo.degree(a) == k
    for e in layout.edge:
        assert topo.degree(e) == k // 2


def test_kinds_assigned():
    topo = build_fat_tree(4)
    assert len(topo.nodes_of_kind(NodeKind.CORE_SWITCH)) == 4
    assert len(topo.nodes_of_kind(NodeKind.AGG_SWITCH)) == 8
    assert len(topo.nodes_of_kind(NodeKind.EDGE_SWITCH)) == 8


def test_pods_annotated():
    topo, layout = build_fat_tree_with_layout(4)
    pods = {topo.node(a).pod for a in layout.aggregation}
    assert pods == set(range(4))
    for c in layout.core:
        assert topo.node(c).pod is None


def test_with_servers():
    topo, layout = build_fat_tree_with_layout(4, with_servers=True)
    # k^3/4 = 16 servers, each edge switch hosts k/2 = 2.
    assert len(layout.servers) == 16
    assert topo.num_nodes == 36
    for s in layout.servers:
        assert topo.degree(s) == 1
        assert topo.node(s).kind is NodeKind.SERVER


def test_odd_k_rejected():
    with pytest.raises(TopologyError, match="even"):
        build_fat_tree(3)
    with pytest.raises(TopologyError):
        build_fat_tree(0)


def test_custom_link_parameters():
    topo = build_fat_tree(4, capacity_mbps=40_000.0, latency_ms=0.2)
    assert topo.links[0].capacity_mbps == 40_000.0
    assert topo.links[0].latency_ms == 0.2


def test_intra_pod_bipartite_wiring():
    """Within a pod every agg connects to every edge switch."""
    topo, layout = build_fat_tree_with_layout(4)
    pod0_agg = [a for a in layout.aggregation if topo.node(a).pod == 0]
    pod0_edge = [e for e in layout.edge if topo.node(e).pod == 0]
    for a in pod0_agg:
        for e in pod0_edge:
            assert topo.has_edge(a, e)
