"""Tests for the Topology graph type."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import TopologyError
from repro.topology import BandwidthConvention, Link, NodeKind, Topology


def triangle():
    topo = Topology("tri")
    a = topo.add_node(kind=NodeKind.CORE_SWITCH)
    b = topo.add_node(kind=NodeKind.SERVER)
    c = topo.add_node()
    topo.add_edge(a, b, Link(capacity_mbps=100.0, utilization=0.5))
    topo.add_edge(b, c, Link(capacity_mbps=200.0, utilization=0.25))
    topo.add_edge(a, c)
    return topo, (a, b, c)


class TestConstruction:
    def test_nodes_get_dense_ids(self):
        topo = Topology()
        assert [topo.add_node() for _ in range(3)] == [0, 1, 2]

    def test_default_names(self):
        topo = Topology()
        nid = topo.add_node()
        assert topo.node(nid).name == "n0"

    def test_self_loop_rejected(self):
        topo = Topology()
        a = topo.add_node()
        with pytest.raises(TopologyError, match="self-loop"):
            topo.add_edge(a, a)

    def test_duplicate_edge_rejected(self):
        topo, (a, b, _) = triangle()
        with pytest.raises(TopologyError, match="duplicate"):
            topo.add_edge(b, a)

    def test_unknown_node_rejected(self):
        topo = Topology()
        topo.add_node()
        with pytest.raises(TopologyError):
            topo.add_edge(0, 5)
        with pytest.raises(TopologyError):
            topo.node(9)


class TestQueries:
    def test_counts(self):
        topo, _ = triangle()
        assert topo.num_nodes == 3
        assert topo.num_edges == 3

    def test_neighbors_and_degree(self):
        topo, (a, b, c) = triangle()
        assert sorted(topo.neighbors(a)) == [b, c]
        assert topo.degree(b) == 2

    def test_edge_id_is_order_insensitive(self):
        topo, (a, b, _) = triangle()
        assert topo.edge_id(a, b) == topo.edge_id(b, a)

    def test_link_between(self):
        topo, (a, b, _) = triangle()
        assert topo.link_between(a, b).capacity_mbps == 100.0

    def test_missing_edge_raises(self):
        topo = Topology()
        a, b = topo.add_node(), topo.add_node()
        with pytest.raises(TopologyError, match="no edge"):
            topo.edge_id(a, b)

    def test_has_edge(self):
        topo, (a, b, c) = triangle()
        assert topo.has_edge(a, b)
        assert topo.has_edge(b, a)

    def test_nodes_of_kind(self):
        topo, (a, b, _) = triangle()
        assert topo.nodes_of_kind(NodeKind.CORE_SWITCH) == [a]
        assert topo.nodes_of_kind(NodeKind.SERVER) == [b]

    def test_incident_pairs(self):
        topo, (a, b, _) = triangle()
        incident = dict(topo.incident(a))
        assert b in incident

    def test_iteration_yields_nodes(self):
        topo, _ = triangle()
        assert len(list(topo)) == 3


class TestVectorizedViews:
    def test_effective_bandwidths_available(self):
        topo, _ = triangle()
        lus = topo.effective_bandwidths(BandwidthConvention.AVAILABLE)
        assert lus[0] == pytest.approx(50.0)
        assert lus[1] == pytest.approx(150.0)

    def test_effective_bandwidths_literal(self):
        topo, _ = triangle()
        lus = topo.effective_bandwidths(BandwidthConvention.UTILIZED_LITERAL)
        assert lus[0] == pytest.approx(50.0)
        assert lus[1] == pytest.approx(50.0)

    def test_edge_endpoint_arrays(self):
        topo, _ = triangle()
        us, vs = topo.edge_endpoint_arrays()
        assert us.shape == (3,)
        assert (us < vs).all()

    def test_empty_graph_arrays(self):
        topo = Topology()
        us, vs = topo.edge_endpoint_arrays()
        assert us.size == 0 and vs.size == 0


class TestConnectivity:
    def test_connected_triangle(self):
        topo, _ = triangle()
        assert topo.is_connected()
        topo.validate()

    def test_disconnected_detected(self):
        topo = Topology()
        topo.add_node()
        topo.add_node()
        assert not topo.is_connected()
        with pytest.raises(TopologyError, match="not connected"):
            topo.validate()

    def test_empty_graph_validation(self):
        topo = Topology()
        assert topo.is_connected()
        with pytest.raises(TopologyError, match="no nodes"):
            topo.validate()


class TestNetworkxInterop:
    def test_roundtrip_preserves_structure(self):
        topo, _ = triangle()
        g = topo.to_networkx()
        back = Topology.from_networkx(g)
        assert back.num_nodes == topo.num_nodes
        assert back.num_edges == topo.num_edges

    def test_roundtrip_preserves_link_attrs(self):
        topo, (a, b, _) = triangle()
        back = Topology.from_networkx(topo.to_networkx())
        assert back.link_between(a, b).capacity_mbps == pytest.approx(100.0)
        assert back.link_between(a, b).utilization == pytest.approx(0.5)

    def test_import_arbitrary_labels(self):
        g = nx.Graph()
        g.add_edge("alpha", "beta")
        g.add_edge("beta", "gamma")
        topo = Topology.from_networkx(g)
        assert topo.num_nodes == 3
        assert topo.num_edges == 2

    def test_import_drops_self_loops(self):
        g = nx.Graph()
        g.add_edge("a", "a")
        g.add_edge("a", "b")
        topo = Topology.from_networkx(g)
        assert topo.num_edges == 1
