"""Topology version counter + dirty-edge journal (the cache contract)."""

import pytest

from repro.errors import TopologyError
from repro.topology import Link, Topology


def line3():
    """0 - 1 - 2 with distinct capacities."""
    topo = Topology(name="line3")
    n0, n1, n2 = topo.add_node(), topo.add_node(), topo.add_node()
    topo.add_edge(n0, n1, Link(capacity_mbps=100.0, utilization=0.0))
    topo.add_edge(n1, n2, Link(capacity_mbps=200.0, utilization=0.0))
    return topo


class TestVersionCounter:
    def test_construction_bumps_version(self):
        topo = Topology()
        v0 = topo.version
        topo.add_node()
        assert topo.version == v0 + 1
        topo.add_node()
        topo.add_edge(0, 1, Link(capacity_mbps=10.0))
        assert topo.version == v0 + 3

    def test_link_state_writes_bump_once_each(self):
        topo = line3()
        v = topo.version
        topo.set_utilization(0, 0.5)
        assert topo.version == v + 1
        topo.set_capacity(1, 300.0)
        assert topo.version == v + 2

    def test_bulk_update_bumps_once(self):
        topo = line3()
        v = topo.version
        topo.set_link_utilizations([0.1, 0.2])
        assert topo.version == v + 1

    def test_version_is_monotonic_and_readonly(self):
        topo = line3()
        with pytest.raises(AttributeError):
            topo.version = 0

    def test_invalid_writes_do_not_bump(self):
        topo = line3()
        v = topo.version
        with pytest.raises(TopologyError):
            topo.set_utilization(0, 1.5)
        with pytest.raises(TopologyError):
            topo.set_capacity(0, -1.0)
        with pytest.raises(TopologyError):
            topo.set_link_utilizations([0.1])  # wrong arity
        assert topo.version == v


class TestDirtyEdges:
    def test_current_version_is_clean(self):
        topo = line3()
        assert topo.dirty_edges_since(topo.version) == frozenset()

    def test_future_version_is_unknown(self):
        topo = line3()
        assert topo.dirty_edges_since(topo.version + 1) is None

    def test_single_edge_write_marks_that_edge(self):
        topo = line3()
        v = topo.version
        topo.set_utilization(1, 0.3)
        assert topo.dirty_edges_since(v) == frozenset({1})

    def test_writes_accumulate_across_versions(self):
        topo = line3()
        v = topo.version
        topo.set_utilization(0, 0.3)
        topo.set_capacity(1, 400.0)
        assert topo.dirty_edges_since(v) == frozenset({0, 1})
        # An intermediate version only sees what came after it.
        assert topo.dirty_edges_since(v + 1) == frozenset({1})

    def test_bulk_update_marks_everything(self):
        topo = line3()
        v = topo.version
        topo.set_link_utilizations([0.1, 0.2])
        assert topo.dirty_edges_since(v) == frozenset({0, 1})

    def test_structural_change_is_unknown(self):
        topo = line3()
        v = topo.version
        topo.add_node()
        assert topo.dirty_edges_since(v) is None
        # ... even when a clean link write follows it.
        topo.set_utilization(0, 0.1)
        assert topo.dirty_edges_since(v) is None

    def test_touch_links_declares_out_of_band_mutation(self):
        topo = line3()
        v = topo.version
        topo.links[0].utilization = 0.7  # direct write: invisible...
        assert topo.dirty_edges_since(v) == frozenset()
        topo.touch_links([0])  # ...until declared
        assert topo.dirty_edges_since(v) == frozenset({0})
        topo.touch_links()
        assert topo.dirty_edges_since(v) == frozenset({0, 1})
        with pytest.raises(TopologyError):
            topo.touch_links([99])

    def test_journal_truncation_is_unknown(self, monkeypatch):
        import repro.topology.graph as graph_mod

        monkeypatch.setattr(graph_mod, "_JOURNAL_CAP", 4)
        topo = line3()
        v = topo.version
        for _ in range(6):
            topo.set_utilization(0, 0.5)
        # The journal no longer reaches back to v: everything may be dirty.
        assert topo.dirty_edges_since(v) is None
        # Recent versions are still answerable.
        assert topo.dirty_edges_since(topo.version - 2) == frozenset({0})
