"""Tests for the self-contained PEP 517/660 build backend."""

import sys
import tarfile
import zipfile
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "_build"))
import dust_build_backend as backend  # noqa: E402


class TestRequirementHooks:
    def test_zero_build_requirements(self):
        """The whole point: nothing to download in isolated builds."""
        assert backend.get_requires_for_build_wheel() == []
        assert backend.get_requires_for_build_sdist() == []
        assert backend.get_requires_for_build_editable() == []


class TestEditableWheel:
    def test_editable_wheel_contents(self, tmp_path):
        name = backend.build_editable(str(tmp_path))
        assert name == "repro-1.0.0-py3-none-any.whl"
        with zipfile.ZipFile(tmp_path / name) as whl:
            names = whl.namelist()
            assert "__editable__.repro-1.0.0.pth" in names
            assert "repro-1.0.0.dist-info/METADATA" in names
            assert "repro-1.0.0.dist-info/WHEEL" in names
            assert "repro-1.0.0.dist-info/RECORD" in names
            pth = whl.read("__editable__.repro-1.0.0.pth").decode().strip()
            assert pth.endswith("src")
            assert (Path(pth) / "repro" / "__init__.py").exists()

    def test_editable_wheel_has_console_script(self, tmp_path):
        name = backend.build_editable(str(tmp_path))
        with zipfile.ZipFile(tmp_path / name) as whl:
            eps = whl.read("repro-1.0.0.dist-info/entry_points.txt").decode()
        assert "dust-experiments = repro.experiments.cli:main" in eps

    def test_record_lists_every_member(self, tmp_path):
        name = backend.build_editable(str(tmp_path))
        with zipfile.ZipFile(tmp_path / name) as whl:
            names = set(whl.namelist())
            record = whl.read("repro-1.0.0.dist-info/RECORD").decode()
        recorded = {line.split(",")[0] for line in record.strip().splitlines()}
        assert recorded == names


class TestFullWheel:
    def test_wheel_packages_source_tree(self, tmp_path):
        name = backend.build_wheel(str(tmp_path))
        with zipfile.ZipFile(tmp_path / name) as whl:
            names = whl.namelist()
        assert "repro/__init__.py" in names
        assert "repro/core/placement.py" in names
        assert "repro/lp/simplex.py" in names
        assert not any("__pycache__" in n or n.endswith(".pyc") for n in names)

    def test_metadata_declares_runtime_deps(self, tmp_path):
        name = backend.build_wheel(str(tmp_path))
        with zipfile.ZipFile(tmp_path / name) as whl:
            metadata = whl.read("repro-1.0.0.dist-info/METADATA").decode()
        for dep in ("numpy", "scipy", "networkx"):
            assert f"Requires-Dist: {dep}" in metadata


class TestSdist:
    def test_sdist_contains_project_layout(self, tmp_path):
        name = backend.build_sdist(str(tmp_path))
        assert name == "repro-1.0.0.tar.gz"
        with tarfile.open(tmp_path / name) as tar:
            names = tar.getnames()
        assert "repro-1.0.0/pyproject.toml" in names
        assert "repro-1.0.0/src/repro/__init__.py" in names
        assert "repro-1.0.0/_build/dust_build_backend.py" in names
        assert not any("__pycache__" in n for n in names)
