"""Every example script must run end-to-end (they are executable docs)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"
ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_example_inventory():
    """The README promises at least these examples."""
    expected = {
        "quickstart.py",
        "datacenter_offload.py",
        "failure_recovery.py",
        "switch_offload_testbed.py",
        "heuristic_vs_ilp.py",
        "zoned_deployment.py",
        "qos_congestion.py",
        "multiresource_placement.py",
    }
    assert expected <= set(ALL_EXAMPLES)


@pytest.mark.parametrize("script", ALL_EXAMPLES)
def test_example_runs(script, capsys):
    """Execute the script as __main__; it must finish without raising
    and produce some output."""
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} printed nothing"
