"""Public API surface tests."""

import importlib

import pytest

import repro

SUBPACKAGES = (
    "repro.core",
    "repro.experiments",
    "repro.lp",
    "repro.routing",
    "repro.simulation",
    "repro.telemetry",
    "repro.testbed",
    "repro.topology",
)


def test_version_exposed():
    assert repro.__version__ == "1.0.0"


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_subpackage_all_resolves(name):
    """Every name in a package's __all__ must actually exist."""
    module = importlib.import_module(name)
    assert hasattr(module, "__all__") and module.__all__
    for symbol in module.__all__:
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


def test_top_level_all_resolves():
    for symbol in repro.__all__:
        assert hasattr(repro, symbol)


def test_exception_hierarchy():
    from repro.errors import (
        CapacityError,
        PlacementError,
        ProtocolError,
        ReproError,
        RoutingError,
        SimulationError,
        SolverError,
        TelemetryError,
        TopologyError,
    )

    for exc in (
        CapacityError, PlacementError, ProtocolError, RoutingError,
        SimulationError, SolverError, TelemetryError, TopologyError,
    ):
        assert issubclass(exc, ReproError)

    from repro.errors import InfeasibleProblemError, UnboundedProblemError

    assert issubclass(InfeasibleProblemError, SolverError)
    assert issubclass(UnboundedProblemError, SolverError)


def test_headline_workflow_via_top_level_imports_only():
    """The README quickstart works using only `repro` top-level names."""
    import numpy as np

    topo = repro.build_fat_tree(4)
    repro.LinkUtilizationModel(0.2, 0.8, seed=1).apply(topo)
    policy = repro.ThresholdPolicy()
    caps = repro.CapacityModel(x_min=policy.x_min, seed=2).sample(topo.num_nodes)
    from repro.core import classify_network

    roles = classify_network(caps, policy)
    if roles.busy and roles.candidates:
        problem = repro.PlacementProblem(
            topology=topo,
            busy=tuple(roles.busy),
            candidates=tuple(roles.candidates),
            cs=np.array([policy.excess_load(caps[b]) for b in roles.busy]),
            cd=np.array([policy.spare_capacity(caps[c]) for c in roles.candidates]),
            data_mb=np.full(len(roles.busy), 10.0),
        )
        report = repro.PlacementEngine().solve(problem)
        heuristic = repro.solve_heuristic(problem)
        assert report.status is not None
        assert 0.0 <= heuristic.hfr_pct <= 100.0
