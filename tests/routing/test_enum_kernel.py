"""Frontier-expansion kernel vs reference DFS: bit-identity properties.

The kernel (:mod:`repro.routing.enumkernel`) must be indistinguishable
from the retained pure-Python reference on every fixture: identical
``(resistance, hops, path)`` triples out of the pricing fold (including
the resistance-then-fewer-hops-then-DFS-order tie-break) and identical
exhaustive path counts. These tests drive both engines over hypothesis
random graphs, fat-trees k in {4, 8}, and the degenerate corners the
kernel special-cases.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RoutingError
from repro.obs import get_registry
from repro.routing import count_paths, enumerate_paths, iter_simple_paths_raw
from repro.routing import enumkernel
from repro.routing.enumkernel import (
    count_paths_kernel,
    enumeration_kernel_enabled,
    pruned_candidates,
    set_enumeration_kernel,
    use_enumeration_kernel,
)
from repro.routing.response_time import (
    _best_enum_route,
    _best_enum_route_reference,
)
from repro.topology import (
    BandwidthConvention,
    Link,
    LinkUtilizationModel,
    Topology,
    build_fat_tree,
    build_random_connected,
)


def _weights(topo):
    return 1.0 / topo.effective_bandwidths(BandwidthConvention.AVAILABLE)


def _ref_count(topo, s, d, h):
    return sum(1 for _ in iter_simple_paths_raw(topo, s, d, h))


def _assert_pair_identical(topo, s, d, h, weights):
    ref = _best_enum_route_reference(topo, s, d, h, weights)
    with use_enumeration_kernel(True):
        ker = _best_enum_route(topo, s, d, h, weights)
    # Bit-identity: same float (== not approx), same hops, same path.
    assert ker == ref


def disconnected_topology():
    """Two components: {0, 1} and {2, 3}."""
    topo = Topology()
    for _ in range(4):
        topo.add_node()
    topo.add_edge(0, 1, Link(capacity_mbps=1000.0))
    topo.add_edge(2, 3, Link(capacity_mbps=1000.0))
    return topo


class TestCountIdentity:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=4, max_value=11),
        st.integers(min_value=0, max_value=300),
        st.one_of(st.none(), st.integers(min_value=0, max_value=5)),
    )
    def test_property_counts_match_reference(self, n, seed, max_hops):
        topo = build_random_connected(n, 0.35, seed=seed)
        for s in range(0, n, 2):
            for d in range(1, n, 3):
                assert count_paths_kernel(topo, s, d, max_hops) == _ref_count(
                    topo, s, d, max_hops
                )

    @pytest.mark.parametrize("k", [4, 8])
    def test_fat_tree_counts_match(self, k):
        topo = build_fat_tree(k)
        n = topo.num_nodes
        pairs = [(0, n - 1), (0, n // 2), (n // 3, 2 * n // 3), (1, 1)]
        for h in (2, 4, 5):
            for s, d in pairs:
                assert count_paths_kernel(topo, s, d, h) == _ref_count(topo, s, d, h)

    def test_count_paths_dispatches_to_kernel(self):
        topo = build_fat_tree(4)
        reg = get_registry()
        with use_enumeration_kernel(True):
            before = reg.counter("routing.enum_kernel_calls").value
            a = count_paths(topo, 0, topo.num_nodes - 1, 4)
            assert reg.counter("routing.enum_kernel_calls").value == before + 1
        with use_enumeration_kernel(False):
            b = count_paths(topo, 0, topo.num_nodes - 1, 4)
        assert a == b

    def test_counting_path_never_prunes(self):
        """The bound counters stay flat across exhaustive counting."""
        topo = build_fat_tree(4)
        reg = get_registry()
        pruned = reg.counter("routing.enum_pruned_rows").value
        cutoffs = reg.counter("routing.enum_bound_cutoffs").value
        for s, d in [(0, topo.num_nodes - 1), (3, 9), (0, 0)]:
            count_paths_kernel(topo, s, d, 6)
        assert reg.counter("routing.enum_pruned_rows").value == pruned
        assert reg.counter("routing.enum_bound_cutoffs").value == cutoffs


class TestBestRouteIdentity:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=4, max_value=12),
        st.integers(min_value=0, max_value=300),
        st.one_of(st.none(), st.integers(min_value=1, max_value=5)),
    )
    def test_property_random_graphs(self, n, seed, max_hops):
        topo = build_random_connected(n, 0.3, seed=seed)
        LinkUtilizationModel(0.1, 0.9, seed=seed + 1).apply(topo)
        weights = _weights(topo)
        for s in range(0, n, 2):
            for d in range(1, n, 3):
                _assert_pair_identical(topo, s, d, max_hops, weights)

    @pytest.mark.parametrize("k", [4, 8])
    def test_fat_tree_pairs(self, k):
        topo = build_fat_tree(k)
        LinkUtilizationModel(0.2, 0.8, seed=k).apply(topo)
        weights = _weights(topo)
        n = topo.num_nodes
        pairs = [(0, n - 1), (0, n // 2), (n // 3, 2 * n // 3)]
        for h in (2, 4, 5, None if k == 4 else 6):
            for s, d in pairs:
                _assert_pair_identical(topo, s, d, h, weights)

    def test_tie_heavy_uniform_cost_mesh(self):
        """Every same-length path prices bit-equal: the fold must pick
        the same (hops, DFS-order) winner from kernel survivors."""
        for k in (4, 8):
            topo = build_fat_tree(k)  # untouched links: uniform weights
            weights = _weights(topo)
            assert np.unique(weights).size == 1
            n = topo.num_nodes
            for s, d in [(0, n - 1), (1, n // 2), (2, 2 * n // 3)]:
                for h in (3, 4, 5):
                    _assert_pair_identical(topo, s, d, h, weights)

    def test_near_zero_edge_costs(self):
        """Resistances inside the ~1e-12 tie window: the kernel may not
        prune anything, and the fold outcome must still match."""
        topo = build_random_connected(8, 0.4, seed=7)
        weights = np.full(topo.num_edges, 1e-13)
        for s in range(8):
            for d in range(8):
                _assert_pair_identical(topo, s, d, 4, weights)


class TestDegenerateCorners:
    def test_source_equals_destination(self):
        topo = build_fat_tree(4)
        weights = _weights(topo)
        for h in (None, 0, 1, 5):
            assert pruned_candidates(topo, 3, 3, h, weights) == [((3,), ())]
            assert count_paths_kernel(topo, 3, 3, h) == 1
            _assert_pair_identical(topo, 3, 3, h, weights)

    def test_max_hops_zero_and_one(self):
        topo = build_fat_tree(4)
        weights = _weights(topo)
        for s, d in [(0, 1), (0, topo.num_nodes - 1)]:
            for h in (0, 1):
                assert count_paths_kernel(topo, s, d, h) == _ref_count(topo, s, d, h)
                _assert_pair_identical(topo, s, d, h, weights)

    def test_unreachable_pair(self):
        topo = disconnected_topology()
        weights = _weights(topo)
        assert count_paths_kernel(topo, 0, 3, None) == 0
        assert pruned_candidates(topo, 0, 3, None, weights) == []
        _assert_pair_identical(topo, 0, 3, None, weights)

    def test_unreachable_within_budget(self):
        """Reachable in the graph, not within max_hops."""
        topo = build_fat_tree(4)
        weights = _weights(topo)
        # Cross-pod edge switches need >= 4 hops.
        s, d = 0, topo.num_nodes - 1
        assert _ref_count(topo, s, d, 2) == count_paths_kernel(topo, s, d, 2)
        _assert_pair_identical(topo, s, d, 2, weights)

    def test_negative_max_hops_rejected(self):
        topo = build_fat_tree(4)
        with pytest.raises(RoutingError):
            count_paths_kernel(topo, 0, 1, -1)
        with pytest.raises(RoutingError):
            pruned_candidates(topo, 0, 1, -2, _weights(topo))


class TestToggle:
    def test_set_and_restore(self):
        initial = enumeration_kernel_enabled()
        try:
            prev = set_enumeration_kernel(False)
            assert prev == initial
            assert not enumeration_kernel_enabled()
            with use_enumeration_kernel(True):
                assert enumeration_kernel_enabled()
            assert not enumeration_kernel_enabled()
        finally:
            set_enumeration_kernel(initial)

    def test_disabled_kernel_falls_back_to_reference(self):
        topo = build_fat_tree(4)
        weights = _weights(topo)
        reg = get_registry()
        with use_enumeration_kernel(False):
            before = reg.counter("routing.enum_kernel_calls").value
            out = _best_enum_route(topo, 0, topo.num_nodes - 1, 4, weights)
            assert reg.counter("routing.enum_kernel_calls").value == before
        assert out == _best_enum_route_reference(
            topo, 0, topo.num_nodes - 1, 4, weights
        )

    def test_env_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENUM_KERNEL", "0")
        assert not enumkernel._env_default()
        monkeypatch.setenv("REPRO_ENUM_KERNEL", "off")
        assert not enumkernel._env_default()
        monkeypatch.setenv("REPRO_ENUM_KERNEL", "1")
        assert enumkernel._env_default()
        monkeypatch.delenv("REPRO_ENUM_KERNEL")
        assert enumkernel._env_default()


class TestSurvivorStream:
    def test_survivors_are_dfs_prefix_consistent(self):
        """Survivors appear in reference DFS order and include the
        reference winner."""
        topo = build_fat_tree(4)
        LinkUtilizationModel(0.3, 0.7, seed=11).apply(topo)
        weights = _weights(topo)
        s, d = 0, topo.num_nodes - 1
        survivors = pruned_candidates(topo, s, d, 5, weights)
        all_paths = list(iter_simple_paths_raw(topo, s, d, 5))
        positions = {p: i for i, p in enumerate(all_paths)}
        idx = [positions[p] for p in survivors]
        assert idx == sorted(idx)  # DFS order preserved
        ref = _best_enum_route_reference(topo, s, d, 5, weights)
        assert ref[2] in survivors

    def test_enumerate_paths_limit_is_dfs_prefix(self):
        topo = build_fat_tree(4)
        full = enumerate_paths(topo, 0, topo.num_nodes - 1, 5)
        capped = enumerate_paths(topo, 0, topo.num_nodes - 1, 5, limit=7)
        assert capped == full[:7]
        # Trusted construction still yields structurally valid paths.
        for p in capped:
            assert len(p.edges) == len(p.nodes) - 1
            assert len(set(p.nodes)) == len(p.nodes)
