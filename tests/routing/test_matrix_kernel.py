"""Bit-identity of the matrix Trmin DP kernel vs the per-source DP.

The matrix kernel promises *exact* equality of ``best``/``hops`` with
:func:`repro.routing.hop_constrained_shortest` (see the operand-set
argument in :mod:`repro.routing.matrix`), so these tests compare with
``np.array_equal`` — no tolerances.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RoutingError
from repro.routing import hop_constrained_shortest
from repro.routing.engine import TrminEngine
from repro.routing.matrix import matrix_hop_constrained
from repro.routing.response_time import PathEngine, ResponseTimeModel
from repro.topology import Topology, build_random_connected, build_ring
from repro.topology.fattree import build_fat_tree


def _assert_bit_identical(topology, sources, max_hops, weights, **kwargs):
    result = matrix_hop_constrained(topology, sources, max_hops, weights, **kwargs)
    for a, s in enumerate(sources):
        ref = hop_constrained_shortest(topology, s, max_hops, weights)
        assert np.array_equal(result.best[a], ref.best), f"source {s} best differs"
        assert np.array_equal(result.hops[a], ref.best_hops()), f"source {s} hops differ"
    return result


def two_rings(n=4):
    """Two disconnected rings — every cross-component pair is unreachable."""
    topo = Topology()
    for _ in range(2 * n):
        topo.add_node()
    for base in (0, n):
        for i in range(n):
            topo.add_edge(base + i, base + (i + 1) % n)
    return topo


class TestBitIdentity:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=3, max_value=18),
        st.integers(min_value=0, max_value=500),
        st.one_of(st.none(), st.integers(min_value=0, max_value=8)),
    )
    def test_property_random_topologies(self, n, seed, max_hops):
        topo = build_random_connected(n, edge_probability=0.3, seed=seed)
        rng = np.random.default_rng(seed + 11)
        w = rng.uniform(0.1, 5.0, topo.num_edges)
        sources = list(range(0, n, 2))
        _assert_bit_identical(topo, sources, max_hops, w)

    @pytest.mark.parametrize("k", [4, 8, 16])
    def test_fat_tree_tiers(self, k):
        topo = build_fat_tree(k)
        rng = np.random.default_rng(k)
        w = rng.uniform(0.01, 2.0, topo.num_edges)
        max_hops = int(rng.integers(1, 9))
        sources = list(rng.choice(topo.num_nodes, size=min(8, topo.num_nodes), replace=False))
        _assert_bit_identical(topo, [int(s) for s in sources], max_hops, w)

    def test_disconnected_pairs_stay_infinite(self):
        topo = two_rings(4)
        w = np.random.default_rng(0).uniform(0.5, 1.5, topo.num_edges)
        result = _assert_bit_identical(topo, [0, 5], None, w)
        # Cross-component cells specifically: inf distance, -1 hops.
        assert np.isinf(result.best[0, 4:]).all()
        assert (result.hops[0, 4:] == -1).all()
        assert np.isinf(result.best[1, :4]).all()

    def test_near_zero_costs(self):
        """Tiny (but strictly positive) weights — the smallest costs the
        validators admit — still reproduce the per-source DP exactly."""
        topo = build_random_connected(12, 0.3, seed=42)
        rng = np.random.default_rng(7)
        w = rng.uniform(1e-12, 1e-9, topo.num_edges)
        w[:: max(1, topo.num_edges // 4)] = 1.0  # mix in ordinary magnitudes
        _assert_bit_identical(topo, list(range(12)), 5, w)

    def test_source_blocking_cannot_change_results(self):
        topo = build_random_connected(14, 0.3, seed=3)
        w = np.random.default_rng(4).uniform(0.1, 2.0, topo.num_edges)
        sources = list(range(14))
        whole = matrix_hop_constrained(topo, sources, 4, w)
        blocked = matrix_hop_constrained(topo, sources, 4, w, source_block=3)
        assert np.array_equal(whole.best, blocked.best)
        assert np.array_equal(whole.hops, blocked.hops)

    def test_empty_sources_and_zero_budget(self):
        topo = build_ring(5)
        w = np.ones(5)
        empty = matrix_hop_constrained(topo, [], 3, w)
        assert empty.best.shape == (0, 5)
        zero = matrix_hop_constrained(topo, [2], 0, w)
        assert zero.best[0, 2] == 0.0
        assert np.isinf(np.delete(zero.best[0], 2)).all()


class TestValidationParity:
    """The matrix kernel rejects exactly what the per-source DP rejects,
    with the same messages."""

    @pytest.mark.parametrize(
        "weights, max_hops",
        [
            (np.ones(3), 2),  # wrong shape (ring of 4 has 4 edges)
            (np.zeros(4), 2),  # non-positive weights
            (np.ones(4), -1),  # negative hop budget
        ],
    )
    def test_same_error_messages(self, weights, max_hops):
        topo = build_ring(4)
        with pytest.raises(RoutingError) as per_source:
            hop_constrained_shortest(topo, 0, max_hops, weights)
        with pytest.raises(RoutingError) as matrix:
            matrix_hop_constrained(topo, [0], max_hops, weights)
        assert str(matrix.value) == str(per_source.value)

    def test_unknown_source_rejected(self):
        topo = build_ring(4)
        with pytest.raises(Exception):
            matrix_hop_constrained(topo, [99], 2, np.ones(4))


class TestPathMaterialization:
    def test_paths_are_optimal_and_price_consistent(self):
        topo = build_random_connected(16, 0.25, seed=9)
        w = np.random.default_rng(2).uniform(0.1, 3.0, topo.num_edges)
        sources = [0, 3, 7]
        result = matrix_hop_constrained(topo, sources, 5, w, with_parents=True)
        for a, s in enumerate(sources):
            for dst in range(16):
                path = result.path_to(a, dst)
                if not np.isfinite(result.best[a, dst]):
                    assert path is None
                    continue
                assert path.nodes[0] == s and path.nodes[-1] == dst
                cost = sum(w[e] for e in path.edges)
                assert cost == pytest.approx(result.best[a, dst])
                assert len(path.edges) == result.hops[a, dst]
                for (u, v), e in zip(zip(path.nodes, path.nodes[1:]), path.edges):
                    assert topo.edge_id(u, v) == e

    def test_path_without_parents_raises(self):
        topo = build_ring(4)
        result = matrix_hop_constrained(topo, [0], 2, np.ones(4))
        with pytest.raises(RoutingError, match="with_parents"):
            result.path_to(0, 2)


class TestEngineMatrixMode:
    def _dp_model(self, max_hops=4):
        return ResponseTimeModel(engine=PathEngine.DP, max_hops=max_hops)

    def test_mode_validation(self):
        with pytest.raises(ValueError, match="mode"):
            TrminEngine(mode="diagonal")

    def test_matrix_mode_matches_rows_mode_exactly(self):
        topo = build_fat_tree(4)
        model = self._dp_model()
        sources = [0, 2, 5, 9]
        destinations = [1, 3, 8, 12, 19]
        rows_engine = TrminEngine(model, cache=False)
        matrix_engine = TrminEngine(model, cache=False, mode="matrix")
        R_rows, hops_rows, _ = rows_engine.resistance_matrix(
            topo, sources, destinations, with_paths=False
        )
        R_matrix, hops_matrix, paths = matrix_engine.resistance_matrix(
            topo, sources, destinations, with_paths=True
        )
        assert np.array_equal(R_rows, R_matrix)
        assert np.array_equal(hops_rows, hops_matrix)
        assert matrix_engine.stats.matrix_computes == 1
        assert rows_engine.stats.matrix_computes == 0
        # Materialized paths cover exactly the finite pairs and price
        # consistently (witness ties may differ from the rows engine).
        weights = model.edge_weights(topo)
        for a, s in enumerate(sources):
            for b, d in enumerate(destinations):
                if np.isfinite(R_matrix[a, b]) and s != d:
                    path = paths[(s, d)]
                    assert sum(weights[e] for e in path.edges) == pytest.approx(
                        R_matrix[a, b]
                    )

    def test_enumeration_model_bypasses_matrix_path(self):
        topo = build_fat_tree(4)
        engine = TrminEngine(
            ResponseTimeModel(engine=PathEngine.ENUMERATION, max_hops=3),
            cache=False,
            mode="matrix",
        )
        engine.resistance_matrix(topo, [0, 1], [2, 3], with_paths=False)
        assert engine.stats.matrix_computes == 0
