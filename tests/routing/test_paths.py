"""Tests for hop-bounded simple-path enumeration."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RoutingError
from repro.routing import Path, count_paths, enumerate_paths, iter_simple_paths
from repro.topology import Topology, build_fat_tree, build_random_connected, build_ring


class TestPathType:
    def test_valid_path(self):
        p = Path(nodes=(0, 1, 2), edges=(0, 1))
        assert p.source == 0
        assert p.destination == 2
        assert p.num_hops == 2
        assert p.relay_nodes == (1,)

    def test_trivial_path(self):
        p = Path(nodes=(3,), edges=())
        assert p.num_hops == 0
        assert p.relay_nodes == ()

    def test_inconsistent_lengths_rejected(self):
        with pytest.raises(RoutingError):
            Path(nodes=(0, 1), edges=())

    def test_revisit_rejected(self):
        with pytest.raises(RoutingError, match="revisits"):
            Path(nodes=(0, 1, 0), edges=(0, 1))

    def test_empty_path_rejected(self):
        with pytest.raises(RoutingError):
            Path(nodes=(), edges=())


class TestEnumeration:
    def test_ring_has_two_paths(self):
        topo = build_ring(6)
        paths = enumerate_paths(topo, 0, 3)
        assert len(paths) == 2
        assert {p.num_hops for p in paths} == {3}

    def test_hop_bound_prunes(self):
        topo = build_ring(6)
        assert count_paths(topo, 0, 3, max_hops=2) == 0
        assert count_paths(topo, 0, 3, max_hops=3) == 2
        assert count_paths(topo, 0, 1, max_hops=1) == 1

    def test_source_equals_destination(self):
        topo = build_ring(4)
        paths = enumerate_paths(topo, 2, 2)
        assert len(paths) == 1
        assert paths[0].num_hops == 0

    def test_max_hops_zero(self):
        topo = build_ring(4)
        assert count_paths(topo, 0, 1, max_hops=0) == 0
        assert count_paths(topo, 0, 0, max_hops=0) == 1

    def test_disconnected_pair_yields_nothing(self):
        topo = Topology()
        a = topo.add_node()
        b = topo.add_node()
        assert count_paths(topo, a, b) == 0

    def test_limit_caps_enumeration(self):
        topo = build_fat_tree(4)
        paths = enumerate_paths(topo, 8, 19, limit=5)
        assert len(paths) == 5

    def test_negative_max_hops_rejected(self):
        topo = build_ring(4)
        with pytest.raises(RoutingError):
            list(iter_simple_paths(topo, 0, 1, max_hops=-1))

    def test_paths_are_valid_and_unique(self):
        topo = build_fat_tree(4)
        paths = enumerate_paths(topo, 8, 14, max_hops=6)
        seen = set()
        for p in paths:
            assert p.source == 8 and p.destination == 14
            assert p.num_hops <= 6
            # Edges actually connect consecutive nodes.
            for (u, v), e in zip(zip(p.nodes, p.nodes[1:]), p.edges):
                assert topo.edge_id(u, v) == e
            assert p.nodes not in seen
            seen.add(p.nodes)

    def test_fat_tree_path_growth(self):
        """The exponential growth driving Figs. 8/10."""
        topo = build_fat_tree(4)
        counts = [count_paths(topo, 8, 19, max_hops=h) for h in (4, 6, 8)]
        assert counts[0] < counts[1] < counts[2]


class TestAgainstNetworkx:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=4, max_value=12),
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=1, max_value=6),
    )
    def test_property_matches_networkx_all_simple_paths(self, n, seed, max_hops):
        """Our DFS agrees with networkx on path sets (as node tuples)."""
        topo = build_random_connected(n, edge_probability=0.3, seed=seed)
        g = topo.to_networkx()
        src, dst = 0, n - 1
        ours = {p.nodes for p in iter_simple_paths(topo, src, dst, max_hops)}
        theirs = {
            tuple(p)
            for p in nx.all_simple_paths(g, src, dst, cutoff=max_hops)
        }
        assert ours == theirs
