"""Tests for Yen's k-shortest hop-bounded paths."""

from itertools import islice

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RoutingError
from repro.routing import k_shortest_paths, path_cost
from repro.topology import build_fat_tree, build_random_connected, build_ring


def ring_with_weights(n=6):
    topo = build_ring(n)
    w = np.ones(topo.num_edges)
    return topo, w


class TestBasics:
    def test_ring_two_paths(self):
        topo, w = ring_with_weights(6)
        paths = k_shortest_paths(topo, 0, 3, w, k=5)
        assert len(paths) == 2  # only two simple paths exist
        assert path_cost(paths[0], w) <= path_cost(paths[1], w)

    def test_costs_nondecreasing(self):
        topo = build_fat_tree(4)
        rng = np.random.default_rng(0)
        w = rng.uniform(0.1, 1.0, topo.num_edges)
        paths = k_shortest_paths(topo, 8, 19, w, k=8)
        costs = [path_cost(p, w) for p in paths]
        assert costs == sorted(costs)
        assert len(paths) == 8

    def test_paths_distinct_and_valid(self):
        topo = build_fat_tree(4)
        w = np.ones(topo.num_edges)
        paths = k_shortest_paths(topo, 8, 19, w, k=10)
        nodes_seen = {p.nodes for p in paths}
        assert len(nodes_seen) == len(paths)
        for p in paths:
            assert p.source == 8 and p.destination == 19
            for (u, v), e in zip(zip(p.nodes, p.nodes[1:]), p.edges):
                assert topo.edge_id(u, v) == e

    def test_hop_budget_respected(self):
        topo = build_fat_tree(4)
        w = np.ones(topo.num_edges)
        paths = k_shortest_paths(topo, 8, 19, w, k=20, max_hops=4)
        assert paths
        assert all(p.num_hops <= 4 for p in paths)

    def test_source_equals_destination(self):
        topo, w = ring_with_weights()
        paths = k_shortest_paths(topo, 2, 2, w, k=3)
        assert len(paths) == 1
        assert paths[0].num_hops == 0

    def test_disconnected_returns_empty(self):
        from repro.topology import Topology

        topo = Topology()
        a, b = topo.add_node(), topo.add_node()
        assert k_shortest_paths(topo, a, b, np.zeros(0), k=3) == []

    def test_invalid_k(self):
        topo, w = ring_with_weights()
        with pytest.raises(RoutingError):
            k_shortest_paths(topo, 0, 1, w, k=0)


class TestAgainstNetworkx:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=5, max_value=12),
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=1, max_value=6),
    )
    def test_property_matches_shortest_simple_paths(self, n, seed, k):
        topo = build_random_connected(n, 0.3, seed=seed)
        rng = np.random.default_rng(seed + 1)
        w = rng.uniform(0.1, 2.0, topo.num_edges)
        g = topo.to_networkx()
        for (u, v), weight in zip(topo.edges, w):
            g[u][v]["weight"] = float(weight)
        ours = k_shortest_paths(topo, 0, n - 1, w, k=k)
        ref = list(islice(nx.shortest_simple_paths(g, 0, n - 1, weight="weight"), k))
        assert len(ours) == len(ref)
        ours_costs = [round(path_cost(p, w), 9) for p in ours]
        ref_costs = [
            round(sum(g[a][b]["weight"] for a, b in zip(p, p[1:])), 9) for p in ref
        ]
        assert ours_costs == ref_costs
