"""Tests for Eq. 1/2 response-time computation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RoutingError
from repro.routing import Path, PathEngine, ResponseTimeModel
from repro.topology import (
    BandwidthConvention,
    Link,
    LinkUtilizationModel,
    Topology,
    build_fat_tree,
    build_random_connected,
)


def two_path_topology():
    """0 -> 2 directly (slow) or via 1 (fast)."""
    topo = Topology()
    n0, n1, n2 = topo.add_node(), topo.add_node(), topo.add_node()
    topo.add_edge(n0, n2, Link(capacity_mbps=100.0, utilization=0.0))  # 100 avail
    topo.add_edge(n0, n1, Link(capacity_mbps=10_000.0, utilization=0.0))
    topo.add_edge(n1, n2, Link(capacity_mbps=10_000.0, utilization=0.0))
    return topo


class TestEquationOne:
    def test_path_response_time(self):
        """Tr(r) = sum_e D/Lu_e."""
        topo = two_path_topology()
        lus = topo.effective_bandwidths(BandwidthConvention.AVAILABLE)
        direct = Path(nodes=(0, 2), edges=(0,))
        assert direct.response_time(10.0, lus) == pytest.approx(10.0 / 100.0)
        via = Path(nodes=(0, 1, 2), edges=(1, 2))
        assert via.response_time(10.0, lus) == pytest.approx(2 * 10.0 / 10_000.0)

    def test_zero_hop_path_is_free(self):
        assert Path(nodes=(0,), edges=()).response_time(5.0, np.zeros(0)) == 0.0

    def test_negative_volume_rejected(self):
        with pytest.raises(RoutingError):
            Path(nodes=(0,), edges=()).response_time(-1.0, np.zeros(0))


class TestBestRoute:
    def test_prefers_fast_two_hop_over_slow_direct(self):
        topo = two_path_topology()
        for engine in PathEngine:
            model = ResponseTimeModel(engine=engine, max_hops=None)
            choice = model.best_route(topo, 0, 2)
            assert choice is not None
            assert choice.path.nodes == (0, 1, 2), engine

    def test_hop_limit_forces_direct(self):
        topo = two_path_topology()
        for engine in PathEngine:
            model = ResponseTimeModel(engine=engine, max_hops=1)
            choice = model.best_route(topo, 0, 2)
            assert choice.path.nodes == (0, 2), engine

    def test_unreachable_returns_none(self):
        topo = Topology()
        a, b = topo.add_node(), topo.add_node()
        for engine in PathEngine:
            model = ResponseTimeModel(engine=engine)
            assert model.best_route(topo, a, b) is None

    def test_hop_tiebreak_on_equal_cost(self):
        """Two equal-cost routes: the one with fewer hops wins (paper's
        'minimal hops distance priority')."""
        topo = Topology()
        n0, n1, n2 = topo.add_node(), topo.add_node(), topo.add_node()
        # Direct edge with resistance 2/100; detour with 2 x 1/100 each = same.
        topo.add_edge(n0, n2, Link(capacity_mbps=50.0, utilization=0.0))
        topo.add_edge(n0, n1, Link(capacity_mbps=100.0, utilization=0.0))
        topo.add_edge(n1, n2, Link(capacity_mbps=100.0, utilization=0.0))
        for engine in PathEngine:
            model = ResponseTimeModel(engine=engine)
            choice = model.best_route(topo, 0, 2)
            assert choice.num_hops == 1, engine


class TestMatrices:
    def test_engines_agree_on_fat_tree(self):
        topo = build_fat_tree(4)
        LinkUtilizationModel(0.2, 0.8, seed=1).apply(topo)
        src, dst = [0, 5, 11], [3, 8, 19, 14]
        R_e, H_e, _ = ResponseTimeModel(
            engine=PathEngine.ENUMERATION, max_hops=6
        ).resistance_matrix(topo, src, dst)
        R_d, H_d, _ = ResponseTimeModel(
            engine=PathEngine.DP, max_hops=6
        ).resistance_matrix(topo, src, dst)
        np.testing.assert_allclose(R_e, R_d)
        np.testing.assert_array_equal(H_e, H_d)

    def test_trmin_scales_by_data_volume(self):
        """Eq. 2: Trmin = D_i * min-resistance."""
        topo = two_path_topology()
        model = ResponseTimeModel(engine=PathEngine.DP)
        R, _, _ = model.resistance_matrix(topo, [0], [2])
        T, _, _ = model.trmin_matrix(topo, [0], [2], [25.0])
        assert T[0, 0] == pytest.approx(25.0 * R[0, 0])

    def test_same_node_pair_zero(self):
        topo = two_path_topology()
        for engine in PathEngine:
            model = ResponseTimeModel(engine=engine)
            R, H, _ = model.resistance_matrix(topo, [1], [1])
            assert R[0, 0] == 0.0
            assert H[0, 0] == 0

    def test_unreachable_inf_and_minus_one(self):
        topo = Topology()
        a, b = topo.add_node(), topo.add_node()
        for engine in PathEngine:
            R, H, _ = ResponseTimeModel(engine=engine).resistance_matrix(topo, [a], [b])
            assert np.isinf(R[0, 0])
            assert H[0, 0] == -1

    def test_with_paths_materializes_routes(self):
        topo = two_path_topology()
        model = ResponseTimeModel(engine=PathEngine.ENUMERATION)
        R, _, paths = model.resistance_matrix(topo, [0], [2], with_paths=True)
        assert (0, 2) in paths
        path = paths[(0, 2)]
        w = model.edge_weights(topo)
        assert sum(w[e] for e in path.edges) == pytest.approx(R[0, 0])

    def test_data_shape_validated(self):
        topo = two_path_topology()
        model = ResponseTimeModel(engine=PathEngine.DP)
        with pytest.raises(RoutingError, match="one data volume per source"):
            model.trmin_matrix(topo, [0], [2], [1.0, 2.0])
        with pytest.raises(RoutingError, match="non-negative"):
            model.trmin_matrix(topo, [0], [2], [-1.0])

    def test_convention_changes_weights(self):
        topo = two_path_topology()
        for link in topo.links:
            link.utilization = 0.4
        avail = ResponseTimeModel(convention=BandwidthConvention.AVAILABLE)
        literal = ResponseTimeModel(convention=BandwidthConvention.UTILIZED_LITERAL)
        w_a = avail.edge_weights(topo)
        w_l = literal.edge_weights(topo)
        assert not np.allclose(w_a, w_l)

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=4, max_value=12),
        st.integers(min_value=0, max_value=400),
        st.integers(min_value=2, max_value=5),
    )
    def test_property_engine_equivalence_random_graphs(self, n, seed, max_hops):
        """ENUMERATION and DP give identical Trmin and hop counts."""
        topo = build_random_connected(n, 0.3, seed=seed)
        LinkUtilizationModel(0.1, 0.9, seed=seed + 1).apply(topo)
        src = [0]
        dst = list(range(1, n))
        R_e, H_e, _ = ResponseTimeModel(
            engine=PathEngine.ENUMERATION, max_hops=max_hops
        ).resistance_matrix(topo, src, dst)
        R_d, H_d, _ = ResponseTimeModel(
            engine=PathEngine.DP, max_hops=max_hops
        ).resistance_matrix(topo, src, dst)
        np.testing.assert_allclose(R_e, R_d, rtol=1e-9)
        np.testing.assert_array_equal(H_e, H_d)
