"""Tests for runtime route maintenance."""

import numpy as np
import pytest

from repro.errors import RoutingError
from repro.routing import RouteMaintainer
from repro.topology import Link, Topology, build_fat_tree


def diamond():
    """0 -> 3 via 1 (primary, cheap) or via 2 (alternative)."""
    topo = Topology()
    n0, n1, n2, n3 = (topo.add_node() for _ in range(4))
    topo.add_edge(n0, n1, Link(capacity_mbps=10_000.0, utilization=0.1))
    topo.add_edge(n1, n3, Link(capacity_mbps=10_000.0, utilization=0.1))
    topo.add_edge(n0, n2, Link(capacity_mbps=10_000.0, utilization=0.3))
    topo.add_edge(n2, n3, Link(capacity_mbps=10_000.0, utilization=0.3))
    return topo


class TestRegistration:
    def test_register_picks_cheapest(self):
        topo = diamond()
        maintainer = RouteMaintainer(topo)
        route = maintainer.register_flow("f", 0, 3)
        assert route.active.nodes == (0, 1, 3)
        assert len(route.alternatives) >= 2

    def test_duplicate_flow_rejected(self):
        topo = diamond()
        maintainer = RouteMaintainer(topo)
        maintainer.register_flow("f", 0, 3)
        with pytest.raises(RoutingError, match="already registered"):
            maintainer.register_flow("f", 0, 3)

    def test_unreachable_rejected(self):
        topo = Topology()
        a, b = topo.add_node(), topo.add_node()
        with pytest.raises(RoutingError, match="no route"):
            RouteMaintainer(topo).register_flow("f", a, b)

    def test_withdraw(self):
        topo = diamond()
        maintainer = RouteMaintainer(topo)
        maintainer.register_flow("f", 0, 3)
        maintainer.withdraw_flow("f")
        assert maintainer.flows == ()
        with pytest.raises(RoutingError):
            maintainer.withdraw_flow("f")

    def test_parameter_validation(self):
        topo = diamond()
        with pytest.raises(RoutingError):
            RouteMaintainer(topo, k_alternatives=0)
        with pytest.raises(RoutingError):
            RouteMaintainer(topo, congestion_threshold=0.0)
        with pytest.raises(RoutingError):
            RouteMaintainer(topo, improvement_factor=0.9)


class TestRerouting:
    def test_congestion_triggers_switch(self):
        topo = diamond()
        maintainer = RouteMaintainer(topo, congestion_threshold=0.9)
        maintainer.register_flow("f", 0, 3)
        assert maintainer.check() == []  # healthy: silent
        # Congest the primary's first hop.
        topo.link_between(0, 1).utilization = 0.95
        decisions = maintainer.check()
        assert len(decisions) == 1
        assert decisions[0].rerouted
        assert maintainer.flow("f").active.nodes == (0, 2, 3)
        assert maintainer.flow("f").switches == 1

    def test_no_healthy_alternative_reported(self):
        topo = diamond()
        maintainer = RouteMaintainer(topo, congestion_threshold=0.9)
        maintainer.register_flow("f", 0, 3)
        for link in topo.links:
            link.utilization = 0.95
        decisions = maintainer.check()
        assert len(decisions) == 1
        assert not decisions[0].rerouted
        assert decisions[0].reason == "no healthy alternative"
        assert maintainer.flow("f").switches == 0

    def test_stable_after_switch(self):
        topo = diamond()
        maintainer = RouteMaintainer(topo, congestion_threshold=0.9)
        maintainer.register_flow("f", 0, 3)
        topo.link_between(0, 1).utilization = 0.95
        maintainer.check()
        # Second check: new active route is healthy, nothing happens.
        assert maintainer.check() == []
        assert maintainer.flow("f").switches == 1

    def test_multiple_flows_independent(self):
        topo = build_fat_tree(4)
        for link in topo.links:
            link.utilization = 0.2
        maintainer = RouteMaintainer(topo, congestion_threshold=0.9)
        maintainer.register_flow("a", 8, 19, max_hops=6)
        maintainer.register_flow("b", 9, 18, max_hops=6)
        flow_a = maintainer.flow("a")
        # Congest every edge of flow a's active path only.
        for e in flow_a.active.edges:
            topo.link(e).utilization = 0.95
        decisions = maintainer.check()
        touched = {d.flow_id for d in decisions}
        assert "a" in touched

    def test_hop_budget_respected_in_alternatives(self):
        topo = build_fat_tree(4)
        for link in topo.links:
            link.utilization = 0.2
        maintainer = RouteMaintainer(topo, k_alternatives=6)
        route = maintainer.register_flow("f", 8, 19, max_hops=4)
        assert all(p.num_hops <= 4 for p in route.alternatives)
