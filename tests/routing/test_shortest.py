"""Tests for the hop-constrained Bellman–Ford DP."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RoutingError
from repro.routing import hop_constrained_shortest, shortest_path
from repro.topology import (
    Link,
    Topology,
    build_line,
    build_random_connected,
    build_ring,
)


def weighted_ring(n=6, seed=0):
    topo = build_ring(n)
    rng = np.random.default_rng(seed)
    weights = rng.uniform(0.5, 2.0, topo.num_edges)
    return topo, weights


class TestBasics:
    def test_source_distance_zero(self):
        topo, w = weighted_ring()
        result = hop_constrained_shortest(topo, 0, 4, w)
        assert result.best[0] == 0.0

    def test_line_distances_accumulate(self):
        topo = build_line(4)
        w = np.array([1.0, 2.0, 3.0])
        result = hop_constrained_shortest(topo, 0, None, w)
        np.testing.assert_allclose(result.best, [0.0, 1.0, 3.0, 6.0])

    def test_hop_budget_limits_reach(self):
        topo = build_line(4)
        w = np.ones(3)
        result = hop_constrained_shortest(topo, 0, 1, w)
        assert np.isfinite(result.best[1])
        assert np.isinf(result.best[2])
        assert np.isinf(result.best[3])

    def test_best_hops_tiebreak(self):
        """best_hops returns the fewest hops achieving the optimum."""
        topo = build_ring(4)  # 0-1-2-3-0
        w = np.ones(4)
        result = hop_constrained_shortest(topo, 0, None, w)
        hops = result.best_hops()
        assert hops[0] == 0
        assert hops[1] == 1
        assert hops[2] == 2  # both ways cost 2; fewest hops is 2
        assert hops[3] == 1

    def test_unreachable_reported(self):
        topo = Topology()
        a = topo.add_node()
        b = topo.add_node()
        result = hop_constrained_shortest(topo, a, None, np.zeros(0))
        assert np.isinf(result.best[b])
        assert result.best_hops()[b] == -1
        assert result.path_to(b) is None

    def test_zero_hop_budget(self):
        topo, w = weighted_ring()
        result = hop_constrained_shortest(topo, 0, 0, w)
        assert result.best[0] == 0.0
        assert np.isinf(result.best[1:]).all()


class TestPathReconstruction:
    def test_path_cost_matches_distance(self):
        topo, w = weighted_ring(8, seed=3)
        result = hop_constrained_shortest(topo, 0, None, w)
        for dst in range(8):
            path = result.path_to(dst)
            assert path is not None
            cost = sum(w[e] for e in path.edges)
            assert cost == pytest.approx(result.best[dst])

    def test_path_respects_hop_budget(self):
        topo = build_random_connected(15, 0.2, seed=4)
        w = np.random.default_rng(0).uniform(0.1, 1.0, topo.num_edges)
        for H in (1, 2, 3):
            result = hop_constrained_shortest(topo, 0, H, w)
            for dst in range(15):
                path = result.path_to(dst)
                if path is not None:
                    assert path.num_hops <= H

    def test_path_is_simple_and_consistent(self):
        topo = build_random_connected(20, 0.25, seed=9)
        w = np.random.default_rng(1).uniform(0.1, 2.0, topo.num_edges)
        result = hop_constrained_shortest(topo, 3, 6, w)
        for dst in range(20):
            path = result.path_to(dst)
            if path is None:
                continue
            assert path.source == 3
            assert path.destination == dst
            for (u, v), e in zip(zip(path.nodes, path.nodes[1:]), path.edges):
                assert topo.edge_id(u, v) == e


class TestValidation:
    def test_wrong_weight_shape(self):
        topo = build_ring(4)
        with pytest.raises(RoutingError, match="edge weights"):
            hop_constrained_shortest(topo, 0, 2, np.ones(3))

    def test_nonpositive_weights_rejected(self):
        topo = build_ring(4)
        with pytest.raises(RoutingError, match="positive"):
            hop_constrained_shortest(topo, 0, 2, np.zeros(4))

    def test_negative_hops_rejected(self):
        topo = build_ring(4)
        with pytest.raises(RoutingError):
            hop_constrained_shortest(topo, 0, -1, np.ones(4))


class TestAgainstNetworkx:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=3, max_value=15),
        st.integers(min_value=0, max_value=500),
    )
    def test_property_unbounded_matches_dijkstra(self, n, seed):
        topo = build_random_connected(n, edge_probability=0.3, seed=seed)
        rng = np.random.default_rng(seed + 1)
        w = rng.uniform(0.1, 5.0, topo.num_edges)
        g = topo.to_networkx()
        for (u, v), weight in zip(topo.edges, w):
            g[u][v]["weight"] = float(weight)
        result = hop_constrained_shortest(topo, 0, None, w)
        lengths = nx.single_source_dijkstra_path_length(g, 0, weight="weight")
        for node in range(n):
            assert result.best[node] == pytest.approx(lengths[node])

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=3, max_value=10),
        st.integers(min_value=0, max_value=300),
        st.integers(min_value=1, max_value=5),
    )
    def test_property_bounded_matches_enumeration(self, n, seed, max_hops):
        """DP optimum == min over exhaustively enumerated paths (the
        paper's two route engines are exchangeable)."""
        from repro.routing import iter_simple_paths

        topo = build_random_connected(n, edge_probability=0.3, seed=seed)
        rng = np.random.default_rng(seed + 7)
        w = rng.uniform(0.1, 5.0, topo.num_edges)
        result = hop_constrained_shortest(topo, 0, max_hops, w)
        for dst in range(n):
            best_enum = np.inf
            for path in iter_simple_paths(topo, 0, dst, max_hops):
                best_enum = min(best_enum, sum(w[e] for e in path.edges))
            if np.isinf(best_enum):
                assert np.isinf(result.best[dst])
            else:
                assert result.best[dst] == pytest.approx(best_enum)


def test_shortest_path_wrapper():
    topo = build_line(3)
    w = np.ones(2)
    path = shortest_path(topo, 0, 2, w)
    assert path is not None and path.nodes == (0, 1, 2)
    assert shortest_path(topo, 0, 2, w, max_hops=1) is None


class TestAllSourcesVectorized:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=3, max_value=18),
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=1, max_value=6),
    )
    def test_property_matches_per_source_dp(self, n, seed, max_hops):
        """The vectorized multi-source sweep equals the per-source DP."""
        from repro.routing import all_sources_hop_constrained

        topo = build_random_connected(n, 0.25, seed=seed)
        rng = np.random.default_rng(seed + 3)
        w = rng.uniform(0.1, 4.0, topo.num_edges)
        sources = list(range(0, n, 2))
        best, hops = all_sources_hop_constrained(topo, sources, max_hops, w)
        for a, s in enumerate(sources):
            ref = hop_constrained_shortest(topo, s, max_hops, w)
            finite = np.isfinite(ref.best)
            assert (np.isfinite(best[a]) == finite).all()
            np.testing.assert_allclose(best[a][finite], ref.best[finite])
            np.testing.assert_array_equal(hops[a], ref.best_hops())

    def test_empty_sources(self):
        from repro.routing import all_sources_hop_constrained

        topo = build_ring(4)
        best, hops = all_sources_hop_constrained(topo, [], 3, np.ones(4))
        assert best.shape == (0, 4)
        assert hops.shape == (0, 4)

    def test_zero_hop_budget(self):
        from repro.routing import all_sources_hop_constrained

        topo = build_ring(4)
        best, hops = all_sources_hop_constrained(topo, [1], 0, np.ones(4))
        assert best[0, 1] == 0.0
        assert np.isinf(best[0, [0, 2, 3]]).all()
        assert hops[0, 1] == 0

    def test_validation(self):
        from repro.routing import all_sources_hop_constrained

        topo = build_ring(4)
        with pytest.raises(RoutingError):
            all_sources_hop_constrained(topo, [0], 2, np.ones(3))
        with pytest.raises(RoutingError):
            all_sources_hop_constrained(topo, [0], -1, np.ones(4))
