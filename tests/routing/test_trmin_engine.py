"""Property-style suite for the parallel + incremental Trmin engine.

The engine's contract is *bit-identity*: serial, parallel, cache-warm
and incrementally re-priced matrices must be exactly equal (``==``,
not ``allclose``) to a fresh serial :class:`ResponseTimeModel` sweep,
for both path engines, including the hop tie-breaks.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing import PathEngine, ResponseTimeModel, TrminEngine
from repro.topology import (
    Link,
    Topology,
    build_fat_tree,
    build_random_connected,
)

ENGINES = [PathEngine.ENUMERATION, PathEngine.DP]


def seeded_random_topology(seed, num_nodes=12):
    topo = build_random_connected(num_nodes, edge_probability=0.2, seed=seed)
    rng = np.random.default_rng(seed + 1)
    topo.set_link_utilizations(rng.uniform(0.0, 0.9, topo.num_edges))
    return topo


def fat_tree_fixture():
    topo = build_fat_tree(4)
    rng = np.random.default_rng(7)
    topo.set_link_utilizations(rng.uniform(0.0, 0.85, topo.num_edges))
    return topo


def endpoints(topo):
    n = topo.num_nodes
    sources = list(range(0, min(4, n // 2)))
    destinations = list(range(n // 2, min(n // 2 + 6, n)))
    return sources, destinations


def assert_same_paths(expected, actual):
    assert set(expected) == set(actual)
    for pair, path in expected.items():
        assert actual[pair].nodes == path.nodes, pair
        assert actual[pair].edges == path.edges, pair


class TestBitIdentity:
    @pytest.mark.parametrize("path_engine", ENGINES)
    def test_serial_parallel_cached_agree_exactly(self, path_engine):
        topo = fat_tree_fixture()
        sources, destinations = endpoints(topo)
        model = ResponseTimeModel(engine=path_engine, max_hops=4)
        R_ref, hops_ref, paths_ref = model.resistance_matrix(
            topo, sources, destinations, with_paths=True
        )

        serial = TrminEngine(model, workers=1, cache=False)
        parallel = TrminEngine(
            model, workers=3, cache=False, min_parallel_pairs=1
        )
        cached = TrminEngine(model, workers=1)
        for engine in (serial, parallel, cached, cached):  # last call = warm
            R, hops, paths = engine.resistance_matrix(
                topo, sources, destinations, with_paths=True
            )
            assert np.array_equal(R, R_ref)
            assert np.array_equal(hops, hops_ref)
            assert_same_paths(paths_ref, paths)
        assert serial.stats.serial_computes == 1
        assert parallel.stats.parallel_computes == 1
        assert cached.stats.full_computes == 1
        assert cached.stats.cache_hits == 1

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_topologies_all_modes_agree(self, seed):
        topo = seeded_random_topology(seed)
        sources, destinations = endpoints(topo)
        for path_engine in ENGINES:
            model = ResponseTimeModel(engine=path_engine, max_hops=4)
            R_ref, hops_ref, _ = model.resistance_matrix(topo, sources, destinations)
            for engine in (
                TrminEngine(model, workers=1, cache=False),
                TrminEngine(
                    model,
                    workers=2,
                    cache=False,
                    min_parallel_pairs=1,
                    executor_kind="thread",
                ),
                TrminEngine(model, workers=1),
            ):
                R, hops, _ = engine.resistance_matrix(topo, sources, destinations)
                assert np.array_equal(R, R_ref), (seed, path_engine)
                assert np.array_equal(hops, hops_ref), (seed, path_engine)

    @pytest.mark.parametrize("path_engine", ENGINES)
    def test_tie_breaks_prefer_fewer_hops(self, path_engine):
        # direct 0-2 and 0-1-2 have equal resistance; fewer hops wins.
        topo = Topology()
        n0, n1, n2 = topo.add_node(), topo.add_node(), topo.add_node()
        topo.add_edge(n0, n1, Link(capacity_mbps=100.0))
        topo.add_edge(n1, n2, Link(capacity_mbps=100.0))
        topo.add_edge(n0, n2, Link(capacity_mbps=50.0))
        model = ResponseTimeModel(engine=path_engine, max_hops=3)
        engine = TrminEngine(model, workers=1)
        R, hops, paths = engine.resistance_matrix(topo, [n0], [n2], with_paths=True)
        assert R[0, 0] == pytest.approx(1.0 / 50.0)
        assert hops[0, 0] == 1
        assert paths[(n0, n2)].nodes == (n0, n2)


class TestIncrementalCache:
    @pytest.mark.parametrize("path_engine", ENGINES)
    @pytest.mark.parametrize("direction", ["increase", "decrease"])
    def test_single_link_delta_reprices_exactly(self, path_engine, direction):
        topo = fat_tree_fixture()
        sources, destinations = endpoints(topo)
        model = ResponseTimeModel(engine=path_engine, max_hops=4)
        engine = TrminEngine(model, workers=1)
        engine.resistance_matrix(topo, sources, destinations)

        edge_id = 3
        util = topo.link(edge_id).utilization
        new_util = min(util + 0.4, 0.95) if direction == "increase" else util * 0.25
        topo.set_utilization(edge_id, new_util)

        R, hops, _ = engine.resistance_matrix(topo, sources, destinations)
        R_ref, hops_ref, _ = model.resistance_matrix(topo, sources, destinations)
        assert np.array_equal(R, R_ref)
        assert np.array_equal(hops, hops_ref)
        if path_engine is PathEngine.DP:
            # The dp cost gate may decide a full recompute is cheaper
            # than row-by-row repair on this small fixture; both paths
            # must stay exact, and exactly one of them must have run.
            assert (
                engine.stats.incremental_updates + engine.stats.gate_fallbacks == 1
            )
            assert engine.stats.full_computes == 1 + engine.stats.gate_fallbacks
        else:
            assert engine.stats.full_computes == 1
            assert engine.stats.incremental_updates == 1

    @pytest.mark.parametrize("path_engine", ENGINES)
    def test_repeated_mixed_deltas_stay_exact(self, path_engine):
        topo = seeded_random_topology(3)
        sources, destinations = endpoints(topo)
        model = ResponseTimeModel(engine=path_engine, max_hops=4)
        engine = TrminEngine(model, workers=1)
        engine.resistance_matrix(topo, sources, destinations)
        rng = np.random.default_rng(11)
        for _ in range(5):
            edge_id = int(rng.integers(0, topo.num_edges))
            topo.set_utilization(edge_id, float(rng.uniform(0.0, 0.9)))
            R, hops, _ = engine.resistance_matrix(topo, sources, destinations)
            R_ref, hops_ref, _ = model.resistance_matrix(topo, sources, destinations)
            assert np.array_equal(R, R_ref)
            assert np.array_equal(hops, hops_ref)
        if path_engine is PathEngine.DP:
            assert engine.stats.full_computes == 1 + engine.stats.gate_fallbacks
            assert engine.stats.incremental_updates + engine.stats.gate_fallbacks >= 1
        else:
            assert engine.stats.full_computes == 1
            assert engine.stats.incremental_updates >= 1

    def test_dp_gate_falls_back_when_repair_is_a_loss(self):
        # Decreasing many links at once makes the dp screening pass more
        # expensive than the flat recompute, so the cost gate must fire
        # (without invalidating the >=10%-dirty bulk threshold).
        topo = fat_tree_fixture()
        sources, destinations = endpoints(topo)
        model = ResponseTimeModel(engine=PathEngine.DP, max_hops=4)
        engine = TrminEngine(model, workers=1, dirty_fraction_threshold=1.1)
        engine.resistance_matrix(topo, sources, destinations)
        utils = np.array(
            [topo.link(e).utilization for e in range(topo.num_edges)]
        )
        topo.set_link_utilizations(utils * 0.5)  # every link decreases
        R, hops, _ = engine.resistance_matrix(topo, sources, destinations)
        R_ref, hops_ref, _ = model.resistance_matrix(topo, sources, destinations)
        assert np.array_equal(R, R_ref)
        assert np.array_equal(hops, hops_ref)
        assert engine.stats.gate_fallbacks == 1
        assert engine.stats.incremental_updates == 0
        assert engine.stats.full_computes == 2

    def test_dp_gate_keeps_single_increase_incremental(self):
        # A pure increase needs no screening pass, so the gate must not
        # fire and the delta must be repaired in place.
        topo = fat_tree_fixture()
        sources, destinations = endpoints(topo)
        model = ResponseTimeModel(engine=PathEngine.DP, max_hops=4)
        engine = TrminEngine(model, workers=1)
        engine.resistance_matrix(topo, sources, destinations)
        edge_id = 3
        util = topo.link(edge_id).utilization
        topo.set_utilization(edge_id, min(util + 0.4, 0.95))
        R, hops, _ = engine.resistance_matrix(topo, sources, destinations)
        R_ref, hops_ref, _ = model.resistance_matrix(topo, sources, destinations)
        assert np.array_equal(R, R_ref)
        assert np.array_equal(hops, hops_ref)
        assert engine.stats.gate_fallbacks == 0
        assert engine.stats.incremental_updates == 1
        assert engine.stats.full_computes == 1

    def test_bulk_resample_past_threshold_forces_full_recompute(self):
        topo = fat_tree_fixture()
        sources, destinations = endpoints(topo)
        model = ResponseTimeModel(engine=PathEngine.DP, max_hops=4)
        engine = TrminEngine(model, workers=1, dirty_fraction_threshold=0.1)
        engine.resistance_matrix(topo, sources, destinations)
        rng = np.random.default_rng(5)
        topo.set_link_utilizations(rng.uniform(0.0, 0.9, topo.num_edges))
        R, hops, _ = engine.resistance_matrix(topo, sources, destinations)
        R_ref, hops_ref, _ = model.resistance_matrix(topo, sources, destinations)
        assert np.array_equal(R, R_ref)
        assert np.array_equal(hops, hops_ref)
        assert engine.stats.full_computes == 2
        assert engine.stats.incremental_updates == 0

    def test_structural_change_forces_full_recompute(self):
        topo = seeded_random_topology(9)
        sources, destinations = endpoints(topo)
        model = ResponseTimeModel(engine=PathEngine.DP, max_hops=4)
        engine = TrminEngine(model, workers=1)
        engine.resistance_matrix(topo, sources, destinations)
        topo.add_node()
        topo.add_edge(0, topo.num_nodes - 1, Link(capacity_mbps=500.0))
        R, hops, _ = engine.resistance_matrix(topo, sources, destinations)
        R_ref, hops_ref, _ = model.resistance_matrix(topo, sources, destinations)
        assert np.array_equal(R, R_ref)
        assert np.array_equal(hops, hops_ref)
        assert engine.stats.full_computes == 2

    def test_unchanged_topology_hits_cache(self):
        topo = fat_tree_fixture()
        sources, destinations = endpoints(topo)
        engine = TrminEngine(ResponseTimeModel(engine=PathEngine.DP, max_hops=4))
        engine.resistance_matrix(topo, sources, destinations)
        engine.resistance_matrix(topo, sources, destinations)
        engine.resistance_matrix(topo, sources, destinations)
        assert engine.stats.full_computes == 1
        assert engine.stats.cache_hits == 2

    def test_duplicate_endpoints_bypass_cache(self):
        topo = fat_tree_fixture()
        engine = TrminEngine(ResponseTimeModel(engine=PathEngine.DP, max_hops=4))
        engine.resistance_matrix(topo, [0, 0, 1], [5, 6])
        assert engine.stats.full_computes == 0
        assert engine.stats.serial_computes == 1


class TestEngineMechanics:
    def test_trmin_matrix_scales_rows_by_data_volume(self):
        topo = fat_tree_fixture()
        sources, destinations = endpoints(topo)
        data_mb = [float(2 * a + 1) for a in range(len(sources))]
        model = ResponseTimeModel(engine=PathEngine.DP, max_hops=4)
        engine = TrminEngine(model, workers=1)
        T, hops, _ = engine.trmin_matrix(topo, sources, destinations, data_mb)
        R_ref, hops_ref, _ = model.resistance_matrix(topo, sources, destinations)
        assert np.array_equal(T, np.asarray(data_mb)[:, None] * R_ref)
        assert np.array_equal(hops, hops_ref)

    def test_pickled_engine_drops_cache_and_still_works(self):
        topo = fat_tree_fixture()
        sources, destinations = endpoints(topo)
        model = ResponseTimeModel(engine=PathEngine.DP, max_hops=4)
        engine = TrminEngine(model, workers=1)
        R_ref, _, _ = engine.resistance_matrix(topo, sources, destinations)
        clone = pickle.loads(pickle.dumps(engine))
        assert len(clone._cache) == 0
        R, _, _ = clone.resistance_matrix(topo, sources, destinations)
        assert np.array_equal(R, R_ref)

    def test_invalidate_clears_cached_entries(self):
        topo = fat_tree_fixture()
        sources, destinations = endpoints(topo)
        engine = TrminEngine(ResponseTimeModel(engine=PathEngine.DP, max_hops=4))
        engine.resistance_matrix(topo, sources, destinations)
        engine.invalidate()
        engine.resistance_matrix(topo, sources, destinations)
        assert engine.stats.full_computes == 2
