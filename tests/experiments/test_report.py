"""Tests for the markdown report writer and CLI --output."""

from pathlib import Path

import pytest

from repro.experiments.common import ExperimentResult
from repro.experiments.report import result_to_markdown, write_report


def sample_result(eid="figX"):
    return ExperimentResult(
        experiment_id=eid,
        title="demo experiment",
        columns=("a", "b"),
        rows=((1, 2.5), ("x", float("nan"))),
        paper_claim="paper says so",
        observations="we saw it too",
        elapsed_s=1.25,
        params=(("n", 3),),
    )


class TestMarkdown:
    def test_section_structure(self):
        md = result_to_markdown(sample_result())
        assert md.startswith("## figX — demo experiment")
        assert "| a | b |" in md
        assert "**Paper:** paper says so" in md
        assert "**Measured:** we saw it too" in md
        assert "`n=3`" in md

    def test_nan_rendered(self):
        md = result_to_markdown(sample_result())
        assert "nan" in md

    def test_write_report(self, tmp_path):
        path = tmp_path / "report.md"
        doc = write_report([sample_result("fig1"), sample_result("fig2")], str(path))
        assert path.exists()
        on_disk = path.read_text()
        assert on_disk == doc
        assert "# DUST reproduction" in doc
        assert "## fig1" in doc and "## fig2" in doc
        assert "2 experiment(s)" in doc


class TestCliOutput:
    def test_cli_writes_report(self, tmp_path, capsys):
        from repro.experiments.cli import main

        out_file = tmp_path / "out.md"
        assert main(["fig9", "--quick", "--iterations", "5",
                     "--output", str(out_file)]) == 0
        assert out_file.exists()
        assert "## fig9" in out_file.read_text()
        assert "report written" in capsys.readouterr().out
