"""Tests for the experiment harness (quick-sized regenerations)."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.experiments.common import ExperimentResult, notation_table, render_table
from repro.experiments.registry import all_experiments, get_experiment, run_experiment


class TestCommon:
    def test_render_table_alignment(self):
        text = render_table(("a", "bb"), [(1, 2.5), ("xxx", float("nan"))])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)
        assert "nan" in text

    def test_notation_table_contains_paper_symbols(self):
        table = notation_table()
        for symbol in ("x_ij", "C_max", "CO_max", "Trmin", "beta"):
            assert symbol in table

    def test_experiment_result_to_text(self):
        result = ExperimentResult(
            experiment_id="figX",
            title="demo",
            columns=("a",),
            rows=((1,),),
            paper_claim="n/a",
            observations="ok",
            elapsed_s=0.5,
            params=(("n", 3),),
        )
        text = result.to_text()
        assert "figX" in text and "paper:" in text and "n=3" in text


class TestRegistry:
    def test_all_eight_figures_registered(self):
        ids = [e.experiment_id for e in all_experiments()]
        assert ids == ["fig1", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12"]

    def test_unknown_experiment_raises(self):
        with pytest.raises(ReproError, match="unknown experiment"):
            get_experiment("fig99")

    def test_quick_params_are_subsets(self):
        for entry in all_experiments():
            assert isinstance(entry.quick_params, dict)


class TestFig1:
    def test_quick_run_shape(self):
        result = run_experiment("fig1", quick=True)
        assert result.experiment_id == "fig1"
        overall = result.rows[-1]
        assert overall[0] == "OVERALL"
        # Module CPU in a sane band on the 8-core DUT.
        assert 50.0 <= overall[1] <= 300.0
        assert overall[2] <= 800.0


class TestFig6:
    def test_reductions_positive(self):
        result = run_experiment("fig6", quick=True)
        cpu_row = result.rows[0]
        assert cpu_row[1] > cpu_row[2]  # local > offloaded
        assert cpu_row[3] > 20.0  # a substantial cut


class TestFig7:
    def test_io_rate_decreases_with_delta(self):
        result = run_experiment(
            "fig7", iterations=60, deltas=(0.8, 1.5, 2.5, 3.5), seed=0
        )
        rates = [row[2] for row in result.rows]
        assert rates[0] > 25.0  # starved regime is often infeasible
        assert rates[-1] < 5.0  # paper's K_io >= 2 guidance holds
        assert rates[0] >= rates[-1]


class TestFig8:
    def test_time_grows_with_hops(self):
        result = run_experiment("fig8", iterations=3, hops=(2, 6, 10), seed=0)
        times = [row[1] for row in result.rows]
        assert times[0] < times[-1]


class TestFig9:
    def test_categories_sum_to_hundred(self):
        result = run_experiment("fig9", iterations=30, seed=0)
        pcts = [row[2] for row in result.rows]
        assert sum(pcts) == pytest.approx(100.0)
        # Paper shape: partial dominates.
        labels = [row[0] for row in result.rows]
        partial = pcts[labels.index("partial (heuristic + ILP remainder)")]
        assert partial == max(pcts)


class TestFig10:
    def test_quick_run(self):
        result = run_experiment("fig10", quick=True)
        ks = {row[0] for row in result.rows}
        assert ks == {"8-k", "16-k"}
        for row in result.rows:
            assert row[2] == "enum"
            assert row[3] > 0

    def test_32k_series_uses_matrix_priced_dp(self):
        result = run_experiment(
            "fig10",
            iterations_8k=1,
            iterations_16k=1,
            iterations_32k=1,
            hops_8k=(2,),
            hops_16k=(2,),
            hops_32k=(2,),
            workers=1,
        )
        by_k = {row[0]: row for row in result.rows}
        assert by_k["32-k"][2] == "dp/matrix"
        assert by_k["32-k"][3] > 0


class TestFig11:
    def test_hfr_decreases_with_scale(self):
        result = run_experiment(
            "fig11",
            scales=((4, 5, False, None), (16, 2, False, None)),
            seed=0,
        )
        hfrs = [row[2] for row in result.rows]
        assert hfrs[0] > hfrs[-1]


class TestFig12:
    def test_heuristic_time_grows(self):
        result = run_experiment("fig12", scales=((4, 3), (16, 1)), seed=0)
        times = [row[2] for row in result.rows]
        assert times[-1] > times[0]


class TestCli:
    def test_cli_runs_single_experiment(self, capsys):
        from repro.experiments.cli import main

        assert main(["fig9", "--quick", "--iterations", "10"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out and "paper:" in out

    def test_cli_table1(self, capsys):
        from repro.experiments.cli import main

        assert main(["table1"]) == 0
        assert "Notation" in capsys.readouterr().out


def _square_point(payload):
    """Module-level (picklable) sweep point for TestShardedSweep."""
    from repro.obs import get_registry

    get_registry().counter("test.sweep.points").inc()
    return payload["x"] ** 2


class TestShardedSweep:
    def test_results_come_back_in_payload_order(self):
        from repro.experiments.common import run_sharded_sweep

        payloads = [{"x": x} for x in range(6)]
        assert run_sharded_sweep(_square_point, payloads, workers=2) == [
            0, 1, 4, 9, 16, 25,
        ]

    def test_single_worker_takes_the_serial_path(self):
        from repro.experiments.common import run_sharded_sweep

        assert run_sharded_sweep(_square_point, [{"x": 3}], workers=1) == [9]

    def test_worker_metric_deltas_merge_into_parent(self):
        from repro.experiments.common import run_sharded_sweep
        from repro.obs import get_registry

        counter = get_registry().counter("test.sweep.points")
        before = counter.value
        payloads = [{"x": x} for x in range(4)]
        run_sharded_sweep(_square_point, payloads, workers=2)
        # One increment per point, whether it ran in a pool worker
        # (delta merged back) or on the serial fallback.
        assert counter.value == before + len(payloads)

    def test_dispatch_payload_size_does_not_scale_with_topology(self):
        """The shm handle keeps worker dispatch O(1) in fabric size: the
        16-k payload pickles to the same few hundred bytes as the 4-k
        one despite carrying a 16x-larger topology."""
        import pickle

        from repro.experiments.common import publish_topology_arrays
        from repro.topology.fattree import fat_tree_arrays

        sizes, handles = {}, []
        try:
            for k in (4, 16):
                arrays = fat_tree_arrays(k)
                handle = publish_topology_arrays(arrays)
                handles.append(handle)
                payload = {"k": k, "iterations": 1, "seed": 0, "arrays": handle}
                sizes[k] = len(pickle.dumps(payload))
            assert sizes[16] <= sizes[4] + 8  # name/version digits only
            assert max(sizes.values()) < 512
        finally:
            for handle in handles:
                handle.unlink()

    def test_resolve_topology_arrays_accepts_all_payload_styles(self):
        import numpy as np

        from repro.experiments.common import (
            publish_topology_arrays,
            resolve_topology_arrays,
        )
        from repro.topology.fattree import fat_tree_arrays

        assert resolve_topology_arrays(None) is None
        arrays = fat_tree_arrays(4)
        assert resolve_topology_arrays(arrays) is arrays  # legacy inline style
        handle = publish_topology_arrays(arrays)
        try:
            resolved = resolve_topology_arrays(handle)
            np.testing.assert_array_equal(resolved.us, arrays.us)
            np.testing.assert_array_equal(resolved.capacity_mbps, arrays.capacity_mbps)
        finally:
            handle.unlink()


class TestShmSweepEquality:
    def test_sharded_and_serial_fig12_points_match(self):
        """Zero-copy attach cannot change results: per-seed HFR and busy
        counts are identical whether a point runs inline (serial, cache
        hit on the publisher's arena) or in a pool worker (fresh
        attach)."""
        scales = ((4, 2), (8, 1))
        serial = run_experiment("fig12", scales=scales, seed=0, workers=1)
        sharded = run_experiment("fig12", scales=scales, seed=0, workers=2)
        for row_serial, row_sharded in zip(serial.rows, sharded.rows):
            assert row_serial[0] == row_sharded[0]  # fat-tree label
            assert row_serial[3] == row_sharded[3]  # mean HFR %
            assert row_serial[4] == row_sharded[4]  # busy count
