"""Tests for the beyond-the-paper extra experiments."""

import numpy as np
import pytest

from repro.experiments.registry import (
    PAPER_FIGURE_IDS,
    all_experiments,
    get_experiment,
    run_experiment,
)


class TestRegistryExtras:
    def test_extras_not_in_all(self):
        ids = [e.experiment_id for e in all_experiments()]
        assert ids == list(PAPER_FIGURE_IDS)
        assert "hops" not in ids
        assert "convention" not in ids

    def test_extras_retrievable(self):
        assert get_experiment("hops").experiment_id == "hops"
        assert get_experiment("convention").experiment_id == "convention"


class TestHopsStudy:
    def test_budget_ordering(self):
        result = run_experiment("hops", iterations=15, budgets=(2, None), seed=0)
        by_label = {row[0]: row for row in result.rows}
        tight = by_label["ILP max-hop 2"]
        loose = by_label["ILP max-hop none"]
        heuristic = by_label["heuristic (Algorithm 1)"]
        # Tighter budget => fewer (or equal) mean hops.
        assert tight[1] <= loose[1] + 1e-9
        # Heuristic is pinned to exactly one hop and pays HFR.
        assert heuristic[1] == 1.0
        assert heuristic[3] > 0.0
        # The ILP pays no HFR by construction.
        assert tight[3] == 0.0 and loose[3] == 0.0


class TestConventionStudy:
    def test_capacity_driven_quantities_match(self):
        result = run_experiment("convention", iterations=15, seed=0)
        rows = {row[0]: row for row in result.rows}
        avail = rows["available"]
        literal = rows["utilized-literal"]
        # Feasibility is a pure capacity question: exactly equal.
        assert avail[1] == pytest.approx(literal[1])
        # Hop counts shift only marginally between conventions.
        assert avail[2] == pytest.approx(literal[2], abs=0.5)


class TestOverheadStudy:
    def test_volume_falls_with_interval(self):
        result = run_experiment(
            "overhead", intervals=(30.0, 120.0), horizon_s=1200.0, seed=3
        )
        volumes = [row[1] for row in result.rows]
        assert volumes[0] > volumes[1]

    def test_first_offload_tracks_interval(self):
        result = run_experiment(
            "overhead", intervals=(30.0, 300.0), horizon_s=1200.0, seed=3
        )
        firsts = [row[3] for row in result.rows]
        assert firsts[0] <= firsts[1]


class TestSoakStudy:
    def test_registered_as_extra(self):
        assert get_experiment("soak").experiment_id == "soak"
        assert "soak" not in [e.experiment_id for e in all_experiments()]

    def test_quick_run_and_json_artifact(self, tmp_path):
        path = tmp_path / "soak.json"
        result = run_experiment("soak", quick=True, json_path=str(path))
        assert result.experiment_id == "soak"
        # quick params: one seed, calm + chaos rows.
        assert len(result.rows) == 2
        modes = [row[1] for row in result.rows]
        assert modes == ["calm", "chaos"]
        for row in result.rows:
            assert row[8] == 0  # prod shed
            assert row[9] == pytest.approx(0.0)  # prod loss MB

        import json

        artifact = json.loads(path.read_text())
        assert {r["mode"] for r in artifact["runs"]} == {"calm", "chaos"}
        for record in artifact["runs"]:
            assert record["events_per_min"] >= 1e5
            assert record["production_losses"] == 0
        chaos = [r for r in artifact["runs"] if r["mode"] == "chaos"][0]
        assert chaos["manager_took_over_at"] is not None
        assert chaos["final_drift"] <= 0.5
        assert "observability" in artifact
