"""End-to-end scenario: a day in the life of a DUST deployment.

One long deterministic simulation exercising every workflow the paper
describes, in sequence, with the system auditor asserting global
consistency after each phase:

1. admission — all clients announce and begin STATing;
2. overload — three switches run hot, the manager places their excess;
3. churn — a destination crashes, keepalives expire, REP/reclaim
   re-homes the workload;
4. recovery — the crashed node reboots and rejoins;
5. relief — the hot nodes cool down and reclaim their workloads;
6. quiesce — the ledger drains to empty and the fabric is calm.
"""

import numpy as np
import pytest

from repro.core import DUSTClient, DUSTManager, ThresholdPolicy, audit_system
from repro.simulation import MessageNetwork, SimulationEngine
from repro.topology import LinkUtilizationModel, build_fat_tree

POLICY = ThresholdPolicy(c_max=80.0, co_max=50.0, x_min=10.0)
HOT = (5, 9, 14)


@pytest.fixture(scope="module")
def scenario():
    """Run the whole scenario once; phases assert on the shared state."""
    topology = build_fat_tree(4)
    LinkUtilizationModel(0.2, 0.7, seed=11).apply(topology)
    engine = SimulationEngine()
    network = MessageNetwork(topology, engine)
    manager = DUSTManager(
        node_id=0,
        topology=topology,
        engine=engine,
        network=network,
        policy=POLICY,
        update_interval_s=30.0,
        optimization_period_s=60.0,
        keepalive_timeout_s=40.0,
    )
    manager.start()
    rng = np.random.default_rng(5)
    clients = {}
    for node in range(1, topology.num_nodes):
        client = DUSTClient(
            node_id=node,
            engine=engine,
            network=network,
            manager_node=0,
            policy=POLICY,
            base_capacity=92.0 if node in HOT else float(rng.uniform(15.0, 42.0)),
            data_mb=10.0,
            keepalive_period_s=10.0,
        )
        client.start()
        clients[node] = client

    checkpoints = {}

    # Phase 1+2: admission and placement.
    engine.run_until(400.0)
    checkpoints["placed"] = {
        "ledger": len(manager.ledger),
        "established": manager.counters.offloads_established,
        "hot_caps": {n: clients[n].current_capacity(engine.now) for n in HOT},
        "audit": audit_system(manager, clients),
    }

    # Phase 3: destination crash.
    victim = manager.ledger.active[0].destination
    clients[victim].fail()
    engine.run_until(1000.0)
    checkpoints["crashed"] = {
        "victim": victim,
        "failed": manager.counters.destinations_failed,
        "still_on_victim": [o for o in manager.ledger.active if o.destination == victim],
        "audit": audit_system(manager, clients),
    }

    # Phase 4: recovery.
    clients[victim].recover()
    engine.run_until(1400.0)
    checkpoints["recovered"] = {
        "victim_alive": clients[victim].alive,
        "victim_stats": clients[victim].stats_sent,
        "audit": audit_system(manager, clients),
    }

    # Phase 5: relief — hot nodes cool down.
    for node in HOT:
        clients[node]._base_capacity = 35.0
    engine.run_until(2200.0)
    checkpoints["relieved"] = {
        "reclaims": manager.counters.reclaims_issued,
        "ledger": len(manager.ledger),
        "audit": audit_system(manager, clients),
    }

    return manager, clients, engine, checkpoints


def test_phase_placement_established(scenario):
    _, _, _, checkpoints = scenario
    placed = checkpoints["placed"]
    assert placed["established"] >= 3
    assert placed["ledger"] >= 3
    for node, capacity in placed["hot_caps"].items():
        assert capacity == pytest.approx(80.0), f"hot node {node} not relieved"


def test_phase_placement_consistent(scenario):
    _, _, _, checkpoints = scenario
    assert checkpoints["placed"]["audit"].clean, checkpoints["placed"]["audit"]


def test_phase_crash_detected_and_rehomed(scenario):
    _, _, _, checkpoints = scenario
    crashed = checkpoints["crashed"]
    assert crashed["failed"] >= 1
    assert crashed["still_on_victim"] == []
    assert crashed["audit"].clean, crashed["audit"]


def test_phase_recovery_rejoins(scenario):
    _, _, _, checkpoints = scenario
    recovered = checkpoints["recovered"]
    assert recovered["victim_alive"]
    assert recovered["audit"].clean, recovered["audit"]


def test_phase_relief_reclaims_everything(scenario):
    manager, clients, engine, checkpoints = scenario
    relieved = checkpoints["relieved"]
    assert relieved["reclaims"] >= 1
    assert relieved["ledger"] == 0, manager.ledger.active
    assert relieved["audit"].clean, relieved["audit"]
    for client in clients.values():
        if client.alive:
            assert client.hosted_amount == pytest.approx(0.0)
            assert client.offloaded_amount == pytest.approx(0.0)


def test_control_plane_overhead_is_bounded(scenario):
    manager, clients, engine, _ = scenario
    network = manager.network
    # Messages are periodic: sanity-bound the volume (no storms).
    sim_minutes = engine.now / 60.0
    assert network.messages_sent < len(clients) * sim_minutes * 10
