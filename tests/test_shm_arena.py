"""Shared-memory arena lifecycle: pack/attach, version guards, leak-freedom."""

import os
import pickle

import numpy as np
import pytest

from repro.parallel import (
    ShmArena,
    ShmArenaError,
    active_arena_segments,
    attach_shared,
)


@pytest.fixture
def sample_arrays():
    rng = np.random.default_rng(0)
    return {
        "floats": rng.uniform(0.0, 1.0, (7, 3)),
        "ints": np.arange(11, dtype=np.int64),
        "bytes": np.frombuffer(b"hello arena", dtype=np.uint8),
    }


class TestCreateAttach:
    def test_round_trip_preserves_every_array(self, sample_arrays):
        arena = ShmArena.create(sample_arrays)
        try:
            fresh = ShmArena.attach(arena.name)
            assert set(fresh.arrays) == set(sample_arrays)
            for key, original in sample_arrays.items():
                np.testing.assert_array_equal(fresh.arrays[key], original)
                assert fresh.arrays[key].dtype == original.dtype
            fresh.close()
        finally:
            arena.close()

    def test_views_are_read_only(self, sample_arrays):
        arena = ShmArena.create(sample_arrays)
        try:
            with pytest.raises(ValueError):
                arena.arrays["ints"][0] = 99
        finally:
            arena.close()

    def test_payloads_are_64_byte_aligned(self, sample_arrays):
        arena = ShmArena.create(sample_arrays)
        try:
            for view in arena.arrays.values():
                address = view.__array_interface__["data"][0]
                assert address % 64 == 0
        finally:
            arena.close()

    def test_missing_segment_raises(self):
        with pytest.raises(ShmArenaError, match="does not exist"):
            ShmArena.attach("repro-nope-000000000000")

    def test_version_mismatch_rejected(self, sample_arrays):
        arena = ShmArena.create(sample_arrays, version=7)
        try:
            with pytest.raises(ShmArenaError, match="holds version 7, expected 8"):
                ShmArena.attach(arena.name, expected_version=8)
            ShmArena.attach(arena.name, expected_version=7).close()
        finally:
            arena.close()

    def test_foreign_segment_rejected(self):
        from multiprocessing import shared_memory

        from repro.parallel import _raw_unlink, _tracker_unregister

        shm = shared_memory.SharedMemory(create=True, size=64)
        _tracker_unregister(shm)
        try:
            shm.buf[:8] = b"NOTDUST!"
            with pytest.raises(ShmArenaError, match="bad magic"):
                ShmArena.attach(shm.name)
        finally:
            shm.close()
            _raw_unlink(shm)


class TestLifecycle:
    def test_unlink_is_idempotent_and_tracked(self, sample_arrays):
        arena = ShmArena.create(sample_arrays)
        assert arena.name in active_arena_segments()
        assert arena.linked
        arena.unlink()
        arena.unlink()  # second call is a no-op
        assert not arena.linked
        assert arena.name not in active_arena_segments()
        assert arena.name not in os.listdir("/dev/shm")
        arena.close()

    def test_views_survive_unlink(self, sample_arrays):
        """POSIX semantics: the name goes away, the mapping does not."""
        arena = ShmArena.create(sample_arrays)
        arena.unlink()
        np.testing.assert_array_equal(arena.arrays["ints"], sample_arrays["ints"])
        arena.close()

    def test_attach_shared_resolves_through_cache_after_unlink(self, sample_arrays):
        """A serial fallback (or fork-replay worker) must still resolve
        an arena the broken-pool cleanup already unlinked."""
        arena = ShmArena.create(sample_arrays)
        arena.unlink()
        try:
            resolved = attach_shared(arena.name, expected_version=arena.version)
            assert resolved is arena
            with pytest.raises(ShmArenaError, match="holds version"):
                attach_shared(arena.name, expected_version=arena.version + 1)
        finally:
            arena.close()

    def test_close_evicts_cache_entry(self, sample_arrays):
        arena = ShmArena.create(sample_arrays)
        name = arena.name
        arena.close()
        with pytest.raises(ShmArenaError):
            attach_shared(name)


class TestTopologyShm:
    def test_round_trip_preserves_blueprint(self):
        from repro.topology.fattree import fat_tree_arrays
        from repro.topology.graph import ShmTopologyHandle, Topology, TopologyArrays

        arrays = fat_tree_arrays(4)
        handle = arrays.to_shm()
        try:
            assert isinstance(handle, ShmTopologyHandle)
            back = TopologyArrays.from_shm(handle)
            assert back.name == arrays.name
            assert back.num_nodes == arrays.num_nodes
            assert back.node_names == arrays.node_names
            assert back.node_kinds == arrays.node_kinds
            for field in ("node_pods", "us", "vs", "capacity_mbps",
                          "utilization", "latency_ms", "csr_indptr",
                          "csr_indices", "csr_edge_ids"):
                np.testing.assert_array_equal(
                    getattr(back, field), getattr(arrays, field)
                )
            # The views materialize into a working topology.
            topo = Topology.from_arrays(back)
            assert topo.num_nodes == arrays.num_nodes
            assert topo.num_edges == len(arrays.us)
        finally:
            handle.unlink()

    def test_stale_handle_version_rejected(self):
        from repro.parallel import ShmArenaError
        from repro.topology.fattree import fat_tree_arrays
        from repro.topology.graph import ShmTopologyHandle, TopologyArrays

        arrays = fat_tree_arrays(4)
        handle = arrays.to_shm()
        try:
            stale = ShmTopologyHandle(segment=handle.segment, version=handle.version + 1)
            with pytest.raises(ShmArenaError, match="holds version"):
                TopologyArrays.from_shm(stale)
        finally:
            handle.unlink()

    def test_handle_unlink_is_idempotent(self):
        from repro.topology.fattree import fat_tree_arrays

        handle = fat_tree_arrays(4).to_shm()
        handle.unlink()
        handle.unlink()  # second unlink (e.g. after broken-pool cleanup)
        assert handle.segment not in active_arena_segments()

    def test_handle_pickles_in_constant_size(self):
        """The dispatch payload must not scale with the fabric."""
        from repro.topology.fattree import fat_tree_arrays

        small = fat_tree_arrays(4)
        large = fat_tree_arrays(16)
        assert large.us.nbytes > 4 * small.us.nbytes  # fabrics really differ
        h_small, h_large = small.to_shm(), large.to_shm()
        try:
            small_size = len(pickle.dumps(h_small))
            large_size = len(pickle.dumps(h_large))
            assert small_size < 256
            assert large_size < 256
            # Identical structure — only name/version digits may differ.
            assert abs(large_size - small_size) <= 8
        finally:
            h_small.unlink()
            h_large.unlink()
