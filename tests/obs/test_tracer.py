"""Tracer behaviour: no-op fast path, nesting, ring buffer, exporters."""

import json

import pytest

from repro.obs import SpanRecord, Tracer, get_tracer, trace_event, trace_span
from repro.obs.tracer import _NOOP_SPAN


@pytest.fixture()
def tracer():
    t = Tracer(enabled=True)
    yield t
    t.clear()


class TestDisabledFastPath:
    def test_disabled_span_is_the_shared_noop(self):
        t = Tracer(enabled=False)
        assert t.span("anything") is t.span("anything") is _NOOP_SPAN

    def test_global_trace_span_returns_noop_when_disabled(self):
        assert not get_tracer().enabled  # default state for the suite
        assert trace_span("x") is _NOOP_SPAN

    def test_disabled_records_nothing(self):
        t = Tracer(enabled=False)
        with t.span("x"):
            pass
        t.event("y")
        assert len(t) == 0

    def test_noop_span_supports_tag(self):
        with trace_span("x") as span:
            span.tag(status="ok")  # must not raise


class TestRecording:
    def test_span_records_name_duration_and_tags(self, tracer):
        with tracer.span("phase.a", {"size": 3}) as span:
            span.tag(status="done")
        (rec,) = tracer.records()
        assert rec.name == "phase.a"
        assert rec.duration_ns >= 0
        assert dict(rec.tags) == {"size": 3, "status": "done"}
        assert rec.phase == "X"

    def test_nested_spans_track_depth(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {r.name: r for r in tracer.records()}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1

    def test_depth_restored_after_exception(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        with tracer.span("after"):
            pass
        assert {r.depth for r in tracer.records()} == {0}

    def test_event_is_instant(self, tracer):
        tracer.event("tick", attempt=2)
        (rec,) = tracer.records()
        assert rec.phase == "i"
        assert rec.duration_ns == 0
        assert dict(rec.tags) == {"attempt": 2}

    def test_ring_buffer_evicts_oldest(self):
        t = Tracer(max_records=4, enabled=True)
        for i in range(10):
            with t.span(f"s{i}"):
                pass
        names = [r.name for r in t.records()]
        assert names == ["s6", "s7", "s8", "s9"]

    def test_summary_aggregates_per_name(self, tracer):
        for _ in range(3):
            with tracer.span("phase.a"):
                pass
        summary = tracer.summary()
        assert summary["phase.a"]["count"] == 3
        assert summary["phase.a"]["total_s"] >= 0
        assert "mean_s" in summary["phase.a"]


class TestExporters:
    def test_chrome_trace_document_shape(self, tracer, tmp_path):
        with tracer.span("outer", {"k": "v"}):
            tracer.event("mark")
        path = tmp_path / "trace.json"
        count = tracer.export_chrome_trace(str(path))
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert count == len(events) == 2
        complete = next(e for e in events if e["ph"] == "X")
        instant = next(e for e in events if e["ph"] == "i")
        assert complete["name"] == "outer"
        assert complete["args"] == {"k": "v"}
        assert "dur" in complete
        assert instant["s"] == "t"
        # Timeline is re-based to zero.
        assert min(e["ts"] for e in events) == 0.0

    def test_jsonl_export_round_trips(self, tracer, tmp_path):
        with tracer.span("a", {"n": 1}):
            pass
        path = tmp_path / "trace.jsonl"
        assert tracer.export_jsonl(str(path)) == 1
        (line,) = path.read_text().splitlines()
        rec = json.loads(line)
        assert rec["name"] == "a"
        assert rec["tags"] == {"n": 1}


class TestGlobalHelpers:
    def test_trace_span_and_event_record_when_enabled(self):
        t = get_tracer()
        t.enable()
        try:
            with trace_span("global.span", size=1):
                trace_event("global.event")
            names = [r.name for r in t.records()]
            assert "global.span" in names and "global.event" in names
        finally:
            t.disable()
            t.clear()

    def test_allocation_profiling_records_deltas(self):
        t = get_tracer()
        t.enable(profile_allocations=True)
        try:
            with trace_span("alloc.span"):
                _ = [list(range(100)) for _ in range(50)]
            rec = next(r for r in t.records() if r.name == "alloc.span")
            assert rec.alloc_net_bytes is not None
        finally:
            from repro.obs import disable_profiling

            disable_profiling()
            t.disable()
            t.clear()


def test_span_record_is_frozen():
    rec = SpanRecord(name="x", start_ns=0, duration_ns=1, depth=0, thread_id=0)
    with pytest.raises(Exception):
        rec.name = "y"
