"""Registry semantics: registration, threading, snapshot/delta/merge."""

import threading

import pytest

from repro.obs import MetricError, MetricsRegistry
from repro.obs.registry import get_registry


class TestRegistration:
    def test_idempotent_registration_returns_same_instrument(self):
        reg = MetricsRegistry("t")
        a = reg.counter("x.events", unit="count", owner="tests")
        b = reg.counter("x.events")
        assert a is b

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry("t")
        reg.counter("x.events")
        with pytest.raises(MetricError, match="already registered"):
            reg.gauge("x.events")

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry("t")
        with pytest.raises(MetricError):
            reg.counter("")
        with pytest.raises(MetricError):
            reg.counter("has space")

    def test_counter_cannot_decrease(self):
        reg = MetricsRegistry("t")
        with pytest.raises(MetricError):
            reg.counter("x.c").inc(-1)

    def test_value_of_unknown_metric_raises(self):
        with pytest.raises(MetricError, match="unknown"):
            MetricsRegistry("t").value("nope")


class TestInstruments:
    def test_counter_set_max_never_decreases(self):
        c = MetricsRegistry("t").counter("x.c")
        c.set_max(10)
        c.set_max(4)
        assert c.value == 10
        c.set_max(12)
        assert c.value == 12

    def test_gauge_last_write_wins(self):
        g = MetricsRegistry("t").gauge("x.g")
        g.set(3.5)
        g.set(1.0)
        assert g.value == 1.0

    def test_histogram_summary(self):
        h = MetricsRegistry("t").histogram("x.h")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 6.0
        assert h.minimum == 1.0
        assert h.maximum == 3.0
        assert h.mean == 2.0

    def test_reset_zeroes_values_but_keeps_catalog(self):
        reg = MetricsRegistry("t")
        reg.counter("x.c").inc(5)
        reg.histogram("x.h").observe(1.0)
        reg.reset()
        assert reg.value("x.c") == 0
        assert reg.names() == ["x.c", "x.h"]


class TestThreading:
    def test_concurrent_increments_are_exact(self):
        reg = MetricsRegistry("t")
        counter = reg.counter("x.c")
        hist = reg.histogram("x.h")
        n_threads, per_thread = 8, 2000

        def work():
            for _ in range(per_thread):
                counter.inc()
                hist.observe(1.0)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == n_threads * per_thread
        assert hist.count == n_threads * per_thread
        assert hist.total == float(n_threads * per_thread)


class TestSnapshotDeltaMerge:
    def test_collect_delta_is_exact_difference(self):
        reg = MetricsRegistry("t")
        reg.counter("x.c").inc(3)
        reg.histogram("x.h").observe(2.0)
        baseline = reg.snapshot()
        reg.counter("x.c").inc(4)
        reg.histogram("x.h").observe(6.0)
        delta = reg.collect_delta(baseline)
        assert delta["metrics"]["x.c"]["value"] == 4
        assert delta["metrics"]["x.h"]["count"] == 1
        assert delta["metrics"]["x.h"]["total"] == 6.0

    def test_unchanged_metrics_are_omitted_from_delta(self):
        reg = MetricsRegistry("t")
        reg.counter("x.c").inc(3)
        baseline = reg.snapshot()
        delta = reg.collect_delta(baseline)
        assert delta["metrics"] == {}

    def test_merge_delta_registers_unknown_metrics(self):
        src, dst = MetricsRegistry("src"), MetricsRegistry("dst")
        src.counter("only.src", unit="count", owner="tests").inc(2)
        dst.merge_delta(src.collect_delta({"metrics": {}}))
        assert dst.value("only.src") == 2
        assert dst.get("only.src").kind == "counter"

    def test_roundtrip_merge_equals_direct_counting(self):
        parent = MetricsRegistry("parent")
        parent.counter("x.c").inc(10)
        parent.histogram("x.h").observe(1.0)
        # Simulate a forked worker: starts from the parent's totals.
        worker = MetricsRegistry("worker")
        worker.counter("x.c").inc(10)
        worker.histogram("x.h").observe(1.0)
        baseline = worker.snapshot()
        worker.counter("x.c").inc(7)
        worker.histogram("x.h").observe(5.0)
        parent.merge_delta(worker.collect_delta(baseline))
        assert parent.value("x.c") == 17
        h = parent.get("x.h")
        assert h.count == 2 and h.total == 6.0

    def test_snapshot_is_json_shaped(self):
        reg = MetricsRegistry("t")
        reg.counter("x.c").inc()
        snap = reg.snapshot()
        assert snap["registry"] == "t"
        assert isinstance(snap["pid"], int)
        assert snap["metrics"]["x.c"]["kind"] == "counter"


def test_global_registry_carries_the_catalog():
    reg = get_registry()
    for name in ("trmin.cache_hits", "placement.solves",
                 "transport.retransmissions", "network.messages_dropped",
                 "failover.takeovers", "chaos.runs"):
        assert name in reg, name
