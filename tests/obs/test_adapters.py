"""Adapter correctness: mirror maps match the real counter objects,
mirroring never double-counts, aliases normalize, pool metrics merge."""

import dataclasses
import os

from repro.obs import (
    CLIENT_MIRROR,
    ENGINE_STATS_MIRROR,
    FAULTY_NETWORK_MIRROR,
    MANAGER_COUNTERS_MIRROR,
    NETWORK_MIRROR,
    canonical_counter_name,
    get_registry,
    mirror_counters,
    normalize_counter_keys,
)
from repro.parallel import map_with_pool_retry


class TestMirrorMapsMatchReality:
    """The adapter maps are plain data (no imports of the mirrored
    layers), so these tests pin them to the real field lists."""

    def test_engine_stats_fields(self):
        from repro.routing.engine import EngineStats

        fields = {f.name for f in dataclasses.fields(EngineStats)}
        assert set(ENGINE_STATS_MIRROR) <= fields

    def test_manager_counters_fields(self):
        from repro.core.manager import ManagerCounters

        fields = {f.name for f in dataclasses.fields(ManagerCounters)}
        assert set(MANAGER_COUNTERS_MIRROR) <= fields
        # The transport/network mirror fields must NOT be mirrored from
        # ManagerCounters — their ground truth reports directly.
        assert not {
            "retransmissions",
            "sends_gave_up",
            "network_messages_dropped",
            "network_duplicates_delivered",
        } & set(MANAGER_COUNTERS_MIRROR)

    def test_client_attributes(self):
        import inspect

        from repro.core.client import DUSTClient

        source = inspect.getsource(DUSTClient)
        for attr in CLIENT_MIRROR:
            assert f"self.{attr}" in source, attr

    def test_network_attributes(self):
        from repro.simulation.network_sim import FaultyNetwork, MessageNetwork

        assert MessageNetwork.METRIC_MIRROR is NETWORK_MIRROR
        assert FaultyNetwork.METRIC_MIRROR is FAULTY_NETWORK_MIRROR

    def test_every_mirror_target_is_a_catalog_metric(self):
        reg = get_registry()
        for mapping in (
            ENGINE_STATS_MIRROR,
            MANAGER_COUNTERS_MIRROR,
            CLIENT_MIRROR,
            NETWORK_MIRROR,
            FAULTY_NETWORK_MIRROR,
        ):
            for metric_name in mapping.values():
                assert metric_name in reg, metric_name


class _Stats:
    def __init__(self, **values):
        self.__dict__.update(values)


class TestMirrorSemantics:
    def test_remirroring_same_object_adds_only_growth(self):
        reg = get_registry()
        mapping = {"hits": "testmirror.hits"}
        obj = _Stats(hits=5)
        before = reg.counter("testmirror.hits").value
        mirror_counters(obj, mapping)
        mirror_counters(obj, mapping)  # idempotent at same state
        obj.hits = 8
        mirror_counters(obj, mapping)  # +3 only
        assert reg.value("testmirror.hits") - before == 8

    def test_new_object_instances_accumulate(self):
        reg = get_registry()
        mapping = {"hits": "testmirror.accum"}
        before = reg.counter("testmirror.accum").value
        mirror_counters(_Stats(hits=4), mapping)
        mirror_counters(_Stats(hits=6), mapping)  # a fresh run's object
        assert reg.value("testmirror.accum") - before == 10

    def test_missing_attributes_count_as_zero(self):
        reg = get_registry()
        before = reg.counter("testmirror.missing").value
        mirror_counters(_Stats(), {"nope": "testmirror.missing"})
        assert reg.value("testmirror.missing") == before


class TestAliasNormalization:
    def test_known_aliases_map_to_catalog_names(self):
        assert canonical_counter_name("retransmits") == "transport.retransmissions"
        assert canonical_counter_name("msgs_dropped") == "network.messages_dropped"
        assert (
            canonical_counter_name("dupes_injected") == "network.duplicates_injected"
        )

    def test_unknown_keys_pass_through(self):
        assert canonical_counter_name("production_loss_mb") == "production_loss_mb"

    def test_colliding_aliases_are_summed(self):
        out = normalize_counter_keys({"retransmits": 3, "retransmissions": 2})
        assert out == {"transport.retransmissions": 5}

    def test_every_alias_targets_a_registered_metric(self):
        from repro.obs import COUNTER_ALIASES

        reg = get_registry()
        for target in COUNTER_ALIASES.values():
            assert target in reg, target


def _observe_in_worker(amount):
    """Module-level so it pickles into process-pool workers."""
    get_registry().counter(
        "testpool.work_units", unit="count", owner="tests"
    ).inc(amount)
    return os.getpid()


class TestPoolMetricFlow:
    def test_metrics_flow_back_from_pool_workers(self):
        reg = get_registry()
        before = reg.counter("testpool.work_units", owner="tests").value
        amounts = [1, 2, 3, 4]
        pids = map_with_pool_retry(
            _observe_in_worker, amounts, workers=2, collect_metrics=True
        )
        assert pids is not None
        # Exact regardless of executor: forked workers ship deltas home
        # (merged), a thread fallback increments the shared registry
        # directly (deltas skipped by the pid guard).
        assert reg.value("testpool.work_units") - before == sum(amounts)

    def test_thread_pool_does_not_double_count(self):
        reg = get_registry()
        before = reg.counter("testpool.work_units", owner="tests").value
        result = map_with_pool_retry(
            _observe_in_worker, [5, 5], workers=2, kind="thread",
            collect_metrics=True,
        )
        assert result is not None
        assert reg.value("testpool.work_units") - before == 10
