"""FaultyNetwork: fault model, counters, partitions, determinism."""

import pytest

from repro.errors import SimulationError
from repro.simulation import (
    FaultConfig,
    FaultyNetwork,
    MessageNetwork,
    SimulationEngine,
)
from repro.topology import build_fat_tree, build_line


def make_net(faults=None, seed=0, topology=None):
    topology = topology or build_line(3)
    engine = SimulationEngine()
    network = FaultyNetwork(topology, engine, faults=faults, seed=seed)
    received = {}
    for node in range(topology.num_nodes):
        received[node] = []
        network.register(node, lambda msg, n=node: received[n].append(msg))
    return network, engine, received


class TestFaultConfig:
    def test_probability_bounds(self):
        with pytest.raises(SimulationError, match="drop_probability"):
            FaultConfig(drop_probability=1.5)
        with pytest.raises(SimulationError, match="duplicate_probability"):
            FaultConfig(duplicate_probability=-0.1)
        with pytest.raises(SimulationError, match="reorder_probability"):
            FaultConfig(reorder_probability=2.0)
        with pytest.raises(SimulationError, match="non-negative"):
            FaultConfig(jitter_s=-1.0)
        with pytest.raises(SimulationError, match="per-link drop"):
            FaultConfig(per_link_drop={(0, 1): 1.2})

    def test_null_detection(self):
        assert FaultConfig().is_null
        assert not FaultConfig(drop_probability=0.1).is_null
        assert not FaultConfig(per_link_drop={(2, 1): 0.5}).is_null
        assert not FaultConfig(partitions=({0, 1},)).is_null

    def test_per_link_drop_is_unordered(self):
        config = FaultConfig(per_link_drop={(2, 1): 0.5})
        assert config.drop_for(1, 2) == 0.5
        assert config.drop_for(2, 1) == 0.5
        assert config.drop_for(0, 1) == 0.0


class TestNullFastPath:
    def test_byte_identical_to_message_network(self):
        """With a null config the faulty network must behave exactly
        like the plain one: same counters, same delivery times, zero
        fault activity, empty event log."""
        topology = build_line(3)
        runs = []
        for cls in (MessageNetwork, FaultyNetwork):
            engine = SimulationEngine()
            network = cls(topology, engine)
            delivered = []
            for node in range(3):
                network.register(node, lambda m: delivered.append(
                    (m.source, m.destination, m.payload, m.delivered_at)
                ))
            for i in range(20):
                network.send(i % 3, (i + 1) % 3, f"payload-{i}")
            engine.run_until(10.0)
            runs.append((
                delivered, network.messages_sent, network.messages_delivered,
                network.messages_dropped,
            ))
        assert runs[0] == runs[1]
        # And the faulty instance recorded no fault activity at all.
        network, engine, received = make_net(faults=FaultConfig())
        network.send(0, 1, "x")
        engine.run_until(1.0)
        assert received[1] and network.event_log == []
        assert network.faults_dropped == 0
        assert network.duplicates_injected == 0


class TestFaults:
    def test_certain_drop(self):
        network, engine, received = make_net(FaultConfig(drop_probability=1.0))
        for _ in range(5):
            network.send(0, 2, "x")
        engine.run_until(5.0)
        assert received[2] == []
        assert network.faults_dropped == 5
        assert network.messages_dropped == 5
        assert [e[1] for e in network.event_log] == ["drop"] * 5

    def test_certain_duplication(self):
        network, engine, received = make_net(FaultConfig(duplicate_probability=1.0))
        network.send(0, 1, "x")
        engine.run_until(5.0)
        assert len(received[1]) == 2
        assert network.duplicates_injected == 1
        # The duplicate is one extra delivery, not an extra send.
        assert network.messages_sent == 1
        assert network.messages_delivered == 2

    def test_certain_reorder_adds_delay(self):
        config = FaultConfig(reorder_probability=1.0, reorder_extra_s=0.5)
        network, engine, received = make_net(config)
        network.send(0, 1, "slow")
        engine.run_until(10.0)
        assert network.reordered == 1
        base = network.latency_between(0, 1)
        assert received[1][0].delivered_at == pytest.approx(base + 0.5)

    def test_reorder_can_invert_delivery_order(self):
        """A reordered first message arrives after a clean second one."""
        config = FaultConfig(reorder_probability=1.0, reorder_extra_s=0.5)
        network, engine, received = make_net(config)
        network.send(0, 1, "first")
        engine.run_until(5.0)
        network2, engine2, received2 = make_net(FaultConfig())
        network2.send(0, 1, "second")
        engine2.run_until(5.0)
        assert received[1][0].latency > received2[1][0].latency

    def test_per_link_override_only_hits_that_link(self):
        config = FaultConfig(per_link_drop={(0, 2): 1.0})
        network, engine, received = make_net(config)
        for _ in range(3):
            network.send(0, 2, "doomed")
            network.send(0, 1, "fine")
        engine.run_until(5.0)
        assert received[2] == []
        assert len(received[1]) == 3
        assert network.faults_dropped == 3

    def test_jitter_stays_within_bound(self):
        network, engine, received = make_net(FaultConfig(jitter_s=0.3), seed=42)
        for _ in range(30):
            network.send(0, 1, "j")
        engine.run_until(10.0)
        base = network.latency_between(0, 1)
        latencies = [m.latency for m in received[1]]
        assert all(base <= lat <= base + 0.3 for lat in latencies)
        assert len(set(latencies)) > 1  # jitter actually varies


class TestPartitions:
    def test_cross_island_traffic_blocked(self):
        config = FaultConfig(partitions=({0, 1}, {2}))
        network, engine, received = make_net(config)
        network.send(0, 1, "same-island")
        network.send(0, 2, "cross-island")
        engine.run_until(5.0)
        assert len(received[1]) == 1
        assert received[2] == []
        assert network.partition_dropped == 1
        assert ("partition-drop") in [e[1] for e in network.event_log]

    def test_ungrouped_nodes_share_the_rest_island(self):
        # Only node 0 is named: 1 and 2 fall into the implicit rest
        # island and can still talk to each other, but not to 0.
        config = FaultConfig(partitions=({0},))
        network, engine, received = make_net(config)
        network.send(1, 2, "rest-to-rest")
        network.send(1, 0, "rest-to-island")
        engine.run_until(5.0)
        assert len(received[2]) == 1
        assert received[0] == []

    def test_mid_run_partition_and_heal(self):
        network, engine, received = make_net(FaultConfig())
        network.set_partition([{0}, {1, 2}])
        network.send(0, 1, "blocked")
        engine.run_until(1.0)
        assert received[1] == []
        network.heal_partition()
        network.send(0, 1, "open")
        engine.run_until(2.0)
        assert len(received[1]) == 1


class TestDeterminism:
    def run_once(self, seed):
        topology = build_fat_tree(4)
        engine = SimulationEngine()
        network = FaultyNetwork(
            topology, engine,
            faults=FaultConfig(
                drop_probability=0.2, duplicate_probability=0.2,
                jitter_s=0.5, reorder_probability=0.2,
            ),
            seed=seed,
        )
        delivered = []
        for node in range(topology.num_nodes):
            network.register(node, lambda m: delivered.append(
                (m.source, m.destination, m.payload, m.delivered_at)
            ))
        for i in range(200):
            network.send(i % 16, (i * 7 + 3) % 16, i)
        engine.run_until(60.0)
        return tuple(network.event_log), tuple(delivered)

    def test_same_seed_same_log(self):
        assert self.run_once(7) == self.run_once(7)

    def test_different_seed_different_log(self):
        assert self.run_once(7) != self.run_once(8)
