"""Soak driver: backpressure gate, degradation ladder, drift watchdog,
and the composed-chaos acceptance scenario.

The calm and chaos soak runs are module-scoped fixtures — each is one
full control-plane simulation, shared by every assertion against it.
"""

import dataclasses

import pytest

from repro.core import DegradationLevel
from repro.errors import SimulationError
from repro.simulation import (
    BurstyArrivals,
    DiurnalArrivals,
    IngressGate,
    PoissonArrivals,
    QoSTier,
    SoakChaos,
    SoakConfig,
    SoakEvent,
    StreamSpec,
    default_soak_chaos,
    run_soak,
)

#: The acceptance floor from the issue: 1e5 simulated events per wall
#: minute. Measured headroom on one CI core is ~30x.
THROUGHPUT_FLOOR_PER_MIN = 1e5


def ev(tier, kind="load", node=5, t=0.0, value=1.0):
    return SoakEvent(time=t, kind=kind, node=node, value=value, tier=tier)


class TestIngressGate:
    def test_admits_until_capacity_then_drops_tail(self):
        gate = IngressGate(capacity=2)
        assert gate.admit(ev(QoSTier.STANDARD), shedding=False)
        assert gate.admit(ev(QoSTier.STANDARD), shedding=False)
        assert not gate.admit(ev(QoSTier.STANDARD), shedding=False)
        assert len(gate) == 2
        assert gate.fill == 1.0
        assert gate.rejected[QoSTier.STANDARD] == 1

    def test_shedding_drops_background_even_when_empty(self):
        gate = IngressGate(capacity=8)
        assert not gate.admit(ev(QoSTier.BACKGROUND), shedding=True)
        assert gate.admit(ev(QoSTier.STANDARD), shedding=True)
        assert gate.admit(ev(QoSTier.PRODUCTION), shedding=True)
        assert gate.shed[QoSTier.BACKGROUND] == 1
        assert gate.shed[QoSTier.STANDARD] == 0

    def test_not_shedding_admits_background(self):
        gate = IngressGate(capacity=8)
        assert gate.admit(ev(QoSTier.BACKGROUND), shedding=False)
        assert gate.shed[QoSTier.BACKGROUND] == 0

    def test_production_evicts_oldest_lowest_tier_when_full(self):
        gate = IngressGate(capacity=3)
        first_bg = ev(QoSTier.BACKGROUND, node=1)
        gate.admit(ev(QoSTier.STANDARD, node=0), shedding=False)
        gate.admit(first_bg, shedding=False)
        gate.admit(ev(QoSTier.BACKGROUND, node=2), shedding=False)
        assert gate.admit(ev(QoSTier.PRODUCTION, node=3), shedding=False)
        assert len(gate) == 3  # bound held: a victim made room
        assert gate.rejected[QoSTier.BACKGROUND] == 1
        drained = gate.drain(10)
        assert first_bg not in drained  # the oldest lowest-tier went
        assert [e.tier for e in drained].count(QoSTier.PRODUCTION) == 1

    def test_all_production_queue_overflows_instead_of_dropping(self):
        gate = IngressGate(capacity=2)
        for node in range(3):
            assert gate.admit(ev(QoSTier.PRODUCTION, node=node), shedding=False)
        assert len(gate) == 3
        assert gate.fill > 1.0
        assert gate.rejected[QoSTier.PRODUCTION] == 0

    def test_drain_is_fifo_and_bounded(self):
        gate = IngressGate(capacity=8)
        for node in range(5):
            gate.admit(ev(QoSTier.STANDARD, node=node), shedding=False)
        batch = gate.drain(3)
        assert [e.node for e in batch] == [0, 1, 2]
        assert len(gate) == 2


class TestStreamSpec:
    def test_builds_each_kind(self):
        assert isinstance(StreamSpec("poisson", 5.0).build(0, 1), PoissonArrivals)
        assert isinstance(StreamSpec("diurnal", 5.0).build(0, 1), DiurnalArrivals)
        assert isinstance(StreamSpec("bursty", 5.0).build(0, 1), BurstyArrivals)
        with pytest.raises(SimulationError):
            StreamSpec("fractal", 5.0).build(0, 1)

    def test_seed_and_salt_separate_streams(self):
        spec = StreamSpec("poisson", 5.0)
        assert spec.build(0, 1).take(20) == spec.build(0, 1).take(20)
        assert spec.build(0, 1).take(20) != spec.build(0, 2).take(20)
        assert spec.build(0, 1).take(20) != spec.build(1, 1).take(20)


class TestConfigValidation:
    def test_crash_outside_horizon_rejected(self):
        with pytest.raises(SimulationError):
            SoakConfig(horizon_s=100.0, chaos=default_soak_chaos(crash_at=150.0))

    def test_partition_needs_groups(self):
        with pytest.raises(SimulationError):
            SoakChaos(partition_at=10.0)
        with pytest.raises(SimulationError):
            SoakChaos(partition_at=10.0, partition_heal_at=5.0,
                      partition_groups=((1, 2),))

    def test_basic_field_validation(self):
        with pytest.raises(SimulationError):
            SoakConfig(horizon_s=0.0)
        with pytest.raises(SimulationError):
            SoakConfig(ingress_capacity=0)
        with pytest.raises(SimulationError):
            SoakConfig(watchdog_strikes=0)
        with pytest.raises(SimulationError):
            SoakConfig(standby_node=0, manager_node=0)

    def test_default_chaos_is_composed(self):
        chaos = default_soak_chaos(crash_at=200.0)
        assert not chaos.is_null
        assert chaos.faults.drop_probability == pytest.approx(0.20)
        assert chaos.partition_at == 100.0
        assert chaos.partition_heal_at == 160.0
        assert chaos.manager_crash_at == 200.0


@pytest.fixture(scope="module")
def calm_run():
    return run_soak(SoakConfig(seed=0, horizon_s=420.0))


@pytest.fixture(scope="module")
def chaos_run():
    return run_soak(SoakConfig(
        seed=0, horizon_s=400.0, chaos=default_soak_chaos(crash_at=200.0),
    ))


class TestCalmSoak:
    def test_throughput_floor(self, calm_run):
        assert calm_run.events_applied > 1000
        assert calm_run.events_per_min >= THROUGHPUT_FLOOR_PER_MIN

    def test_no_production_loss(self, calm_run):
        assert calm_run.production_losses == 0
        assert calm_run.qos.production_loss_mb == pytest.approx(0.0)

    def test_all_generated_events_accounted_for(self, calm_run):
        gate = calm_run.gate
        accounted = (
            calm_run.events_applied
            + sum(gate.rejected.values())
            + sum(gate.shed.values())
            + len(gate)
        )
        assert accounted == calm_run.events_generated

    def test_control_plane_actually_worked(self, calm_run):
        assert calm_run.counters.optimization_rounds > 0
        assert calm_run.counters.offloads_established > 0
        assert calm_run.took_over_at is None  # no crash: primary held

    def test_drift_converges_within_bound(self, calm_run):
        assert calm_run.drift_samples  # watchdog actually sampled
        assert calm_run.final_drift <= calm_run.config.drift_bound

    def test_latency_percentiles_ordered(self, calm_run):
        assert 0.0 <= calm_run.latency_p50_s <= calm_run.latency_p95_s
        assert calm_run.latency_p95_s <= calm_run.latency_p99_s
        # Events wait at most ~one drain period plus scheduling slack.
        assert calm_run.latency_p99_s <= 5.0 * calm_run.config.drain_period_s


class TestDeterminism:
    def test_same_seed_same_simulated_quantities(self):
        config = SoakConfig(seed=3, horizon_s=60.0)
        a = run_soak(config)
        b = run_soak(dataclasses.replace(config))
        # Wall-clock-derived numbers differ; simulated ones must not.
        assert a.events_generated == b.events_generated
        assert a.events_applied == b.events_applied
        assert a.applied_by_tier == b.applied_by_tier
        assert a.drift_samples == b.drift_samples
        assert a.ladder_transitions == b.ladder_transitions
        assert a.watchdog_resets == b.watchdog_resets

    def test_different_seed_different_stream(self):
        a = run_soak(SoakConfig(seed=1, horizon_s=60.0))
        b = run_soak(SoakConfig(seed=2, horizon_s=60.0))
        assert a.events_generated != b.events_generated


class TestDegradationUnderOverload:
    def test_tiny_gate_forces_ladder_up_without_production_loss(self):
        """A burst far beyond drain capacity walks the ladder up; the
        gate sheds/rejects only the lower tiers while it lasts."""
        result = run_soak(SoakConfig(
            seed=0,
            horizon_s=120.0,
            load_stream=StreamSpec(
                "bursty", 40.0, burst_rate_per_s=400.0,
                mean_calm_s=10.0, mean_burst_s=30.0,
            ),
            ingress_capacity=64,
            drain_batch=16,
        ))
        assert result.ladder_max_level >= DegradationLevel.SHED_LOW
        assert result.ladder_transitions  # trajectory was recorded
        shed_or_rejected = (
            sum(result.shed_by_tier.values()) + sum(result.rejected_by_tier.values())
        )
        assert shed_or_rejected > 0
        assert result.production_losses == 0


class TestComposedChaos:
    """The acceptance scenario: 20% loss + dup/reorder + one partition
    + one mid-soak manager crash, under sustained traffic."""

    def test_standby_took_over(self, chaos_run):
        assert chaos_run.took_over_at is not None
        assert chaos_run.took_over_at > chaos_run.config.chaos.manager_crash_at
        assert chaos_run.standby.promoted

    def test_recovers_within_drift_bound(self, chaos_run):
        assert chaos_run.final_drift <= chaos_run.config.drift_bound

    def test_zero_production_class_loss(self, chaos_run):
        assert chaos_run.production_losses == 0
        assert chaos_run.qos.production_loss_mb == pytest.approx(0.0)

    def test_traffic_sustained_through_chaos(self, chaos_run):
        assert chaos_run.events_per_min >= THROUGHPUT_FLOOR_PER_MIN
        assert chaos_run.events_applied > 1000

    def test_chaos_actually_hurt(self, chaos_run):
        """Guard against a vacuous pass: the fabric really dropped and
        partitioned, and the control plane really retransmitted."""
        network = chaos_run.network
        assert network.faults_dropped > 0
        assert network.partition_dropped > 0
        assert chaos_run.counters.retransmissions > 0
