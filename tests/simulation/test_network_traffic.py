"""Tests for the message network, traffic matrix and RNG helpers."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simulation import (
    GravityTrafficMatrix,
    MessageNetwork,
    SimulationEngine,
    rng_from,
    spawn_seeds,
)
from repro.topology import Link, Topology, build_fat_tree, build_line


def line_network(n=3, latency_ms=1.0):
    topo = Topology()
    nodes = [topo.add_node() for _ in range(n)]
    for i in range(n - 1):
        topo.add_edge(nodes[i], nodes[i + 1], Link(latency_ms=latency_ms))
    engine = SimulationEngine()
    return topo, engine, MessageNetwork(topo, engine)


class TestMessageNetwork:
    def test_delivery_with_latency(self):
        topo, engine, net = line_network(3, latency_ms=1.0)
        received = []
        net.register(2, lambda m: received.append(m))
        net.register(0, lambda m: None)
        net.send(0, 2, payload="hello")
        engine.run()
        assert len(received) == 1
        msg = received[0]
        assert msg.payload == "hello"
        # Two hops x 1 ms = 2 ms.
        assert msg.latency == pytest.approx(0.002)
        assert msg.source == 0 and msg.destination == 2

    def test_send_to_unregistered_drops_silently(self):
        """Dead endpoints lose packets like a real network."""
        _, _, net = line_network()
        net.send(0, 2, payload="x")
        assert net.messages_dropped == 1
        assert net.messages_sent == 0

    def test_send_to_nonexistent_node_raises(self):
        _, _, net = line_network()
        with pytest.raises(Exception):
            net.send(0, 99, payload="x")

    def test_duplicate_registration_rejected(self):
        _, _, net = line_network()
        net.register(0, lambda m: None)
        with pytest.raises(SimulationError, match="already has"):
            net.register(0, lambda m: None)

    def test_unregister_mid_flight_drops_silently(self):
        topo, engine, net = line_network()
        received = []
        net.register(2, lambda m: received.append(m))
        net.send(0, 2, payload="x")
        net.unregister(2)
        engine.run()
        assert received == []
        assert net.messages_sent == 1
        assert net.messages_delivered == 0

    def test_latency_uses_min_latency_path(self):
        topo = Topology()
        a, b, c = topo.add_node(), topo.add_node(), topo.add_node()
        topo.add_edge(a, c, Link(latency_ms=10.0))  # slow direct
        topo.add_edge(a, b, Link(latency_ms=1.0))
        topo.add_edge(b, c, Link(latency_ms=1.0))
        engine = SimulationEngine()
        net = MessageNetwork(topo, engine)
        assert net.latency_between(a, c) == pytest.approx(0.002)

    def test_disconnected_raises(self):
        topo = Topology()
        a, b = topo.add_node(), topo.add_node()
        net = MessageNetwork(topo, SimulationEngine())
        with pytest.raises(SimulationError, match="disconnected"):
            net.latency_between(a, b)

    def test_broadcast_skips_sender(self):
        topo, engine, net = line_network(3)
        hits = []
        for node in range(3):
            net.register(node, lambda m, n=node: hits.append(n))
        count = net.broadcast(1, payload="b")
        engine.run()
        assert count == 2
        assert sorted(hits) == [0, 2]


class TestGravityTraffic:
    def test_apply_sets_utilizations(self):
        topo = build_fat_tree(4)
        traffic = GravityTrafficMatrix(total_demand_mbps=200_000.0, seed=0)
        carried = traffic.apply(topo)
        assert carried.shape == (topo.num_edges,)
        utils = np.array([l.utilization for l in topo.links])
        assert (utils >= 0).all() and (utils <= 0.95).all()
        assert utils.max() > 0  # something was routed

    def test_demands_exclude_self_pairs(self):
        traffic = GravityTrafficMatrix(total_demand_mbps=100.0, seed=1)
        demands = traffic.sample_demands(5, 200)
        assert all(s != d for s, d, _ in demands)

    def test_total_demand_preserved(self):
        traffic = GravityTrafficMatrix(total_demand_mbps=1000.0, seed=2)
        demands = traffic.sample_demands(10, 50)
        assert sum(v for _, _, v in demands) == pytest.approx(1000.0)

    def test_validation(self):
        with pytest.raises(SimulationError):
            GravityTrafficMatrix(total_demand_mbps=-1.0)
        with pytest.raises(SimulationError):
            GravityTrafficMatrix(total_demand_mbps=1.0, max_util=0.0)
        with pytest.raises(SimulationError):
            GravityTrafficMatrix(total_demand_mbps=1.0).sample_demands(1, 10)

    def test_line_topology_middle_edge_busiest(self):
        topo = build_line(5)
        traffic = GravityTrafficMatrix(total_demand_mbps=10_000.0, seed=3)
        carried = traffic.apply(topo, num_pairs=200)
        # Middle edges carry strictly more than the average end edge.
        assert carried[1:3].mean() >= carried[[0, 3]].mean()


class TestSeedHelpers:
    def test_spawn_seeds_deterministic(self):
        assert spawn_seeds(42, 5) == spawn_seeds(42, 5)

    def test_spawn_seeds_distinct(self):
        seeds = spawn_seeds(0, 50)
        assert len(set(seeds)) == 50

    def test_spawn_count_validation(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)

    def test_rng_from_streams_differ(self):
        a = rng_from(7, 0).random(4)
        b = rng_from(7, 1).random(4)
        assert not np.allclose(a, b)
        c = rng_from(7, 0).random(4)
        np.testing.assert_array_equal(a, c)
