"""Tests for the time-varying load profiles."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simulation import (
    BurstyArrivals,
    DiurnalArrivals,
    DiurnalProfile,
    PoissonArrivals,
    RandomWalkProfile,
    SpikeProfile,
)


class TestDiurnal:
    def test_peaks_and_troughs(self):
        profile = DiurnalProfile(
            base_pct=50.0, amplitude_pct=20.0, period_s=86_400.0, noise_pct=0.0
        )
        quarter = 86_400.0 / 4.0
        assert profile(quarter) == pytest.approx(70.0)
        assert profile(3 * quarter) == pytest.approx(30.0)
        assert profile(0.0) == pytest.approx(50.0)

    def test_deterministic_with_noise(self):
        a = DiurnalProfile(noise_pct=5.0, seed=3)
        b = DiurnalProfile(noise_pct=5.0, seed=3)
        for t in (0.0, 123.0, 4567.0):
            assert a(t) == b(t)

    def test_noise_stable_within_minute_bucket(self):
        # Amplitude 0 isolates the noise term: same bucket, same draw.
        profile = DiurnalProfile(amplitude_pct=0.0, noise_pct=5.0, seed=1)
        assert profile(60.0) == profile(119.0)
        assert profile(60.0) != profile(121.0)  # next bucket, fresh draw

    def test_clamped(self):
        profile = DiurnalProfile(base_pct=95.0, amplitude_pct=50.0, noise_pct=0.0)
        values = [profile(t) for t in np.linspace(0, 86_400, 48)]
        assert max(values) <= 100.0
        assert min(values) >= 0.0

    def test_validation(self):
        with pytest.raises(SimulationError):
            DiurnalProfile(period_s=0.0)
        with pytest.raises(SimulationError):
            DiurnalProfile(amplitude_pct=-1.0)


class TestSpike:
    def test_windows_apply(self):
        profile = SpikeProfile(base_pct=30.0, windows=((100.0, 200.0, 90.0),))
        assert profile(50.0) == 30.0
        assert profile(150.0) == 90.0
        assert profile(200.0) == 30.0  # half-open interval

    def test_overlapping_windows_take_max(self):
        profile = SpikeProfile(
            base_pct=20.0,
            windows=((0.0, 100.0, 60.0), (50.0, 150.0, 80.0)),
        )
        assert profile(75.0) == 80.0

    def test_validation(self):
        with pytest.raises(SimulationError):
            SpikeProfile(windows=((10.0, 10.0, 50.0),))
        with pytest.raises(SimulationError):
            SpikeProfile(windows=((0.0, 1.0, 150.0),))


class TestRandomWalk:
    def test_deterministic_and_monotone_cache(self):
        a = RandomWalkProfile(seed=5)
        b = RandomWalkProfile(seed=5)
        ts = [0.0, 60.0, 600.0, 6000.0]
        assert [a(t) for t in ts] == [b(t) for t in ts]
        # Re-evaluating earlier times returns cached values.
        assert a(60.0) == b(60.0)

    def test_out_of_order_evaluation_consistent(self):
        a = RandomWalkProfile(seed=9)
        late = a(6000.0)
        early = a(600.0)
        b = RandomWalkProfile(seed=9)
        assert b(600.0) == early
        assert b(6000.0) == late

    def test_mean_reversion_keeps_walk_near_mean(self):
        profile = RandomWalkProfile(mean_pct=45.0, sigma_pct=3.0, reversion=0.2, seed=0)
        values = [profile(t * 60.0) for t in range(2000)]
        assert 30.0 < np.mean(values) < 60.0
        assert min(values) >= 0.0 and max(values) <= 100.0

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            RandomWalkProfile()( -1.0 )

    def test_validation(self):
        with pytest.raises(SimulationError):
            RandomWalkProfile(step_s=0.0)
        with pytest.raises(SimulationError):
            RandomWalkProfile(reversion=0.0)


class TestProfilesDriveClients:
    def test_diurnal_client_offloads_at_peak_and_reclaims_at_trough(self):
        """Full control loop on a sinusoidal load: offload near the peak
        and reclaim after the load subsides."""
        from repro.core import DUSTClient, DUSTManager, ThresholdPolicy
        from repro.simulation import MessageNetwork, SimulationEngine
        from repro.topology import LinkUtilizationModel, build_fat_tree

        policy = ThresholdPolicy(c_max=80.0, co_max=50.0, x_min=10.0)
        topology = build_fat_tree(4)
        LinkUtilizationModel(0.2, 0.6, seed=0).apply(topology)
        engine = SimulationEngine()
        network = MessageNetwork(topology, engine)
        manager = DUSTManager(
            node_id=0, topology=topology, engine=engine, network=network,
            policy=policy, update_interval_s=30.0, optimization_period_s=60.0,
        )
        manager.start()
        # Node 5 follows a 1-hour "day": peaks at 90%, troughs at 30%.
        profile = DiurnalProfile(
            base_pct=60.0, amplitude_pct=30.0, period_s=3600.0, noise_pct=0.0
        )
        clients = {}
        for node in range(1, topology.num_nodes):
            clients[node] = DUSTClient(
                node_id=node, engine=engine, network=network, manager_node=0,
                policy=policy,
                base_capacity=profile if node == 5 else 30.0,
            )
            clients[node].start()
        engine.run_until(1100.0)  # past the peak at t=900
        assert clients[5].offloaded_amount > 0, "peak load should offload"
        engine.run_until(3200.0)  # past the trough at t=2700
        assert clients[5].offloaded_amount == 0, "trough should reclaim"
        assert manager.counters.reclaims_issued >= 1


class TestArrivalProcesses:
    def test_poisson_monotone_and_deterministic(self):
        a = PoissonArrivals(rate_per_s=5.0, seed=11)
        b = PoissonArrivals(rate_per_s=5.0, seed=11)
        times = a.take(500)
        assert times == b.take(500)
        assert all(x < y for x, y in zip(times, times[1:]))
        assert times[0] > 0.0

    def test_poisson_rate_approximately_honoured(self):
        process = PoissonArrivals(rate_per_s=10.0, seed=0)
        times = process.take(5000)
        empirical = len(times) / times[-1]
        assert empirical == pytest.approx(10.0, rel=0.1)

    def test_poisson_seeds_decorrelate(self):
        assert PoissonArrivals(5.0, seed=1).take(10) != PoissonArrivals(5.0, seed=2).take(10)

    def test_diurnal_rate_peaks_and_troughs(self):
        process = DiurnalArrivals(base_rate_per_s=2.0, swing=0.5, period_s=100.0)
        assert process.rate_at(25.0) == pytest.approx(3.0)   # peak
        assert process.rate_at(75.0) == pytest.approx(1.0)   # trough
        assert process.rate_at(0.0) == pytest.approx(2.0)

    def test_diurnal_thinning_tracks_intensity(self):
        """More arrivals land in the peak half-period than the trough."""
        process = DiurnalArrivals(base_rate_per_s=20.0, swing=0.8,
                                  period_s=200.0, seed=3)
        times = [t for t in process.take(4000) if t < 200.0]
        peak_half = sum(1 for t in times if t < 100.0)
        trough_half = len(times) - peak_half
        assert peak_half > 2.0 * trough_half

    def test_diurnal_deterministic(self):
        a = DiurnalArrivals(1.0, seed=4)
        b = DiurnalArrivals(1.0, seed=4)
        assert a.take(100) == b.take(100)

    def test_bursty_regimes_change_rate(self):
        """Inter-arrival gaps inside bursts are visibly tighter."""
        process = BurstyArrivals(calm_rate_per_s=1.0, burst_rate_per_s=50.0,
                                 mean_calm_s=50.0, mean_burst_s=20.0, seed=2)
        gaps_by_regime = {True: [], False: []}
        previous = 0.0
        for _ in range(3000):
            t = process.next_arrival()
            gaps_by_regime[process.bursting].append(t - previous)
            previous = t
        assert gaps_by_regime[True] and gaps_by_regime[False]
        assert np.mean(gaps_by_regime[True]) < np.mean(gaps_by_regime[False]) / 5.0

    def test_bursty_monotone_and_deterministic(self):
        a = BurstyArrivals(2.0, 40.0, seed=9)
        b = BurstyArrivals(2.0, 40.0, seed=9)
        times = a.take(1000)
        assert times == b.take(1000)
        assert all(x < y for x, y in zip(times, times[1:]))

    def test_validation(self):
        with pytest.raises(SimulationError):
            PoissonArrivals(rate_per_s=0.0)
        with pytest.raises(SimulationError):
            DiurnalArrivals(base_rate_per_s=1.0, swing=1.0)
        with pytest.raises(SimulationError):
            DiurnalArrivals(base_rate_per_s=1.0, period_s=0.0)
        with pytest.raises(SimulationError):
            BurstyArrivals(calm_rate_per_s=5.0, burst_rate_per_s=1.0)
        with pytest.raises(SimulationError):
            BurstyArrivals(1.0, 10.0, mean_calm_s=0.0)
