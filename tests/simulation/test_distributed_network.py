"""Networked distributed solve: loss and partitions cost time, not truth.

The coordinator/zone protocol runs over the simulated message fabric;
these tests drive it through drops, duplication, reordering and
partitions and check the one invariant that matters: the answer is
always the centralized optimum — faults only add retransmissions and
simulated seconds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.lp import SolveStatus, TransportationProblem, solve_transportation
from repro.lp.distributed import extract_zone_subproblems
from repro.obs import get_registry
from repro.simulation import (
    FaultConfig,
    FaultyNetwork,
    MessageNetwork,
    NetworkedDistributedSolve,
    SimulationEngine,
    solve_over_network,
)
from repro.topology.fattree import build_fat_tree

ZONE_ROWS = [[0, 1, 2], [3, 4, 5], [6, 7, 8]]
ZONE_COLS = [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9, 10, 11]]
ZONE_NODES = {0: 1, 1: 2, 2: 3}
COORDINATOR = 0


@pytest.fixture()
def problem():
    rng = np.random.default_rng(42)
    supply = rng.uniform(1.0, 10.0, 9)
    demand = rng.uniform(1.0, 10.0, 12)
    demand *= (supply.sum() / demand.sum()) * 1.35
    cost = rng.uniform(1.0, 50.0, (9, 12))
    cost[rng.random((9, 12)) < 0.15] = np.inf
    for i in range(9):  # keep every row feasible
        if not np.isfinite(cost[i]).any():
            cost[i, 0] = 1.0
    return TransportationProblem(supply, demand, cost)


@pytest.fixture()
def reference(problem):
    return solve_transportation(problem)


def _run(problem, network, engine, **knobs):
    return solve_over_network(
        problem,
        ZONE_ROWS,
        ZONE_COLS,
        network,
        engine,
        coordinator_node=COORDINATOR,
        zone_nodes=ZONE_NODES,
        **knobs,
    )


class TestCleanFabric:
    def test_matches_centralized(self, problem, reference):
        engine = SimulationEngine()
        network = MessageNetwork(build_fat_tree(4), engine)
        result, driver = _run(problem, network, engine)
        assert result.status is reference.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(reference.objective, rel=1e-9)
        assert driver.retransmissions == 0
        assert result.messages == driver.messages_sent > 0

    def test_distinct_nodes_required(self, problem):
        engine = SimulationEngine()
        network = MessageNetwork(build_fat_tree(4), engine)
        workers = extract_zone_subproblems(problem, ZONE_ROWS, ZONE_COLS)
        with pytest.raises(SimulationError):
            NetworkedDistributedSolve(
                engine, network, COORDINATOR, {0: 1, 1: 2, 2: COORDINATOR}, workers
            )


class TestLossyFabric:
    def test_terminates_correctly_under_20pct_loss(self, problem, reference):
        engine = SimulationEngine()
        network = FaultyNetwork(
            build_fat_tree(4),
            engine,
            faults=FaultConfig(drop_probability=0.2),
            seed=9,
        )
        before = get_registry().value("dsolve.retransmissions")
        result, driver = _run(
            problem, network, engine, retry_timeout_s=0.25
        )
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(reference.objective, rel=1e-9)
        assert driver.retransmissions > 0
        assert get_registry().value("dsolve.retransmissions") > before

    def test_duplication_and_reordering_are_noops(self, problem, reference):
        engine = SimulationEngine()
        network = FaultyNetwork(
            build_fat_tree(4),
            engine,
            faults=FaultConfig(
                drop_probability=0.1,
                duplicate_probability=0.2,
                reorder_probability=0.2,
                reorder_extra_s=0.05,
                jitter_s=0.02,
            ),
            seed=17,
        )
        result, _ = _run(problem, network, engine, retry_timeout_s=0.25)
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(reference.objective, rel=1e-9)


class TestPartitions:
    def test_partition_stalls_then_recovers(self, problem, reference):
        engine = SimulationEngine()
        network = FaultyNetwork(
            build_fat_tree(4), engine, faults=FaultConfig(), seed=5
        )
        workers = extract_zone_subproblems(problem, ZONE_ROWS, ZONE_COLS)
        driver = NetworkedDistributedSolve(
            engine, network, COORDINATOR, ZONE_NODES, workers,
            retry_timeout_s=0.25,
        )
        network.set_partition([[0, 1], [2, 3]])  # zones 1 and 2 unreachable
        driver.start()
        engine.schedule_at(5.0, lambda _e: network.heal_partition(), label="heal")
        engine.run_until(120.0)
        assert driver.finished and not driver.gave_up
        result = driver.result()
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(reference.objective, rel=1e-9)
        assert driver.retransmissions > 0  # the stall was retransmitted through

    def test_mid_iteration_partition(self, problem, reference):
        # Jitter stretches delivery so the partition lands mid-epoch
        # rather than before the first profile arrives.
        engine = SimulationEngine()
        network = FaultyNetwork(
            build_fat_tree(4),
            engine,
            faults=FaultConfig(jitter_s=0.2),
            seed=11,
        )
        workers = extract_zone_subproblems(problem, ZONE_ROWS, ZONE_COLS)
        driver = NetworkedDistributedSolve(
            engine, network, COORDINATOR, ZONE_NODES, workers,
            retry_timeout_s=0.25,
        )
        driver.start()
        engine.schedule_at(
            0.3, lambda _e: network.set_partition([[0, 1], [2, 3]]), label="cut"
        )
        engine.schedule_at(6.0, lambda _e: network.heal_partition(), label="heal")
        engine.run_until(120.0)
        assert driver.finished and not driver.gave_up
        result = driver.result()
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(reference.objective, rel=1e-9)

    def test_unhealed_partition_gives_up_at_deadline(self, problem):
        engine = SimulationEngine()
        network = FaultyNetwork(
            build_fat_tree(4), engine, faults=FaultConfig(), seed=5
        )
        workers = extract_zone_subproblems(problem, ZONE_ROWS, ZONE_COLS)
        driver = NetworkedDistributedSolve(
            engine, network, COORDINATOR, ZONE_NODES, workers,
            retry_timeout_s=0.25, deadline_s=3.0,
        )
        network.set_partition([[0, 1], [2, 3]])
        driver.start()
        engine.run_until(60.0)
        assert driver.finished and driver.gave_up
        assert driver.result().status is SolveStatus.ITERATION_LIMIT

    def test_unfinished_raises_until_engine_runs(self, problem):
        engine = SimulationEngine()
        network = MessageNetwork(build_fat_tree(4), engine)
        workers = extract_zone_subproblems(problem, ZONE_ROWS, ZONE_COLS)
        driver = NetworkedDistributedSolve(
            engine, network, COORDINATOR, ZONE_NODES, workers
        )
        driver.start()
        with pytest.raises(SimulationError):
            driver.result()
        engine.run_until(60.0)
        assert driver.finished
        assert driver.result().status is SolveStatus.OPTIMAL
