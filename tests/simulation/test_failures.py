"""Tests for the failure injector."""

import pytest

from repro.errors import SimulationError, TopologyError
from repro.simulation import (
    FailureEvent,
    FailureInjector,
    LinkFailureEvent,
    SimulationEngine,
)
from repro.topology import build_line


class FakeClient:
    def __init__(self):
        self.alive = True
        self.transitions = []

    def fail(self):
        self.alive = False
        self.transitions.append("crash")

    def recover(self):
        self.alive = True
        self.transitions.append("recover")


def test_explicit_schedule_applies_in_order():
    engine = SimulationEngine()
    client = FakeClient()
    injector = FailureInjector(engine, {1: client})
    injector.schedule([
        FailureEvent(time=10.0, node_id=1, kind="crash"),
        FailureEvent(time=20.0, node_id=1, kind="recover"),
        FailureEvent(time=30.0, node_id=1, kind="crash"),
    ])
    engine.run_until(25.0)
    assert client.transitions == ["crash", "recover"]
    assert client.alive
    engine.run_until(35.0)
    assert client.transitions == ["crash", "recover", "crash"]
    assert not client.alive


def test_redundant_transitions_skipped():
    engine = SimulationEngine()
    client = FakeClient()
    injector = FailureInjector(engine, {1: client})
    injector.schedule([
        FailureEvent(time=1.0, node_id=1, kind="recover"),  # already up
        FailureEvent(time=2.0, node_id=1, kind="crash"),
        FailureEvent(time=3.0, node_id=1, kind="crash"),  # already down
    ])
    engine.run_until(10.0)
    assert client.transitions == ["crash"]
    assert len(injector.applied) == 1


def test_unknown_node_rejected():
    engine = SimulationEngine()
    injector = FailureInjector(engine, {1: FakeClient()})
    with pytest.raises(SimulationError, match="no client"):
        injector.schedule([FailureEvent(time=1.0, node_id=9, kind="crash")])


def test_event_validation():
    with pytest.raises(SimulationError):
        FailureEvent(time=1.0, node_id=1, kind="explode")
    with pytest.raises(SimulationError):
        FailureEvent(time=-1.0, node_id=1, kind="crash")


class TestExponentialProcess:
    def test_events_alternate_and_stay_in_horizon(self):
        engine = SimulationEngine()
        clients = {i: FakeClient() for i in range(3)}
        injector = FailureInjector(engine, clients)
        events = injector.schedule_exponential(
            horizon_s=10_000.0, mtbf_s=500.0, mttr_s=100.0, seed=0
        )
        assert events, "expected some failures over 20 MTBFs"
        assert all(e.time < 10_000.0 for e in events)
        # Per node, kinds alternate crash/recover starting with crash.
        for node in clients:
            kinds = [e.kind for e in events if e.node_id == node]
            expected = ["crash", "recover"] * (len(kinds) // 2 + 1)
            assert kinds == expected[: len(kinds)]

    def test_deterministic_for_seed(self):
        def gen():
            engine = SimulationEngine()
            injector = FailureInjector(engine, {0: FakeClient()})
            return injector.schedule_exponential(1000.0, 100.0, 20.0, seed=7)

        assert gen() == gen()

    def test_state_machine_consistency_when_run(self):
        engine = SimulationEngine()
        clients = {i: FakeClient() for i in range(4)}
        injector = FailureInjector(engine, clients)
        injector.schedule_exponential(5000.0, 300.0, 50.0, seed=3)
        engine.run_until(5000.0)
        for client in clients.values():
            # Transitions strictly alternate.
            for a, b in zip(client.transitions, client.transitions[1:]):
                assert a != b

    def test_parameter_validation(self):
        engine = SimulationEngine()
        injector = FailureInjector(engine, {0: FakeClient()})
        with pytest.raises(SimulationError):
            injector.schedule_exponential(0.0, 1.0, 1.0)
        with pytest.raises(SimulationError):
            injector.schedule_exponential(1.0, 0.0, 1.0)
        with pytest.raises(SimulationError):
            injector.schedule_exponential(10.0, 1.0, 1.0, nodes=[99])


class TestLinkEvents:
    def make(self):
        engine = SimulationEngine()
        topology = build_line(3)
        topology.set_utilization(0, 0.3)
        injector = FailureInjector(engine, {0: FakeClient()}, topology=topology)
        return engine, topology, injector

    def test_down_saturates_and_up_restores(self):
        engine, topology, injector = self.make()
        injector.schedule_links([
            LinkFailureEvent(time=10.0, edge_id=0, kind="down"),
            LinkFailureEvent(time=20.0, edge_id=0, kind="up"),
        ])
        version = topology.version
        engine.run_until(15.0)
        # A downed link is modelled as fully saturated, and the mutation
        # went through the topology API: version-keyed caches reprice.
        assert topology.link(0).utilization == 1.0
        assert topology.version > version
        engine.run_until(25.0)
        assert topology.link(0).utilization == 0.3
        assert [e.kind for e in injector.applied_links] == ["down", "up"]

    def test_redundant_transitions_are_idempotent(self):
        engine, topology, injector = self.make()
        injector.schedule_links([
            LinkFailureEvent(time=1.0, edge_id=0, kind="up"),  # never down
            LinkFailureEvent(time=2.0, edge_id=0, kind="down"),
            LinkFailureEvent(time=3.0, edge_id=0, kind="down"),  # already down
            LinkFailureEvent(time=4.0, edge_id=0, kind="up"),
        ])
        engine.run_until(10.0)
        assert topology.link(0).utilization == 0.3  # original, not 1.0
        assert [e.kind for e in injector.applied_links] == ["down", "up"]

    def test_unknown_edge_rejected(self):
        engine, topology, injector = self.make()
        with pytest.raises(TopologyError, match="does not exist"):
            injector.schedule_links([
                LinkFailureEvent(time=1.0, edge_id=99, kind="down")
            ])

    def test_requires_topology(self):
        injector = FailureInjector(SimulationEngine(), {0: FakeClient()})
        with pytest.raises(SimulationError, match="need a topology"):
            injector.schedule_links([
                LinkFailureEvent(time=1.0, edge_id=0, kind="down")
            ])

    def test_past_times_rejected(self):
        engine, topology, injector = self.make()
        engine.run_until(100.0)
        with pytest.raises(SimulationError, match="in the past"):
            injector.schedule_links([
                LinkFailureEvent(time=50.0, edge_id=0, kind="down")
            ])
        with pytest.raises(SimulationError, match="in the past"):
            injector.schedule(
                [FailureEvent(time=50.0, node_id=0, kind="crash")]
            )

    def test_event_validation(self):
        with pytest.raises(SimulationError, match="kind"):
            LinkFailureEvent(time=1.0, edge_id=0, kind="sever")
        with pytest.raises(SimulationError, match="non-negative"):
            LinkFailureEvent(time=-1.0, edge_id=0, kind="down")
