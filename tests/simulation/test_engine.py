"""Tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.simulation import SimulationEngine


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(3.0, lambda e: fired.append("c"))
        engine.schedule_at(1.0, lambda e: fired.append("a"))
        engine.schedule_at(2.0, lambda e: fired.append("b"))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        engine = SimulationEngine()
        fired = []
        for tag in "abc":
            engine.schedule_at(5.0, lambda e, t=tag: fired.append(t))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_schedule_after_is_relative(self):
        engine = SimulationEngine(start_time=10.0)
        times = []
        engine.schedule_after(2.5, lambda e: times.append(e.now))
        engine.run()
        assert times == [12.5]

    def test_past_scheduling_rejected(self):
        engine = SimulationEngine(start_time=5.0)
        with pytest.raises(SimulationError, match="before now"):
            engine.schedule_at(4.0, lambda e: None)
        with pytest.raises(SimulationError, match="negative delay"):
            engine.schedule_after(-1.0, lambda e: None)

    def test_cancel_skips_event(self):
        engine = SimulationEngine()
        fired = []
        event = engine.schedule_at(1.0, lambda e: fired.append(1))
        event.cancel()
        engine.run()
        assert fired == []

    def test_handlers_can_schedule_followups(self):
        engine = SimulationEngine()
        fired = []

        def first(e):
            fired.append(e.now)
            e.schedule_after(1.0, lambda e2: fired.append(e2.now))

        engine.schedule_at(1.0, first)
        engine.run()
        assert fired == [1.0, 2.0]


class TestRunUntil:
    def test_clock_advances_to_end(self):
        engine = SimulationEngine()
        engine.run_until(100.0)
        assert engine.now == 100.0

    def test_future_events_stay_queued(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(50.0, lambda e: fired.append(1))
        engine.schedule_at(150.0, lambda e: fired.append(2))
        engine.run_until(100.0)
        assert fired == [1]
        assert engine.pending_events == 1
        engine.run_until(200.0)
        assert fired == [1, 2]

    def test_backwards_run_rejected(self):
        engine = SimulationEngine(start_time=10.0)
        with pytest.raises(SimulationError):
            engine.run_until(5.0)

    def test_max_events_stops_early(self):
        engine = SimulationEngine()
        for t in range(10):
            engine.schedule_at(float(t), lambda e: None)
        processed = engine.run_until(100.0, max_events=4)
        assert processed == 4

    def test_events_processed_counter(self):
        engine = SimulationEngine()
        for t in range(5):
            engine.schedule_at(float(t), lambda e: None)
        engine.run()
        assert engine.events_processed == 5


class TestPeriodic:
    def test_periodic_fires_repeatedly(self):
        engine = SimulationEngine()
        ticks = []
        engine.schedule_periodic(10.0, lambda e: ticks.append(e.now))
        engine.run_until(35.0)
        assert ticks == [10.0, 20.0, 30.0]

    def test_first_delay_override(self):
        engine = SimulationEngine()
        ticks = []
        engine.schedule_periodic(10.0, lambda e: ticks.append(e.now), first_delay=0.0)
        engine.run_until(25.0)
        assert ticks == [0.0, 10.0, 20.0]

    def test_condition_stops_chain(self):
        engine = SimulationEngine()
        ticks = []
        engine.schedule_periodic(
            5.0, lambda e: ticks.append(e.now), condition=lambda: len(ticks) < 3
        )
        engine.run_until(100.0)
        assert len(ticks) == 3

    def test_invalid_period(self):
        engine = SimulationEngine()
        with pytest.raises(SimulationError):
            engine.schedule_periodic(0.0, lambda e: None)
