"""Bench: Fig. 10 — ILP time vs max-hop at 8-k/16-k scale.

Reduced hop ranges keep the bench minutes-scale; the full curves
(including the 16-k hop-5 point showing the paper's ~10x jump — we
measured 12.4x on this implementation) come from
``python -m repro.experiments fig10``.
"""

import pytest

from repro.experiments.fig8_maxhop_smallscale import mean_solve_time


@pytest.mark.figure("fig10")
@pytest.mark.parametrize("k,max_hops", [(8, 3), (8, 5), (16, 3), (16, 4)])
def test_fig10_largescale_ilp_time(benchmark, k, max_hops):
    benchmark.pedantic(
        lambda: mean_solve_time(k, max_hops, iterations=1, seed=0),
        iterations=1,
        rounds=1,
    )
