"""Bench: Fig. 1 — monitoring-module CPU under VxLAN load (local)."""

import pytest

from repro.testbed.monitoring_run import run_monitoring
from repro.testbed.vxlan import VxlanWorkload


@pytest.mark.figure("fig1")
def test_fig1_local_monitoring_run(benchmark):
    result = benchmark(
        lambda: run_monitoring(
            "local", intervals=30, interval_s=60.0, workload=VxlanWorkload(seed=42)
        )
    )
    # Paper band: ~100% average module CPU, spikes well above it.
    assert 60.0 <= result.avg_module_cpu_pct <= 250.0
    assert result.peak_module_cpu_pct >= result.avg_module_cpu_pct
