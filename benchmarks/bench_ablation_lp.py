"""Ablation: LP backend choice for the placement program.

DESIGN.md ablation 2: the specialized transportation solver vs scipy's
HiGHS vs the from-scratch dense simplex, on the same priced instance
(route pricing excluded — the DP engine prices the matrix once and each
backend solves the identical LP).
"""

import numpy as np
import pytest

from repro.core import PlacementEngine, PlacementProblem, ThresholdPolicy, classify_network
from repro.routing import PathEngine, ResponseTimeModel
from repro.topology import CapacityModel, LinkUtilizationModel, build_fat_tree


@pytest.fixture(scope="module")
def priced_problem():
    topo = build_fat_tree(8)
    LinkUtilizationModel(0.2, 0.8, seed=1).apply(topo)
    policy = ThresholdPolicy(c_max=75.0, co_max=50.0, x_min=10.0)
    caps = CapacityModel(x_min=10.0, seed=2).sample(topo.num_nodes)
    roles = classify_network(caps, policy)
    assert roles.busy and roles.candidates
    return PlacementProblem(
        topology=topo,
        busy=tuple(roles.busy),
        candidates=tuple(roles.candidates),
        cs=np.array([policy.excess_load(caps[b]) for b in roles.busy]),
        cd=np.array([policy.spare_capacity(caps[c]) for c in roles.candidates]),
        data_mb=np.full(len(roles.busy), 10.0),
        max_hops=5,
    )


@pytest.mark.parametrize("backend", ["transportation", "scipy", "simplex"])
def test_ablation_lp_backend(benchmark, priced_problem, backend):
    engine = PlacementEngine(
        response_model=ResponseTimeModel(engine=PathEngine.DP, max_hops=5),
        lp_backend=backend,
        with_routes=False,
    )
    report = benchmark(lambda: engine.solve(priced_problem))
    assert report.feasible
