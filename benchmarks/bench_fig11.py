"""Bench: Fig. 11 — HFR and ILP time vs network scale."""

import pytest

from repro.experiments.fig11_scalability import scalability_point


@pytest.mark.figure("fig11")
@pytest.mark.parametrize("k,iterations", [(4, 5), (8, 3), (16, 1)])
def test_fig11_hfr_at_scale(benchmark, k, iterations):
    hfr, _, _ = benchmark.pedantic(
        lambda: scalability_point(k, iterations, run_ilp=False, ilp_max_hops=None, seed=0),
        iterations=1,
        rounds=1,
    )
    assert 0.0 <= hfr <= 100.0
