"""Shared fixtures for the benchmark harness.

Every bench regenerates (a reduced-size version of) one paper figure —
run ``pytest benchmarks/ --benchmark-only`` to time them all. The
bench bodies call the same ``repro.experiments`` entry points as the
full CLI, so timing them is timing the reproduction itself.
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "figure(id): bench regenerates the given paper figure"
    )
