"""Ablation: heuristic hop radius (Algorithm 1 generalization).

DESIGN.md ablation 3: the paper fixes max-hop = 1; widening the radius
trades runtime for lower HFR, interpolating toward the full ILP. The
radius-1 row is additionally ablated over the *solver*: the vectorized
CSR kernel vs. the reference per-node loop, which quantifies the
kernel's speedup on this fixture (the dedicated gate lives in
``benchmarks/bench_heuristic_kernel.py``).
"""

import numpy as np
import pytest

from repro.core import PlacementProblem, ThresholdPolicy, classify_network, solve_heuristic
from repro.core.heuristic import solve_heuristic_reference
from repro.topology import CapacityModel, LinkUtilizationModel, build_fat_tree


@pytest.fixture(scope="module")
def problem():
    topo = build_fat_tree(8)
    LinkUtilizationModel(0.2, 0.8, seed=3).apply(topo)
    policy = ThresholdPolicy(c_max=80.0, co_max=35.0, x_min=10.0)
    caps = CapacityModel(x_min=10.0, seed=4).sample(topo.num_nodes)
    roles = classify_network(caps, policy)
    assert roles.busy and roles.candidates
    return PlacementProblem(
        topology=topo,
        busy=tuple(roles.busy),
        candidates=tuple(roles.candidates),
        cs=np.array([policy.excess_load(caps[b]) for b in roles.busy]),
        cd=np.array([policy.spare_capacity(caps[c]) for c in roles.candidates]),
        data_mb=np.full(len(roles.busy), 10.0),
    )


@pytest.mark.parametrize("radius", [1, 2, 3, 4])
def test_ablation_heuristic_radius(benchmark, problem, radius):
    report = benchmark(lambda: solve_heuristic(problem, hop_radius=radius))
    # Wider radius can only reduce (or keep) the failure rate.
    assert 0.0 <= report.hfr_pct <= 100.0


@pytest.mark.parametrize(
    "solver",
    [solve_heuristic, solve_heuristic_reference],
    ids=["kernel", "reference"],
)
def test_ablation_heuristic_solver(benchmark, problem, solver):
    # Radius 1, kernel vs. reference loop — same HeuristicReport either
    # way (bit-identity is property-tested in tests/core/), so the only
    # difference the benchmark sees is wall time.
    report = benchmark(lambda: solver(problem))
    expected = solve_heuristic_reference(problem)
    assert report.hfr_pct == expected.hfr_pct
    assert tuple(report.assignments) == tuple(expected.assignments)


def test_radius_monotonically_reduces_hfr(problem):
    hfrs = [solve_heuristic(problem, hop_radius=r).hfr_pct for r in (1, 2, 3, 4)]
    assert all(a >= b - 1e-9 for a, b in zip(hfrs, hfrs[1:]))
