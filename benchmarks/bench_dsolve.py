"""Benchmark the distributed placement solve against the centralized LP.

Measures, per fat-tree ``k`` (default 16 and 32; k=8 with ``--smoke``),
one randomized snapshot solved two ways on identical inputs:

* **centralized** — one warm-started ``PlacementSession`` holding the
  whole network view (DP response model, row-mode Trmin pricing);
* **distributed** — per-pod zone managers presolving their local
  blocks and pricing only their own busy rows, with the thin
  price-exchange coordinator of ``repro.lp.distributed``.

The distributed reading is the *modeled parallel wall-clock*:
coordinator time plus the slowest zone (Trmin pricing + presolve +
lane pricing), i.e. the critical path if every zone manager ran on its
own host. Both solves run in this one process, so the model is
conservative — it charges full serial cost to the slowest zone and
all coordination to the coordinator.

Correctness is gated before speed: on every point the distributed
objective must match the centralized solve within ``1e-6`` relative
(it is the same transportation simplex, distributed, so the match is
typically exact to float noise). The full run additionally gates the
k=16 modeled speedup at ``--min-speedup`` (default 2x); ``--smoke``
records ratios without gating. Results land in ``BENCH_dsolve.json`` —
regenerate with::

    PYTHONPATH=src python benchmarks/bench_dsolve.py

Honest-numbers note: timings come from whatever box runs this; the
recorded ``cpu_count`` and the explicit critical-path model make the
numbers comparable across boxes but not identical.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List

from repro.experiments.extra_distributed import GAP_TOLERANCE, solve_point


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="one k=8 point, no speedup gate",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="required modeled speedup at k=16 (full run only)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--output",
        default=os.path.join(os.path.dirname(__file__), "..", "BENCH_dsolve.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    ks = (8,) if args.smoke else (16, 32)
    failures: List[str] = []
    points = []
    for k in ks:
        try:
            point = solve_point(k, seed=args.seed)
        except AssertionError as exc:  # objective/status divergence
            failures.append(str(exc))
            continue
        points.append(point)
        if point["objective_rel_diff"] > GAP_TOLERANCE:
            failures.append(
                f"k={k}: objective rel diff {point['objective_rel_diff']:.3e} "
                f"exceeds {GAP_TOLERANCE:g}"
            )

    gated = not args.smoke
    gate_point = next((p for p in points if p["k"] == 16), None)
    if gated:
        if gate_point is None:
            failures.append("k=16 point missing; cannot apply the speedup gate")
        elif gate_point["speedup"] < args.min_speedup:
            failures.append(
                f"modeled speedup {gate_point['speedup']:.2f}x at k=16 is "
                f"below the {args.min_speedup:.1f}x gate"
            )

    report = {
        "bench": "dsolve",
        "smoke": bool(args.smoke),
        "cpu_count": os.cpu_count(),
        "seed": args.seed,
        "gap_tolerance": GAP_TOLERANCE,
        "min_speedup_gate": args.min_speedup if gated else None,
        "points": points,
        "objectives_match": not any("rel diff" in f or "diverge" in f for f in failures),
        "passed": not failures,
    }
    if failures:
        report["failures"] = failures

    path = os.path.abspath(args.output)
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(report, indent=2))
    print(f"report written to {path}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
