"""Benchmark the frontier-expansion enumeration kernel vs the reference DFS.

Measures, on a fat-tree k=16 (k=4 with ``--smoke``), best-of-N wall
time for enumeration-engine Trmin pricing of a spread busy x candidate
pair sample at hop budgets 4 and 5 (3 and 4 with ``--smoke``):

* kernel — ``ResponseTimeModel.resistance_matrix`` with the
  :mod:`repro.routing.enumkernel` frontier expansion + admissible
  lower-bound pruning enabled (the default);
* reference — the same call with ``REPRO_ENUM_KERNEL`` semantics off,
  i.e. the retained pure-Python DFS stream through the same canonical
  fold.

Every timed configuration is compared **bit-for-bit** against the
reference: ``np.array_equal`` on the resistance and hop matrices (no
tolerances) and equality of every materialized optimal path. Path
*counts* are additionally checked exhaustively on a pair sample
(``count_paths_kernel`` vs the raw DFS) — the kernel must never prune
on the counting path. Any disagreement makes the script exit non-zero.
The full run gates on the kernel being at least ``--min-speedup``
(default 5x) faster at the k=16 hop-5 point; ``--smoke`` records the
ratio without gating (a 20-node instance cannot amortize the kernel's
bound-DP setup). Results land in ``BENCH_enum.json`` — regenerate
with::

    PYTHONPATH=src python benchmarks/bench_enum_kernel.py

Honest-numbers note: timings come from whatever box runs this; the
recorded ``cpu_count`` and best-of-N protocol make cross-box numbers
comparable but not identical. The baseline is the exact code path the
repo shipped before the kernel: DFS stream into the batched
``np.add.reduceat`` fold, no Path construction per path.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List

import numpy as np

from repro.routing import count_paths_kernel, iter_simple_paths_raw, use_enumeration_kernel
from repro.routing.response_time import PathEngine, ResponseTimeModel
from repro.topology import LinkUtilizationModel
from repro.topology.fattree import build_fat_tree


def build_fixture(smoke: bool, seed: int):
    k = 4 if smoke else 16
    topo = build_fat_tree(k)
    LinkUtilizationModel(0.2, 0.8, seed=seed).apply(topo)
    hop_budgets = (3, 4) if smoke else (4, 5)
    n = topo.num_nodes
    # Spread pair sample standing in for a busy x candidate matrix.
    n_src = min(12, n)
    n_dst = min(16, n)
    sources = [int(i) for i in np.linspace(0, n - 1, n_src).astype(int)]
    destinations = [int(i) for i in np.linspace(1, n - 2, n_dst).astype(int)]
    return topo, k, sources, destinations, hop_budgets


def timed(fn, repeats: int) -> float:
    """Best-of-N wall time (seconds)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def price(topo, sources, destinations, max_hops, kernel_on: bool):
    model = ResponseTimeModel(engine=PathEngine.ENUMERATION, max_hops=max_hops)
    with use_enumeration_kernel(kernel_on):
        return model.resistance_matrix(topo, sources, destinations, with_paths=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fixture (4-k fat-tree), no speedup gate",
    )
    parser.add_argument("--repeats", type=int, default=3, help="best-of-N timing")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="required kernel-vs-reference ratio at the k=16 hop-5 point "
        "(full run only)",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(os.path.dirname(__file__), "..", "BENCH_enum.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    repeats = 1 if args.smoke else max(1, args.repeats)

    topo, k, sources, destinations, hop_budgets = build_fixture(args.smoke, seed=0)
    failures: List[str] = []
    points = []

    for max_hops in hop_budgets:
        ref_R, ref_hops, ref_paths = price(topo, sources, destinations, max_hops, False)
        ker_R, ker_hops, ker_paths = price(topo, sources, destinations, max_hops, True)
        identical = (
            np.array_equal(ref_R, ker_R)
            and np.array_equal(ref_hops, ker_hops)
            and ref_paths == ker_paths
        )
        if not identical:
            failures.append(
                f"hop {max_hops}: kernel result differs from the reference DFS"
            )

        kernel_s = timed(
            lambda h=max_hops: price(topo, sources, destinations, h, True), repeats
        )
        reference_s = timed(
            lambda h=max_hops: price(topo, sources, destinations, h, False), repeats
        )
        speedup = reference_s / kernel_s if kernel_s else float("inf")
        points.append(
            {
                "max_hops": max_hops,
                "pairs": len(sources) * len(destinations),
                "kernel_s": kernel_s,
                "reference_s": reference_s,
                "speedup": speedup,
                "bit_identical": identical,
            }
        )

    # Exhaustive count parity on a pair sample at the largest budget.
    count_hops = hop_budgets[-1]
    count_checks = 0
    for s in sources[:4]:
        for d in destinations[:4]:
            ref_count = sum(1 for _ in iter_simple_paths_raw(topo, s, d, count_hops))
            if count_paths_kernel(topo, s, d, count_hops) != ref_count:
                failures.append(f"count mismatch for pair ({s}, {d})")
            count_checks += 1

    gate_point = points[-1]
    gated = not args.smoke
    if gated and gate_point["speedup"] < args.min_speedup:
        failures.append(
            f"kernel speedup {gate_point['speedup']:.2f}x at k={k} "
            f"hop {gate_point['max_hops']} is below the "
            f"{args.min_speedup:.1f}x gate"
        )

    report = {
        "bench": "enum_kernel",
        "smoke": bool(args.smoke),
        "cpu_count": os.cpu_count(),
        "fixture": {
            "topology": f"fat-tree k={k}",
            "nodes": topo.num_nodes,
            "edges": topo.num_edges,
            "sources": len(sources),
            "destinations": len(destinations),
            "hop_budgets": list(hop_budgets),
            "repeats": repeats,
        },
        "points": points,
        "count_checks": count_checks,
        "gate_hop": gate_point["max_hops"],
        "speedup_at_gate": gate_point["speedup"],
        "min_speedup_gate": args.min_speedup if gated else None,
        "bit_identical": all(p["bit_identical"] for p in points),
        "passed": not failures,
    }
    if failures:
        report["failures"] = failures

    path = os.path.abspath(args.output)
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(report, indent=2))
    print(f"report written to {path}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
