"""Bench: Fig. 8 — ILP time vs max-hop on the 4-k fat-tree.

One bench per hop point so ``pytest-benchmark``'s table *is* the
figure: the growth across rows is the paper's curve.
"""

import pytest

from repro.experiments.fig8_maxhop_smallscale import mean_solve_time


@pytest.mark.figure("fig8")
@pytest.mark.parametrize("max_hops", [2, 4, 6, 8, 10])
def test_fig8_ilp_time_vs_maxhop(benchmark, max_hops):
    mean_s, _ = benchmark(lambda: mean_solve_time(4, max_hops, iterations=3, seed=0))
    assert mean_s >= 0.0
