"""Bench: Fig. 7 — Infeasible Optimization rate vs delta_io."""

import pytest

from repro.experiments.fig7_infeasible_rate import run


@pytest.mark.figure("fig7")
def test_fig7_io_rate_sweep(benchmark):
    result = benchmark(lambda: run(iterations=80, deltas=(0.8, 1.5, 2.5, 3.5), seed=0))
    rates = [row[2] for row in result.rows]
    # Paper shape: high at delta 0.8, near-zero for delta >= 2.
    assert rates[0] > rates[-1]
    assert rates[-1] < 5.0
