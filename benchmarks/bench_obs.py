"""Prove the observability layer is free when idle.

Three measurements, written to ``BENCH_obs.json``:

1. **no-op span microbench** — ns per disabled :func:`trace_span` call
   (the single-branch fast path) and, for contrast, per enabled call;
2. **registry update microbench** — ns per ``Counter.inc`` /
   ``Histogram.observe`` (the locked slow path instrumented call sites
   actually pay);
3. **real-workload overhead** — on the PR 1 Trmin pricing bench fixture
   and the PR 2 warm-solve session fixture, count the instrumentation
   touches one operation performs (spans recorded with the tracer
   forced on; registry updates counted with bench-local wrappers) and
   price them at the measured unit costs. The estimated
   disabled-instrumentation overhead must stay **under 3%** of the
   operation's wall time or the script exits non-zero (CI runs
   ``--smoke``).

Regenerate with::

    PYTHONPATH=src python benchmarks/bench_obs.py
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.core.placement import PlacementEngine, PlacementProblem, PlacementSession
from repro.core.roles import classify_network
from repro.core.thresholds import ThresholdPolicy
from repro.experiments.common import IterationSampler
from repro.obs import MetricsRegistry, get_tracer, trace_span
from repro.obs import registry as registry_module
from repro.routing import PathEngine, ResponseTimeModel, TrminEngine
from repro.topology import LinkUtilizationModel, NodeKind, build_fat_tree

#: Acceptance ceiling for disabled-instrumentation overhead.
MAX_OVERHEAD_PCT = 3.0


def timed_best(fn: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# -- unit costs ---------------------------------------------------------------------
def bench_disabled_span(calls: int) -> float:
    """ns per ``trace_span`` call with the tracer disabled."""
    tracer = get_tracer()
    assert not tracer.enabled, "tracer must be disabled for the no-op bench"
    t0 = time.perf_counter_ns()
    for _ in range(calls):
        with trace_span("bench.noop"):
            pass
    return (time.perf_counter_ns() - t0) / calls


def bench_enabled_span(calls: int) -> float:
    """ns per recorded span (for contrast; not part of the gate)."""
    tracer = get_tracer()
    tracer.enable()
    try:
        t0 = time.perf_counter_ns()
        for _ in range(calls):
            with trace_span("bench.live"):
                pass
        return (time.perf_counter_ns() - t0) / calls
    finally:
        tracer.disable()
        tracer.clear()


def bench_registry_update(calls: int) -> Tuple[float, float]:
    """(counter-inc ns, histogram-observe ns) on a scratch registry."""
    scratch = MetricsRegistry("bench")
    counter = scratch.counter("bench.c")
    hist = scratch.histogram("bench.h")
    t0 = time.perf_counter_ns()
    for _ in range(calls):
        counter.inc()
    inc_ns = (time.perf_counter_ns() - t0) / calls
    t0 = time.perf_counter_ns()
    for _ in range(calls):
        hist.observe(1.0)
    observe_ns = (time.perf_counter_ns() - t0) / calls
    return inc_ns, observe_ns


# -- instrumentation census ---------------------------------------------------------
def count_touches(op: Callable[[], object]) -> Tuple[int, int]:
    """(spans recorded, registry updates) one ``op()`` performs.

    Spans are counted with the tracer forced on; registry updates with
    bench-local wrappers around the instrument methods. Both are
    restored before returning.
    """
    updates = {"n": 0}
    originals = {
        "inc": registry_module.Counter.inc,
        "set_max": registry_module.Counter.set_max,
        "observe": registry_module.Histogram.observe,
        "set": registry_module.Gauge.set,
    }

    def wrap(name):
        orig = originals[name]

        def wrapped(self, *args, **kwargs):
            updates["n"] += 1
            return orig(self, *args, **kwargs)

        return wrapped

    tracer = get_tracer()
    registry_module.Counter.inc = wrap("inc")
    registry_module.Counter.set_max = wrap("set_max")
    registry_module.Histogram.observe = wrap("observe")
    registry_module.Gauge.set = wrap("set")
    tracer.enable()
    tracer.clear()
    try:
        op()
        spans = len(tracer.records())
    finally:
        tracer.disable()
        tracer.clear()
        registry_module.Counter.inc = originals["inc"]
        registry_module.Counter.set_max = originals["set_max"]
        registry_module.Histogram.observe = originals["observe"]
        registry_module.Gauge.set = originals["set"]
    return spans, updates["n"]


# -- workloads ----------------------------------------------------------------------
def trmin_workload(smoke: bool) -> Callable[[], object]:
    """One PR 1-style pricing op: serial resistance_matrix sweep."""
    k = 4 if smoke else 8
    topo = build_fat_tree(k)
    LinkUtilizationModel(0.2, 0.8, seed=0).apply(topo)
    edge = topo.nodes_of_kind(NodeKind.EDGE_SWITCH)
    sources, destinations = edge[: k], edge[-k:]
    model = ResponseTimeModel(engine=PathEngine.ENUMERATION, max_hops=4)
    engine = TrminEngine(model, workers=1, cache=False)
    return lambda: engine.resistance_matrix(topo, sources, destinations)


def warm_solve_workload(smoke: bool) -> Callable[[], object]:
    """One PR 2-style op: warm session re-solve of a perturbed state."""
    k = 4 if smoke else 8
    policy = ThresholdPolicy(c_max=80.0, co_max=35.0, x_min=10.0)
    topo = build_fat_tree(k)
    sampler = IterationSampler(topo, x_min=policy.x_min, seed=0)
    for _, capacities in sampler.states(200):
        roles = classify_network(capacities, policy)
        busy, candidates = roles.busy, roles.candidates
        if len(busy) < 2 or len(candidates) < 4:
            continue
        cs = np.array([policy.excess_load(capacities[b]) for b in busy])
        cd = np.array([policy.spare_capacity(capacities[c]) for c in candidates])
        if cs.sum() <= cd.sum():
            break
    else:
        raise RuntimeError("no feasible busy/candidate split sampled")
    base = dict(
        topology=topo,
        busy=tuple(busy),
        candidates=tuple(candidates),
        cd=cd,
        data_mb=np.full(len(busy), 10.0),
    )
    problem = PlacementProblem(**base, cs=cs)
    cs2 = cs.copy()
    cs2[0] *= 0.85
    perturbed = PlacementProblem(**base, cs=cs2)
    model = ResponseTimeModel(engine=PathEngine.DP, max_hops=None)
    session = PlacementSession(
        engine=PlacementEngine(response_model=model, with_routes=False)
    )
    session.solve(problem)  # prime basis + route cache

    state = {"flip": False}

    def op():
        # Alternate states so every solve re-prices + re-pivots a warm
        # basis instead of hitting a fully-memoized result.
        state["flip"] = not state["flip"]
        return session.solve(perturbed if state["flip"] else problem)

    return op


def bench_workload(
    name: str,
    op: Callable[[], object],
    repeats: int,
    unit: Dict[str, float],
    failures: List[str],
) -> Dict:
    spans, updates = count_touches(op)
    op_s = timed_best(op, repeats)
    overhead_ns = spans * unit["disabled_span_ns"] + updates * max(
        unit["counter_inc_ns"], unit["histogram_observe_ns"]
    )
    overhead_pct = 100.0 * overhead_ns / (op_s * 1e9) if op_s > 0 else 0.0
    if overhead_pct >= MAX_OVERHEAD_PCT:
        failures.append(
            f"{name}: disabled-instrumentation overhead {overhead_pct:.2f}% "
            f">= {MAX_OVERHEAD_PCT}%"
        )
    return {
        "op_seconds": op_s,
        "spans_per_op": spans,
        "registry_updates_per_op": updates,
        "estimated_overhead_ns_per_op": overhead_ns,
        "estimated_overhead_pct": overhead_pct,
        "max_overhead_pct": MAX_OVERHEAD_PCT,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small fixtures + fewer calls, finishes well under 60 s",
    )
    parser.add_argument("--repeats", type=int, default=5, help="best-of-N timing")
    parser.add_argument(
        "--output",
        default=os.path.join(os.path.dirname(__file__), "..", "BENCH_obs.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    calls = 50_000 if args.smoke else 500_000
    repeats = 2 if args.smoke else max(1, args.repeats)

    inc_ns, observe_ns = bench_registry_update(calls)
    unit = {
        "disabled_span_ns": bench_disabled_span(calls),
        "enabled_span_ns": bench_enabled_span(calls),
        "counter_inc_ns": inc_ns,
        "histogram_observe_ns": observe_ns,
    }

    failures: List[str] = []
    report = {
        "bench": "obs_overhead",
        "smoke": bool(args.smoke),
        "cpu_count": os.cpu_count(),
        "unit_costs_ns": unit,
        "workloads": {
            "trmin_pricing": bench_workload(
                "trmin_pricing", trmin_workload(args.smoke), repeats, unit, failures
            ),
            "warm_solve": bench_workload(
                "warm_solve", warm_solve_workload(args.smoke), repeats, unit, failures
            ),
        },
        "failures": failures,
    }
    output = os.path.abspath(args.output)
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print(f"disabled span: {unit['disabled_span_ns']:.0f} ns"
          f" (enabled: {unit['enabled_span_ns']:.0f} ns)")
    for name, data in report["workloads"].items():
        print(
            f"{name}: {data['spans_per_op']} spans + "
            f"{data['registry_updates_per_op']} updates per "
            f"{data['op_seconds'] * 1e3:.2f} ms op -> "
            f"{data['estimated_overhead_pct']:.3f}% overhead"
        )
    print(f"report written to {output}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
