"""Bench: Fig. 6 — local vs DUST-offloaded resource utilization."""

import pytest

from repro.testbed.monitoring_run import compare_local_vs_offloaded


@pytest.mark.figure("fig6")
def test_fig6_offload_comparison(benchmark):
    cmp = benchmark(lambda: compare_local_vs_offloaded(intervals=25, seed=42))
    # Paper: ~52% CPU cut, ~12% memory cut; assert the winner and rough factor.
    assert cmp.cpu_reduction_pct > 30.0
    assert 4.0 <= cmp.memory_reduction_pct <= 20.0
    assert cmp.offloaded.avg_device_cpu_pct < cmp.local.avg_device_cpu_pct
