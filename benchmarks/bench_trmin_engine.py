"""Benchmark the parallel + incremental Trmin route-pricing engine.

Measures, on an 8-k fat-tree (4-k with ``--smoke``), for both path
engines:

* serial reference pricing (``TrminEngine`` with ``workers=1``);
* parallel pricing at 2 and 4 workers (row fan-out onto the pool);
* versioned-cache behaviour — warm hit, and a single-link utilization
  bump re-priced incrementally (or gate-rejected, for the dp engine)
  vs. the cached-pipeline rebuild it replaces.

Every mode's ``(R, hops)`` matrices are compared bit-for-bit against a
fresh serial :class:`ResponseTimeModel` sweep; any disagreement makes
the script exit non-zero (CI runs ``--smoke``). Results land in
``BENCH_trmin.json`` — regenerate with::

    PYTHONPATH=src python benchmarks/bench_trmin_engine.py

Honest-numbers note: parallel speedup is bounded by physical cores;
``cpu_count`` is recorded in the output so single-core CI boxes (where
process fan-out cannot beat serial) are distinguishable from real
multi-core results.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List

import numpy as np

from repro.routing import PathEngine, ResponseTimeModel, TrminEngine
from repro.topology import LinkUtilizationModel, NodeKind, build_fat_tree

WORKER_COUNTS = (2, 4)


def build_fixture(smoke: bool):
    k = 4 if smoke else 8
    topo = build_fat_tree(k)
    LinkUtilizationModel(0.2, 0.8, seed=0).apply(topo)
    edge_switches = topo.nodes_of_kind(NodeKind.EDGE_SWITCH)
    if smoke:
        sources, destinations = edge_switches[:4], edge_switches[-4:]
        max_hops = {PathEngine.ENUMERATION: 4, PathEngine.DP: 5}
    else:
        sources, destinations = edge_switches[:16], edge_switches[-16:]
        # The enumeration engine is the paper's ~k^6 blowup; hop 5 keeps
        # the full bench in seconds while still being pool-bound work.
        max_hops = {PathEngine.ENUMERATION: 5, PathEngine.DP: 7}
    return topo, k, sources, destinations, max_hops


def timed(fn, repeats: int) -> float:
    """Best-of-N wall time (seconds)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def identical(result, reference) -> bool:
    R, hops, _ = result
    R_ref, hops_ref, _ = reference
    return np.array_equal(R, R_ref) and np.array_equal(hops, hops_ref)


def bench_engine(
    path_engine: PathEngine,
    topo,
    sources: List[int],
    destinations: List[int],
    max_hops: int,
    repeats: int,
    failures: List[str],
) -> Dict:
    model = ResponseTimeModel(engine=path_engine, max_hops=max_hops)
    reference = model.resistance_matrix(topo, sources, destinations)

    def check(label: str, result) -> None:
        if not identical(result, reference):
            failures.append(f"{path_engine.value}/{label} disagrees with serial")

    serial_engine = TrminEngine(model, workers=1, cache=False)
    serial_s = timed(
        lambda: check(
            "serial",
            serial_engine.resistance_matrix(topo, sources, destinations),
        ),
        repeats,
    )

    parallel: Dict[str, float] = {}
    for workers in WORKER_COUNTS:
        engine = TrminEngine(model, workers=workers, cache=False, min_parallel_pairs=1)
        parallel[str(workers)] = timed(
            lambda: check(
                f"parallel-{workers}",
                engine.resistance_matrix(topo, sources, destinations),
            ),
            repeats,
        )

    # Cache behaviour: warm hit, then a single-link utilization bump.
    cached_engine = TrminEngine(model, workers=1)
    full_s = timed(
        lambda: check(
            "cache-cold",
            cached_engine.resistance_matrix(topo, sources, destinations),
        ),
        1,
    )
    warm_s = timed(
        lambda: check(
            "cache-warm",
            cached_engine.resistance_matrix(topo, sources, destinations),
        ),
        repeats,
    )
    edge_id = topo.num_edges // 2
    topo.set_utilization(
        edge_id, min(topo.link(edge_id).utilization + 0.15, 0.95)
    )
    reference = model.resistance_matrix(topo, sources, destinations)
    t0 = time.perf_counter()
    repriced = cached_engine.resistance_matrix(topo, sources, destinations)
    reprice_s = time.perf_counter() - t0
    check("cache-reprice", repriced)
    if (
        cached_engine.stats.incremental_updates < 1
        and cached_engine.stats.gate_fallbacks < 1
    ):
        failures.append(f"{path_engine.value}: single-link delta was not incremental")

    # Honest baseline: what the cached pipeline pays when it cannot
    # repair in place — invalidate and rebuild the entry (with paths)
    # through the same code path the dp cost gate falls back to. A
    # pathless ``cache=False`` sweep would undercount the dp rebuild by
    # an order of magnitude and drive reprice_speedup below 1.
    baseline_engine = TrminEngine(model, workers=1)

    def full_rebuild() -> None:
        baseline_engine.invalidate()
        check(
            "full-after-delta",
            baseline_engine.resistance_matrix(topo, sources, destinations),
        )

    full_after_s = timed(full_rebuild, repeats)

    return {
        "max_hops": max_hops,
        "serial_s": serial_s,
        "parallel_s": parallel,
        "parallel_speedup_at_4": serial_s / parallel["4"] if parallel["4"] else None,
        "cache": {
            "cold_s": full_s,
            "warm_hit_s": warm_s,
            "single_link_reprice_s": reprice_s,
            "full_recompute_s": full_after_s,
            "reprice_speedup": full_after_s / reprice_s if reprice_s else None,
            "pairs_repriced": cached_engine.stats.pairs_repriced,
            "gate_fallbacks": cached_engine.stats.gate_fallbacks,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fixture (4-k fat-tree), finishes well under 60 s",
    )
    parser.add_argument("--repeats", type=int, default=3, help="best-of-N timing")
    parser.add_argument(
        "--output",
        default=os.path.join(os.path.dirname(__file__), "..", "BENCH_trmin.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    repeats = max(1, args.repeats if not args.smoke else 1)

    topo, k, sources, destinations, max_hops = build_fixture(args.smoke)
    failures: List[str] = []
    report = {
        "bench": "trmin_engine",
        "smoke": bool(args.smoke),
        "cpu_count": os.cpu_count(),
        "fixture": {
            "topology": f"fat-tree k={k}",
            "nodes": topo.num_nodes,
            "edges": topo.num_edges,
            "sources": len(sources),
            "destinations": len(destinations),
        },
        "engines": {},
    }
    for path_engine in (PathEngine.ENUMERATION, PathEngine.DP):
        report["engines"][path_engine.value] = bench_engine(
            path_engine,
            topo,
            sources,
            destinations,
            max_hops[path_engine],
            repeats,
            failures,
        )
    report["bit_identical"] = not failures
    if failures:
        report["failures"] = failures

    path = os.path.abspath(args.output)
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {path}", file=sys.stderr)
    if failures:
        print("ENGINE DISAGREEMENT:\n" + "\n".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
