"""Ablation: faithful path enumeration vs hop-constrained DP.

DESIGN.md ablation 1. Both engines compute identical ``Trmin``
matrices (property-tested in the suite); the bench quantifies the cost
of faithfulness — the enumeration engine is the paper's ``~k^6`` term,
the DP is polynomial. The enumeration engine is measured twice: with
the frontier-expansion kernel (the default) and in reference mode (the
retained pure-Python DFS), so the ablation separates the cost of
*faithful semantics* from the cost of the old per-path Python loop.
"""

import numpy as np
import pytest

from repro.routing import PathEngine, ResponseTimeModel, use_enumeration_kernel
from repro.topology import LinkUtilizationModel, NodeKind, build_fat_tree


@pytest.fixture(scope="module")
def fabric():
    topo = build_fat_tree(8)
    LinkUtilizationModel(0.2, 0.8, seed=0).apply(topo)
    edges = topo.nodes_of_kind(NodeKind.EDGE_SWITCH)
    sources = edges[:4]
    destinations = edges[-8:]
    return topo, sources, destinations


@pytest.mark.parametrize(
    "engine,kernel_on",
    [
        (PathEngine.ENUMERATION, True),
        (PathEngine.ENUMERATION, False),
        (PathEngine.DP, True),
    ],
    ids=["enum-kernel", "enum-reference", "dp"],
)
def test_ablation_trmin_engine(benchmark, fabric, engine, kernel_on):
    topo, sources, destinations = fabric
    model = ResponseTimeModel(engine=engine, max_hops=5)
    with use_enumeration_kernel(kernel_on):
        R, _, _ = benchmark(
            lambda: model.resistance_matrix(topo, sources, destinations)
        )
    assert np.isfinite(R).all()
