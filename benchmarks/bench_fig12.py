"""Bench: Fig. 12 — heuristic runtime vs network scale.

The 64-k (5120-node) point is the paper's headline: the heuristic
stays tractable where the ILP cannot run at all.
"""

import pytest

from repro.experiments.fig12_heuristic_scalability import heuristic_time_at_scale


@pytest.mark.figure("fig12")
@pytest.mark.parametrize("k", [4, 8, 16, 64])
def test_fig12_heuristic_time_at_scale(benchmark, k):
    mean_s, hfr, _ = benchmark.pedantic(
        lambda: heuristic_time_at_scale(k, iterations=1, seed=0),
        iterations=1,
        rounds=1,
    )
    assert mean_s == mean_s  # not NaN: overload was sampled
    assert 0.0 <= hfr <= 100.0
