"""Bench: Fig. 9 — heuristic vs ILP success split."""

import pytest

from repro.experiments.fig9_success_rate import run


@pytest.mark.figure("fig9")
def test_fig9_success_split(benchmark):
    result = benchmark(lambda: run(iterations=40, seed=0))
    pcts = {row[0]: row[2] for row in result.rows}
    # Paper shape: partial >> full > zero.
    assert pcts["partial (heuristic + ILP remainder)"] >= max(
        pcts["heuristic full offload"], pcts["heuristic zero / ILP success"]
    )
