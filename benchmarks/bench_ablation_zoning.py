"""Ablation: global placement vs the paper's <= 80-node zoning.

The conclusion recommends zoning large fabrics so each zone's ILP stays
sub-second. This bench measures global-vs-zoned solve time and records
the price: load stuck in zones without local candidates.
"""

import numpy as np
import pytest

from repro.core import (
    PlacementEngine,
    PlacementProblem,
    ThresholdPolicy,
    ZonedPlacementEngine,
    classify_network,
    partition_by_pod,
)
from repro.routing import PathEngine, ResponseTimeModel
from repro.topology import CapacityModel, LinkUtilizationModel, build_fat_tree


@pytest.fixture(scope="module")
def state():
    topo = build_fat_tree(8)
    LinkUtilizationModel(0.2, 0.8, seed=5).apply(topo)
    policy = ThresholdPolicy(c_max=78.0, co_max=50.0, x_min=10.0)
    caps = CapacityModel(x_min=10.0, seed=6).sample(topo.num_nodes)
    roles = classify_network(caps, policy)
    assert roles.busy and roles.candidates
    busy, cands = roles.busy, roles.candidates
    cs = [policy.excess_load(caps[b]) for b in busy]
    cd = [policy.spare_capacity(caps[c]) for c in cands]
    return topo, busy, cands, cs, cd


def test_ablation_global_placement(benchmark, state):
    topo, busy, cands, cs, cd = state
    engine = PlacementEngine(
        response_model=ResponseTimeModel(engine=PathEngine.ENUMERATION, max_hops=5),
        with_routes=False,
    )
    problem = PlacementProblem(
        topology=topo, busy=tuple(busy), candidates=tuple(cands),
        cs=np.asarray(cs), cd=np.asarray(cd),
        data_mb=np.full(len(busy), 10.0), max_hops=5,
    )
    report = benchmark(lambda: engine.solve(problem))
    assert report.status is not None


def test_ablation_zoned_placement(benchmark, state):
    topo, busy, cands, cs, cd = state
    zones = partition_by_pod(topo)
    engine = ZonedPlacementEngine(
        engine=PlacementEngine(
            response_model=ResponseTimeModel(engine=PathEngine.ENUMERATION, max_hops=5),
            with_routes=False,
        ),
        max_hops=5,
    )
    report = benchmark(
        lambda: engine.solve(topo, zones, busy, cands, cs, cd, [10.0] * len(busy))
    )
    assert 0.0 <= report.zone_failure_rate_pct <= 100.0
