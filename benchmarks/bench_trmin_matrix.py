"""Benchmark the matrix Trmin DP kernel against per-source pricing.

Measures, on a fat-tree k=16 (k=4 with ``--smoke``), best-of-N wall
time for all-sources hop-constrained pricing:

* ``matrix_hop_constrained`` — one degree-class-blocked DP over the
  cached CSR, carrying a ``(nodes, sources)`` distance plane per layer;
* the per-source reference — an explicit
  ``repro.routing.response_time._dp_source_row`` loop, exactly what the
  row-mode engine pays per source when it cannot fan out;
* the padded-neighbor ``all_sources_hop_constrained`` sweep — recorded
  for context, never gated (it is itself vectorized, so beating it by a
  fixed factor is not a correctness-relevant promise).

Every timed matrix run is compared **bit-for-bit** (``np.array_equal``
on the ``best`` and ``hops`` matrices, no tolerances) against the
per-source loop; any disagreement makes the script exit non-zero. The
full run additionally gates on the matrix kernel being at least
``--min-speedup`` (default 3x) faster than the per-source loop at
k=16; ``--smoke`` records the ratio without gating, since a 20-node
instance is too small to amortize plane setup. Results land in
``BENCH_trmin_matrix.json`` — regenerate with::

    PYTHONPATH=src python benchmarks/bench_trmin_matrix.py

Honest-numbers note: timings come from whatever box runs this; the
recorded ``cpu_count`` and best-of-N protocol make cross-box numbers
comparable but not identical. The baseline is the *unpadded* per-source
DP without path materialization — the cheapest honest formulation of
"one source at a time".
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List

import numpy as np

from repro.routing.matrix import matrix_hop_constrained
from repro.routing.response_time import _dp_source_row
from repro.routing.shortest import all_sources_hop_constrained
from repro.topology import LinkUtilizationModel
from repro.topology.fattree import build_fat_tree


def build_fixture(smoke: bool, seed: int):
    k = 4 if smoke else 16
    topo = build_fat_tree(k)
    LinkUtilizationModel(0.2, 0.8, seed=seed).apply(topo)
    weights = 1.0 / topo.effective_bandwidths()
    max_hops = 6 if smoke else 8
    sources = list(range(topo.num_nodes))
    return topo, k, sources, max_hops, weights


def timed(fn, repeats: int) -> float:
    """Best-of-N wall time (seconds)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def per_source_sweep(topo, sources, max_hops, weights):
    rows, hop_rows = [], []
    destinations = list(range(topo.num_nodes))
    for s in sources:
        row, row_hops, _ = _dp_source_row(
            topo, s, destinations, max_hops, weights, with_paths=False
        )
        rows.append(row)
        hop_rows.append(row_hops)
    return np.vstack(rows), np.vstack(hop_rows)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fixture (4-k fat-tree), no speedup gate",
    )
    parser.add_argument("--repeats", type=int, default=5, help="best-of-N timing")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=3.0,
        help="required matrix-vs-per-source ratio at k=16 (full run only)",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(
            os.path.dirname(__file__), "..", "BENCH_trmin_matrix.json"
        ),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    repeats = 1 if args.smoke else max(1, args.repeats)

    topo, k, sources, max_hops, weights = build_fixture(args.smoke, seed=0)
    failures: List[str] = []

    # Bit-identity first, on fresh computations of both formulations.
    ref_best, ref_hops = per_source_sweep(topo, sources, max_hops, weights)
    result = matrix_hop_constrained(topo, sources, max_hops, weights)
    if not np.array_equal(result.best, ref_best):
        failures.append("matrix best matrix differs from the per-source DP")
    if not np.array_equal(result.hops, ref_hops):
        failures.append("matrix hops matrix differs from the per-source DP")
    padded_best, padded_hops = all_sources_hop_constrained(
        topo, sources, max_hops, weights
    )
    if not np.array_equal(result.best, padded_best) or not np.array_equal(
        result.hops, padded_hops
    ):
        failures.append("matrix result differs from the padded all-sources sweep")

    matrix_s = timed(
        lambda: matrix_hop_constrained(topo, sources, max_hops, weights), repeats
    )
    per_source_s = timed(
        lambda: per_source_sweep(topo, sources, max_hops, weights), repeats
    )
    padded_s = timed(
        lambda: all_sources_hop_constrained(topo, sources, max_hops, weights), repeats
    )
    with_parents_s = timed(
        lambda: matrix_hop_constrained(
            topo, sources, max_hops, weights, with_parents=True
        ),
        repeats,
    )

    speedup = per_source_s / matrix_s if matrix_s else float("inf")
    padded_ratio = padded_s / matrix_s if matrix_s else float("inf")
    gated = not args.smoke
    if gated and speedup < args.min_speedup:
        failures.append(
            f"matrix speedup {speedup:.2f}x over the per-source loop at k={k} "
            f"is below the {args.min_speedup:.1f}x gate"
        )

    report = {
        "bench": "trmin_matrix",
        "smoke": bool(args.smoke),
        "cpu_count": os.cpu_count(),
        "fixture": {
            "topology": f"fat-tree k={k}",
            "nodes": topo.num_nodes,
            "edges": topo.num_edges,
            "sources": len(sources),
            "max_hops": max_hops,
            "repeats": repeats,
        },
        "matrix_s": matrix_s,
        "per_source_s": per_source_s,
        "padded_all_sources_s": padded_s,
        "matrix_with_parents_s": with_parents_s,
        "speedup_vs_per_source": speedup,
        "ratio_vs_padded_sweep": padded_ratio,  # context only, never gated
        "min_speedup_gate": args.min_speedup if gated else None,
        "bit_identical": not any("differs" in f for f in failures),
        "passed": not failures,
    }
    if failures:
        report["failures"] = failures

    path = os.path.abspath(args.output)
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(report, indent=2))
    print(f"report written to {path}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
