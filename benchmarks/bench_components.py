"""Component micro-benchmarks: the substrate hot paths.

These are the operations the experiments hammer; tracking them guards
against performance regressions in the pieces the figure-level benches
aggregate over.
"""

import numpy as np
import pytest

from repro.core import MultiResourceProblem, solve_multiresource
from repro.routing import RouteMaintainer, hop_constrained_shortest, k_shortest_paths
from repro.simulation import GravityTrafficMatrix, MessageNetwork, SimulationEngine
from repro.telemetry import DeviceProfile, NetworkDevice, paper_agent_specs
from repro.telemetry.workload import DeviceWorkloadDriver
from repro.topology import CapacityModel, LinkUtilizationModel, build_fat_tree


@pytest.fixture(scope="module")
def fabric():
    topo = build_fat_tree(8)
    LinkUtilizationModel(0.2, 0.8, seed=0).apply(topo)
    return topo


def test_bench_fat_tree_construction(benchmark):
    topo = benchmark(lambda: build_fat_tree(16))
    assert topo.num_nodes == 320


def test_bench_hop_constrained_dp(benchmark, fabric):
    weights = 1.0 / fabric.effective_bandwidths()
    result = benchmark(lambda: hop_constrained_shortest(fabric, 20, 6, weights))
    assert np.isfinite(result.best).all()


def test_bench_yen_k_shortest(benchmark, fabric):
    weights = 1.0 / fabric.effective_bandwidths()
    paths = benchmark(lambda: k_shortest_paths(fabric, 20, 75, weights, k=8, max_hops=6))
    assert len(paths) == 8


def test_bench_route_maintainer_check(benchmark, fabric):
    maintainer = RouteMaintainer(fabric)
    for i, (src, dst) in enumerate(((20, 75), (21, 60), (30, 50), (40, 70))):
        maintainer.register_flow(f"f{i}", src, dst, max_hops=6)
    benchmark(maintainer.check)


def test_bench_device_interval(benchmark):
    device = NetworkDevice(DeviceProfile(
        name="d", cores=8, memory_gb=16.0, base_cpu_pct=15.0, base_memory_mb=8192.0,
    ))
    for spec in paper_agent_specs():
        device.install_agent(spec)
    driver = DeviceWorkloadDriver(device, intensity=1.3, seed=0)
    state = {"now": 0.0}

    def one_interval():
        driver.advance(60.0)
        state["now"] += 60.0
        return device.step(state["now"], 60.0)

    sample = benchmark(one_interval)
    assert sample.monitoring_cpu_pct >= 0


def test_bench_gravity_traffic(benchmark, fabric):
    traffic = GravityTrafficMatrix(total_demand_mbps=500_000.0, seed=1)
    carried = benchmark(lambda: traffic.apply(fabric))
    assert carried.shape == (fabric.num_edges,)


def test_bench_multiresource_solve(benchmark, fabric):
    rng = np.random.default_rng(2)
    busy = tuple(range(16, 22))
    cands = tuple(range(40, 60))
    problem = MultiResourceProblem(
        topology=fabric,
        busy=busy,
        candidates=cands,
        demands=rng.uniform(2.0, 8.0, (len(busy), 2)),
        spares=rng.uniform(5.0, 20.0, (len(cands), 2)),
        data_mb=np.full(len(busy), 10.0),
        max_hops=6,
    )
    report = benchmark(lambda: solve_multiresource(problem))
    assert report.status is not None


def test_bench_control_message_roundtrip(benchmark):
    topo = build_fat_tree(4)
    engine = SimulationEngine()
    network = MessageNetwork(topo, engine)
    received = []
    network.register(19, received.append)
    network.register(8, received.append)

    def roundtrip():
        network.send(8, 19, payload="ping")
        network.send(19, 8, payload="pong")
        engine.run()

    benchmark(roundtrip)
    assert received
