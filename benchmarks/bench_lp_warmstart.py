"""Benchmark the warm-started LP solve layer behind PlacementSession.

Two scenarios, both self-checking (any disagreement exits non-zero,
CI runs ``--smoke``):

* **session re-solve** — a fig11-scale placement instance (8-k
  fat-tree; 4-k with ``--smoke``) is solved cold, then one busy node's
  excess load is perturbed *without* changing the busy/candidate sets
  and re-solved through a :class:`PlacementSession`. The session must
  register a warm hit, the route pricing must come out of the Trmin
  cache, and the warm LP re-solve must beat the cold solve of the same
  perturbed instance. Cold, warm and scipy (HiGHS) objectives must
  agree to 1e-6.
* **branch & bound** — integral placement-shaped ILPs with
  heterogeneous capacity coefficients (which break total unimodularity
  and force real branching) are solved with and without the
  parent-basis dual-simplex restart; warm must spend strictly fewer
  total pivots for identical optima.

Results land in ``BENCH_lp.json`` — regenerate with::

    PYTHONPATH=src python benchmarks/bench_lp_warmstart.py

Honest-numbers note: wall-clock speedups depend on the host;
``cpu_count`` is recorded, and the pivot counts (machine-independent)
are reported next to every timing so the mechanism is auditable.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.placement import (
    PlacementEngine,
    PlacementProblem,
    PlacementSession,
)
from repro.core.roles import classify_network
from repro.core.thresholds import ThresholdPolicy
from repro.experiments.common import IterationSampler
from repro.lp import LinearProgram, lp_sum, solve_branch_and_bound, solve_scipy
from repro.routing.response_time import PathEngine, ResponseTimeModel
from repro.topology.fattree import build_fat_tree

_OBJ_TOL = 1e-6


def timed(fn, repeats: int) -> float:
    """Best-of-N wall time (seconds) of ``fn``'s *last* timed section.

    ``fn`` returns the seconds to count for one repeat, so callers can
    run untimed setup (e.g. re-priming a session basis) inside ``fn``.
    """
    best = float("inf")
    for _ in range(repeats):
        best = min(best, fn())
    return best


def build_placement_fixture(
    smoke: bool, seed: int = 0
) -> Tuple[PlacementProblem, PlacementProblem, int]:
    """(base problem, perturbed problem, fat-tree k).

    The perturbation scales one busy node's excess load — a single-node
    utilization change — leaving the busy/candidate sets (and hence the
    session key and the topology hash) untouched.
    """
    k = 4 if smoke else 8
    policy = ThresholdPolicy(c_max=80.0, co_max=35.0, x_min=10.0)
    topology = build_fat_tree(k)
    sampler = IterationSampler(topology, x_min=policy.x_min, seed=seed)
    for _, capacities in sampler.states(200):
        roles = classify_network(capacities, policy)
        busy, candidates = roles.busy, roles.candidates
        if len(busy) < 2 or len(candidates) < 4:
            continue
        cs = np.array([policy.excess_load(capacities[b]) for b in busy])
        cd = np.array([policy.spare_capacity(capacities[c]) for c in candidates])
        if cs.sum() <= cd.sum():  # enough spare capacity => feasible
            break
    else:
        raise RuntimeError("sampler produced no feasible busy/candidate split")
    base = dict(
        topology=topology,
        busy=tuple(busy),
        candidates=tuple(candidates),
        cd=cd,
        data_mb=np.full(len(busy), 10.0),
    )
    problem = PlacementProblem(**base, cs=cs)
    cs_perturbed = cs.copy()
    cs_perturbed[0] *= 0.85  # shrink: stays feasible if the base was
    perturbed = PlacementProblem(**base, cs=cs_perturbed)
    return problem, perturbed, k


def bench_session(
    smoke: bool, repeats: int, failures: List[str]
) -> Dict:
    problem, perturbed, k = build_placement_fixture(smoke)
    model = ResponseTimeModel(engine=PathEngine.DP, max_hops=None)
    session = PlacementSession(
        engine=PlacementEngine(response_model=model, with_routes=False)
    )
    # Cold reference shares the session's Trmin engine so both sides
    # price routes from the same cache and the timing isolates the LP.
    cold_engine = PlacementEngine(
        response_model=model,
        with_routes=False,
        trmin_engine=session.trmin_engine,
    )

    cold = cold_engine.solve(perturbed)
    if not cold.feasible:
        failures.append("session: cold solve of the perturbed instance infeasible")
        return {}

    def one_cold() -> float:
        report = cold_engine.solve(perturbed)
        if abs(report.objective_beta - cold.objective_beta) > _OBJ_TOL:
            failures.append("session: cold re-solve changed the objective")
        return report.lp_seconds

    cold_lp_s = timed(one_cold, repeats)

    warm_report = None

    def one_warm() -> float:
        nonlocal warm_report
        session.solve(problem)  # untimed: prime the basis on the base state
        t0 = time.perf_counter()
        warm_report = session.solve(perturbed)
        elapsed = time.perf_counter() - t0
        return min(elapsed, warm_report.lp_seconds + warm_report.trmin_seconds)

    warm_total_s = timed(one_warm, repeats)
    warm_lp_s = warm_report.lp_seconds

    if not warm_report.feasible:
        failures.append("session: warm solve infeasible")
        return {}
    if abs(warm_report.objective_beta - cold.objective_beta) > _OBJ_TOL:
        failures.append(
            "session: warm objective "
            f"{warm_report.objective_beta!r} != cold {cold.objective_beta!r}"
        )
    if not warm_report.lp_warm_started:
        failures.append("session: perturbed re-solve did not warm-start")
    if session.warm_hits < repeats:
        failures.append(
            f"session: {session.warm_hits} warm hits over {repeats} repeats"
        )
    if session.trmin_engine.stats.cache_hits < 1:
        failures.append("session: route pricing never hit the Trmin cache")

    scipy_engine = PlacementEngine(
        response_model=model,
        lp_backend="scipy",
        with_routes=False,
        trmin_engine=session.trmin_engine,
    )
    scipy_report = scipy_engine.solve(perturbed)
    if abs(scipy_report.objective_beta - cold.objective_beta) > _OBJ_TOL:
        failures.append(
            "session: scipy objective "
            f"{scipy_report.objective_beta!r} != cold {cold.objective_beta!r}"
        )

    return {
        "fixture": {
            "topology": f"fat-tree k={k}",
            "busy": len(problem.busy),
            "candidates": len(problem.candidates),
        },
        "cold_lp_s": cold_lp_s,
        "cold_pivots": cold.lp_iterations,
        "warm_lp_s": warm_lp_s,
        "warm_resolve_s": warm_total_s,
        "warm_pivots": warm_report.lp_iterations,
        "warm_speedup": cold_lp_s / warm_lp_s if warm_lp_s else None,
        "objective": cold.objective_beta,
        "scipy_objective": scipy_report.objective_beta,
        "warm_hits": session.warm_hits,
        "warm_attempts": session.warm_attempts,
    }


def build_ilp(seed: int, m: int, n: int) -> Optional[LinearProgram]:
    """A placement-shaped ILP whose relaxation is fractional.

    Heterogeneous capacity coefficients break the transportation
    matrix's total unimodularity, so branch and bound has real work to
    do; capacities are sized to bind without (usually) going
    infeasible. Returns ``None`` for the occasional infeasible draw.
    """
    rng = np.random.default_rng(seed)
    cost = rng.uniform(1.0, 10.0, (m, n))
    coeff = rng.uniform(0.6, 1.7, (m, n))
    supply = rng.integers(2, 8, m).astype(float)
    cap = np.full(n, float(supply.sum()) * float(coeff.mean()) * 1.25 / n)
    lp = LinearProgram(f"bench-ilp-{seed}")
    x = {
        (i, j): lp.add_variable(f"x_{i}_{j}", is_integer=True)
        for i in range(m)
        for j in range(n)
    }
    for i in range(m):
        lp.add_constraint(
            lp_sum(x[(i, j)] for j in range(n)) == float(supply[i]),
            name=f"supply_{i}",
        )
    for j in range(n):
        lp.add_constraint(
            lp_sum(float(coeff[i, j]) * x[(i, j)] for i in range(m))
            <= float(cap[j]),
            name=f"capacity_{j}",
        )
    lp.set_objective(
        lp_sum(float(cost[i, j]) * x[(i, j)] for (i, j) in x)
    )
    if not solve_scipy(lp).status.is_optimal:
        return None
    return lp


def bench_branch_and_bound(
    smoke: bool, failures: List[str]
) -> Dict:
    seeds = range(3) if smoke else range(12)
    m, n = (3, 4) if smoke else (4, 5)
    cold_pivots = warm_pivots = 0
    cold_s = warm_s = 0.0
    instances = 0
    for seed in seeds:
        lp = build_ilp(seed, m, n)
        if lp is None:
            continue
        instances += 1
        t0 = time.perf_counter()
        cold = solve_branch_and_bound(lp, warm_start=False)
        cold_s += time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = solve_branch_and_bound(lp, warm_start=True)
        warm_s += time.perf_counter() - t0
        reference = solve_scipy(lp)
        for label, sol in (("cold", cold), ("warm", warm)):
            if sol.status is not reference.status:
                failures.append(
                    f"bnb seed {seed}: {label} status {sol.status} "
                    f"!= scipy {reference.status}"
                )
            elif sol.status.is_optimal and abs(
                sol.objective - reference.objective
            ) > _OBJ_TOL:
                failures.append(
                    f"bnb seed {seed}: {label} objective {sol.objective!r} "
                    f"!= scipy {reference.objective!r}"
                )
        cold_pivots += cold.total_pivots
        warm_pivots += warm.total_pivots
    if instances == 0:
        failures.append("bnb: every fixture draw was infeasible")
        return {}
    if warm_pivots >= cold_pivots:
        failures.append(
            f"bnb: warm start did not reduce pivots "
            f"({warm_pivots} vs {cold_pivots})"
        )
    return {
        "instances": instances,
        "shape": [m, n],
        "cold_total_pivots": cold_pivots,
        "warm_total_pivots": warm_pivots,
        "pivot_reduction_pct": 100.0 * (1.0 - warm_pivots / cold_pivots)
        if cold_pivots
        else None,
        "cold_s": cold_s,
        "warm_s": warm_s,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fixture (4-k fat-tree), finishes well under 60 s",
    )
    parser.add_argument("--repeats", type=int, default=5, help="best-of-N timing")
    parser.add_argument(
        "--output",
        default=os.path.join(os.path.dirname(__file__), "..", "BENCH_lp.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    repeats = max(1, args.repeats if not args.smoke else 2)

    failures: List[str] = []
    report = {
        "bench": "lp_warmstart",
        "smoke": bool(args.smoke),
        "cpu_count": os.cpu_count(),
        "session_resolve": bench_session(args.smoke, repeats, failures),
        "branch_and_bound": bench_branch_and_bound(args.smoke, failures),
    }
    report["self_check_passed"] = not failures
    if failures:
        report["failures"] = failures

    path = os.path.abspath(args.output)
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {path}", file=sys.stderr)
    if failures:
        print("SELF-CHECK FAILURES:\n" + "\n".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
