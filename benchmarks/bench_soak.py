"""Bench: soak-driver event throughput (the 1e5 events/min floor).

Times one calm 300 s soak — open-loop arrivals through the ingress
gate into the live control plane — and asserts the issue's wall-clock
throughput floor with an order of magnitude to spare.
"""

import pytest

from repro.simulation import SoakConfig, run_soak


@pytest.mark.figure("soak")
def test_soak_event_throughput(benchmark):
    result = benchmark(lambda: run_soak(SoakConfig(seed=0, horizon_s=300.0)))
    assert result.events_per_min >= 1e5
    assert result.production_losses == 0
    assert result.events_applied > 1000
