"""Benchmark the vectorized Algorithm-1 heuristic kernel.

Measures, on a fig12-style fat-tree instance (k=16; k=4 with
``--smoke``), best-of-N wall time for:

* ``solve_heuristic`` — the CSR gather + ``np.lexsort`` kernel;
* ``solve_heuristic_reference`` — the original per-busy-node loop.

Every timed kernel run is compared field-for-field (assignments,
offloaded/failed maps, HFR) against the reference on the same problem;
any disagreement makes the script exit non-zero. The full run gates on
the kernel being at least ``--min-speedup`` (default 5x) faster at
k=16; ``--smoke`` records the ratio without gating, since a 20-node
instance is too small to amortize the kernel's fixed numpy overhead.
Results land in ``BENCH_heuristic.json`` — regenerate with::

    PYTHONPATH=src python benchmarks/bench_heuristic_kernel.py

Honest-numbers note: timings come from whatever box runs this; the
recorded ``cpu_count`` and best-of-N protocol make cross-box numbers
comparable but not identical.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List

import numpy as np

from repro.core.heuristic import solve_heuristic, solve_heuristic_reference
from repro.core.placement import PlacementProblem
from repro.core.roles import classify_network
from repro.core.thresholds import ThresholdPolicy
from repro.experiments.common import IterationSampler
from repro.topology.fattree import build_fat_tree


def build_problem(k: int, seed: int) -> PlacementProblem:
    """One fig12-style placement instance on a ``k``-ary fat-tree."""
    policy = ThresholdPolicy(c_max=80.0, co_max=50.0, x_min=10.0)
    topology = build_fat_tree(k)
    sampler = IterationSampler(topology, x_min=policy.x_min, seed=seed)
    for _, capacities in sampler.states(1):
        roles = classify_network(capacities, policy)
        busy, candidates = roles.busy, roles.candidates
        if not busy or not candidates:
            raise RuntimeError(f"seed {seed} produced a degenerate state")
        return PlacementProblem(
            topology=topology,
            busy=tuple(busy),
            candidates=tuple(candidates),
            cs=np.array([policy.excess_load(capacities[b]) for b in busy]),
            cd=np.array([policy.spare_capacity(capacities[c]) for c in candidates]),
            data_mb=np.full(len(busy), 10.0),
        )
    raise RuntimeError("sampler yielded no states")


def reports_identical(kernel, reference) -> bool:
    if (
        kernel.hfr_pct != reference.hfr_pct
        or kernel.offloaded_per_busy != reference.offloaded_per_busy
        or kernel.failed_per_busy != reference.failed_per_busy
        or len(kernel.assignments) != len(reference.assignments)
    ):
        return False
    for a, b in zip(kernel.assignments, reference.assignments):
        if (
            a.busy != b.busy
            or a.candidate != b.candidate
            or a.amount_pct != b.amount_pct
            or a.response_time_s != b.response_time_s
            or a.hops != b.hops
            or a.route.nodes != b.route.nodes
            or a.route.edges != b.route.edges
        ):
            return False
    return True


def timed(fn, repeats: int) -> float:
    """Best-of-N wall time (seconds)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fixture (4-k fat-tree), no speedup gate",
    )
    parser.add_argument("--repeats", type=int, default=7, help="best-of-N timing")
    parser.add_argument(
        "--seeds", type=int, default=3, help="independent problem instances"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="required kernel-vs-reference ratio at k=16 (full run only)",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(os.path.dirname(__file__), "..", "BENCH_heuristic.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    k = 4 if args.smoke else 16
    repeats = 1 if args.smoke else max(1, args.repeats)

    failures: List[str] = []
    instances = []
    kernel_best = reference_best = float("inf")
    for seed in range(max(1, args.seeds)):
        problem = build_problem(k, seed)
        reference_report = solve_heuristic_reference(problem)
        if not reports_identical(solve_heuristic(problem), reference_report):
            failures.append(f"seed {seed}: kernel disagrees with reference")
        kernel_s = timed(lambda: solve_heuristic(problem), repeats)
        reference_s = timed(lambda: solve_heuristic_reference(problem), repeats)
        kernel_best = min(kernel_best, kernel_s)
        reference_best = min(reference_best, reference_s)
        instances.append(
            {
                "seed": seed,
                "busy": len(problem.busy),
                "candidates": len(problem.candidates),
                "kernel_s": kernel_s,
                "reference_s": reference_s,
                "speedup": reference_s / kernel_s if kernel_s else None,
            }
        )

    speedup = reference_best / kernel_best if kernel_best else float("inf")
    gated = not args.smoke
    if gated and speedup < args.min_speedup:
        failures.append(
            f"kernel speedup {speedup:.2f}x at k={k} is below the "
            f"{args.min_speedup:.1f}x gate"
        )

    report = {
        "bench": "heuristic_kernel",
        "smoke": bool(args.smoke),
        "cpu_count": os.cpu_count(),
        "fixture": {"topology": f"fat-tree k={k}", "repeats": repeats},
        "instances": instances,
        "kernel_best_s": kernel_best,
        "reference_best_s": reference_best,
        "speedup": speedup,
        "min_speedup_gate": args.min_speedup if gated else None,
        "bit_identical": not any("disagrees" in f for f in failures),
        "passed": not failures,
    }
    if failures:
        report["failures"] = failures

    path = os.path.abspath(args.output)
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
    print(json.dumps(report, indent=2))
    print(f"report written to {path}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
