"""Self-contained PEP 517 / PEP 660 build backend for the repro package.

``pyproject.toml`` points at this module via ``backend-path = ["_build"]``
with an empty ``requires`` list, so ``pip install -e .`` (and full wheel
or sdist builds) work fully offline with nothing but the standard
library. The backend is deliberately small: it understands exactly this
project's layout (``src/repro``, one console script, three runtime
dependencies) rather than re-implementing setuptools.
"""

from __future__ import annotations

import base64
import hashlib
import io
import os
import tarfile
import zipfile
from pathlib import Path

NAME = "repro"
VERSION = "1.0.0"
DIST = f"{NAME}-{VERSION}"
REQUIRES_PYTHON = ">=3.10"
RUNTIME_DEPS = ("numpy>=1.24", "scipy>=1.10", "networkx>=3.0")
CONSOLE_SCRIPTS = {"dust-experiments": "repro.experiments.cli:main"}

_ROOT = Path(__file__).resolve().parents[1]
_SRC = _ROOT / "src"

#: Top-level entries shipped in the sdist (directories recursed, files
#: copied); everything else (results, caches, CI scratch) stays out.
_SDIST_MEMBERS = (
    "pyproject.toml",
    "README.md",
    "LICENSE",
    "_build",
    "src",
    "tests",
    "benchmarks",
    "examples",
)


# -- PEP 517 requirement hooks: the whole point is that they are empty ----------
def get_requires_for_build_wheel(config_settings=None):
    return []


def get_requires_for_build_sdist(config_settings=None):
    return []


def get_requires_for_build_editable(config_settings=None):
    return []


# -- metadata -------------------------------------------------------------------
def _metadata() -> str:
    lines = [
        "Metadata-Version: 2.1",
        f"Name: {NAME}",
        f"Version: {VERSION}",
        "Summary: DUST: resource-aware telemetry offloading - full reproduction (IPPS 2024)",
        "License: Apache-2.0",
        f"Requires-Python: {REQUIRES_PYTHON}",
    ]
    lines.extend(f"Requires-Dist: {dep}" for dep in RUNTIME_DEPS)
    readme = _ROOT / "README.md"
    body = readme.read_text(encoding="utf-8") if readme.exists() else ""
    lines.append("Description-Content-Type: text/markdown")
    return "\n".join(lines) + "\n\n" + body


def _wheel_metadata() -> str:
    return (
        "Wheel-Version: 1.0\n"
        "Generator: dust_build_backend\n"
        "Root-Is-Purelib: true\n"
        "Tag: py3-none-any\n"
    )


def _entry_points() -> str:
    lines = ["[console_scripts]"]
    lines.extend(f"{name} = {target}" for name, target in sorted(CONSOLE_SCRIPTS.items()))
    return "\n".join(lines) + "\n"


def _record_line(name: str, data: bytes) -> str:
    digest = base64.urlsafe_b64encode(hashlib.sha256(data).digest()).rstrip(b"=")
    return f"{name},sha256={digest.decode()},{len(data)}"


def _write_wheel(path: Path, members: dict) -> None:
    """Write ``members`` (+ a RECORD covering every member including the
    RECORD itself) into a deterministic zip at ``path``."""
    record_name = f"{DIST}.dist-info/RECORD"
    record_lines = [_record_line(name, data) for name, data in members.items()]
    # RECORD lists itself with no hash/size, per the wheel spec.
    record_lines.append(f"{record_name},,")
    members = dict(members)
    members[record_name] = ("\n".join(record_lines) + "\n").encode()
    with zipfile.ZipFile(path, "w", zipfile.ZIP_DEFLATED) as whl:
        for name, data in members.items():
            info = zipfile.ZipInfo(name, date_time=(2020, 1, 1, 0, 0, 0))
            info.external_attr = 0o644 << 16
            whl.writestr(info, data)


def _package_members() -> dict:
    members = {}
    for file in sorted(_SRC.rglob("*")):
        if not file.is_file():
            continue
        rel = file.relative_to(_SRC).as_posix()
        if "__pycache__" in rel or rel.endswith((".pyc", ".pyo")):
            continue
        members[rel] = file.read_bytes()
    return members


def _dist_info_members() -> dict:
    return {
        f"{DIST}.dist-info/METADATA": _metadata().encode(),
        f"{DIST}.dist-info/WHEEL": _wheel_metadata().encode(),
        f"{DIST}.dist-info/entry_points.txt": _entry_points().encode(),
    }


# -- PEP 517: wheel + sdist --------------------------------------------------------
def build_wheel(wheel_directory, config_settings=None, metadata_directory=None):
    name = f"{DIST}-py3-none-any.whl"
    members = _package_members()
    members.update(_dist_info_members())
    _write_wheel(Path(wheel_directory) / name, members)
    return name


def build_sdist(sdist_directory, config_settings=None):
    name = f"{DIST}.tar.gz"
    out = Path(sdist_directory) / name

    def keep(tarinfo: tarfile.TarInfo):
        base = os.path.basename(tarinfo.name)
        if base == "__pycache__" or base.endswith((".pyc", ".pyo")):
            return None
        tarinfo.uid = tarinfo.gid = 0
        tarinfo.uname = tarinfo.gname = ""
        return tarinfo

    with tarfile.open(out, "w:gz") as tar:
        for member in _SDIST_MEMBERS:
            src = _ROOT / member
            if src.exists():
                tar.add(src, arcname=f"{DIST}/{member}", filter=keep)
    return name


# -- PEP 660: editable install ------------------------------------------------------
def build_editable(wheel_directory, config_settings=None, metadata_directory=None):
    name = f"{DIST}-py3-none-any.whl"
    members = {f"__editable__.{DIST}.pth": (str(_SRC) + "\n").encode()}
    members.update(_dist_info_members())
    _write_wheel(Path(wheel_directory) / name, members)
    return name


def prepare_metadata_for_build_wheel(metadata_directory, config_settings=None):
    dist_info = Path(metadata_directory) / f"{DIST}.dist-info"
    dist_info.mkdir(parents=True, exist_ok=True)
    (dist_info / "METADATA").write_text(_metadata(), encoding="utf-8")
    (dist_info / "WHEEL").write_text(_wheel_metadata(), encoding="utf-8")
    (dist_info / "entry_points.txt").write_text(_entry_points(), encoding="utf-8")
    return dist_info.name


prepare_metadata_for_build_editable = prepare_metadata_for_build_wheel
