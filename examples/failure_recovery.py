#!/usr/bin/env python
"""Post-offloading resilience: keepalives, failure, REP replica.

Demonstrates Section III-C: an offload destination crashes, its
keepalives stop, the manager detects the expiry on its sweep and
re-homes the hosted workload onto a replica node with a REP message
(or returns it to the source when no replica fits).

Run with::

    python examples/failure_recovery.py
"""

import numpy as np

from repro import (
    DUSTClient,
    DUSTManager,
    LinkUtilizationModel,
    MessageNetwork,
    SimulationEngine,
    ThresholdPolicy,
    build_fat_tree,
)


def main() -> None:
    topology = build_fat_tree(4)
    LinkUtilizationModel(low=0.2, high=0.6, seed=2).apply(topology)
    policy = ThresholdPolicy(c_max=80.0, co_max=50.0, x_min=10.0)

    engine = SimulationEngine()
    network = MessageNetwork(topology, engine)
    manager = DUSTManager(
        node_id=0,
        topology=topology,
        engine=engine,
        network=network,
        policy=policy,
        update_interval_s=30.0,
        optimization_period_s=60.0,
        keepalive_timeout_s=30.0,
    )
    manager.start()

    rng = np.random.default_rng(9)
    clients = {}
    for node in range(1, topology.num_nodes):
        base = 95.0 if node == 6 else float(rng.uniform(15.0, 40.0))
        client = DUSTClient(
            node_id=node,
            engine=engine,
            network=network,
            manager_node=0,
            policy=policy,
            base_capacity=base,
            keepalive_period_s=10.0,
        )
        client.start()
        clients[node] = client

    # Phase 1: let the offload establish.
    engine.run_until(300.0)
    assert manager.ledger.active, "expected an established offload"
    offload = manager.ledger.active[0]
    destination = offload.destination
    print(f"t=300s: node {offload.source} offloaded {offload.amount_pct:.1f} pts "
          f"to node {destination}")

    # Phase 2: crash the destination.
    clients[destination].fail()
    print(f"t=300s: destination node {destination} CRASHED (keepalives stop)")

    # Phase 3: run on; the keepalive sweep must install a replica.
    engine.run_until(900.0)
    print(f"\nt=900s: destinations failed = {manager.counters.destinations_failed}, "
          f"replicas installed = {manager.counters.replicas_installed}, "
          f"workloads returned = {manager.counters.workloads_returned}")
    for active in manager.ledger.active:
        marker = " (replica)" if active.via_replica else ""
        print(f"  node {active.source} -> node {active.destination}: "
              f"{active.amount_pct:.1f} pts{marker}")
    assert manager.counters.destinations_failed >= 1
    assert manager.counters.replicas_installed + manager.counters.workloads_returned >= 1
    assert all(a.destination != destination for a in manager.ledger.active)
    print("\nrecovery verified: no workload remains on the failed node")


if __name__ == "__main__":
    main()
