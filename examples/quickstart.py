#!/usr/bin/env python
"""Quickstart: solve one DUST placement problem end to end.

Builds a small data-center fabric, loads it with traffic, classifies
nodes against the threshold policy, and runs both the optimal (Eq. 3)
placement and the one-hop heuristic (Algorithm 1), printing the chosen
destinations and controllable routes.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import (
    CapacityModel,
    LinkUtilizationModel,
    PlacementEngine,
    ThresholdPolicy,
    build_fat_tree,
    solve_heuristic,
)
from repro.core import PlacementProblem, classify_network
from repro.routing import PathEngine, ResponseTimeModel


def main() -> None:
    # 1. A 4-port fat-tree: the paper's small-scale testbed
    #    (20 switches, 32 links).
    topology = build_fat_tree(4)
    LinkUtilizationModel(low=0.2, high=0.8, seed=7).apply(topology)
    print(f"topology: {topology}")

    # 2. Utilized node capacities and the threshold policy.
    policy = ThresholdPolicy(c_max=80.0, co_max=50.0, x_min=10.0)
    capacities = CapacityModel(x_min=policy.x_min, seed=3).sample(topology.num_nodes)
    roles = classify_network(capacities, policy)
    print(f"busy nodes (V_b): {roles.busy}")
    print(f"offload candidates (V_o): {roles.candidates}")
    print(f"delta_io = {policy.delta_io:.2f} (paper recommends >= 2)")

    # 3. Assemble the Eq. 3 placement problem.
    busy, candidates = roles.busy, roles.candidates
    problem = PlacementProblem(
        topology=topology,
        busy=tuple(busy),
        candidates=tuple(candidates),
        cs=np.array([policy.excess_load(capacities[b]) for b in busy]),
        cd=np.array([policy.spare_capacity(capacities[c]) for c in candidates]),
        data_mb=np.full(len(busy), 10.0),  # D_i: 10 Mb of monitoring data each
        max_hops=8,
    )
    print(f"total excess Cs = {problem.total_excess:.1f} pts, "
          f"total spare Cd = {problem.total_spare:.1f} pts")

    # 4. Optimal placement with the faithful path-enumeration engine.
    engine = PlacementEngine(
        response_model=ResponseTimeModel(engine=PathEngine.ENUMERATION, max_hops=8)
    )
    report = engine.solve(problem)
    print(f"\nILP placement: {report.status.value}, beta = {report.objective_beta:.4f} s "
          f"({report.total_seconds*1e3:.1f} ms)")
    for a in report.assignments:
        route = "->".join(map(str, a.route.nodes)) if a.route else "?"
        print(f"  offload {a.amount_pct:5.2f} pts: node {a.busy} -> node {a.candidate} "
              f"via {route} ({a.hops} hops, Trmin {a.response_time_s*1e3:.2f} ms)")

    # 5. The one-hop heuristic for comparison.
    heuristic = solve_heuristic(problem)
    print(f"\nheuristic (Algorithm 1): offloaded {heuristic.total_offloaded:.2f} pts, "
          f"HFR = {heuristic.hfr_pct:.1f}%")
    for a in heuristic.assignments:
        print(f"  offload {a.amount_pct:5.2f} pts: node {a.busy} -> node {a.candidate} "
              f"(1 hop)")


if __name__ == "__main__":
    main()
