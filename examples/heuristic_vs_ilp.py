#!/usr/bin/env python
"""Heuristic vs ILP trade-off study across network sizes.

Sweeps fat-tree sizes, comparing Algorithm 1 against the Eq. 3 optimum
on solution quality (beta, HFR) and runtime — the trade-off behind the
paper's recommendation to zone networks at <= 80 nodes.

Run with::

    python examples/heuristic_vs_ilp.py
"""

import numpy as np

from repro import PlacementEngine, ThresholdPolicy, build_fat_tree, solve_heuristic
from repro.core import PlacementProblem, classify_network
from repro.experiments.common import IterationSampler, render_table
from repro.routing import PathEngine, ResponseTimeModel


def study(k: int, iterations: int, seed: int = 0):
    policy = ThresholdPolicy(c_max=80.0, co_max=40.0, x_min=10.0)
    topology = build_fat_tree(k)
    sampler = IterationSampler(topology, x_min=policy.x_min, seed=seed)
    max_hops = 6 if k <= 8 else 4
    ilp = PlacementEngine(
        response_model=ResponseTimeModel(engine=PathEngine.DP, max_hops=max_hops),
        with_routes=False,
    )
    ilp_times, heur_times, hfrs, gaps = [], [], [], []
    for _, capacities in sampler.states(iterations):
        roles = classify_network(capacities, policy)
        if not roles.busy or not roles.candidates:
            continue
        problem = PlacementProblem(
            topology=topology,
            busy=tuple(roles.busy),
            candidates=tuple(roles.candidates),
            cs=np.array([policy.excess_load(capacities[b]) for b in roles.busy]),
            cd=np.array([policy.spare_capacity(capacities[c]) for c in roles.candidates]),
            data_mb=np.full(len(roles.busy), 10.0),
            max_hops=max_hops,
        )
        report = ilp.solve(problem)
        heuristic = solve_heuristic(problem)
        ilp_times.append(report.total_seconds)
        heur_times.append(heuristic.total_seconds)
        hfrs.append(heuristic.hfr_pct)
        if report.feasible and heuristic.fully_offloaded and report.objective_beta > 0:
            heur_beta = sum(a.amount_pct * a.response_time_s for a in heuristic.assignments)
            gaps.append(100.0 * (heur_beta - report.objective_beta) / report.objective_beta)
    return (
        float(np.mean(ilp_times)),
        float(np.mean(heur_times)),
        float(np.mean(hfrs)),
        float(np.mean(gaps)) if gaps else float("nan"),
    )


def main() -> None:
    rows = []
    for k, iterations in ((4, 20), (8, 8), (16, 3)):
        ilp_s, heur_s, hfr, gap = study(k, iterations)
        rows.append((f"{k}-k", 5 * k * k // 4, ilp_s, heur_s,
                     ilp_s / heur_s if heur_s else float("nan"), hfr, gap))
    print(render_table(
        ("fat-tree", "nodes", "ILP s", "heuristic s", "speedup x",
         "HFR %", "beta gap % (full offloads)"),
        rows,
    ))
    print("\nreading: the heuristic is orders of magnitude faster but fails to "
          "place part of the load (HFR) and pays a response-time premium when "
          "it does succeed — the paper's Fig. 9/11/12 trade-off.")


if __name__ == "__main__":
    main()
