#!/usr/bin/env python
"""QoS guarantee under congestion (Section III-C).

Offloaded monitoring traffic rides the lowest strict-priority class, so
a congested egress drops telemetry first and production traffic never
loses data — the paper's post-offloading QoS guarantee, measured.

Run with::

    python examples/qos_congestion.py
"""

from repro.experiments.common import render_table
from repro.testbed import run_congestion_experiment


def main() -> None:
    rows = []
    for capacity in (1.0, 2.0, 5.0, 50.0):
        result = run_congestion_experiment(
            intervals=40,
            egress_capacity_mbps=capacity,
            production_load_fraction=0.9,
            seed=3,
        )
        rows.append((
            f"{capacity:g} Mbps",
            result.congested_intervals,
            f"{result.monitoring_delivery_ratio*100:.1f}%",
            f"{result.total_monitoring_dropped_mb:.1f}",
            f"{result.total_production_loss_mb:.1f}",
        ))
    print(render_table(
        ("egress", "congested intervals", "telemetry delivered",
         "telemetry dropped (Mb)", "PRODUCTION LOST (Mb)"),
        rows,
    ))
    print("\ninvariant: production loss stays 0 at every capacity — monitoring "
          "data is 'safely discarded in the event of network congestion'.")


if __name__ == "__main__":
    main()
