#!/usr/bin/env python
"""Zoned deployment: the paper's scaling recommendation in action.

The conclusion suggests "dividing large-scale networks into zones
containing a maximum of 80 nodes" so each zone's placement stays within
a sub-second budget. This example compares global vs per-pod-zoned
placement on an 8-k fat-tree (80 nodes): solve time, objective, and
the load stranded in zones without local candidates.

Run with::

    python examples/zoned_deployment.py
"""

import numpy as np

from repro import PlacementEngine, ThresholdPolicy, build_fat_tree
from repro.core import (
    PlacementProblem,
    ZonedPlacementEngine,
    classify_network,
    partition_by_pod,
)
from repro.experiments.common import render_table
from repro.routing import PathEngine, ResponseTimeModel
from repro.topology import CapacityModel, LinkUtilizationModel


def main() -> None:
    topology = build_fat_tree(8)
    LinkUtilizationModel(0.2, 0.8, seed=5).apply(topology)
    policy = ThresholdPolicy(c_max=78.0, co_max=50.0, x_min=10.0)
    caps = CapacityModel(x_min=policy.x_min, seed=6).sample(topology.num_nodes)
    roles = classify_network(caps, policy)
    busy, cands = roles.busy, roles.candidates
    cs = [policy.excess_load(caps[b]) for b in busy]
    cd = [policy.spare_capacity(caps[c]) for c in cands]
    data = [10.0] * len(busy)
    print(f"{topology}: {len(busy)} busy, {len(cands)} candidates, "
          f"Cs={sum(cs):.1f} pts")

    # Global placement with the faithful enumeration engine at max-hop 5.
    global_engine = PlacementEngine(
        response_model=ResponseTimeModel(engine=PathEngine.ENUMERATION, max_hops=5),
        with_routes=False,
    )
    global_report = global_engine.solve(PlacementProblem(
        topology=topology, busy=tuple(busy), candidates=tuple(cands),
        cs=np.asarray(cs), cd=np.asarray(cd), data_mb=np.asarray(data),
        max_hops=5,
    ))

    # Zoned placement: one zone per pod (+ a core-switch share each).
    zones = partition_by_pod(topology)
    zoned_engine = ZonedPlacementEngine(engine=global_engine, max_hops=5)
    zoned_report = zoned_engine.solve(topology, zones, busy, cands, cs, cd, data)

    print(render_table(
        ("strategy", "solve s", "wall s (parallel zones)", "offloaded pts",
         "stranded pts", "beta (s)"),
        (
            ("global ILP", f"{global_report.total_seconds:.3f}", "-",
             f"{global_report.total_offloaded:.1f}", "0.0",
             f"{global_report.objective_beta:.4f}" if global_report.feasible else "inf"),
            ("zoned (per pod)", f"{zoned_report.total_seconds:.3f}",
             f"{zoned_report.max_zone_seconds:.3f}",
             f"{zoned_report.total_offloaded:.1f}",
             f"{zoned_report.total_unplaced:.1f}",
             f"{zoned_report.objective_beta:.4f}"),
        ),
    ))
    print(f"\nzone failure rate: {zoned_report.zone_failure_rate_pct:.1f}% of the "
          f"excess had no same-zone candidate capacity")
    print("reading: zoning bounds each solve (and parallelizes across zones) at "
          "the cost of forbidding inter-zone offloading — the paper's <= 80-node "
          "zone advice is exactly this trade.")


if __name__ == "__main__":
    main()
