#!/usr/bin/env python
"""Multi-resource placement: when memory, not CPU, binds.

The paper measures both CPU and memory savings (Fig. 6) but optimizes a
single capacity dimension. This example uses the repo's multi-resource
extension: a busy switch must shed both CPU and memory, and the
destination split is forced by whichever resource is scarce.

Run with::

    python examples/multiresource_placement.py
"""

import numpy as np

from repro.core import MultiResourceProblem, solve_multiresource
from repro.experiments.common import render_table
from repro.topology import LinkUtilizationModel, build_fat_tree


def main() -> None:
    topology = build_fat_tree(4)
    LinkUtilizationModel(0.2, 0.7, seed=4).apply(topology)

    # Busy edge switch 8 sheds 12 CPU points and 9 memory points.
    # Candidate 9 has CPU to spare but little memory; candidate 12 the
    # reverse; candidate 16 is balanced but farther away.
    problem = MultiResourceProblem(
        topology=topology,
        busy=(8,),
        candidates=(9, 12, 16),
        demands=np.array([[12.0, 9.0]]),
        spares=np.array([
            [20.0, 3.0],   # node 9: CPU-rich, memory-poor
            [4.0, 20.0],   # node 12: memory-rich, CPU-poor
            [8.0, 6.0],    # node 16: balanced but too small alone
        ]),
        data_mb=np.array([10.0]),
        resources=("cpu_pct", "memory_pct"),
        max_hops=6,
    )
    report = solve_multiresource(problem)
    assert report.feasible

    rows = []
    for j, cand in enumerate(problem.candidates):
        rows.append((
            f"node {cand}",
            f"{report.fractions[0, j]*100:.1f}%",
            f"{report.per_resource_usage['cpu_pct'][j]:.2f} / {problem.spares[j,0]:g}",
            f"{report.per_resource_usage['memory_pct'][j]:.2f} / {problem.spares[j,1]:g}",
        ))
    print(render_table(
        ("destination", "workload share", "CPU used/spare", "memory used/spare"),
        rows,
    ))
    print(f"\nbeta = {report.objective_beta:.5f} s (workload-fraction weighted)")
    print("reading: neither CPU-rich node 9 nor memory-rich node 12 can take the "
          "whole workload alone — the LP splits it so both resource constraints "
          "(3a, per dimension) hold simultaneously.")


if __name__ == "__main__":
    main()
