#!/usr/bin/env python
"""Full control-plane simulation: DUST-Manager + clients on a fabric.

Reproduces the paper's system workflow (Section III-B) on the
discrete-event simulator: clients announce with Offload-capable, STAT
at the manager-assigned interval, the manager runs periodic
optimization rounds, and overloaded switches end up offloaded onto
under-utilized nodes via Offload-Request / Offload-ACK / Redirect.

Run with::

    python examples/datacenter_offload.py
"""

import numpy as np

from repro import (
    DUSTClient,
    DUSTManager,
    LinkUtilizationModel,
    MessageNetwork,
    SimulationEngine,
    ThresholdPolicy,
    build_fat_tree,
)


def main() -> None:
    topology = build_fat_tree(4)
    LinkUtilizationModel(low=0.2, high=0.7, seed=11).apply(topology)
    policy = ThresholdPolicy(c_max=80.0, co_max=50.0, x_min=10.0)

    engine = SimulationEngine()
    network = MessageNetwork(topology, engine)

    # Node 0 doubles as the DUST-Manager host (a core switch here; in
    # production it is a cloud service).
    manager = DUSTManager(
        node_id=0,
        topology=topology,
        engine=engine,
        network=network,
        policy=policy,
        update_interval_s=60.0,
        optimization_period_s=120.0,
        keepalive_timeout_s=45.0,
    )
    manager.start()

    # Clients: three switches run hot, the rest are comfortable.
    rng = np.random.default_rng(5)
    clients = {}
    hot_nodes = {5, 9, 14}
    for node in range(1, topology.num_nodes):
        base = 92.0 if node in hot_nodes else float(rng.uniform(15.0, 45.0))
        client = DUSTClient(
            node_id=node,
            engine=engine,
            network=network,
            manager_node=0,
            policy=policy,
            base_capacity=base,
            data_mb=10.0,
            num_agents=10,
        )
        client.start()
        clients[node] = client

    # One simulated hour.
    engine.run_until(3600.0)

    print(f"events processed: {engine.events_processed}")
    print(f"optimization rounds: {manager.counters.optimization_rounds}, "
          f"offloads established: {manager.counters.offloads_established}")
    print(f"active offloads in ledger: {len(manager.ledger)}")
    for offload in manager.ledger.active:
        print(f"  node {offload.source} -> node {offload.destination}: "
              f"{offload.amount_pct:.1f} pts via {'-'.join(map(str, offload.route))}")

    print("\nfinal utilizations of the hot nodes:")
    for node in sorted(hot_nodes):
        client = clients[node]
        print(f"  node {node}: base {client.base_capacity(engine.now):.0f}% -> "
              f"reported {client.current_capacity(engine.now):.0f}% "
              f"(offloaded {client.offloaded_amount:.1f} pts)")

    hosting = [c for c in clients.values() if c.hosted_amount > 0]
    print("\noffload destinations:")
    for client in hosting:
        print(f"  node {client.node_id}: hosting {client.hosted_amount:.1f} pts, "
              f"now at {client.current_capacity(engine.now):.0f}% "
              f"(CO_max = {policy.co_max:.0f}%)")
        assert client.current_capacity(engine.now) <= policy.co_max + 1e-6


if __name__ == "__main__":
    main()
