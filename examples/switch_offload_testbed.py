#!/usr/bin/env python
"""Testbed emulation: what DUST saves on a real switch (Figs. 1 and 6).

Runs the emulated Aruba 8325 under 20% line-rate VxLAN overlay traffic
with local monitoring, then with all 10 agents offloaded through DUST,
and prints the paper's headline numbers.

Run with::

    python examples/switch_offload_testbed.py
"""

from repro.experiments.common import render_table
from repro.testbed import compare_local_vs_offloaded, run_monitoring
from repro.testbed.vxlan import VxlanWorkload


def main() -> None:
    # Fig. 1: the monitoring module's CPU appetite.
    local = run_monitoring("local", intervals=60, workload=VxlanWorkload(seed=42))
    print("Fig. 1 — monitoring module CPU on the 8-core DUT:")
    print(f"  average: {local.avg_module_cpu_pct:.0f}%   "
          f"peak: {local.peak_module_cpu_pct:.0f}%   "
          f"(paper: ~100% avg, ~600% spikes)")

    # Fig. 6: local vs offloaded.
    cmp = compare_local_vs_offloaded(intervals=60, seed=42)
    print("\nFig. 6 — local monitoring vs DUST offloading:")
    print(render_table(
        ("metric", "local", "DUST", "paper"),
        (
            ("device CPU % (avg)",
             f"{cmp.local.avg_device_cpu_pct:.1f}",
             f"{cmp.offloaded.avg_device_cpu_pct:.1f}", "31 -> 15"),
            ("memory % (avg)",
             f"{cmp.local.avg_memory_pct:.1f}",
             f"{cmp.offloaded.avg_memory_pct:.1f}", "70 -> 62"),
            ("monitoring memory (MiB)",
             f"{cmp.local.monitoring_memory_mb:.0f}",
             f"{cmp.offloaded.monitoring_memory_mb:.0f}", "~1228 local"),
        ),
    ))
    print(f"\nCPU reduction: {cmp.cpu_reduction_pct:.0f}% (paper ~52%)   "
          f"memory reduction: {cmp.memory_reduction_pct:.0f}% (paper ~12%)")


if __name__ == "__main__":
    main()
