"""Worker-pool plumbing shared by the route-pricing engine and the
zoned placement solver.

One knob controls everything: the ``REPRO_WORKERS`` environment
variable (or an explicit ``workers=`` argument, which wins). The
resolution heuristic is deliberately conservative — parallelism only
engages when the caller has more than one independent task and more
than one core is available, so small problems keep their serial
(zero-overhead, trivially deterministic) code path.

Process pools are preferred because the enumeration hot loop is pure
Python (GIL-bound); the ``fork`` start method is used when the platform
offers it so workers inherit the topology without re-importing the
world. Environments where process pools cannot start (restricted
sandboxes) fall back to threads, and ultimately the callers themselves
fall back to serial execution.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

from repro.errors import ReproError

#: Environment variable consulted when no explicit worker count is given.
ENV_WORKERS = "REPRO_WORKERS"

T = TypeVar("T")


class ParallelismError(ReproError):
    """Raised for malformed worker configuration (e.g. REPRO_WORKERS=x)."""


def resolve_workers(
    workers: Optional[int] = None, task_count: Optional[int] = None
) -> int:
    """Resolve the effective worker count (always >= 1).

    Priority: explicit ``workers`` argument > ``REPRO_WORKERS``
    environment variable > ``os.cpu_count()``. The result is clamped to
    ``task_count`` — there is no point spawning more workers than
    independent tasks.
    """
    if workers is None:
        env = os.environ.get(ENV_WORKERS)
        if env is not None and env.strip():
            try:
                workers = int(env)
            except ValueError:
                raise ParallelismError(
                    f"{ENV_WORKERS} must be an integer, got {env!r}"
                ) from None
        else:
            workers = os.cpu_count() or 1
    workers = max(int(workers), 1)
    if task_count is not None:
        workers = min(workers, max(int(task_count), 1))
    return workers


def make_executor(workers: int, kind: str = "process") -> Executor:
    """Build an executor; ``kind`` is ``"process"`` (default) or
    ``"thread"``. Process pools prefer the ``fork`` start method."""
    if kind == "thread":
        return ThreadPoolExecutor(max_workers=workers)
    if kind != "process":
        raise ParallelismError(f"unknown executor kind {kind!r}")
    try:
        if "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
        else:
            context = multiprocessing.get_context()
        return ProcessPoolExecutor(max_workers=workers, mp_context=context)
    except (OSError, PermissionError, ValueError):
        # Pool machinery unavailable (restricted sandbox): degrade to
        # threads — correctness is unaffected, only speed.
        return ThreadPoolExecutor(max_workers=workers)


def _call_with_metrics(args):
    """Worker-side shim: run one task and capture the registry delta it
    produced, so the parent can fold worker metrics back in."""
    fn, payload = args
    from repro.obs import get_registry

    registry = get_registry()
    baseline = registry.snapshot()
    result = fn(payload)
    return result, registry.collect_delta(baseline)


def map_with_pool_retry(
    fn: Callable[..., T],
    payloads: Sequence,
    workers: int,
    kind: str = "process",
    collect_metrics: bool = False,
) -> Optional[List[T]]:
    """``pool.map`` that survives worker death.

    A ``BrokenProcessPool`` (a worker was OOM-killed or segfaulted)
    poisons the whole executor, so the pending round would otherwise
    crash with it. This helper rebuilds the pool once and replays the
    full payload list — tasks are pure functions of their payloads, so
    a replay is safe. Returns ``None`` when the retry also fails (or
    the pool cannot run at all): callers keep their existing serial
    fallback, which is always correct, just slower.

    With ``collect_metrics=True`` each task also snapshots the worker's
    :mod:`repro.obs` registry before/after and ships the delta home;
    the parent merges deltas whose pid differs from its own. (The pid
    guard matters: when :func:`make_executor` silently degrades to
    threads, the "workers" share the parent registry and their
    increments already landed — merging the delta again would double
    count.)
    """
    if collect_metrics:
        call: Callable = _call_with_metrics
        items: Sequence = [(fn, payload) for payload in payloads]
    else:
        call, items = fn, payloads
    for attempt in range(2):
        try:
            with make_executor(workers, kind) as pool:
                results = list(pool.map(call, items))
            if not collect_metrics:
                return results
            from repro.obs import get_registry

            registry = get_registry()
            own_pid = os.getpid()
            unpacked: List[T] = []
            for result, delta in results:
                if delta.get("pid") != own_pid:
                    registry.merge_delta(delta)
                unpacked.append(result)
            return unpacked
        except BrokenExecutor:
            # Worker death; one rebuild, then give up to the caller.
            # (Must precede RuntimeError: BrokenExecutor subclasses it.)
            if attempt == 1:
                return None
        except (OSError, PermissionError, RuntimeError, pickle.PicklingError):
            return None
    return None


def chunk_evenly(items: Sequence[T], chunks: int) -> List[List[T]]:
    """Split ``items`` into at most ``chunks`` contiguous, near-equal
    pieces (no empty chunks); order is preserved across the
    concatenation of the result."""
    n = len(items)
    chunks = max(1, min(int(chunks), n))
    base, extra = divmod(n, chunks)
    out: List[List[T]] = []
    start = 0
    for i in range(chunks):
        size = base + (1 if i < extra else 0)
        out.append(list(items[start : start + size]))
        start += size
    return out
