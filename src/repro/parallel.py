"""Worker-pool plumbing shared by the route-pricing engine and the
zoned placement solver.

One knob controls everything: the ``REPRO_WORKERS`` environment
variable (or an explicit ``workers=`` argument, which wins). The
resolution heuristic is deliberately conservative — parallelism only
engages when the caller has more than one independent task and more
than one core is available, so small problems keep their serial
(zero-overhead, trivially deterministic) code path.

Process pools are preferred because the enumeration hot loop is pure
Python (GIL-bound); the ``fork`` start method is used when the platform
offers it so workers inherit the topology without re-importing the
world. Environments where process pools cannot start (restricted
sandboxes) fall back to threads, and ultimately the callers themselves
fall back to serial execution.

This module also owns the **shared-memory plane**: :class:`ShmArena`
packs a set of named numpy arrays into one
:mod:`multiprocessing.shared_memory` segment behind a version-stamped
header, so sweep payloads can ship a segment *name* (a few bytes)
instead of pickling megabytes of topology arrays to every worker.
Attaches are zero-copy (numpy views straight into the mapped segment)
and cached per process; creators register crash-safe finalizers so an
abandoned arena is unlinked at interpreter shutdown even when the
owning sweep never reached its cleanup path.
"""

from __future__ import annotations

import itertools
import json
import multiprocessing
import os
import pickle
import secrets
import struct
import weakref
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from multiprocessing import shared_memory
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, TypeVar

import numpy as np

from repro.errors import ReproError

#: Environment variable consulted when no explicit worker count is given.
ENV_WORKERS = "REPRO_WORKERS"

T = TypeVar("T")


class ParallelismError(ReproError):
    """Raised for malformed worker configuration (e.g. REPRO_WORKERS=x)."""


class ShmArenaError(ReproError):
    """Raised for shared-memory arena failures: attaching to a missing
    or foreign segment, or a version-stamp mismatch."""


def resolve_workers(
    workers: Optional[int] = None, task_count: Optional[int] = None
) -> int:
    """Resolve the effective worker count (always >= 1).

    Priority: explicit ``workers`` argument > ``REPRO_WORKERS``
    environment variable > ``os.cpu_count()``. The result is clamped to
    ``task_count`` — there is no point spawning more workers than
    independent tasks.
    """
    if workers is None:
        env = os.environ.get(ENV_WORKERS)
        if env is not None and env.strip():
            try:
                workers = int(env)
            except ValueError:
                raise ParallelismError(
                    f"{ENV_WORKERS} must be an integer, got {env!r}"
                ) from None
        else:
            workers = os.cpu_count() or 1
    workers = max(int(workers), 1)
    if task_count is not None:
        workers = min(workers, max(int(task_count), 1))
    return workers


def make_executor(workers: int, kind: str = "process") -> Executor:
    """Build an executor; ``kind`` is ``"process"`` (default) or
    ``"thread"``. Process pools prefer the ``fork`` start method."""
    if kind == "thread":
        return ThreadPoolExecutor(max_workers=workers)
    if kind != "process":
        raise ParallelismError(f"unknown executor kind {kind!r}")
    try:
        if "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
        else:
            context = multiprocessing.get_context()
        return ProcessPoolExecutor(max_workers=workers, mp_context=context)
    except (OSError, PermissionError, ValueError):
        # Pool machinery unavailable (restricted sandbox): degrade to
        # threads — correctness is unaffected, only speed.
        return ThreadPoolExecutor(max_workers=workers)


# -- shared-memory arenas -----------------------------------------------------------

#: Magic prefix identifying a segment as a repro arena (8 bytes).
_SHM_MAGIC = b"DUSTSHM1"
#: Fixed-size prefix: magic + little-endian uint64 header length.
_SHM_PREFIX = struct.Struct("<8sQ")
#: Payload arrays start on this alignment inside the segment.
_SHM_ALIGN = 64

#: Process-wide arena cache keyed by segment name. The creator
#: registers itself here, so in-process resolution (serial fallbacks)
#: and fork-inherited workers never re-attach; spawn-style workers fall
#: through to a real zero-copy attach. Entries are dropped on unlink.
_ARENA_CACHE: Dict[str, "ShmArena"] = {}

#: Monotonic default version stamp for arenas created in this process.
_ARENA_VERSIONS = itertools.count(1)


def _align(offset: int) -> int:
    return (offset + _SHM_ALIGN - 1) // _SHM_ALIGN * _SHM_ALIGN


def _tracker_unregister(shm: shared_memory.SharedMemory) -> None:
    """Opt ``shm`` out of the multiprocessing resource tracker.

    Arena lifetime is managed explicitly (owner unlink + pid-guarded
    finalizer backstop); tracker entries misfire in both directions — a
    standalone attacher's tracker would unlink a segment its owner
    still serves at attacher exit, and owner + attacher sharing one
    (fork-inherited) tracker daemon double-unregister into daemon
    tracebacks."""
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker impl detail
        pass


def _raw_unlink(shm: shared_memory.SharedMemory) -> None:
    """Remove the segment name without touching the resource tracker
    (which :func:`_tracker_unregister` already released). Idempotent."""
    try:
        from multiprocessing.shared_memory import _posixshmem

        _posixshmem.shm_unlink(shm._name)
    except FileNotFoundError:
        pass
    except (ImportError, AttributeError):  # pragma: no cover - non-POSIX
        try:
            shm.unlink()
        except FileNotFoundError:
            pass


def _arena_finalize(shm: shared_memory.SharedMemory, owner_pid: Optional[int]) -> None:
    """Finalizer body: close the mapping, and unlink iff this process
    created the segment. The pid guard matters under ``fork`` — workers
    inherit the parent's finalizer registry, and a worker exiting must
    not tear down a segment the parent still serves."""
    try:
        shm.close()
    except OSError:  # pragma: no cover - mapping already gone
        pass
    if owner_pid is not None and owner_pid == os.getpid():
        _raw_unlink(shm)


class ShmArena:
    """One shared-memory segment holding named numpy arrays.

    Layout: ``[8-byte magic][uint64 header length][JSON header]`` then
    the array payloads, each 64-byte aligned. The header records the
    arena ``version`` stamp plus per-array name/dtype/shape/offset, so
    an attach is self-describing: no pickled metadata rides along with
    the segment name.

    Lifecycle: the **creator** owns the segment and is responsible for
    :meth:`unlink`; a crash-safe ``weakref.finalize`` backstop unlinks
    at interpreter shutdown if the owner never did (guarded by pid so
    forked workers cannot destroy their parent's segments).
    **Attachers** only map the segment; their views stay valid for the
    arena's lifetime because the arena object keeps the mapping open.
    POSIX semantics make unlink safe while mappings exist: the name
    disappears immediately, the memory only once the last mapping
    closes.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        version: int,
        arrays: Dict[str, np.ndarray],
        owner: bool,
    ) -> None:
        self._shm = shm
        self.version = int(version)
        self.arrays = arrays
        self.owner = owner
        self._unlinked = False
        self._finalizer = weakref.finalize(
            self, _arena_finalize, shm, os.getpid() if owner else None
        )

    # -- construction ------------------------------------------------------------
    @classmethod
    def create(
        cls,
        arrays: Mapping[str, np.ndarray],
        version: Optional[int] = None,
        name: Optional[str] = None,
    ) -> "ShmArena":
        """Pack ``arrays`` into a fresh segment and return the owning
        arena (registered in the in-process cache)."""
        from repro.obs import get_registry

        version = next(_ARENA_VERSIONS) if version is None else int(version)
        packed = {key: np.ascontiguousarray(value) for key, value in arrays.items()}
        entries = []
        offset = 0  # relative to the payload base; rebased after the header
        for key, arr in packed.items():
            offset = _align(offset)
            entries.append(
                {
                    "name": key,
                    "dtype": arr.dtype.str,
                    "shape": list(arr.shape),
                    "offset": offset,
                }
            )
            offset += arr.nbytes
        header = json.dumps({"version": version, "arrays": entries}).encode()
        base = _align(_SHM_PREFIX.size + len(header))
        total = max(base + offset, 1)
        shm_name = name or f"repro-{os.getpid()}-{secrets.token_hex(6)}"
        shm = shared_memory.SharedMemory(name=shm_name, create=True, size=total)
        _tracker_unregister(shm)
        _SHM_PREFIX.pack_into(shm.buf, 0, _SHM_MAGIC, len(header))
        shm.buf[_SHM_PREFIX.size : _SHM_PREFIX.size + len(header)] = header
        views: Dict[str, np.ndarray] = {}
        for entry, arr in zip(entries, packed.values()):
            view = np.ndarray(
                arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=base + entry["offset"]
            )
            view[...] = arr
            view.setflags(write=False)
            views[entry["name"]] = view
        arena = cls(shm, version, views, owner=True)
        _ARENA_CACHE[shm.name] = arena
        registry = get_registry()
        registry.counter("parallel.shm_creates").inc()
        registry.counter("parallel.shm_bytes_shared").inc(total)
        return arena

    @classmethod
    def attach(cls, name: str, expected_version: Optional[int] = None) -> "ShmArena":
        """Map an existing segment zero-copy.

        Raises :class:`ShmArenaError` when the segment does not exist,
        is not a repro arena, or carries a different version stamp than
        ``expected_version`` — the stale-reader guard that keeps a
        worker from pricing against wiring from another publication.
        """
        from repro.obs import get_registry

        try:
            shm = shared_memory.SharedMemory(name=name, create=False)
        except FileNotFoundError:
            raise ShmArenaError(f"shared-memory segment {name!r} does not exist") from None
        _tracker_unregister(shm)
        try:
            magic, header_len = _SHM_PREFIX.unpack_from(shm.buf, 0)
            if magic != _SHM_MAGIC:
                raise ShmArenaError(
                    f"segment {name!r} is not a repro arena (bad magic {magic!r})"
                )
            header = json.loads(
                bytes(shm.buf[_SHM_PREFIX.size : _SHM_PREFIX.size + header_len])
            )
            version = int(header["version"])
            if expected_version is not None and version != expected_version:
                raise ShmArenaError(
                    f"arena {name!r} holds version {version}, expected "
                    f"{expected_version} — the publisher re-exported, re-resolve "
                    f"the handle"
                )
            base = _align(_SHM_PREFIX.size + header_len)
            views: Dict[str, np.ndarray] = {}
            for entry in header["arrays"]:
                view = np.ndarray(
                    tuple(entry["shape"]),
                    dtype=np.dtype(entry["dtype"]),
                    buffer=shm.buf,
                    offset=base + entry["offset"],
                )
                view.setflags(write=False)
                views[entry["name"]] = view
        except ShmArenaError:
            shm.close()
            raise
        except (struct.error, ValueError, KeyError, TypeError) as exc:
            shm.close()
            raise ShmArenaError(f"segment {name!r} has a corrupt arena header: {exc}") from None
        arena = cls(shm, version, views, owner=False)
        get_registry().counter("parallel.shm_attaches").inc()
        return arena

    # -- queries -----------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def nbytes(self) -> int:
        return self._shm.size

    def __repr__(self) -> str:
        return (
            f"ShmArena({self.name!r}, version={self.version}, "
            f"arrays={len(self.arrays)}, owner={self.owner})"
        )

    # -- lifecycle ---------------------------------------------------------------
    @property
    def linked(self) -> bool:
        """Whether this arena still owns a live name under ``/dev/shm``."""
        return self.owner and not self._unlinked

    def unlink(self) -> None:
        """Remove the segment name (idempotent). Existing mappings —
        this arena's views, fork-inherited copies in live workers, and
        in-process cache hits through :func:`attach_shared` — stay
        valid; only *new* attaches by name stop working. The arena
        therefore stays registered in the cache until :meth:`close`, so
        a serial fallback running after cleanup still resolves."""
        from repro.obs import get_registry

        if self._unlinked:
            return
        self._unlinked = True
        _raw_unlink(self._shm)
        get_registry().counter("parallel.shm_unlinks").inc()

    def close(self) -> None:
        """Drop this process's mapping (views become invalid). The
        owner's unlink duty is discharged first when still pending."""
        if self.owner:
            self.unlink()
        _ARENA_CACHE.pop(self.name, None)
        self._finalizer.detach()
        self.arrays = {}
        try:
            self._shm.close()
        except OSError:  # pragma: no cover - already closed
            pass


def attach_shared(name: str, expected_version: Optional[int] = None) -> ShmArena:
    """Resolve an arena by segment name through the in-process cache.

    Creators and fork-inherited workers hit the cache (no syscall, no
    new mapping — and still correct after the owner unlinks, because
    the inherited mapping outlives the name). Fresh processes attach
    once and cache the mapping for every later payload that names the
    same segment.
    """
    cached = _ARENA_CACHE.get(name)
    if cached is not None:
        if expected_version is not None and cached.version != expected_version:
            raise ShmArenaError(
                f"arena {name!r} holds version {cached.version}, expected "
                f"{expected_version}"
            )
        return cached
    arena = ShmArena.attach(name, expected_version)
    _ARENA_CACHE[name] = arena
    return arena


def active_arena_segments() -> Tuple[str, ...]:
    """Names of arenas this process created that are still linked under
    ``/dev/shm`` (tests use this to assert leak-freedom)."""
    return tuple(sorted(n for n, a in _ARENA_CACHE.items() if a.linked))


def _unlink_arenas(arenas: Sequence[ShmArena]) -> None:
    for arena in arenas:
        arena.unlink()


def _call_with_metrics(args):
    """Worker-side shim: run one task and capture the registry delta it
    produced, so the parent can fold worker metrics back in."""
    fn, payload = args
    from repro.obs import get_registry

    registry = get_registry()
    baseline = registry.snapshot()
    result = fn(payload)
    return result, registry.collect_delta(baseline)


def map_with_pool_retry(
    fn: Callable[..., T],
    payloads: Sequence,
    workers: int,
    kind: str = "process",
    collect_metrics: bool = False,
    arenas: Sequence[ShmArena] = (),
) -> Optional[List[T]]:
    """``pool.map`` that survives worker death.

    A ``BrokenProcessPool`` (a worker was OOM-killed or segfaulted)
    poisons the whole executor, so the pending round would otherwise
    crash with it. This helper rebuilds the pool once and replays the
    full payload list — tasks are pure functions of their payloads, so
    a replay is safe. Returns ``None`` when the retry also fails (or
    the pool cannot run at all): callers keep their existing serial
    fallback, which is always correct, just slower.

    ``arenas`` names the shared-memory segments the payloads reference.
    The moment a pool breaks, this helper unlinks them — a killed worker
    cannot run its own cleanup, and an abandoned name under ``/dev/shm``
    would outlive the sweep. Unlinking is safe mid-retry: the rebuilt
    (fork) workers inherit the parent's still-valid mapping through the
    arena cache, and the caller's own ``finally``-unlink stays a no-op
    (:meth:`ShmArena.unlink` is idempotent). On a clean first run the
    arenas are left linked for the caller to manage.

    With ``collect_metrics=True`` each task also snapshots the worker's
    :mod:`repro.obs` registry before/after and ships the delta home;
    the parent merges deltas whose pid differs from its own. (The pid
    guard matters: when :func:`make_executor` silently degrades to
    threads, the "workers" share the parent registry and their
    increments already landed — merging the delta again would double
    count.)
    """
    if collect_metrics:
        call: Callable = _call_with_metrics
        items: Sequence = [(fn, payload) for payload in payloads]
    else:
        call, items = fn, payloads
    for attempt in range(2):
        try:
            with make_executor(workers, kind) as pool:
                results = list(pool.map(call, items))
            if not collect_metrics:
                return results
            from repro.obs import get_registry

            registry = get_registry()
            own_pid = os.getpid()
            unpacked: List[T] = []
            for result, delta in results:
                if delta.get("pid") != own_pid:
                    registry.merge_delta(delta)
                unpacked.append(result)
            return unpacked
        except BrokenExecutor:
            # Worker death; one rebuild, then give up to the caller.
            # (Must precede RuntimeError: BrokenExecutor subclasses it.)
            _unlink_arenas(arenas)
            if attempt == 1:
                return None
        except (OSError, PermissionError, RuntimeError, pickle.PicklingError):
            _unlink_arenas(arenas)
            return None
    return None


def chunk_evenly(items: Sequence[T], chunks: int) -> List[List[T]]:
    """Split ``items`` into at most ``chunks`` contiguous, near-equal
    pieces (no empty chunks); order is preserved across the
    concatenation of the result."""
    n = len(items)
    chunks = max(1, min(int(chunks), n))
    base, extra = divmod(n, chunks)
    out: List[List[T]] = []
    start = 0
    for i in range(chunks):
        size = base + (1 if i < extra else 0)
        out.append(list(items[start : start + size]))
        start += size
    return out
