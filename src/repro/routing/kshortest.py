"""K-shortest hop-bounded simple paths (Yen's algorithm).

DUST's "controllable routes" need more than one candidate route per
(busy, destination) pair: when the primary route's links congest, the
manager reroutes the monitoring flow without re-solving placement.
:func:`k_shortest_paths` returns the ``k`` cheapest simple paths under
the same resistance weights and hop budget the placement used, in
non-decreasing cost order.

Yen's algorithm over the hop-constrained Bellman–Ford base solver: the
spur computation masks root-path nodes and previously used spur edges
by weight inflation (edges cannot be removed from :class:`Topology`
in-place, and copying the graph per spur would dominate runtime).
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import RoutingError
from repro.routing.routes import Path
from repro.routing.shortest import hop_constrained_shortest
from repro.topology.graph import Topology

_BLOCK = 1e18  # weight used to soft-delete an edge


def _masked_shortest(
    topology: Topology,
    source: int,
    destination: int,
    weights: np.ndarray,
    max_hops: Optional[int],
    blocked_edges: Sequence[int],
    blocked_nodes: Sequence[int],
) -> Optional[Path]:
    """Shortest path avoiding blocked edges/nodes (by weight inflation
    and post-check)."""
    w = weights.copy()
    if blocked_edges:
        w[list(blocked_edges)] = _BLOCK
    if blocked_nodes:
        blocked = set(blocked_nodes)
        for edge_id, (u, v) in enumerate(topology.edges):
            if u in blocked or v in blocked:
                w[edge_id] = _BLOCK
    result = hop_constrained_shortest(topology, source, max_hops, w)
    path = result.path_to(destination)
    if path is None:
        return None
    cost = float(sum(w[e] for e in path.edges))
    if cost >= _BLOCK:  # the "shortest" path had to use a blocked edge
        return None
    return path


def path_cost(path: Path, weights: np.ndarray) -> float:
    """Total weight of a path."""
    if not path.edges:
        return 0.0
    return float(weights[list(path.edges)].sum())


def k_shortest_paths(
    topology: Topology,
    source: int,
    destination: int,
    weights: np.ndarray,
    k: int,
    max_hops: Optional[int] = None,
) -> List[Path]:
    """Up to ``k`` cheapest simple hop-bounded paths (Yen).

    Returns fewer than ``k`` when the graph has fewer distinct simple
    paths within the hop budget.
    """
    if k < 1:
        raise RoutingError(f"k must be >= 1, got {k}")
    topology.node(source)
    topology.node(destination)
    if source == destination:
        return [Path(nodes=(source,), edges=())]

    weights = np.asarray(weights, dtype=float)
    first = _masked_shortest(topology, source, destination, weights, max_hops, (), ())
    if first is None:
        return []
    accepted: List[Path] = [first]
    # Candidate heap entries: (cost, hops, tie, path).
    candidates: List[Tuple[float, int, int, Path]] = []
    seen = {first.nodes}
    tie = 0

    while len(accepted) < k:
        prev = accepted[-1]
        for spur_idx in range(len(prev.nodes) - 1):
            spur_node = prev.nodes[spur_idx]
            root_nodes = prev.nodes[: spur_idx + 1]
            root_edges = prev.edges[:spur_idx]
            # Edges leaving the spur node along any accepted path that
            # shares this root must be excluded.
            blocked_edges = [
                p.edges[spur_idx]
                for p in accepted
                if len(p.edges) > spur_idx and p.nodes[: spur_idx + 1] == root_nodes
            ]
            blocked_nodes = root_nodes[:-1]  # root minus the spur node
            remaining_hops = (
                None if max_hops is None else max_hops - len(root_edges)
            )
            if remaining_hops is not None and remaining_hops < 1:
                continue
            spur = _masked_shortest(
                topology,
                spur_node,
                destination,
                weights,
                remaining_hops,
                blocked_edges,
                blocked_nodes,
            )
            if spur is None:
                continue
            total_nodes = root_nodes + spur.nodes[1:]
            if len(set(total_nodes)) != len(total_nodes):
                continue  # root + spur re-visits a node
            total = Path(nodes=total_nodes, edges=root_edges + spur.edges)
            if total.nodes in seen:
                continue
            seen.add(total.nodes)
            tie += 1
            heapq.heappush(
                candidates,
                (path_cost(total, weights), total.num_hops, tie, total),
            )
        if not candidates:
            break
        _, _, _, best = heapq.heappop(candidates)
        accepted.append(best)
    return accepted
