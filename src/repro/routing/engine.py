"""Parallel + incremental Trmin route-pricing engine.

Pricing the ``Trmin_ij`` matrix dominates every quantitative result in
the paper (the ILP itself is cheap; Figs. 8–12 measure the route
pricing). :class:`TrminEngine` wraps the serial reference
implementation in :class:`~repro.routing.response_time.ResponseTimeModel`
with three orthogonal accelerations:

* **parallel** — the matrix is row-partitioned across sources and
  fanned out onto a process pool (:mod:`repro.parallel`); rows are
  independent, so chunked results are *bit-identical* to the serial
  sweep and are simply re-stacked;
* **incremental** — a :class:`TrminCache` keys results on the
  :class:`~repro.topology.graph.Topology` version counter. When only a
  few link weights changed, it re-prices just the pairs whose cached
  optimal route touches a dirty edge, plus the pairs that a
  weight-*decrease* could improve (screened by an exact lower bound
  through the decreased edge, computed from two layered DPs — the
  transportation-pricing idea of screening columns by reduced cost).
  For the dp engine, a *cost gate* first estimates the repair bill in
  source-row units and falls back to the flat full recompute whenever
  the dirty set makes repair a loss (``EngineStats.gate_fallbacks``);
* **vectorized** — the underlying enumeration primitive batches path
  pricing through one ``np.add.reduceat`` per ~512 paths (see
  :func:`~repro.routing.response_time._best_enum_route`), and by
  default sources those paths from the frontier-expansion kernel
  (:mod:`repro.routing.enumkernel`): array-level hop expansion with
  admissible lower-bound pruning, whose DFS-ordered survivors replay
  through the same fold — so serial, parallel, incremental and matrix
  modes all thread through the kernel automatically
  (``REPRO_ENUM_KERNEL=0`` restores the reference DFS everywhere).

All three layers reuse the same canonical per-pair / per-source
primitives, so every mode returns bit-identical ``(R, hops)`` matrices
— the property suite asserts exact equality, not approximate.
"""

from __future__ import annotations

import time
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.obs import ENGINE_STATS_MIRROR, get_registry, mirror_counters, trace_span
from repro.parallel import chunk_evenly, map_with_pool_retry, resolve_workers
from repro.routing.response_time import (
    PathEngine,
    ResponseTimeModel,
    _best_enum_route,
    _dp_source_row,
    validate_data_volumes,
)
from repro.routing.routes import Path
from repro.topology.graph import Topology

_TIE_TOL = 1e-12

#: Estimated cost of one screening DP (a hop-layered sweep with no path
#: recovery, see :meth:`TrminEngine._improvable_pairs`) relative to one
#: with-paths DP source-row re-solve — the unit the dp cost gate counts
#: in. Path materialization dominates a row re-solve, so a pathless
#: sweep is far cheaper; 0.25 is deliberately pessimistic (biases the
#: gate toward the always-sound full recompute).
_SCREEN_ROW_COST = 0.25

Pair = Tuple[int, int]


def _price_chunk(payload) -> Tuple[np.ndarray, np.ndarray, Dict[Pair, Path]]:
    """Pool worker: price one contiguous block of source rows with the
    serial reference implementation (bit-identical by construction)."""
    model, topology, chunk, destinations, with_paths = payload
    return model.resistance_matrix(topology, chunk, destinations, with_paths=with_paths)


@dataclass
class EngineStats:
    """Observable engine activity (reset with :meth:`TrminEngine.reset_stats`)."""

    serial_computes: int = 0
    parallel_computes: int = 0
    cache_hits: int = 0
    full_computes: int = 0
    incremental_updates: int = 0
    pairs_repriced: int = 0
    #: Incremental repairs abandoned by the dp cost gate because the
    #: dirty set made repair at least as expensive as a full recompute.
    gate_fallbacks: int = 0
    #: All-sources pricings answered by the matrix DP kernel
    #: (``mode="matrix"``, dp model).
    matrix_computes: int = 0


@dataclass
class _CacheEntry:
    """One cached ``(R, hops, paths)`` matrix plus the bookkeeping the
    incremental re-pricer needs."""

    topo_ref: "weakref.ref[Topology]"
    version: int
    weights: np.ndarray  # per-edge 1/Lu_e the matrices were priced with
    sources: Tuple[int, ...]
    destinations: Tuple[int, ...]
    R: np.ndarray
    hops: np.ndarray
    paths: Dict[Pair, Path]
    #: edge id -> pairs whose cached optimal route crosses it.
    edge_to_pairs: Dict[int, Set[Pair]] = field(default_factory=dict)
    src_index: Dict[int, int] = field(default_factory=dict)
    dst_index: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.src_index = {s: a for a, s in enumerate(self.sources)}
        self.dst_index = {d: b for b, d in enumerate(self.destinations)}
        self.edge_to_pairs = {}
        for pair, path in self.paths.items():
            self._index_path(pair, path)

    def _index_path(self, pair: Pair, path: Path) -> None:
        for e in path.edges:
            self.edge_to_pairs.setdefault(e, set()).add(pair)

    def _unindex_path(self, pair: Pair, path: Path) -> None:
        for e in path.edges:
            bucket = self.edge_to_pairs.get(e)
            if bucket is not None:
                bucket.discard(pair)
                if not bucket:
                    del self.edge_to_pairs[e]

    def replace_pair(self, pair: Pair, path: Optional[Path]) -> None:
        old = self.paths.pop(pair, None)
        if old is not None:
            self._unindex_path(pair, old)
        if path is not None:
            self.paths[pair] = path
            self._index_path(pair, path)


class TrminCache:
    """LRU cache of Trmin matrices keyed on
    ``(topology, convention, engine, max_hops, sources, destinations)``
    and validated against the topology version counter."""

    def __init__(self, max_entries: int = 16) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[tuple, _CacheEntry]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def key(
        topology: Topology,
        model: ResponseTimeModel,
        sources: Tuple[int, ...],
        destinations: Tuple[int, ...],
    ) -> tuple:
        return (
            id(topology),
            model.convention,
            model.engine,
            model.max_hops,
            sources,
            destinations,
        )

    def get(self, key: tuple, topology: Topology) -> Optional[_CacheEntry]:
        entry = self._entries.get(key)
        if entry is None:
            return None
        if entry.topo_ref() is not topology:
            # id() was recycled by a new Topology object: stale entry.
            del self._entries[key]
            return None
        self._entries.move_to_end(key)
        return entry

    def put(self, key: tuple, entry: _CacheEntry) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()


class TrminEngine:
    """Resource-aware front end for Trmin matrix pricing.

    Parameters
    ----------
    model:
        Default :class:`ResponseTimeModel`; every method also accepts a
        per-call ``model=`` override (cache entries are keyed per
        model, so one engine serves many configurations).
    workers:
        Worker count; ``None`` defers to ``REPRO_WORKERS`` / CPU count
        (see :func:`repro.parallel.resolve_workers`). ``1`` forces the
        serial path.
    cache:
        Enable the versioned :class:`TrminCache`.
    dirty_fraction_threshold:
        Incremental re-pricing is abandoned for a full recompute once
        more than this fraction of edges changed weight.
    min_parallel_pairs:
        Matrices smaller than this stay serial — pool startup would
        dominate.
    executor_kind:
        ``"process"`` (default) or ``"thread"``.
    mode:
        ``"rows"`` (default) prices source rows independently (serial
        or pool-chunked). ``"matrix"`` answers dp-model pricings with
        one all-sources hop-layered DP over the cached CSR
        (:func:`repro.routing.matrix.matrix_hop_constrained`) — no
        per-source Python loop, no pool — and is bit-identical in
        ``(R, hops)``. Enumeration-model pricings ignore the mode (the
        matrix kernel is a DP).

    Attributes
    ----------
    stats : EngineStats
        Cumulative per-engine counters (serial/parallel computes, cache
        hits, incremental repairs, …). After every pricing call they
        are mirrored into the process-wide ``trmin.*`` metrics, the
        call's wall time lands in ``trmin.price_seconds``, and — when
        tracing is on — the call records a ``trmin.price`` span (see
        ``docs/observability.md``).
    """

    def __init__(
        self,
        model: Optional[ResponseTimeModel] = None,
        *,
        workers: Optional[int] = None,
        cache: bool = True,
        max_cache_entries: int = 16,
        dirty_fraction_threshold: float = 0.25,
        min_parallel_pairs: int = 32,
        executor_kind: str = "process",
        mode: str = "rows",
    ) -> None:
        if mode not in ("rows", "matrix"):
            raise ValueError(f"mode must be 'rows' or 'matrix', got {mode!r}")
        self.model = model if model is not None else ResponseTimeModel()
        self.workers = workers
        self.cache_enabled = cache
        self.dirty_fraction_threshold = dirty_fraction_threshold
        self.min_parallel_pairs = min_parallel_pairs
        self.executor_kind = executor_kind
        self.mode = mode
        self._cache = TrminCache(max_entries=max_cache_entries)
        self.stats = EngineStats()

    # A pickled engine (e.g. shipped to a zoned-placement worker) drops
    # its cache: entries hold weakrefs and are keyed on object ids that
    # mean nothing in another process.
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_cache"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._cache = TrminCache()

    # -- public API -----------------------------------------------------------------
    def resistance_matrix(
        self,
        topology: Topology,
        sources: Sequence[int],
        destinations: Sequence[int],
        with_paths: bool = False,
        model: Optional[ResponseTimeModel] = None,
    ) -> Tuple[np.ndarray, np.ndarray, Dict[Pair, Path]]:
        """Drop-in replacement for
        :meth:`ResponseTimeModel.resistance_matrix` — same contract,
        same bits, parallel and cache-aware."""
        model = model if model is not None else self.model
        src = tuple(int(s) for s in sources)
        dst = tuple(int(d) for d in destinations)
        start = time.perf_counter()
        with trace_span("trmin.price", sources=len(src), destinations=len(dst)):
            if (
                not self.cache_enabled
                or not src
                or not dst
                # Duplicate ids would alias rows/columns in the per-pair
                # bookkeeping; such requests bypass the cache.
                or len(set(src)) != len(src)
                or len(set(dst)) != len(dst)
            ):
                result = self._compute(model, topology, src, dst, with_paths)
            else:
                result = self._cached(model, topology, src, dst, with_paths)
        get_registry().histogram("trmin.price_seconds").observe(
            time.perf_counter() - start
        )
        mirror_counters(self.stats, ENGINE_STATS_MIRROR)
        return result

    def trmin_matrix(
        self,
        topology: Topology,
        sources: Sequence[int],
        destinations: Sequence[int],
        data_mb: Sequence[float],
        with_paths: bool = False,
        model: Optional[ResponseTimeModel] = None,
    ) -> Tuple[np.ndarray, np.ndarray, Dict[Pair, Path]]:
        """Eq. 2 as a matrix (``T[a, b] = D_a * R[a, b]``) through the
        parallel/cached pricing path."""
        data = validate_data_volumes(data_mb, len(sources))
        R, hops, paths = self.resistance_matrix(
            topology, sources, destinations, with_paths, model=model
        )
        return data[:, None] * R, hops, paths

    def invalidate(self) -> None:
        """Drop every cached matrix."""
        self._cache.clear()

    def reset_stats(self) -> None:
        self.stats = EngineStats()

    # -- computation ---------------------------------------------------------------
    def _compute(
        self,
        model: ResponseTimeModel,
        topology: Topology,
        sources: Tuple[int, ...],
        destinations: Tuple[int, ...],
        with_paths: bool,
    ) -> Tuple[np.ndarray, np.ndarray, Dict[Pair, Path]]:
        if self.mode == "matrix" and model.engine is PathEngine.DP:
            return self._compute_matrix(model, topology, sources, destinations, with_paths)
        workers = resolve_workers(self.workers, task_count=len(sources))
        pairs = len(sources) * len(destinations)
        if workers <= 1 or len(sources) < 2 or pairs < self.min_parallel_pairs:
            self.stats.serial_computes += 1
            return model.resistance_matrix(
                topology, list(sources), list(destinations), with_paths=with_paths
            )
        chunks = chunk_evenly(sources, workers)
        payloads = [
            (model, topology, chunk, list(destinations), with_paths)
            for chunk in chunks
        ]
        results = map_with_pool_retry(
            _price_chunk, payloads, workers, self.executor_kind, collect_metrics=True
        )
        if results is None:
            # Pool unusable even after a one-shot rebuild (fork bomb
            # guard, sandbox, worker death ×2): serial fallback.
            self.stats.serial_computes += 1
            return model.resistance_matrix(
                topology, list(sources), list(destinations), with_paths=with_paths
            )
        self.stats.parallel_computes += 1
        R = np.vstack([r for r, _, _ in results])
        hops = np.vstack([h for _, h, _ in results])
        paths: Dict[Pair, Path] = {}
        for _, _, chunk_paths in results:
            paths.update(chunk_paths)
        return R, hops, paths

    def _compute_matrix(
        self,
        model: ResponseTimeModel,
        topology: Topology,
        sources: Tuple[int, ...],
        destinations: Tuple[int, ...],
        with_paths: bool,
    ) -> Tuple[np.ndarray, np.ndarray, Dict[Pair, Path]]:
        """One all-sources matrix DP instead of per-source row solves.

        ``(R, hops)`` are bit-identical to the per-source sweep (see
        :mod:`repro.routing.matrix` for the operand-set argument);
        materialized paths are optimal and price-consistent but may
        pick different tie-equivalent routes.
        """
        from repro.routing.matrix import matrix_hop_constrained

        weights = model.edge_weights(topology)
        result = matrix_hop_constrained(
            topology, sources, model.max_hops, weights, with_parents=with_paths
        )
        dest_arr = np.asarray(destinations, dtype=int)
        R = result.best[:, dest_arr]
        hops = np.where(np.isfinite(R), result.hops[:, dest_arr], -1)
        paths: Dict[Pair, Path] = {}
        if with_paths:
            for a, s in enumerate(sources):
                row = R[a]
                for b, d in enumerate(destinations):
                    if np.isfinite(row[b]):
                        path = result.path_to(a, int(d))
                        if path is not None:
                            paths[(int(s), int(d))] = path
        self.stats.matrix_computes += 1
        return R, hops, paths

    # -- cache layer ------------------------------------------------------------------
    def _cached(
        self,
        model: ResponseTimeModel,
        topology: Topology,
        sources: Tuple[int, ...],
        destinations: Tuple[int, ...],
        with_paths: bool,
    ) -> Tuple[np.ndarray, np.ndarray, Dict[Pair, Path]]:
        key = TrminCache.key(topology, model, sources, destinations)
        entry = self._cache.get(key, topology)
        if entry is not None and topology.num_edges == entry.weights.shape[0]:
            if entry.version == topology.version:
                self.stats.cache_hits += 1
                return self._export(entry, with_paths)
            if self._reprice_incremental(model, topology, entry):
                return self._export(entry, with_paths)
        # Full (re)compute. Paths are always materialized into the
        # entry: the incremental re-pricer needs each pair's optimal
        # route to know which cached results a dirty edge invalidates.
        version = topology.version
        weights = model.edge_weights(topology)
        R, hops, paths = self._compute(model, topology, sources, destinations, True)
        self.stats.full_computes += 1
        entry = _CacheEntry(
            topo_ref=weakref.ref(topology),
            version=version,
            weights=weights,
            sources=sources,
            destinations=destinations,
            R=R,
            hops=hops,
            paths=paths,
        )
        self._cache.put(key, entry)
        return self._export(entry, with_paths)

    @staticmethod
    def _export(
        entry: _CacheEntry, with_paths: bool
    ) -> Tuple[np.ndarray, np.ndarray, Dict[Pair, Path]]:
        return (
            entry.R.copy(),
            entry.hops.copy(),
            dict(entry.paths) if with_paths else {},
        )

    def _reprice_incremental(
        self, model: ResponseTimeModel, topology: Topology, entry: _CacheEntry
    ) -> bool:
        """Bring ``entry`` up to date by re-pricing only affected pairs;
        returns False when a full recompute is the better (or only
        sound) option."""
        dirty_hint = topology.dirty_edges_since(entry.version)
        if dirty_hint is None:
            # Structural change or journal horizon exceeded.
            return False
        if dirty_hint:
            new_weights = entry.weights.copy()
            for e in dirty_hint:
                new_weights[e] = 1.0 / topology.link(e).effective_mbps(model.convention)
        else:
            new_weights = entry.weights
        changed = np.flatnonzero(new_weights != entry.weights)
        if changed.size == 0:
            # Version bumps without weight effect (e.g. a no-op write).
            entry.version = topology.version
            self.stats.cache_hits += 1
            return True
        if changed.size > self.dirty_fraction_threshold * max(topology.num_edges, 1):
            return False

        flagged: Set[Pair] = set()
        # (a) pairs whose cached optimal route crosses a dirty edge —
        # their cost is stale no matter which way the weight moved.
        for e in changed:
            flagged.update(entry.edge_to_pairs.get(int(e), ()))
        # (b) pairs a weight-decrease could improve: screen with an
        # exact lower bound on any hop-bounded route through the edge.
        decreased = changed[new_weights[changed] < entry.weights[changed]]

        # Cost gate (dp only): repair re-solves whole source rows, so
        # its cost is |flagged rows| row-solves plus 2 screening DPs per
        # decreased edge — while the fallback is a flat |sources| row
        # recompute. Bail out as soon as the estimate says repair cannot
        # win; rows touched by dirty routes are a lower bound on the
        # flagged rows, so this pre-gate never rejects a repair that the
        # post-screen gate below would have accepted.
        if model.engine is PathEngine.DP:
            total_rows = len(entry.sources)
            screen_cost = _SCREEN_ROW_COST * 2 * decreased.size
            rows_dirty = {pair[0] for pair in flagged}
            if screen_cost + len(rows_dirty) >= total_rows:
                self.stats.gate_fallbacks += 1
                return False

        for e in decreased:
            flagged.update(
                self._improvable_pairs(topology, entry, int(e), new_weights, model)
            )

        # Post-screen gate: screening may have flagged more rows than
        # the dirty-route lower bound promised. The screening work is
        # sunk either way; only the remaining row re-solves matter.
        if model.engine is PathEngine.DP:
            rows_flagged = {pair[0] for pair in flagged}
            if len(rows_flagged) >= len(entry.sources):
                self.stats.gate_fallbacks += 1
                return False

        if flagged:
            self._reprice_pairs(model, topology, entry, flagged, new_weights)
        entry.weights = new_weights
        entry.version = topology.version
        self.stats.incremental_updates += 1
        self.stats.pairs_repriced += len(flagged)
        return True

    def _improvable_pairs(
        self,
        topology: Topology,
        entry: _CacheEntry,
        edge_id: int,
        weights: np.ndarray,
        model: ResponseTimeModel,
    ) -> List[Pair]:
        """Pairs whose optimum might improve through ``edge_id``.

        For edge ``e = {u, v}`` any route through it splits into a
        prefix to one endpoint, the edge, and a suffix from the other;
        two layered DPs rooted at ``u`` and ``v`` give the cheapest
        hop-feasible split, i.e. an exact lower bound on every simple
        path through ``e``. Pairs whose cached optimum already beats
        the bound cannot improve and are skipped.
        """
        from repro.routing.shortest import hop_constrained_shortest

        H = model.max_hops if model.max_hops is not None else topology.num_nodes - 1
        if H < 1:
            return []
        u, v = topology.edges[edge_id]
        du = hop_constrained_shortest(topology, u, H, weights).dist  # (H+1, n)
        dv = hop_constrained_shortest(topology, v, H, weights).dist
        # cummin over layers: cheapest reach within <= h hops.
        du_cm = np.minimum.accumulate(du, axis=0)
        dv_cm = np.minimum.accumulate(dv, axis=0)
        src = np.asarray(entry.sources)
        dst = np.asarray(entry.destinations)
        w_e = weights[edge_id]
        best_bound = np.full((src.size, dst.size), np.inf)
        for h1 in range(H):  # h1 hops to the near endpoint, <= H-1-h1 after
            h2 = H - 1 - h1
            np.minimum(
                best_bound,
                du_cm[h1, src][:, None] + w_e + dv_cm[h2, dst][None, :],
                out=best_bound,
            )
            np.minimum(
                best_bound,
                dv_cm[h1, src][:, None] + w_e + du_cm[h2, dst][None, :],
                out=best_bound,
            )
        # The finite check keeps inf <= inf from flagging pairs that are
        # unreachable within the hop budget (they can never improve:
        # reachability is weight-independent).
        improvable = np.isfinite(best_bound) & (best_bound <= entry.R + _TIE_TOL)
        return [
            (int(src[a]), int(dst[b])) for a, b in zip(*np.nonzero(improvable))
        ]

    def _reprice_pairs(
        self,
        model: ResponseTimeModel,
        topology: Topology,
        entry: _CacheEntry,
        flagged: Set[Pair],
        weights: np.ndarray,
    ) -> None:
        if model.engine is PathEngine.DP:
            # The DP prices a whole source row at once; re-solve every
            # source with at least one flagged pair.
            for s in sorted({pair[0] for pair in flagged}):
                a = entry.src_index[s]
                row, row_hops, row_paths = _dp_source_row(
                    topology, s, list(entry.destinations), model.max_hops, weights, True
                )
                entry.R[a, :] = row
                entry.hops[a, :] = row_hops
                for d in entry.destinations:
                    entry.replace_pair((s, d), row_paths.get((s, d)))
            return
        # Shared backward bound-DP cache for the enumeration kernel:
        # weights and hop budget are fixed across the flagged pairs, so
        # each distinct destination's plane is computed once.
        bound_cache: Dict[int, np.ndarray] = {}
        for s, d in sorted(flagged):
            a, b = entry.src_index[s], entry.dst_index[d]
            res, nh, raw = _best_enum_route(
                topology, s, d, model.max_hops, weights, bound_cache=bound_cache
            )
            if raw is None:
                entry.R[a, b] = np.inf
                entry.hops[a, b] = -1
                entry.replace_pair((s, d), None)
            else:
                entry.R[a, b] = res
                entry.hops[a, b] = nh
                entry.replace_pair((s, d), Path(nodes=raw[0], edges=raw[1]))
