"""Hop-constrained shortest paths (layered Bellman–Ford DP).

The minimum response time ``Trmin_{i,j}`` of Eq. 2 is, for positive
edge weights ``D_i / Lu_e``, a *hop-bounded shortest path* — the
minimum over all paths with at most ``max_hops`` edges of the path
weight. Because ``D_i`` multiplies every edge equally, the DP runs on
the data-independent "resistance" ``1 / Lu_e`` and the caller scales by
``D_i`` afterwards.

The layered relaxation is vectorized over the whole edge set with
``np.minimum.at`` (scatter-min), i.e. each layer costs O(E) numpy work
instead of a Python loop per edge: this is the polynomial engine that
the ablation bench compares against the faithful exponential
enumeration in :mod:`repro.routing.paths`.

With positive weights an optimal hop-bounded *walk* is always simple,
so the DP's optimum equals the enumeration's optimum — the test suite
asserts exactly this equivalence property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import RoutingError
from repro.routing.routes import Path
from repro.topology.graph import Topology


@dataclass(frozen=True)
class HopConstrainedResult:
    """All-destination result of one source's layered DP.

    Attributes
    ----------
    source:
        Source node id.
    max_hops:
        Hop budget ``H`` used by the DP.
    dist:
        ``(H+1, V)`` array; ``dist[h, v]`` is the minimum path weight
        from source to ``v`` using at most ``h`` edges (``inf`` when
        unreachable in budget). ``dist[0, source] == 0``.
    parent_node / parent_edge:
        ``(H+1, V)`` predecessor arrays for path reconstruction; entry
        ``[h, v]`` is valid only where layer ``h`` strictly improved
        ``v``.
    """

    source: int
    max_hops: int
    dist: np.ndarray
    parent_node: np.ndarray
    parent_edge: np.ndarray

    @property
    def best(self) -> np.ndarray:
        """Minimum weight to each node within the hop budget."""
        return self.dist[-1]

    def best_hops(self, tol: float = 0.0) -> np.ndarray:
        """Fewest hops achieving the best weight per node (paper's
        tie-break: "minimal hops distance priority whenever minimum
        response time is achieved"). ``-1`` for unreachable nodes."""
        final = self.dist[-1]
        reachable = np.isfinite(final)
        # First layer h where dist[h, v] <= best + tol.
        hits = self.dist <= final[None, :] + tol
        first = np.argmax(hits, axis=0)
        return np.where(reachable, first, -1)

    def path_to(self, destination: int) -> Optional[Path]:
        """Reconstruct one optimal (weight-minimal, then hop-minimal)
        path to ``destination``; ``None`` if unreachable in budget."""
        final = self.dist[-1, destination]
        if not np.isfinite(final):
            return None
        h = int(self.best_hops()[destination])
        nodes: List[int] = [destination]
        edges: List[int] = []
        v = destination
        while v != self.source or h > 0:
            if h > 0 and self.dist[h, v] < self.dist[h - 1, v]:
                u = int(self.parent_node[h, v])
                e = int(self.parent_edge[h, v])
                edges.append(e)
                nodes.append(u)
                v = u
                h -= 1
            else:
                h -= 1
                if h < 0:  # pragma: no cover - DP invariant guards this
                    raise RoutingError("path reconstruction walked past layer 0")
        nodes.reverse()
        edges.reverse()
        return Path(nodes=tuple(nodes), edges=tuple(edges))


def hop_constrained_shortest(
    topology: Topology,
    source: int,
    max_hops: Optional[int],
    edge_weights: np.ndarray,
) -> HopConstrainedResult:
    """Run the layered DP from ``source``.

    Parameters
    ----------
    topology:
        Graph to route on.
    source:
        Source node id.
    max_hops:
        Hop budget; ``None`` means ``num_nodes - 1`` (unbounded for
        simple paths).
    edge_weights:
        Positive per-edge weights indexed by edge id (typically
        ``1 / Lu_e``).
    """
    topology.node(source)
    n = topology.num_nodes
    m = topology.num_edges
    weights = np.asarray(edge_weights, dtype=float)
    if weights.shape != (m,):
        raise RoutingError(f"expected {m} edge weights, got shape {weights.shape}")
    if m and weights.min() <= 0:
        raise RoutingError("edge weights must be strictly positive")
    if max_hops is None:
        max_hops = max(n - 1, 0)
    if max_hops < 0:
        raise RoutingError(f"max_hops must be non-negative, got {max_hops}")

    H = int(max_hops)
    dist = np.full((H + 1, n), np.inf)
    parent_node = np.full((H + 1, n), -1, dtype=np.int64)
    parent_edge = np.full((H + 1, n), -1, dtype=np.int64)
    dist[0, source] = 0.0

    if m == 0 or H == 0:
        return HopConstrainedResult(source, H, dist, parent_node, parent_edge)

    us, vs = topology.edge_endpoint_arrays()
    eids = np.arange(m)
    # Both directions of every undirected edge.
    cand_from = np.concatenate([us, vs])
    cand_to = np.concatenate([vs, us])
    cand_eid = np.concatenate([eids, eids])
    cand_w = np.concatenate([weights, weights])

    prev = dist[0]
    for h in range(1, H + 1):
        vals = prev[cand_from] + cand_w
        new = prev.copy()
        np.minimum.at(new, cand_to, vals)
        improved = new < prev
        if improved.any():
            # Recover one argmin witness per improved target.
            hit = improved[cand_to] & (vals <= new[cand_to])
            idx = np.flatnonzero(hit)
            # Later writes win; all witnesses achieve the min, so any is fine.
            parent_node[h, cand_to[idx]] = cand_from[idx]
            parent_edge[h, cand_to[idx]] = cand_eid[idx]
        dist[h] = new
        if not improved.any():
            # Converged: remaining layers equal this one.
            dist[h + 1 :] = new
            break
        prev = new

    return HopConstrainedResult(source, H, dist, parent_node, parent_edge)


def shortest_path(
    topology: Topology,
    source: int,
    destination: int,
    edge_weights: np.ndarray,
    max_hops: Optional[int] = None,
) -> Optional[Path]:
    """Convenience wrapper: one optimal hop-bounded path or ``None``."""
    result = hop_constrained_shortest(topology, source, max_hops, edge_weights)
    return result.path_to(destination)


def all_sources_hop_constrained(
    topology: Topology,
    sources: List[int],
    max_hops: Optional[int],
    edge_weights: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Layered DP for *many* sources in one vectorized sweep.

    Returns ``(best, best_hops)`` with shape ``(len(sources), V)``:
    minimum hop-bounded weight from each source to every node, and the
    fewest hops achieving it (−1 when unreachable). Equivalent to
    running :func:`hop_constrained_shortest` per source but relaxes all
    sources simultaneously with one 2-D scatter-min per layer — per the
    optimization guide, the Python-level loop runs over layers (≤ H)
    instead of sources × layers. Parent pointers are not kept; use the
    single-source solver when paths must be materialized.
    """
    n = topology.num_nodes
    m = topology.num_edges
    weights = np.asarray(edge_weights, dtype=float)
    if weights.shape != (m,):
        raise RoutingError(f"expected {m} edge weights, got shape {weights.shape}")
    if m and weights.min() <= 0:
        raise RoutingError("edge weights must be strictly positive")
    if max_hops is None:
        max_hops = max(n - 1, 0)
    if max_hops < 0:
        raise RoutingError(f"max_hops must be non-negative, got {max_hops}")
    src = np.asarray(sources, dtype=int)
    for s in src:
        topology.node(int(s))

    S = src.size
    dist = np.full((S, n), np.inf)
    dist[np.arange(S), src] = 0.0
    best_hops = np.full((S, n), -1, dtype=np.int64)
    best_hops[np.arange(S), src] = 0

    if m == 0 or max_hops == 0 or S == 0:
        return dist, best_hops

    # Padded-neighbor tables: nbr[v, d] is v's d-th neighbor and
    # nbr_w[v, d] the edge weight (∞-padded). One layer is then a pure
    # gather + reduction — no `ufunc.at` scatter, which profiling shows
    # is the bottleneck for the scatter formulation.
    max_deg = max(topology.degree(v) for v in range(n))
    nbr = np.zeros((n, max_deg), dtype=np.int64)
    nbr_w = np.full((n, max_deg), np.inf)
    for v in range(n):
        for d, (u, edge_id) in enumerate(topology.incident(v)):
            nbr[v, d] = u
            nbr_w[v, d] = weights[edge_id]

    current = dist.copy()
    for h in range(1, int(max_hops) + 1):
        # (S, n, deg): cost of reaching v through each neighbor.
        through = current[:, nbr] + nbr_w[None, :, :]
        new = np.minimum(current, through.min(axis=2))
        improved = new < current
        if not improved.any():
            break
        best_hops[improved] = h
        current = new
    return current, best_hops
