"""Path/route value types.

The paper writes a route as an edge sequence, e.g.
``r_1 = {e_1 - e_2}``, and the set of all routes between a Busy node
and an Offload-candidate as ``p = {r_1, ..., r_n}``. :class:`Path`
stores both node and edge views and knows how to price itself against
a vector of per-edge effective bandwidths (Eq. 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import RoutingError


@dataclass(frozen=True)
class Path:
    """A simple path through the topology.

    Attributes
    ----------
    nodes:
        Node ids from source to destination (inclusive); at least 1.
    edges:
        Edge ids, ``len(edges) == len(nodes) - 1``.
    """

    nodes: Tuple[int, ...]
    edges: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.nodes) == 0:
            raise RoutingError("a path needs at least one node")
        if len(self.edges) != len(self.nodes) - 1:
            raise RoutingError(
                f"edge count {len(self.edges)} inconsistent with "
                f"{len(self.nodes)} nodes"
            )
        if len(set(self.nodes)) != len(self.nodes):
            raise RoutingError(f"path revisits a node: {self.nodes}")

    @classmethod
    def one_hop(cls, u: int, v: int, edge_id: int) -> "Path":
        """Build a two-node path without the generic validation pass.

        The invariants checked in ``__post_init__`` reduce to ``u != v``
        for a single hop, so hot callers (the vectorized Algorithm-1
        kernel emits one path per assignment) can skip the rest.
        """
        if u == v:
            raise RoutingError(f"path revisits a node: {(u, v)}")
        path = object.__new__(cls)
        object.__setattr__(path, "nodes", (u, v))
        object.__setattr__(path, "edges", (edge_id,))
        return path

    @classmethod
    def trusted(cls, nodes: Tuple[int, ...], edges: Tuple[int, ...]) -> "Path":
        """Build a path from invariant-holding tuples, skipping validation.

        For producers that guarantee simplicity structurally — the DFS
        enumerator's visited array and the frontier kernel's visited
        bitsets make revisits impossible — so bulk materialization
        (``enumerate_paths`` under a ``limit`` cap) skips the per-path
        set build of ``__post_init__``.
        """
        path = object.__new__(cls)
        object.__setattr__(path, "nodes", nodes)
        object.__setattr__(path, "edges", edges)
        return path

    @property
    def source(self) -> int:
        return self.nodes[0]

    @property
    def destination(self) -> int:
        return self.nodes[-1]

    @property
    def num_hops(self) -> int:
        """Number of edges traversed."""
        return len(self.edges)

    @property
    def relay_nodes(self) -> Tuple[int, ...]:
        """Intermediate nodes (the paper's zero-cost relay nodes)."""
        return self.nodes[1:-1]

    def response_time(self, data_mb: float, edge_bandwidths_mbps: np.ndarray) -> float:
        """Eq. 1: ``sum_e D_i / Lu_e`` in seconds for this path."""
        if data_mb < 0:
            raise RoutingError(f"data volume must be non-negative, got {data_mb}")
        if not self.edges:
            return 0.0
        lus = edge_bandwidths_mbps[list(self.edges)]
        return float(data_mb * np.sum(1.0 / lus))

    def inverse_bandwidth_sum(self, edge_bandwidths_mbps: np.ndarray) -> float:
        """``sum_e 1/Lu_e`` — the data-independent path "resistance"."""
        if not self.edges:
            return 0.0
        return float(np.sum(1.0 / edge_bandwidths_mbps[list(self.edges)]))

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        return "Path(" + "->".join(map(str, self.nodes)) + ")"


@dataclass(frozen=True)
class RouteChoice:
    """The selected route between one (busy, candidate) pair: the
    controllable-routing output of the optimizer."""

    path: Path
    response_time_s: float

    @property
    def num_hops(self) -> int:
        return self.path.num_hops
