"""Vectorized frontier-expansion path-enumeration kernel.

The faithful route engine (:mod:`repro.routing.paths`) walks a
pure-Python DFS — one ``next()`` call per incident edge, one tuple per
path. This module replaces that hot loop with a breadth-layered
*frontier expansion*: every partial path of depth ``L`` is one row of a
small set of parallel arrays —

* ``(P, L+1)`` int64 node matrix (the partial path's node sequence),
* ``(P, W)``   uint64 visited-bitset matrix (``W = ceil(n / 64)``),
* ``(P,)``     float64 running-resistance vector,

and one hop is added to *all* partial paths at once with dense CSR
gathers over the degree-class lane tables of
:func:`repro.routing.matrix._degree_classes` — the same regrouping the
matrix Trmin DP uses, so rows of equal end-degree expand as one
``(rows, d)`` block instead of a ragged Python loop.

Two entry points share the expansion core:

:func:`count_paths_kernel`
    Exhaustive hop-bounded simple-path counting. **No pruning of any
    kind** — no weights are even passed in — so counts are unchanged
    from the reference DFS by construction (the complexity plots of
    Figs. 8/10 depend on this).

:func:`pruned_candidates`
    Best-route candidate production for Trmin pricing, with
    **admissible lower-bound pruning**: a frontier row ending at node
    ``v`` with ``hops_left`` budget is dropped when

    ``partial_resistance + dist[hops_left, v] > opt + margin``

    where ``dist`` is the hop-layered Bellman–Ford plane of
    :func:`repro.routing.shortest.hop_constrained_shortest` run *from
    the destination* (the graph is undirected, so ``d -> v`` bounds
    ``v -> d``), and ``opt = dist[H, source]`` is the DP optimum
    itself. The DP relaxes over walks, a superset of simple paths, so
    ``dist`` is a true lower bound and the cut is sound for
    minimization.

Bit-identity with the serial reference
--------------------------------------
The kernel never *selects* the best route itself. It returns the
surviving complete paths as raw ``(nodes, edges)`` tuples in exact DFS
order, and :func:`repro.routing.response_time._best_enum_route` feeds
them through the same canonical sequential fold the reference stream
uses, so the resistance-then-fewer-hops-then-DFS-order tie-break is
reproduced update for update. Two properties make that exact:

* *DFS order is recoverable.* The reference DFS visits neighbors in
  CSR lane order, so paths are emitted in lexicographic order of their
  per-hop lane sequences. The kernel carries a ``(P, L)`` lane matrix
  alongside each partial path and ``np.lexsort``s the survivors; no
  complete path's lane sequence is a proper prefix of another's (both
  end at the destination, which is never extended through), so the
  ``-1`` padding never decides a comparison.
* *The prune margin covers every influential path.* The canonical
  fold's final best resistance is at most ``gm + (H+1) * _TIE_TOL``
  above the true minimum ``gm`` (each tolerance-tie update moves the
  running best up by at most ``_TIE_TOL`` and strictly decreases the
  hop count, so chains are bounded by ``H``), and every update
  accepted after the optimum arrives prices at or below that. The
  fixed threshold ``opt + (H+3) * _TIE_TOL + rel`` — ``rel`` a
  relative-epsilon cushion for the DP's different summation order —
  therefore retains every path the reference fold could ever accept.
  Distinct (non-equal) resistances straddling the same ~1e-12 window
  could in principle still order differently; exact ties (the
  uniform-cost meshes of the property suite) compare equal bit for bit
  and are reproduced exactly.

The kernel is the default behind ``PathEngine.ENUMERATION``; set
``REPRO_ENUM_KERNEL=0`` (or call :func:`set_enumeration_kernel`) to
fall back to the reference DFS. Counter totals are kept as plain local
ints in the hot loop and mirrored into the metrics registry once per
call, per the repo's hot-loop observability convention.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import RoutingError
from repro.routing.matrix import _degree_classes
from repro.routing.shortest import hop_constrained_shortest
from repro.topology.graph import Topology

__all__ = [
    "count_paths_kernel",
    "pruned_candidates",
    "enumeration_kernel_enabled",
    "set_enumeration_kernel",
    "use_enumeration_kernel",
]

_TIE_TOL = 1e-12  # must match repro.routing.response_time._TIE_TOL

#: Frontier rows expanded per dense gather pass; bounds the size of the
#: per-chunk child temporaries to ``_CHUNK_ROWS * max_degree`` entries.
_CHUNK_ROWS = 1 << 16


def _env_default() -> bool:
    return os.environ.get("REPRO_ENUM_KERNEL", "1").strip().lower() not in (
        "0",
        "false",
        "off",
        "no",
    )


_kernel_enabled: bool = _env_default()


def enumeration_kernel_enabled() -> bool:
    """Whether ``PathEngine.ENUMERATION`` routes through this kernel."""
    return _kernel_enabled


def set_enumeration_kernel(enabled: bool) -> bool:
    """Toggle the kernel (e.g. to A/B against the reference DFS).

    Returns the previous setting. The initial value comes from the
    ``REPRO_ENUM_KERNEL`` environment variable (default on), which is
    also how the setting reaches spawn-style pool workers; fork-style
    workers inherit the module flag directly.
    """
    global _kernel_enabled
    previous = _kernel_enabled
    _kernel_enabled = bool(enabled)
    return previous


@contextmanager
def use_enumeration_kernel(enabled: bool) -> Iterator[None]:
    """Scoped :func:`set_enumeration_kernel` for tests and benches."""
    previous = set_enumeration_kernel(enabled)
    try:
        yield
    finally:
        set_enumeration_kernel(previous)


def _flush_counters(calls: int, frontier: int, pruned: int, cutoffs: int) -> None:
    from repro.obs import get_registry

    reg = get_registry()
    reg.counter("routing.enum_kernel_calls").inc(calls)
    if frontier:
        reg.counter("routing.enum_frontier_rows").inc(frontier)
    if pruned:
        reg.counter("routing.enum_pruned_rows").inc(pruned)
    if cutoffs:
        reg.counter("routing.enum_bound_cutoffs").inc(cutoffs)


def _validate(
    topology: Topology, source: int, destination: int, max_hops: Optional[int]
) -> int:
    """Mirror the reference iterator's validation; return the hop limit."""
    topology.node(source)
    topology.node(destination)
    if max_hops is not None and max_hops < 0:
        raise RoutingError(f"max_hops must be non-negative, got {max_hops}")
    return max_hops if max_hops is not None else topology.num_nodes - 1


class _ClassMap:
    """Per-call degree-class expansion tables.

    Wraps :func:`repro.routing.matrix._degree_classes` with an inverse
    node -> (class, row) map so a frontier's end nodes can be expanded
    class by class as dense ``(rows, d)`` lane-table gathers.
    """

    __slots__ = ("children", "lane_edges", "lane_within", "class_of", "row_of")

    def __init__(self, topology: Topology) -> None:
        indices, edge_ids, classes = _degree_classes(topology)
        n = topology.num_nodes
        self.class_of = np.full(n, -1, dtype=np.int64)
        self.row_of = np.zeros(n, dtype=np.int64)
        self.children: List[np.ndarray] = []
        self.lane_edges: List[np.ndarray] = []
        self.lane_within: List[np.ndarray] = []
        for ci, (nodes_d, lane_table) in enumerate(classes):
            self.class_of[nodes_d] = ci
            self.row_of[nodes_d] = np.arange(nodes_d.size)
            self.children.append(indices[lane_table])
            self.lane_edges.append(edge_ids[lane_table])
            self.lane_within.append(
                np.arange(lane_table.shape[1], dtype=np.int64)
            )

    def expand(
        self, ends: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """All (child, edge) continuations of the chunk's end nodes.

        Returns ``(row_idx, within, child, edge)`` flat arrays, one
        entry per incident lane of every row: ``row_idx`` indexes back
        into ``ends``, ``within`` is the adjacency-lane offset at the
        end node (the DFS ordering key for this hop).
        """
        cls = self.class_of[ends]
        parts_row: List[np.ndarray] = []
        parts_within: List[np.ndarray] = []
        parts_child: List[np.ndarray] = []
        parts_edge: List[np.ndarray] = []
        for ci in np.unique(cls):
            if ci < 0:  # isolated end node: nothing incident
                continue
            sel = np.flatnonzero(cls == ci)
            rows = self.row_of[ends[sel]]
            child = self.children[ci][rows]  # (S, d) dense gather
            edge = self.lane_edges[ci][rows]
            d = child.shape[1]
            parts_row.append(np.repeat(sel, d))
            parts_within.append(np.tile(self.lane_within[ci], sel.size))
            parts_child.append(child.ravel())
            parts_edge.append(edge.ravel())
        if not parts_row:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, empty, empty
        return (
            np.concatenate(parts_row),
            np.concatenate(parts_within),
            np.concatenate(parts_child),
            np.concatenate(parts_edge),
        )


def _seen_mask(visited: np.ndarray, row_idx: np.ndarray, child: np.ndarray):
    """Bit-test ``child`` against each row's visited bitset."""
    word = child >> 6
    bit = np.uint64(1) << (child & np.int64(63)).astype(np.uint64)
    return (visited[row_idx, word] & bit) != 0, word, bit


def _mark_visited(
    visited: np.ndarray, row_idx: np.ndarray, word: np.ndarray, bit: np.ndarray
) -> np.ndarray:
    """New bitset rows for the extended paths (parent rows + one bit)."""
    nv = visited[row_idx].copy()
    nv[np.arange(row_idx.size), word] |= bit
    return nv


def count_paths_kernel(
    topology: Topology,
    source: int,
    destination: int,
    max_hops: Optional[int] = None,
) -> int:
    """Hop-bounded simple-path count via frontier expansion.

    Exhaustive by construction — the expansion applies only the simple
    path (visited-bitset) and hop-budget constraints, exactly the two
    the reference DFS applies; no weights and no bound ever enter, so
    the count equals ``sum(1 for _ in iter_simple_paths_raw(...))``.
    """
    limit = _validate(topology, source, destination, max_hops)
    if source == destination:
        _flush_counters(1, 0, 0, 0)
        return 1
    if limit == 0:
        _flush_counters(1, 0, 0, 0)
        return 0

    n = topology.num_nodes
    words = (n + 63) // 64
    cmap = _ClassMap(topology)

    ends = np.array([source], dtype=np.int64)
    visited = np.zeros((1, words), dtype=np.uint64)
    visited[0, source >> 6] = np.uint64(1) << np.uint64(source & 63)

    count = 0
    frontier_rows = 0
    for depth in range(limit):  # rows currently hold `depth`-edge paths
        if ends.size == 0:
            break
        frontier_rows += int(ends.size)
        extend = depth + 1 < limit
        next_ends: List[np.ndarray] = []
        next_visited: List[np.ndarray] = []
        for lo in range(0, ends.size, _CHUNK_ROWS):
            chunk = slice(lo, min(lo + _CHUNK_ROWS, ends.size))
            e_chunk = ends[chunk]
            v_chunk = visited[chunk]
            row_idx, _, child, _ = cmap.expand(e_chunk)
            if row_idx.size == 0:
                continue
            seen, word, bit = _seen_mask(v_chunk, row_idx, child)
            fresh = ~seen
            hit = fresh & (child == destination)
            count += int(np.count_nonzero(hit))
            if not extend:
                continue
            grow = np.flatnonzero(fresh & ~hit)
            if grow.size == 0:
                continue
            next_ends.append(child[grow])
            next_visited.append(
                _mark_visited(v_chunk, row_idx[grow], word[grow], bit[grow])
            )
        if not extend or not next_ends:
            break
        ends = np.concatenate(next_ends)
        visited = np.concatenate(next_visited, axis=0)

    _flush_counters(1, frontier_rows, 0, 0)
    return count


def _bound_plane(
    topology: Topology,
    destination: int,
    limit: int,
    edge_weights: np.ndarray,
    bound_cache: Optional[Dict[int, np.ndarray]],
) -> np.ndarray:
    """``(H+1, n)`` remaining-resistance lower bounds from ``destination``.

    One backward layered DP per destination; ``bound_cache`` (keyed by
    destination node id) amortizes it across the source rows of a
    matrix build, where weights, hop budget and topology version are
    fixed for the whole call.
    """
    if bound_cache is not None:
        plane = bound_cache.get(destination)
        if plane is not None:
            return plane
    plane = hop_constrained_shortest(topology, destination, limit, edge_weights).dist
    if bound_cache is not None:
        bound_cache[destination] = plane
    return plane


def pruned_candidates(
    topology: Topology,
    source: int,
    destination: int,
    max_hops: Optional[int],
    edge_weights: np.ndarray,
    bound_cache: Optional[Dict[int, np.ndarray]] = None,
) -> List[Tuple[Tuple[int, ...], Tuple[int, ...]]]:
    """Complete hop-bounded paths that can influence the best route.

    Expands the frontier with the admissible lower-bound cut described
    in the module docstring and returns the surviving complete paths as
    raw ``(nodes, edges)`` tuples **in exact DFS order**, ready for the
    canonical sequential fold. Unreachable pairs return ``[]``;
    ``source == destination`` returns the trivial zero-hop path.
    """
    limit = _validate(topology, source, destination, max_hops)
    if source == destination:
        _flush_counters(1, 0, 0, 0)
        return [((source,), ())]
    if limit == 0:
        _flush_counters(1, 0, 0, 0)
        return []

    weights = np.asarray(edge_weights, dtype=float)
    plane = _bound_plane(topology, destination, limit, weights, bound_cache)
    opt = float(plane[limit, source])
    if not np.isfinite(opt):
        # The DP relaxes a superset of the simple paths: unreachable in
        # budget for walks means unreachable for the enumeration too.
        _flush_counters(1, 0, 0, 0)
        return []
    # Fixed, order-independent prune threshold: the DP optimum plus a
    # margin covering (a) every tolerance-tie update the canonical fold
    # can accept — at most (H+1) * _TIE_TOL above the true minimum —
    # and (b) summation-order rounding between the DP's scatter-min
    # sums and the fold's sequential sums (relative-epsilon term).
    threshold = (
        opt
        + (limit + 3) * _TIE_TOL
        + 64.0 * np.finfo(float).eps * (limit + 1) * abs(opt)
    )

    n = topology.num_nodes
    words = (n + 63) // 64
    cmap = _ClassMap(topology)

    ends = np.array([source], dtype=np.int64)
    visited = np.zeros((1, words), dtype=np.uint64)
    visited[0, source >> 6] = np.uint64(1) << np.uint64(source & 63)
    res = np.zeros(1, dtype=np.float64)
    lanes = np.empty((1, 0), dtype=np.int64)  # per-hop adjacency offsets
    nodes_m = np.array([[source]], dtype=np.int64)
    edges_m = np.empty((1, 0), dtype=np.int64)

    # Survivor batches per completion depth: (hops, nodes, edges, lanes).
    batches: List[Tuple[int, np.ndarray, np.ndarray, np.ndarray]] = []
    frontier_rows = 0
    pruned_rows = 0
    bound_cutoffs = 0

    for depth in range(limit):
        if ends.size == 0:
            break
        frontier_rows += int(ends.size)
        extend = depth + 1 < limit
        hops_left = limit - (depth + 1)
        lb = plane[hops_left]
        n_ends: List[np.ndarray] = []
        n_visited: List[np.ndarray] = []
        n_res: List[np.ndarray] = []
        n_lanes: List[np.ndarray] = []
        n_nodes: List[np.ndarray] = []
        n_edges: List[np.ndarray] = []
        for lo in range(0, ends.size, _CHUNK_ROWS):
            chunk = slice(lo, min(lo + _CHUNK_ROWS, ends.size))
            e_chunk = ends[chunk]
            v_chunk = visited[chunk]
            row_idx, within, child, edge = cmap.expand(e_chunk)
            if row_idx.size == 0:
                continue
            seen, word, bit = _seen_mask(v_chunk, row_idx, child)
            fresh = ~seen
            # Running resistance after this hop: one more term of the
            # same left fold the canonical pricing performs.
            child_res = res[chunk][row_idx] + weights[edge]

            hit = np.flatnonzero(fresh & (child == destination))
            if hit.size:
                keep = child_res[hit] <= threshold
                bound_cutoffs += int(hit.size - np.count_nonzero(keep))
                hit = hit[keep]
            if hit.size:
                rows = row_idx[hit]
                batches.append(
                    (
                        depth + 1,
                        np.concatenate(
                            [nodes_m[chunk][rows], child[hit, None]], axis=1
                        ),
                        np.concatenate(
                            [edges_m[chunk][rows], edge[hit, None]], axis=1
                        ),
                        np.concatenate(
                            [lanes[chunk][rows], within[hit, None]], axis=1
                        ),
                    )
                )
            if not extend:
                continue
            grow_mask = fresh & (child != destination)
            cut = grow_mask & (child_res + lb[child] > threshold)
            pruned_rows += int(np.count_nonzero(cut))
            grow = np.flatnonzero(grow_mask & ~cut)
            if grow.size == 0:
                continue
            rows = row_idx[grow]
            n_ends.append(child[grow])
            n_visited.append(_mark_visited(v_chunk, rows, word[grow], bit[grow]))
            n_res.append(child_res[grow])
            n_lanes.append(
                np.concatenate([lanes[chunk][rows], within[grow, None]], axis=1)
            )
            n_nodes.append(
                np.concatenate([nodes_m[chunk][rows], child[grow, None]], axis=1)
            )
            n_edges.append(
                np.concatenate([edges_m[chunk][rows], edge[grow, None]], axis=1)
            )
        if not extend or not n_ends:
            break
        ends = np.concatenate(n_ends)
        visited = np.concatenate(n_visited, axis=0)
        res = np.concatenate(n_res)
        lanes = np.concatenate(n_lanes, axis=0)
        nodes_m = np.concatenate(n_nodes, axis=0)
        edges_m = np.concatenate(n_edges, axis=0)

    _flush_counters(1, frontier_rows, pruned_rows, bound_cutoffs)
    if not batches:
        return []

    # Restore DFS order: lexicographic on the per-hop lane offsets,
    # -1-padded to the hop budget (padding never decides — see module
    # docstring).
    total = sum(b[3].shape[0] for b in batches)
    lane_pad = np.full((total, limit), -1, dtype=np.int64)
    raw: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = []
    row = 0
    for _, b_nodes, b_edges, b_lanes in batches:
        count = b_lanes.shape[0]
        lane_pad[row : row + count, : b_lanes.shape[1]] = b_lanes
        raw.extend(
            zip(
                (tuple(r) for r in b_nodes.tolist()),
                (tuple(r) for r in b_edges.tolist()),
            )
        )
        row += count
    order = np.lexsort(tuple(lane_pad[:, i] for i in range(limit - 1, -1, -1)))
    return [raw[i] for i in order]
