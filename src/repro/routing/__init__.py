"""Routing substrate: hop-bounded paths, shortest paths, response times."""

from __future__ import annotations

from repro.routing.engine import EngineStats, TrminCache, TrminEngine
from repro.routing.enumkernel import (
    count_paths_kernel,
    enumeration_kernel_enabled,
    set_enumeration_kernel,
    use_enumeration_kernel,
)
from repro.routing.kshortest import k_shortest_paths, path_cost
from repro.routing.paths import (
    count_paths,
    enumerate_paths,
    iter_simple_paths,
    iter_simple_paths_raw,
)
from repro.routing.reroute import MaintainedRoute, RerouteDecision, RouteMaintainer
from repro.routing.response_time import PathEngine, ResponseTimeModel, TrminEntry
from repro.routing.routes import Path, RouteChoice
from repro.routing.shortest import (
    HopConstrainedResult,
    all_sources_hop_constrained,
    hop_constrained_shortest,
    shortest_path,
)

__all__ = [
    "EngineStats",
    "HopConstrainedResult",
    "k_shortest_paths",
    "MaintainedRoute",
    "RerouteDecision",
    "RouteMaintainer",
    "path_cost",
    "Path",
    "PathEngine",
    "ResponseTimeModel",
    "RouteChoice",
    "TrminCache",
    "TrminEngine",
    "TrminEntry",
    "all_sources_hop_constrained",
    "count_paths",
    "count_paths_kernel",
    "enumerate_paths",
    "enumeration_kernel_enabled",
    "hop_constrained_shortest",
    "iter_simple_paths",
    "iter_simple_paths_raw",
    "set_enumeration_kernel",
    "shortest_path",
    "use_enumeration_kernel",
]
