"""Routing substrate: hop-bounded paths, shortest paths, response times."""

from __future__ import annotations

from repro.routing.kshortest import k_shortest_paths, path_cost
from repro.routing.paths import count_paths, enumerate_paths, iter_simple_paths
from repro.routing.reroute import MaintainedRoute, RerouteDecision, RouteMaintainer
from repro.routing.response_time import PathEngine, ResponseTimeModel, TrminEntry
from repro.routing.routes import Path, RouteChoice
from repro.routing.shortest import (
    HopConstrainedResult,
    all_sources_hop_constrained,
    hop_constrained_shortest,
    shortest_path,
)

__all__ = [
    "HopConstrainedResult",
    "k_shortest_paths",
    "MaintainedRoute",
    "RerouteDecision",
    "RouteMaintainer",
    "path_cost",
    "Path",
    "PathEngine",
    "ResponseTimeModel",
    "RouteChoice",
    "TrminEntry",
    "all_sources_hop_constrained",
    "count_paths",
    "enumerate_paths",
    "hop_constrained_shortest",
    "iter_simple_paths",
    "shortest_path",
]
