"""Runtime route maintenance for established offloads.

Placement picks one controllable route per offload; network state then
drifts. :class:`RouteMaintainer` watches the utilization of each active
route's links and, when any link crosses ``congestion_threshold``,
switches the flow to the best alternative among the k cheapest
hop-bounded paths computed at installation time (Yen's algorithm,
:mod:`repro.routing.kshortest`) — re-pricing the alternatives against
*current* link state. This implements the "controllable routes" upkeep
DUST needs between optimization rounds without re-solving placement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import RoutingError
from repro.routing.kshortest import k_shortest_paths, path_cost
from repro.routing.response_time import ResponseTimeModel
from repro.routing.routes import Path
from repro.topology.graph import Topology


@dataclass
class MaintainedRoute:
    """One flow under maintenance."""

    flow_id: str
    source: int
    destination: int
    active: Path
    alternatives: Tuple[Path, ...]
    switches: int = 0


@dataclass(frozen=True)
class RerouteDecision:
    """Outcome of one maintenance check for one flow."""

    flow_id: str
    rerouted: bool
    reason: str
    old_path: Path
    new_path: Path


class RouteMaintainer:
    """Tracks flows and swaps congested routes for alternatives."""

    def __init__(
        self,
        topology: Topology,
        response_model: Optional[ResponseTimeModel] = None,
        k_alternatives: int = 4,
        congestion_threshold: float = 0.9,
        improvement_factor: float = 1.05,
    ) -> None:
        """``improvement_factor``: only switch when the best healthy
        alternative is at least this much cheaper than staying (avoids
        flapping between near-equal routes)."""
        if k_alternatives < 1:
            raise RoutingError("k_alternatives must be >= 1")
        if not 0.0 < congestion_threshold <= 1.0:
            raise RoutingError("congestion_threshold must be in (0, 1]")
        if improvement_factor < 1.0:
            raise RoutingError("improvement_factor must be >= 1")
        self.topology = topology
        self.response_model = response_model or ResponseTimeModel()
        self.k_alternatives = k_alternatives
        self.congestion_threshold = congestion_threshold
        self.improvement_factor = improvement_factor
        self._flows: Dict[str, MaintainedRoute] = {}

    # -- registration -------------------------------------------------------------
    def register_flow(
        self,
        flow_id: str,
        source: int,
        destination: int,
        max_hops: Optional[int] = None,
    ) -> MaintainedRoute:
        """Install a flow: compute its k cheapest routes now and
        activate the best."""
        if flow_id in self._flows:
            raise RoutingError(f"flow {flow_id!r} already registered")
        weights = self.response_model.edge_weights(self.topology)
        paths = k_shortest_paths(
            self.topology, source, destination, weights,
            k=self.k_alternatives, max_hops=max_hops,
        )
        if not paths:
            raise RoutingError(
                f"no route between {source} and {destination} within budget"
            )
        route = MaintainedRoute(
            flow_id=flow_id,
            source=source,
            destination=destination,
            active=paths[0],
            alternatives=tuple(paths),
        )
        self._flows[flow_id] = route
        return route

    def withdraw_flow(self, flow_id: str) -> None:
        if flow_id not in self._flows:
            raise RoutingError(f"unknown flow {flow_id!r}")
        del self._flows[flow_id]

    def flow(self, flow_id: str) -> MaintainedRoute:
        try:
            return self._flows[flow_id]
        except KeyError:
            raise RoutingError(f"unknown flow {flow_id!r}") from None

    @property
    def flows(self) -> Tuple[str, ...]:
        return tuple(sorted(self._flows))

    # -- maintenance ----------------------------------------------------------------
    def _is_congested(self, path: Path) -> bool:
        return any(
            self.topology.link(e).utilization >= self.congestion_threshold
            for e in path.edges
        )

    def check(self) -> List[RerouteDecision]:
        """Evaluate every flow against current link state; reroute the
        congested ones. Returns decisions for flows that were checked
        because of congestion (healthy flows are skipped silently)."""
        decisions: List[RerouteDecision] = []
        weights = self.response_model.edge_weights(self.topology)
        for route in self._flows.values():
            if not self._is_congested(route.active):
                continue
            healthy = [
                p for p in route.alternatives
                if p.nodes != route.active.nodes and not self._is_congested(p)
            ]
            if not healthy:
                decisions.append(
                    RerouteDecision(
                        flow_id=route.flow_id,
                        rerouted=False,
                        reason="no healthy alternative",
                        old_path=route.active,
                        new_path=route.active,
                    )
                )
                continue
            current_cost = path_cost(route.active, weights)
            best = min(healthy, key=lambda p: path_cost(p, weights))
            best_cost = path_cost(best, weights)
            if best_cost * self.improvement_factor >= current_cost and not np.isinf(
                current_cost
            ):
                # Alternatives are no better; congestion is global.
                decisions.append(
                    RerouteDecision(
                        flow_id=route.flow_id,
                        rerouted=False,
                        reason="alternatives no cheaper",
                        old_path=route.active,
                        new_path=route.active,
                    )
                )
                continue
            old = route.active
            route.active = best
            route.switches += 1
            decisions.append(
                RerouteDecision(
                    flow_id=route.flow_id,
                    rerouted=True,
                    reason="congestion",
                    old_path=old,
                    new_path=best,
                )
            )
        return decisions
