"""All-sources hop-constrained DP over the CSR adjacency (the matrix
Trmin kernel).

One hop-layered Bellman–Ford relaxation carries a whole
``(num_nodes, num_sources)`` distance plane per layer instead of one
row per :func:`~repro.routing.shortest.hop_constrained_shortest` call.
A layer is a segmented min over each node's CSR lanes; rather than
``np.minimum.reduceat`` (whose generic segment loop profiles ~5×
slower here), the segments are realized as dense *degree-class* blocks:
CSR rows of equal degree ``d`` stack into a ``(count, d)`` lane table,
so one layer per class is a contiguous row-gather
``dist[nbr_table]`` (+ the lane weights) reshaped to
``(count, d, S)`` and min-reduced along the lane axis — pure
contiguous numpy kernels, no scatter, no per-segment loop. Fat-trees
have ≤ 2 distinct degrees, so a layer is ~2 fused gather+reduce calls
for *all* sources at once. The distance planes are kept
node-major (``(n, S)``) precisely so those gathers copy whole rows
(memcpy) instead of striding columns. The Python loop runs over
layers (≤ hop budget, early exit at convergence) and degree classes,
never over sources or edges.

Bit-identity with the per-source DP is by construction, not tolerance:
for every ``(source, node)`` cell a layer takes the IEEE minimum over
*exactly* the same operand set the per-source scatter formulation
produces (``prev[u] + w_e`` per incident lane, plus the carry
``prev[v]``), and a minimum over one operand set is
evaluation-order-independent for floats without NaNs (weights are
validated strictly positive). Distances accumulate as the same
left-fold along the same layer sequence, so ``best``/``hops`` match
:func:`hop_constrained_shortest` bit for bit — the property suite
asserts exact equality.

Predecessor planes are optional (``with_parents=True``): per layer the
kernel recovers one witness lane per improved cell (the last lane
achieving the new minimum, mirroring the per-source recovery's
later-writes-win), and :meth:`MatrixDPResult.path_to` replays the
per-source reconstruction walk over the stored planes. Witness
*choice* among ties may differ from the per-source engine's (lane
order differs from its candidate order), so materialized paths are
guaranteed optimal and price-consistent, not identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import RoutingError
from repro.routing.routes import Path
from repro.topology.graph import Topology

#: Soft cap on the per-layer gather temporary (elements of the
#: ``(lanes, block)`` plane); source blocks are sized to stay under it.
_GATHER_BUDGET = 8_000_000


@dataclass(frozen=True)
class MatrixDPResult:
    """All-sources result of the matrix DP.

    ``best[a, v]`` is the minimum hop-bounded path weight from
    ``sources[a]`` to ``v`` (``inf`` if unreachable in budget) and
    ``hops[a, v]`` the fewest hops achieving it (``-1`` unreachable).
    When parents were kept, ``layer_dist``/``parent_node``/
    ``parent_edge`` hold one node-major ``(n, S)`` plane per relaxation
    layer (truncated at convergence — later layers are identical), and
    :meth:`path_to` reconstructs optimal routes from them.
    """

    sources: Tuple[int, ...]
    max_hops: int
    best: np.ndarray
    hops: np.ndarray
    layer_dist: Optional[List[np.ndarray]] = None
    parent_node: Optional[List[np.ndarray]] = None
    parent_edge: Optional[List[np.ndarray]] = None

    def path_to(self, source_index: int, destination: int) -> Optional[Path]:
        """One optimal (weight-minimal, then hop-minimal) path from
        ``sources[source_index]`` to ``destination``; ``None`` when
        unreachable within the hop budget."""
        if self.layer_dist is None:
            raise RoutingError(
                "matrix DP ran without parents; pass with_parents=True "
                "to materialize paths"
            )
        a = source_index
        h = int(self.hops[a, destination])
        if h < 0:
            return None
        source = self.sources[a]
        nodes: List[int] = [destination]
        edges: List[int] = []
        v = destination
        while v != source or h > 0:
            if h > 0 and self.layer_dist[h][v, a] < self.layer_dist[h - 1][v, a]:
                u = int(self.parent_node[h][v, a])
                e = int(self.parent_edge[h][v, a])
                edges.append(e)
                nodes.append(u)
                v = u
                h -= 1
            else:
                h -= 1
                if h < 0:  # pragma: no cover - DP invariant guards this
                    raise RoutingError("path reconstruction walked past layer 0")
        nodes.reverse()
        edges.reverse()
        return Path(nodes=tuple(nodes), edges=tuple(edges))


def _validate(
    topology: Topology, max_hops: Optional[int], edge_weights: np.ndarray
) -> Tuple[np.ndarray, int]:
    """Shared input validation, byte-compatible with the per-source DP
    (same checks, same messages) so rejection behavior is identical."""
    m = topology.num_edges
    weights = np.asarray(edge_weights, dtype=float)
    if weights.shape != (m,):
        raise RoutingError(f"expected {m} edge weights, got shape {weights.shape}")
    if m and weights.min() <= 0:
        raise RoutingError("edge weights must be strictly positive")
    if max_hops is None:
        max_hops = max(topology.num_nodes - 1, 0)
    if max_hops < 0:
        raise RoutingError(f"max_hops must be non-negative, got {max_hops}")
    return weights, int(max_hops)


def _degree_classes(
    topology: Topology,
) -> Tuple[np.ndarray, np.ndarray, List[Tuple[np.ndarray, np.ndarray]]]:
    """CSR wiring regrouped into dense degree-class blocks.

    Returns ``(indices, edge_ids, classes)`` where each class entry is
    ``(nodes_d, lane_table)``: the node ids sharing degree ``d`` and
    their ``(len(nodes_d), d)`` table of CSR lane offsets. Zero-degree
    nodes form no class (their distance row can only hold the source's
    own 0.0)."""
    indptr, indices, edge_ids = topology.csr_structure()
    degrees = np.diff(indptr)
    classes: List[Tuple[np.ndarray, np.ndarray]] = []
    for d in np.unique(degrees):
        d = int(d)
        if d == 0:
            continue
        nodes_d = np.flatnonzero(degrees == d)
        lane_table = indptr[nodes_d][:, None] + np.arange(d)[None, :]
        classes.append((nodes_d, lane_table))
    return indices, edge_ids, classes


def matrix_hop_constrained(
    topology: Topology,
    sources: Sequence[int],
    max_hops: Optional[int],
    edge_weights: np.ndarray,
    with_parents: bool = False,
    source_block: Optional[int] = None,
) -> MatrixDPResult:
    """Relax all ``sources`` simultaneously over the cached CSR wiring.

    Without parents, sources are processed in blocks sized so the
    per-layer ``(lanes, block)`` gather stays within a fixed element
    budget (``source_block`` overrides); block boundaries cannot change
    any result — source columns are independent. With parents the whole
    source set runs as one block, since the reconstruction planes span
    all sources per layer anyway.
    """
    weights, H = _validate(topology, max_hops, edge_weights)
    n = topology.num_nodes
    src = [int(s) for s in sources]
    for s in src:
        topology.node(s)
    S = len(src)

    # Node-major working planes: dist[v, a] = best weight source a -> v.
    dist = np.full((n, S), np.inf)
    hops = np.full((n, S), -1, dtype=np.int64)
    if S:
        dist[src, np.arange(S)] = 0.0
        hops[src, np.arange(S)] = 0

    def _export(
        layer_dist: Optional[List[np.ndarray]],
        parent_node: Optional[List[np.ndarray]],
        parent_edge: Optional[List[np.ndarray]],
    ) -> MatrixDPResult:
        return MatrixDPResult(
            sources=tuple(src),
            max_hops=H,
            best=np.ascontiguousarray(dist.T),
            hops=np.ascontiguousarray(hops.T),
            layer_dist=layer_dist,
            parent_node=parent_node,
            parent_edge=parent_edge,
        )

    if topology.num_edges == 0 or H == 0 or S == 0:
        if with_parents:
            minus_one = np.full((n, S), -1, dtype=np.int64)
            return _export([dist.copy()], [minus_one], [minus_one.copy()])
        return _export(None, None, None)

    indices, edge_ids, classes = _degree_classes(topology)
    lanes = indices.size  # == 2 * num_edges (both directions)
    lane_w = weights[edge_ids]
    # Per-class gather tables: neighbor ids and lane weights, shaped
    # (count, d) to match the lane tables.
    gather = [
        (nodes_d, indices[lane_table], lane_w[lane_table], lane_table)
        for nodes_d, lane_table in classes
    ]

    if with_parents:
        col_blocks = [np.arange(S)]
    elif source_block is not None:
        step = int(source_block)
        col_blocks = [np.arange(i, min(i + step, S)) for i in range(0, S, step)]
    else:
        step = max(1, _GATHER_BUDGET // max(lanes, 1))
        col_blocks = [np.arange(i, min(i + step, S)) for i in range(0, S, step)]

    layer_dist: Optional[List[np.ndarray]] = None
    parent_node: Optional[List[np.ndarray]] = None
    parent_edge: Optional[List[np.ndarray]] = None
    if with_parents:
        layer_dist = [dist.copy()]
        parent_node = [np.full((n, S), -1, dtype=np.int64)]
        parent_edge = [np.full((n, S), -1, dtype=np.int64)]

    for cols in col_blocks:
        prev = dist[:, cols] if len(col_blocks) > 1 else dist
        block_hops = hops[:, cols] if len(col_blocks) > 1 else hops
        for h in range(1, H + 1):
            new = prev.copy()
            improved_any = False
            for nodes_d, nbr_d, w_d, lane_table in gather:
                cd, d = nbr_d.shape
                # (cd, d, B): weight of reaching each class node through
                # each of its lanes; min over the lane axis is the
                # segmented CSR minimum, as one contiguous reduction.
                cand = prev[nbr_d.ravel()].reshape(cd, d, -1) + w_d[:, :, None]
                seg_min = cand.min(axis=1)
                cur = prev[nodes_d]
                upd = np.minimum(cur, seg_min)
                cls_improved = upd < cur
                if not cls_improved.any():
                    continue
                improved_any = True
                new[nodes_d] = upd
                block_hops[nodes_d] = np.where(
                    cls_improved, h, block_hops[nodes_d]
                )
                if with_parents:
                    # Witness per improved cell: the last lane achieving
                    # the new minimum (mirrors the per-source recovery's
                    # later-writes-win; any witness achieves the min).
                    if len(parent_node) <= h:
                        parent_node.append(np.full((n, S), -1, dtype=np.int64))
                        parent_edge.append(np.full((n, S), -1, dtype=np.int64))
                    pos = np.arange(1, d + 1, dtype=np.int64)
                    win = np.where(
                        cand <= upd[:, None, :], pos[None, :, None], 0
                    ).max(axis=1)
                    rows, bcols = np.nonzero(cls_improved)
                    lane = lane_table[rows, win[rows, bcols] - 1]
                    parent_node[h][nodes_d[rows], bcols] = indices[lane]
                    parent_edge[h][nodes_d[rows], bcols] = edge_ids[lane]
            if not improved_any:
                break
            if with_parents:
                layer_dist.append(new.copy())
            prev = new
        if len(col_blocks) > 1:
            dist[:, cols] = prev
            hops[:, cols] = block_hops
        else:
            dist = prev
            hops = block_hops

    return _export(layer_dist, parent_node, parent_edge)
