"""Exhaustive hop-bounded simple-path enumeration.

This is the *faithful* route engine: the paper's optimizer "accounts
for all feasible paths between a Busy node and an Offload-candidate
node" and its complexity analysis (Section IV-D) prices the ILP at
``~k^6`` in a k-port fat-tree precisely because of this enumeration.
The exponential growth of enumerated paths with ``max_hops`` is what
Figures 8 and 10 measure, so the engine deliberately materializes each
path.

For the polynomial alternative see :mod:`repro.routing.shortest`; for
the vectorized frontier-expansion form of this same enumeration (the
default behind counting and Trmin pricing) see
:mod:`repro.routing.enumkernel` — this module remains the readable
reference it is property-tested against.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.errors import RoutingError
from repro.routing.routes import Path
from repro.topology.graph import Topology


def iter_simple_paths_raw(
    topology: Topology,
    source: int,
    destination: int,
    max_hops: Optional[int] = None,
) -> Iterator[Tuple[Tuple[int, ...], Tuple[int, ...]]]:
    """Yield every simple path as a raw ``(nodes, edges)`` tuple pair.

    Identical traversal to :func:`iter_simple_paths` but skips the
    :class:`Path` dataclass construction (and its validation) per path —
    the matrix hot loop prices thousands of paths per pair and only
    materializes the winner.
    """
    topology.node(source)
    topology.node(destination)
    if max_hops is not None and max_hops < 0:
        raise RoutingError(f"max_hops must be non-negative, got {max_hops}")

    if source == destination:
        yield (source,), ()
        return
    if max_hops == 0:
        return

    limit = max_hops if max_hops is not None else topology.num_nodes - 1
    node_stack: List[int] = [source]
    edge_stack: List[int] = []
    on_path = [False] * topology.num_nodes
    on_path[source] = True
    # Per-depth iterator over incident (neighbor, edge) pairs.
    iter_stack: List[Iterator] = [iter(topology.incident(source))]

    while iter_stack:
        try:
            nbr, edge_id = next(iter_stack[-1])
        except StopIteration:
            iter_stack.pop()
            popped = node_stack.pop()
            on_path[popped] = False
            if edge_stack:
                edge_stack.pop()
            continue
        if on_path[nbr]:
            continue
        if nbr == destination:
            yield tuple(node_stack) + (destination,), tuple(edge_stack) + (edge_id,)
            continue
        if len(edge_stack) + 1 >= limit:
            continue  # extending through nbr could never reach in budget
        node_stack.append(nbr)
        edge_stack.append(edge_id)
        on_path[nbr] = True
        iter_stack.append(iter(topology.incident(nbr)))


def iter_simple_paths(
    topology: Topology,
    source: int,
    destination: int,
    max_hops: Optional[int] = None,
) -> Iterator[Path]:
    """Yield every simple path from ``source`` to ``destination`` with at
    most ``max_hops`` edges (unbounded when ``None``).

    Iterative DFS with an explicit stack; paths are yielded in DFS
    order. ``source == destination`` yields the trivial zero-hop path.
    """
    for nodes, edges in iter_simple_paths_raw(topology, source, destination, max_hops):
        yield Path(nodes=nodes, edges=edges)


def enumerate_paths(
    topology: Topology,
    source: int,
    destination: int,
    max_hops: Optional[int] = None,
    limit: Optional[int] = None,
) -> List[Path]:
    """Materialize :func:`iter_simple_paths` (optionally capped at
    ``limit`` paths — a cap makes the faithful engine usable on
    topologies where full enumeration would exhaust memory).

    With a ``limit`` the raw iterator is consumed directly and paths
    are built with the trusted constructor (the DFS's on-path array
    already guarantees every invariant ``Path`` would re-check), since
    capped enumeration exists precisely for topologies where per-path
    overhead dominates. The cap keeps DFS-prefix semantics: the first
    ``limit`` paths in DFS order, identical to the uncapped prefix.
    """
    if limit is not None:
        out: List[Path] = []
        for nodes, edges in iter_simple_paths_raw(
            topology, source, destination, max_hops
        ):
            out.append(Path.trusted(nodes, edges))
            if len(out) >= limit:
                break
        return out
    return list(iter_simple_paths(topology, source, destination, max_hops))


def count_paths(
    topology: Topology,
    source: int,
    destination: int,
    max_hops: Optional[int] = None,
) -> int:
    """Number of hop-bounded simple paths (drives the complexity plots).

    Counting is exhaustive by definition: the frontier-expansion kernel
    (when enabled) applies only the simple-path and hop-budget
    constraints — never the pricing bound — and the reference fallback
    consumes the raw iterator without building a :class:`Path` per
    path.
    """
    from repro.routing import enumkernel

    if enumkernel.enumeration_kernel_enabled():
        return enumkernel.count_paths_kernel(topology, source, destination, max_hops)
    return sum(
        1 for _ in iter_simple_paths_raw(topology, source, destination, max_hops)
    )
