"""Response-time computation (Eqs. 1 and 2) and pairwise Trmin matrices.

``Tr_{i,j}(r) = sum_{e in r} D_i / Lu_e`` and
``Trmin_{i,j} = min_{r in p} Tr_{i,j}(r)`` over all hop-bounded paths.
Because ``D_i`` is a common factor, the minimization runs on the path
"resistance" ``sum_e 1/Lu_e``; the matrix builders return both the
scaled times and the hop counts of the chosen routes (the paper
tie-breaks equal response times by fewer hops).

Two engines are provided, selected by :class:`PathEngine`:

* ``ENUMERATION`` — faithful exhaustive hop-bounded enumeration
  (:mod:`repro.routing.paths`), the source of the paper's measured
  ILP-time blowup with max-hop (Figs. 8/10);
* ``DP`` — layered Bellman–Ford (:mod:`repro.routing.shortest`),
  polynomial and exactly equivalent in optimum value.

All pricing goes through two canonical primitives —
:func:`_best_enum_route` (batched ``np.add.reduceat`` pricing over the
raw path stream) and :func:`_dp_source_row` — shared with the parallel
and cached layers in :mod:`repro.routing.engine`. Summation order is
strictly sequential everywhere (Python accumulation below 8 edges,
``reduceat`` segments above), which is what makes serial, parallel and
incrementally-cached results bit-identical.

By default the ENUMERATION stream comes from the vectorized
frontier-expansion kernel (:mod:`repro.routing.enumkernel`), which
prunes provably non-influential paths with an admissible lower bound
and replays the DFS-ordered survivors through the same canonical fold
(:func:`_fold_raw_paths`); ``REPRO_ENUM_KERNEL=0`` or
:func:`repro.routing.enumkernel.set_enumeration_kernel` falls back to
the retained pure-Python reference DFS
(:func:`_best_enum_route_reference`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import RoutingError
from repro.routing import enumkernel
from repro.routing.paths import iter_simple_paths_raw
from repro.routing.routes import Path, RouteChoice
from repro.routing.shortest import hop_constrained_shortest
from repro.topology.graph import Topology
from repro.topology.links import BandwidthConvention

_TIE_TOL = 1e-12

#: Paths priced per ``reduceat`` call in the enumeration hot loop.
_PRICE_BATCH = 512

#: Below this many edges a plain Python accumulation beats the numpy
#: fancy-index round trip (list alloc + gather + reduction dispatch).
_NUMPY_SUM_MIN_EDGES = 8


def _path_resistance(path: "Path", edge_weights: np.ndarray) -> float:
    """Sum of per-edge weights (``1/Lu_e``) along ``path``.

    Sequential accumulation in both branches (the ``reduceat`` of a
    single segment is a strict left fold), so the result is bit-equal
    to the batched pricing in :func:`_best_enum_route`.
    """
    edges = path.edges
    n = len(edges)
    if n == 0:
        return 0.0
    if n < _NUMPY_SUM_MIN_EDGES:
        total = 0.0
        for e in edges:
            total += edge_weights[e]
        return float(total)
    idx = np.fromiter(edges, dtype=np.int64, count=n)
    return float(np.add.reduceat(edge_weights[idx], [0])[0])


def _fold_raw_paths(
    stream: Iterable[Tuple[Tuple[int, ...], Tuple[int, ...]]],
    edge_weights: np.ndarray,
) -> Tuple[float, int, Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]]]:
    """Canonical sequential fold over a DFS-ordered raw path stream.

    Returns ``(resistance, hops, (nodes, edges))`` — or
    ``(inf, -1, None)`` on an empty stream. Paths are priced in
    batches: the edge ids of up to ``_PRICE_BATCH`` paths are
    concatenated and summed with one fancy-index + ``np.add.reduceat``
    instead of one numpy round trip per path; only candidates within
    ``_TIE_TOL`` of the running minimum are then examined in DFS order,
    preserving the serial scan's resistance-then-fewer-hops tie-break
    exactly. Both the reference DFS stream and the enumeration kernel's
    pruned survivor stream terminate here, which is what makes the two
    engines bit-identical.
    """
    best_res = np.inf
    best_hops = -1
    best_raw: Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]] = None
    buf_edges: List[Tuple[int, ...]] = []
    buf_raw: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = []

    def _flush() -> None:
        nonlocal best_res, best_hops, best_raw
        if not buf_edges:
            return
        count = len(buf_edges)
        lens = np.fromiter(map(len, buf_edges), dtype=np.int64, count=count)
        flat = np.fromiter(
            (e for edges in buf_edges for e in edges),
            dtype=np.int64,
            count=int(lens.sum()),
        )
        starts = np.zeros(count, dtype=np.int64)
        np.cumsum(lens[:-1], out=starts[1:])
        res = np.add.reduceat(edge_weights[flat], starts)
        # Only paths at or below the running minimum (+ tie tolerance)
        # can change the outcome; visit those few in DFS order.
        cut = min(float(res.min()), best_res) + _TIE_TOL
        for idx in np.flatnonzero(res <= cut):
            r = float(res[idx])
            h = int(lens[idx])
            if r < best_res - _TIE_TOL or (
                abs(r - best_res) <= _TIE_TOL and h < best_hops
            ):
                best_res, best_hops, best_raw = r, h, buf_raw[idx]
        buf_edges.clear()
        buf_raw.clear()

    for nodes, edges in stream:
        if not edges:  # zero-hop path: source == destination
            return 0.0, 0, (nodes, edges)
        buf_edges.append(edges)
        buf_raw.append((nodes, edges))
        if len(buf_edges) >= _PRICE_BATCH:
            _flush()
    _flush()
    return best_res, best_hops, best_raw


def _best_enum_route_reference(
    topology: Topology,
    source: int,
    destination: int,
    max_hops: Optional[int],
    edge_weights: np.ndarray,
) -> Tuple[float, int, Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]]]:
    """Best hop-bounded route by exhaustive reference enumeration.

    The retained pure-Python DFS path: every hop-bounded simple path is
    generated and fed to the canonical fold. This is the ground truth
    the vectorized kernel is benchmarked and property-tested against.
    """
    return _fold_raw_paths(
        iter_simple_paths_raw(topology, source, destination, max_hops),
        edge_weights,
    )


def _best_enum_route(
    topology: Topology,
    source: int,
    destination: int,
    max_hops: Optional[int],
    edge_weights: np.ndarray,
    bound_cache: Optional[Dict[int, np.ndarray]] = None,
) -> Tuple[float, int, Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]]]:
    """Best hop-bounded route by exhaustive enumeration.

    Returns ``(resistance, hops, (nodes, edges))`` — or
    ``(inf, -1, None)`` when the destination is unreachable within the
    hop budget. Dispatches to the frontier-expansion kernel
    (:mod:`repro.routing.enumkernel`) when enabled — the kernel prunes
    provably non-influential paths and hands the DFS-ordered survivors
    to the same canonical fold, so the outcome is bit-identical to the
    reference DFS. ``bound_cache`` (keyed by destination) lets matrix
    builds reuse the kernel's backward bound DP across source rows.

    The kernel path requires strictly positive edge weights (the bound
    DP validates them); exotic non-positive weight vectors fall back to
    the reference automatically.
    """
    if enumkernel.enumeration_kernel_enabled() and (
        edge_weights.size == 0 or float(edge_weights.min()) > 0.0
    ):
        survivors = enumkernel.pruned_candidates(
            topology, source, destination, max_hops, edge_weights, bound_cache
        )
        return _fold_raw_paths(survivors, edge_weights)
    return _best_enum_route_reference(
        topology, source, destination, max_hops, edge_weights
    )


def _dp_source_row(
    topology: Topology,
    source: int,
    destinations: Sequence[int],
    max_hops: Optional[int],
    edge_weights: np.ndarray,
    with_paths: bool,
) -> Tuple[np.ndarray, np.ndarray, Dict[Tuple[int, int], Path]]:
    """One source's Trmin row via the layered DP, optionally with the
    optimal paths materialized."""
    result = hop_constrained_shortest(topology, source, max_hops, edge_weights)
    dest_arr = np.asarray(destinations, dtype=int)
    best = result.best
    row = best[dest_arr]
    bh = result.best_hops()
    row_hops = np.where(np.isfinite(row), bh[dest_arr], -1)
    paths: Dict[Tuple[int, int], Path] = {}
    if with_paths:
        for dst in destinations:
            if np.isfinite(best[int(dst)]):
                path = result.path_to(int(dst))
                if path is not None:
                    paths[(int(source), int(dst))] = path
    return row, row_hops, paths


class PathEngine(enum.Enum):
    """Route-search strategy for Trmin."""

    ENUMERATION = "enumeration"
    DP = "dp"


@dataclass(frozen=True)
class TrminEntry:
    """Best route between one (source, destination) pair."""

    resistance: float  # sum of 1/Lu_e along the chosen path (s/Mb)
    hops: int
    path: Optional[Path]  # None when paths were not materialized

    @property
    def reachable(self) -> bool:
        return np.isfinite(self.resistance)


@dataclass
class ResponseTimeModel:
    """Configuration bundle for Trmin computation.

    Attributes
    ----------
    convention:
        How ``Lu_e`` derives from link state (see
        :class:`~repro.topology.links.BandwidthConvention`).
    engine:
        :class:`PathEngine` used for the minimization.
    max_hops:
        Hop budget (``None`` = unbounded), the paper's ``max-hop``.
    """

    convention: BandwidthConvention = BandwidthConvention.AVAILABLE
    engine: PathEngine = PathEngine.ENUMERATION
    max_hops: Optional[int] = None

    def edge_weights(self, topology: Topology) -> np.ndarray:
        """Per-edge resistance ``1 / Lu_e``."""
        return 1.0 / topology.effective_bandwidths(self.convention)

    # -- single pair ------------------------------------------------------------
    def best_route(
        self, topology: Topology, source: int, destination: int
    ) -> Optional[RouteChoice]:
        """Optimal route for a unit data volume; ``None`` if unreachable.

        ``response_time_s`` in the returned choice is the *resistance*
        (i.e. response time of 1 Mb); scale by ``D_i`` for real volumes.
        """
        weights = self.edge_weights(topology)
        if self.engine is PathEngine.DP:
            result = hop_constrained_shortest(topology, source, self.max_hops, weights)
            path = result.path_to(destination)
            if path is None:
                return None
            return RouteChoice(
                path=path, response_time_s=_path_resistance(path, weights)
            )
        res, _, raw = _best_enum_route(
            topology, source, destination, self.max_hops, weights
        )
        if raw is None:
            return None
        return RouteChoice(
            path=Path(nodes=raw[0], edges=raw[1]), response_time_s=res
        )

    # -- pairwise matrices --------------------------------------------------------
    def resistance_matrix(
        self,
        topology: Topology,
        sources: Sequence[int],
        destinations: Sequence[int],
        with_paths: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray, Dict[Tuple[int, int], Path]]:
        """Pairwise minimum resistances.

        Returns ``(R, hops, paths)`` where ``R[a, b]`` is the minimum
        ``sum 1/Lu_e`` from ``sources[a]`` to ``destinations[b]``
        (``inf`` when unreachable within ``max_hops``), ``hops[a, b]``
        the chosen route's hop count (``-1`` unreachable), and
        ``paths`` maps (source, destination) node-id pairs to a
        materialized optimal :class:`Path` when ``with_paths``.

        For parallel and incrementally-cached variants of this exact
        computation see :class:`repro.routing.engine.TrminEngine`.
        """
        weights = self.edge_weights(topology)
        ns, nd = len(sources), len(destinations)
        R = np.full((ns, nd), np.inf)
        hops = np.full((ns, nd), -1, dtype=np.int64)
        paths: Dict[Tuple[int, int], Path] = {}

        if self.engine is PathEngine.DP:
            if not with_paths:
                # Fast path: all sources relaxed in one vectorized sweep.
                from repro.routing.shortest import all_sources_hop_constrained

                dest_arr = np.asarray(destinations, dtype=int)
                best_all, hops_all = all_sources_hop_constrained(
                    topology, [int(s) for s in sources], self.max_hops, weights
                )
                R[:, :] = best_all[:, dest_arr]
                hops[:, :] = np.where(
                    np.isfinite(R), hops_all[:, dest_arr], -1
                )
                return R, hops, paths
            for a, src in enumerate(sources):
                row, row_hops, row_paths = _dp_source_row(
                    topology, int(src), destinations, self.max_hops, weights, True
                )
                R[a, :] = row
                hops[a, :] = row_hops
                paths.update(row_paths)
            # Same-node pairs have zero resistance and hop count 0 already
            # handled by the DP (dist[0, source] = 0).
            return R, hops, paths

        # One backward bound-DP per distinct destination, shared across
        # all source rows (the kernel keys it by destination; weights
        # and hop budget are fixed for the whole call).
        bound_cache: Dict[int, np.ndarray] = {}
        for a, src in enumerate(sources):
            for b, dst in enumerate(destinations):
                res, nh, raw = _best_enum_route(
                    topology, int(src), int(dst), self.max_hops, weights,
                    bound_cache=bound_cache,
                )
                if raw is None:
                    continue
                R[a, b] = res
                hops[a, b] = nh
                if with_paths:
                    paths[(int(src), int(dst))] = Path(nodes=raw[0], edges=raw[1])
        return R, hops, paths

    def trmin_matrix(
        self,
        topology: Topology,
        sources: Sequence[int],
        destinations: Sequence[int],
        data_mb: Sequence[float],
        with_paths: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray, Dict[Tuple[int, int], Path]]:
        """Eq. 2 as a matrix: ``T[a, b] = D_a * R[a, b]`` seconds.

        ``data_mb[a]`` is the monitoring data volume ``D_i`` of
        ``sources[a]``.
        """
        data = validate_data_volumes(data_mb, len(sources))
        R, hops, paths = self.resistance_matrix(topology, sources, destinations, with_paths)
        return data[:, None] * R, hops, paths


def validate_data_volumes(data_mb: Sequence[float], num_sources: int) -> np.ndarray:
    """Shared Eq.-2 input validation: one non-negative ``D_i`` per source."""
    data = np.asarray(data_mb, dtype=float)
    if data.shape != (num_sources,):
        raise RoutingError(
            f"need one data volume per source: got {data.shape} for "
            f"{num_sources} sources"
        )
    if (data < 0).any():
        raise RoutingError("data volumes must be non-negative")
    return data
