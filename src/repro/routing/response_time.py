"""Response-time computation (Eqs. 1 and 2) and pairwise Trmin matrices.

``Tr_{i,j}(r) = sum_{e in r} D_i / Lu_e`` and
``Trmin_{i,j} = min_{r in p} Tr_{i,j}(r)`` over all hop-bounded paths.
Because ``D_i`` is a common factor, the minimization runs on the path
"resistance" ``sum_e 1/Lu_e``; the matrix builders return both the
scaled times and the hop counts of the chosen routes (the paper
tie-breaks equal response times by fewer hops).

Two engines are provided, selected by :class:`PathEngine`:

* ``ENUMERATION`` — faithful exhaustive hop-bounded enumeration
  (:mod:`repro.routing.paths`), the source of the paper's measured
  ILP-time blowup with max-hop (Figs. 8/10);
* ``DP`` — layered Bellman–Ford (:mod:`repro.routing.shortest`),
  polynomial and exactly equivalent in optimum value.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.errors import RoutingError
from repro.routing.paths import iter_simple_paths
from repro.routing.routes import Path, RouteChoice
from repro.routing.shortest import hop_constrained_shortest
from repro.topology.graph import Topology
from repro.topology.links import BandwidthConvention

_TIE_TOL = 1e-12


def _path_resistance(path: "Path", edge_weights: np.ndarray) -> float:
    """Sum of per-edge weights (``1/Lu_e``) along ``path``."""
    if not path.edges:
        return 0.0
    return float(edge_weights[list(path.edges)].sum())


class PathEngine(enum.Enum):
    """Route-search strategy for Trmin."""

    ENUMERATION = "enumeration"
    DP = "dp"


@dataclass(frozen=True)
class TrminEntry:
    """Best route between one (source, destination) pair."""

    resistance: float  # sum of 1/Lu_e along the chosen path (s/Mb)
    hops: int
    path: Optional[Path]  # None when paths were not materialized

    @property
    def reachable(self) -> bool:
        return np.isfinite(self.resistance)


@dataclass
class ResponseTimeModel:
    """Configuration bundle for Trmin computation.

    Attributes
    ----------
    convention:
        How ``Lu_e`` derives from link state (see
        :class:`~repro.topology.links.BandwidthConvention`).
    engine:
        :class:`PathEngine` used for the minimization.
    max_hops:
        Hop budget (``None`` = unbounded), the paper's ``max-hop``.
    """

    convention: BandwidthConvention = BandwidthConvention.AVAILABLE
    engine: PathEngine = PathEngine.ENUMERATION
    max_hops: Optional[int] = None

    def edge_weights(self, topology: Topology) -> np.ndarray:
        """Per-edge resistance ``1 / Lu_e``."""
        return 1.0 / topology.effective_bandwidths(self.convention)

    # -- single pair ------------------------------------------------------------
    def best_route(
        self, topology: Topology, source: int, destination: int
    ) -> Optional[RouteChoice]:
        """Optimal route for a unit data volume; ``None`` if unreachable.

        ``response_time_s`` in the returned choice is the *resistance*
        (i.e. response time of 1 Mb); scale by ``D_i`` for real volumes.
        """
        weights = self.edge_weights(topology)
        if self.engine is PathEngine.DP:
            result = hop_constrained_shortest(topology, source, self.max_hops, weights)
            path = result.path_to(destination)
            if path is None:
                return None
            return RouteChoice(
                path=path, response_time_s=_path_resistance(path, weights)
            )
        best_path: Optional[Path] = None
        best_res = np.inf
        best_hops = np.inf
        for path in iter_simple_paths(topology, source, destination, self.max_hops):
            res = _path_resistance(path, weights)
            if res < best_res - _TIE_TOL or (
                abs(res - best_res) <= _TIE_TOL and path.num_hops < best_hops
            ):
                best_path, best_res, best_hops = path, res, path.num_hops
        if best_path is None:
            return None
        return RouteChoice(path=best_path, response_time_s=best_res)

    # -- pairwise matrices --------------------------------------------------------
    def resistance_matrix(
        self,
        topology: Topology,
        sources: Sequence[int],
        destinations: Sequence[int],
        with_paths: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray, Dict[Tuple[int, int], Path]]:
        """Pairwise minimum resistances.

        Returns ``(R, hops, paths)`` where ``R[a, b]`` is the minimum
        ``sum 1/Lu_e`` from ``sources[a]`` to ``destinations[b]``
        (``inf`` when unreachable within ``max_hops``), ``hops[a, b]``
        the chosen route's hop count (``-1`` unreachable), and
        ``paths`` maps (source, destination) node-id pairs to a
        materialized optimal :class:`Path` when ``with_paths``.
        """
        weights = self.edge_weights(topology)
        ns, nd = len(sources), len(destinations)
        R = np.full((ns, nd), np.inf)
        hops = np.full((ns, nd), -1, dtype=np.int64)
        paths: Dict[Tuple[int, int], Path] = {}

        if self.engine is PathEngine.DP:
            dest_arr = np.asarray(destinations, dtype=int)
            if not with_paths:
                # Fast path: all sources relaxed in one vectorized sweep.
                from repro.routing.shortest import all_sources_hop_constrained

                best_all, hops_all = all_sources_hop_constrained(
                    topology, [int(s) for s in sources], self.max_hops, weights
                )
                R[:, :] = best_all[:, dest_arr]
                hops[:, :] = np.where(
                    np.isfinite(R), hops_all[:, dest_arr], -1
                )
                return R, hops, paths
            for a, src in enumerate(sources):
                result = hop_constrained_shortest(topology, src, self.max_hops, weights)
                best = result.best
                R[a, :] = best[dest_arr]
                bh = result.best_hops()
                hops[a, :] = np.where(np.isfinite(best[dest_arr]), bh[dest_arr], -1)
                for b, dst in enumerate(destinations):
                    if np.isfinite(R[a, b]):
                        path = result.path_to(int(dst))
                        if path is not None:
                            paths[(int(src), int(dst))] = path
            # Same-node pairs have zero resistance and hop count 0 already
            # handled by the DP (dist[0, source] = 0).
            return R, hops, paths

        for a, src in enumerate(sources):
            for b, dst in enumerate(destinations):
                if src == dst:
                    R[a, b] = 0.0
                    hops[a, b] = 0
                    if with_paths:
                        paths[(int(src), int(dst))] = Path(nodes=(int(src),), edges=())
                    continue
                best_path: Optional[Path] = None
                best_res = np.inf
                best_hops = np.inf
                for path in iter_simple_paths(topology, int(src), int(dst), self.max_hops):
                    res = _path_resistance(path, weights)
                    if res < best_res - _TIE_TOL or (
                        abs(res - best_res) <= _TIE_TOL and path.num_hops < best_hops
                    ):
                        best_path, best_res, best_hops = path, res, path.num_hops
                if best_path is not None:
                    R[a, b] = best_res
                    hops[a, b] = best_path.num_hops
                    if with_paths:
                        paths[(int(src), int(dst))] = best_path
        return R, hops, paths

    def trmin_matrix(
        self,
        topology: Topology,
        sources: Sequence[int],
        destinations: Sequence[int],
        data_mb: Sequence[float],
        with_paths: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray, Dict[Tuple[int, int], Path]]:
        """Eq. 2 as a matrix: ``T[a, b] = D_a * R[a, b]`` seconds.

        ``data_mb[a]`` is the monitoring data volume ``D_i`` of
        ``sources[a]``.
        """
        data = np.asarray(data_mb, dtype=float)
        if data.shape != (len(sources),):
            raise RoutingError(
                f"need one data volume per source: got {data.shape} for "
                f"{len(sources)} sources"
            )
        if (data < 0).any():
            raise RoutingError("data volumes must be non-negative")
        R, hops, paths = self.resistance_matrix(topology, sources, destinations, with_paths)
        return data[:, None] * R, hops, paths
