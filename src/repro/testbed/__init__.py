"""Hardware-testbed emulation (Aruba 8325 DUT + VxLAN workload)."""

from __future__ import annotations

from repro.testbed.aruba8325 import (
    ARUBA_8325_BASE_CPU_PCT,
    ARUBA_8325_BASE_MEMORY_MB,
    aruba_8325_profile,
    build_dut,
    dpu_profile,
    offload_server_profile,
)
from repro.testbed.qos_run import (
    CongestionResult,
    CongestionSample,
    run_congestion_experiment,
)
from repro.testbed.monitoring_run import (
    MonitoringRunResult,
    OffloadComparison,
    compare_local_vs_offloaded,
    run_monitoring,
)
from repro.testbed.vxlan import (
    REFERENCE_INTENSITY,
    REFERENCE_LINE_RATE_FRACTION,
    VxlanWorkload,
)

__all__ = [
    "ARUBA_8325_BASE_CPU_PCT",
    "ARUBA_8325_BASE_MEMORY_MB",
    "CongestionResult",
    "CongestionSample",
    "MonitoringRunResult",
    "run_congestion_experiment",
    "OffloadComparison",
    "REFERENCE_INTENSITY",
    "REFERENCE_LINE_RATE_FRACTION",
    "VxlanWorkload",
    "aruba_8325_profile",
    "build_dut",
    "compare_local_vs_offloaded",
    "dpu_profile",
    "offload_server_profile",
    "run_monitoring",
]
