"""VxLAN overlay workload for the testbed emulation.

The paper stresses the DUT with "20% line-rate VxLAN overlay traffic in
a data-center topology". What the monitoring module actually *sees* of
that traffic is DB churn: tunnel state changes, route updates and
counter refreshes. :class:`VxlanWorkload` converts a line-rate fraction
into an update-rate intensity (reference intensity 1.0 ≡ 20% line rate,
the calibration point) with the burst behaviour responsible for
Fig. 1's CPU spikes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import TelemetryError
from repro.telemetry.device import NetworkDevice
from repro.telemetry.workload import BurstModel, DeviceWorkloadDriver, UpdateRateProfile

#: Line-rate fraction at which the update-rate profile was calibrated.
REFERENCE_LINE_RATE_FRACTION = 0.20

#: Intensity multiplier applied at the reference point so the Fig. 6
#: *local* operating point lands at ≈31% device CPU (see DESIGN.md's
#: calibration notes).
REFERENCE_INTENSITY = 1.3


@dataclass
class VxlanWorkload:
    """A VxLAN overlay traffic description.

    Attributes
    ----------
    line_rate_fraction:
        Offered load as a fraction of line rate (paper: 0.20).
    bursty:
        Enable the burst model (tunnel churn storms, BUM floods).
    seed:
        RNG seed for the driver.
    """

    line_rate_fraction: float = REFERENCE_LINE_RATE_FRACTION
    bursty: bool = True
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.line_rate_fraction <= 1.0:
            raise TelemetryError(
                f"line-rate fraction must be in [0, 1], got {self.line_rate_fraction}"
            )

    @property
    def intensity(self) -> float:
        """Update-rate intensity: linear in offered load, anchored so
        the reference fraction maps to the calibrated intensity."""
        return REFERENCE_INTENSITY * self.line_rate_fraction / REFERENCE_LINE_RATE_FRACTION

    def driver_for(self, device: NetworkDevice) -> DeviceWorkloadDriver:
        """A workload driver applying this traffic to ``device``."""
        return DeviceWorkloadDriver(
            device,
            profile=UpdateRateProfile(),
            intensity=self.intensity,
            bursts=BurstModel() if self.bursty else None,
            seed=self.seed,
        )
