"""QoS guarantee harness — Section III-C's congestion claim, measured.

The paper: *"Monitoring data offloaded to a remote node is assigned the
lowest priority value … the monitoring data [can] be safely discarded
in the event of network congestion or overload. Consequently, remote
nodes participating in the offloading process are not expected to
experience any traffic loss."*

:func:`run_congestion_experiment` drives the emulated DUT in offloaded
mode, carries its telemetry shipments across an egress link shared with
production traffic under a strict-priority scheduler, and records, per
interval, exactly which class lost data. The invariant to check:
production loss stays zero whenever the link can carry the production
offer alone, no matter how much monitoring data is offered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.postoffload import QoSClass, StrictPriorityQueue
from repro.errors import TelemetryError
from repro.telemetry.device import NetworkDevice
from repro.testbed.aruba8325 import build_dut, offload_server_profile
from repro.testbed.vxlan import VxlanWorkload


@dataclass(frozen=True)
class CongestionSample:
    """One egress interval under strict priority."""

    timestamp: float
    offered_production_mb: float
    offered_monitoring_mb: float
    delivered_monitoring_mb: float
    dropped_monitoring_mb: float
    dropped_production_mb: float


@dataclass(frozen=True)
class CongestionResult:
    """Aggregate outcome of one congestion run."""

    samples: Tuple[CongestionSample, ...]

    @property
    def total_production_loss_mb(self) -> float:
        return float(sum(s.dropped_production_mb for s in self.samples))

    @property
    def total_monitoring_dropped_mb(self) -> float:
        return float(sum(s.dropped_monitoring_mb for s in self.samples))

    @property
    def monitoring_delivery_ratio(self) -> float:
        """Fraction of offered monitoring data that survived."""
        offered = sum(s.offered_monitoring_mb for s in self.samples)
        if offered <= 0:
            return 1.0
        delivered = sum(s.delivered_monitoring_mb for s in self.samples)
        return float(delivered / offered)

    @property
    def congested_intervals(self) -> int:
        return sum(1 for s in self.samples if s.dropped_monitoring_mb > 0)


def run_congestion_experiment(
    intervals: int = 60,
    interval_s: float = 60.0,
    egress_capacity_mbps: float = 100.0,
    production_load_fraction: float = 0.85,
    production_burst_fraction: float = 0.10,
    seed: int = 0,
) -> CongestionResult:
    """Offloaded DUT whose shipments share a congested egress.

    ``production_load_fraction`` of the egress is consumed by
    production traffic on average, with occasional bursts to
    ``(fraction + burst)``; monitoring shipments get whatever is left,
    strictly last.
    """
    if intervals < 1:
        raise TelemetryError("intervals must be >= 1")
    if egress_capacity_mbps <= 0:
        raise TelemetryError("egress capacity must be positive")
    if not 0.0 <= production_load_fraction <= 1.0:
        raise TelemetryError("production load fraction must be in [0, 1]")

    rng = np.random.default_rng(seed)
    dut = build_dut()
    remote = NetworkDevice(offload_server_profile())
    for name in list(dut.local_agents):
        remote.host_remote_agent(dut.offload_agent(name), dut.profile.name)
    driver = VxlanWorkload(seed=seed).driver_for(dut)

    capacity_mb_per_interval = egress_capacity_mbps * interval_s
    samples: List[CongestionSample] = []
    now = 0.0
    for _ in range(intervals):
        driver.advance(interval_s)
        now += interval_s
        dut.step(now, interval_s)
        shipments = dut.drain_outbox()
        monitoring_mb = float(sum(s.data_mb for s in shipments))
        burst = production_burst_fraction if rng.random() < 0.2 else 0.0
        production_mb = capacity_mb_per_interval * min(
            1.0, production_load_fraction + burst
        )
        outcome = StrictPriorityQueue(capacity_mb_per_interval).transmit(
            {
                QoSClass.PRODUCTION: production_mb,
                QoSClass.MONITORING_OFFLOAD: monitoring_mb,
            }
        )
        # Only delivered telemetry reaches the remote analytics.
        delivered_fraction = (
            outcome.delivered(QoSClass.MONITORING_OFFLOAD) / monitoring_mb
            if monitoring_mb > 0
            else 1.0
        )
        for shipment in shipments:
            shipment.updates = int(shipment.updates * delivered_fraction)
            shipment.data_mb *= delivered_fraction
            remote.deliver(shipment)
        remote.step(now, interval_s)
        samples.append(
            CongestionSample(
                timestamp=now,
                offered_production_mb=production_mb,
                offered_monitoring_mb=monitoring_mb,
                delivered_monitoring_mb=outcome.delivered(QoSClass.MONITORING_OFFLOAD),
                dropped_monitoring_mb=outcome.dropped(QoSClass.MONITORING_OFFLOAD),
                dropped_production_mb=outcome.dropped(QoSClass.PRODUCTION),
            )
        )
    return CongestionResult(samples=tuple(samples))
