"""Testbed measurement harness for Figures 1 and 6.

Runs the emulated DUT under VxLAN load in two modes:

* **local** — all 10 agents execute on the switch (Fig. 1's time
  series; Fig. 6's "local monitoring" bars);
* **offloaded** — DUST has moved every agent to a remote server,
  leaving export stubs (Fig. 6's "DUST" bars).

Returns per-interval samples plus the summary statistics the paper
quotes: average module CPU, peak module CPU, average device CPU,
average memory, and the monitoring memory footprint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import TelemetryError
from repro.telemetry.device import IntervalSample, NetworkDevice
from repro.testbed.aruba8325 import build_dut, offload_server_profile
from repro.testbed.vxlan import VxlanWorkload


@dataclass(frozen=True)
class MonitoringRunResult:
    """Outcome of one monitoring run on the emulated testbed."""

    mode: str  # "local" or "offloaded"
    samples: Tuple[IntervalSample, ...]
    remote_samples: Tuple[IntervalSample, ...]  # empty for local mode

    # -- summary statistics ----------------------------------------------------
    @property
    def module_cpu_pct(self) -> np.ndarray:
        return np.array([s.monitoring_cpu_pct for s in self.samples])

    @property
    def device_cpu_pct(self) -> np.ndarray:
        return np.array([s.device_cpu_pct for s in self.samples])

    @property
    def memory_pct(self) -> np.ndarray:
        return np.array([s.memory_pct for s in self.samples])

    @property
    def avg_module_cpu_pct(self) -> float:
        return float(self.module_cpu_pct.mean())

    @property
    def peak_module_cpu_pct(self) -> float:
        return float(self.module_cpu_pct.max())

    @property
    def avg_device_cpu_pct(self) -> float:
        return float(self.device_cpu_pct.mean())

    @property
    def avg_memory_pct(self) -> float:
        return float(self.memory_pct.mean())

    @property
    def monitoring_memory_mb(self) -> float:
        return float(self.samples[-1].monitoring_memory_mb) if self.samples else 0.0


def run_monitoring(
    mode: str = "local",
    intervals: int = 60,
    interval_s: float = 60.0,
    workload: Optional[VxlanWorkload] = None,
    seed: Optional[int] = 42,
) -> MonitoringRunResult:
    """Run the emulated DUT for ``intervals`` collection intervals.

    ``mode="offloaded"`` installs a remote offload server and moves all
    10 agents there before the run, per DUST's placement outcome on the
    testbed.
    """
    if mode not in ("local", "offloaded"):
        raise TelemetryError(f"mode must be 'local' or 'offloaded', got {mode!r}")
    if intervals < 1:
        raise TelemetryError(f"intervals must be >= 1, got {intervals}")
    workload = workload or VxlanWorkload(seed=seed)
    dut = build_dut()
    driver = workload.driver_for(dut)

    remote: Optional[NetworkDevice] = None
    if mode == "offloaded":
        remote = NetworkDevice(offload_server_profile())
        for name in list(dut.local_agents):
            spec = dut.offload_agent(name)
            remote.host_remote_agent(spec, dut.profile.name)

    samples: List[IntervalSample] = []
    remote_samples: List[IntervalSample] = []
    now = 0.0
    for _ in range(intervals):
        driver.advance(interval_s)
        now += interval_s
        samples.append(dut.step(now, interval_s))
        if remote is not None:
            for shipment in dut.drain_outbox():
                remote.deliver(shipment)
            remote_samples.append(remote.step(now, interval_s))

    return MonitoringRunResult(
        mode=mode,
        samples=tuple(samples),
        remote_samples=tuple(remote_samples),
    )


@dataclass(frozen=True)
class OffloadComparison:
    """Fig. 6 side-by-side: local vs DUST-offloaded operating points."""

    local: MonitoringRunResult
    offloaded: MonitoringRunResult

    @property
    def cpu_reduction_pct(self) -> float:
        """Relative device-CPU saving (paper: ≈52%, 31% → 15%)."""
        return 100.0 * (
            1.0 - self.offloaded.avg_device_cpu_pct / self.local.avg_device_cpu_pct
        )

    @property
    def memory_reduction_pct(self) -> float:
        """Relative memory saving (paper: ≈12%, 70% → 62%)."""
        return 100.0 * (
            1.0 - self.offloaded.avg_memory_pct / self.local.avg_memory_pct
        )


def compare_local_vs_offloaded(
    intervals: int = 60,
    interval_s: float = 60.0,
    seed: int = 42,
) -> OffloadComparison:
    """Run both modes under the same workload seed and compare."""
    local = run_monitoring("local", intervals, interval_s, VxlanWorkload(seed=seed))
    offloaded = run_monitoring(
        "offloaded", intervals, interval_s, VxlanWorkload(seed=seed)
    )
    return OffloadComparison(local=local, offloaded=offloaded)
