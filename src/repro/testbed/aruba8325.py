"""Device profiles for the paper's hardware testbed.

The DUT is an HPE Aruba 8325 switch — "8 CPU cores, 16 GB RAM, and
64 GB SSD disk" — running a database-driven NOS with the 10 monitor
agents. Offload destinations in the testbed topology (Fig. 5) are
servers/DPUs with more headroom. The base CPU/memory constants are
calibrated against Fig. 6's *local monitoring* operating point: ≈31%
device CPU and ≈70% memory with the full agent set under reference
VxLAN load.
"""

from __future__ import annotations

from repro.telemetry.agents import paper_agent_specs
from repro.telemetry.device import DeviceProfile, NetworkDevice

#: Device-level CPU% consumed by switching/bridging/NOS duties alone.
ARUBA_8325_BASE_CPU_PCT = 15.0
#: Resident NOS memory (MB): 70% of 16 GiB minus the ≈1.2 GiB agents.
ARUBA_8325_BASE_MEMORY_MB = 10240.0


def aruba_8325_profile(name: str = "aruba-8325") -> DeviceProfile:
    """The paper's DUT hardware profile."""
    return DeviceProfile(
        name=name,
        cores=8,
        memory_gb=16.0,
        base_cpu_pct=ARUBA_8325_BASE_CPU_PCT,
        base_memory_mb=ARUBA_8325_BASE_MEMORY_MB,
    )


def offload_server_profile(name: str = "offload-server") -> DeviceProfile:
    """A representative offload destination (DPU-equipped server)."""
    return DeviceProfile(
        name=name,
        cores=32,
        memory_gb=64.0,
        base_cpu_pct=5.0,
        base_memory_mb=4096.0,
    )


def dpu_profile(name: str = "dpu") -> DeviceProfile:
    """A SmartNIC DPU profile — fewer cores, dedicated to services."""
    return DeviceProfile(
        name=name,
        cores=16,
        memory_gb=32.0,
        base_cpu_pct=8.0,
        base_memory_mb=2048.0,
    )


def build_dut(name: str = "aruba-8325") -> NetworkDevice:
    """An 8325 with the paper's full agent set installed locally."""
    device = NetworkDevice(aruba_8325_profile(name))
    for spec in paper_agent_specs():
        device.install_agent(spec)
    return device
