"""Unified observability layer: metrics registry, tracer, profiling.

``repro.obs`` is the one place every layer of this codebase reports
into. It is stdlib-only (importable from anywhere without cycles) and
free when idle: with tracing disabled a :func:`trace_span` call is a
single branch returning a shared no-op object, and the registry is
untouched by hot loops (they keep local counters and mirror totals in
at call granularity).

Three cooperating pieces:

* **Metrics registry** (:mod:`repro.obs.registry`) — process-wide named
  counters / gauges / histograms with snapshot, delta-collect and merge
  semantics so totals survive the process-pool fan-out in
  :func:`repro.parallel.map_with_pool_retry`. The full metric catalog
  is declared in :mod:`repro.obs.catalog` and documented (and
  CI-checked) in ``docs/observability.md``.
* **Tracer** (:mod:`repro.obs.tracer`) — span-based timeline recorder
  with Chrome-trace and JSON-lines exporters; one placement round
  (Trmin pricing → LP solve → message exchange → convergence) renders
  as a single nested timeline.
* **Profiling hooks** (:mod:`repro.obs.profiling`) — opt-in
  ``perf_counter_ns`` block sampling, per-span ``tracemalloc``
  allocation deltas, and :func:`observability_artifact`, the bundle
  embedded in ``--json`` artifacts.

Examples
--------
Count an event and read it back:

>>> from repro.obs import get_registry
>>> get_registry().counter("example.hits", owner="docs").inc()
>>> get_registry().value("example.hits") >= 1
True

Trace a phase (tracing is off by default; enable explicitly, with
``REPRO_TRACE=1``, or via the experiment CLI's ``--trace``):

>>> from repro.obs import get_tracer, trace_span
>>> get_tracer().enable()
>>> with trace_span("example.phase", size=3):
...     pass
>>> get_tracer().records()[-1].name
'example.phase'
>>> get_tracer().disable(); get_tracer().clear()
"""

from repro.obs.adapters import (
    CLIENT_MIRROR,
    ENGINE_STATS_MIRROR,
    FAULTY_NETWORK_MIRROR,
    MANAGER_COUNTERS_MIRROR,
    NETWORK_MIRROR,
    mirror_counters,
)
from repro.obs.catalog import (
    CATALOG,
    COUNTER_ALIASES,
    canonical_counter_name,
    normalize_counter_keys,
    register_catalog,
)
from repro.obs.profiling import (
    disable_profiling,
    enable_profiling,
    observability_artifact,
    profile_snapshot,
    time_block,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    get_registry,
)
from repro.obs.tracer import (
    SpanRecord,
    Tracer,
    get_tracer,
    trace_event,
    trace_span,
)

__all__ = [
    # registry
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "get_registry",
    # tracer
    "SpanRecord",
    "Tracer",
    "get_tracer",
    "trace_span",
    "trace_event",
    # profiling
    "enable_profiling",
    "disable_profiling",
    "time_block",
    "profile_snapshot",
    "observability_artifact",
    # catalog
    "CATALOG",
    "COUNTER_ALIASES",
    "canonical_counter_name",
    "normalize_counter_keys",
    "register_catalog",
    # adapters
    "mirror_counters",
    "ENGINE_STATS_MIRROR",
    "MANAGER_COUNTERS_MIRROR",
    "CLIENT_MIRROR",
    "NETWORK_MIRROR",
    "FAULTY_NETWORK_MIRROR",
]

# The catalog exists (at zero) the moment the package is imported, so
# docs/registry cross-checks and artifact snapshots are complete even
# for code paths that never ran.
register_catalog()
