"""Cheap, opt-in profiling hooks riding on the tracer and registry.

Everything here is stdlib-only and off by default:

* :func:`enable_profiling` turns on ``tracemalloc`` and per-span
  allocation deltas (see :class:`~repro.obs.tracer.SpanRecord`);
* :func:`time_block` samples a code block with ``perf_counter_ns`` into
  a named histogram — the granular timing hook bench scripts use;
* :func:`profile_snapshot` captures point-in-time process numbers
  (tracemalloc current/peak, ``ru_maxrss``);
* :func:`observability_artifact` bundles the metrics snapshot, the
  tracer summary and the profile snapshot into one JSON-safe dict —
  the ``"observability"`` section the bench scripts and the
  ``resilience`` experiment embed in their ``--json`` artifacts.

Examples
--------
>>> from repro.obs import time_block, get_registry
>>> with time_block("docs.timed_block"):
...     _ = sum(range(100))
>>> get_registry().get("docs.timed_block").count >= 1
True
"""

from __future__ import annotations

import contextlib
import time
from typing import Dict, Iterator, Optional

from repro.obs.registry import get_registry
from repro.obs.tracer import get_tracer

__all__ = [
    "enable_profiling",
    "disable_profiling",
    "time_block",
    "profile_snapshot",
    "observability_artifact",
]


def enable_profiling() -> None:
    """Start ``tracemalloc`` and record per-span allocation deltas.

    Idempotent. Costs real time (tracemalloc hooks every allocation) —
    this is the explicitly-opt-in deep mode, never a default.
    """
    get_tracer().enable(profile_allocations=True)


def disable_profiling() -> None:
    """Stop allocation profiling (tracing itself stays enabled)."""
    import tracemalloc

    tracer = get_tracer()
    tracer.profile_allocations = False
    if tracemalloc.is_tracing():
        tracemalloc.stop()


@contextlib.contextmanager
def time_block(metric_name: str, owner: str = "") -> Iterator[None]:
    """Time a block with ``perf_counter_ns`` into histogram
    ``metric_name`` (unit: seconds).

    Unlike :func:`~repro.obs.tracer.trace_span` this always records —
    it is the sampling hook for code that wants numbers even with the
    tracer off (bench loops, experiment phases).
    """
    histogram = get_registry().histogram(
        metric_name, unit="seconds", owner=owner or "repro.obs.profiling"
    )
    start = time.perf_counter_ns()
    try:
        yield
    finally:
        histogram.observe((time.perf_counter_ns() - start) / 1e9)


def profile_snapshot() -> Dict[str, Optional[float]]:
    """Point-in-time process profile (JSON-safe).

    Returns
    -------
    dict
        ``tracemalloc_current_kb`` / ``tracemalloc_peak_kb`` (``None``
        while tracemalloc is off), ``ru_maxrss_kb`` (peak RSS; ``None``
        on platforms without :mod:`resource`), and
        ``perf_counter_ns`` (the monotonic clock the spans use).
    """
    import tracemalloc

    current_kb = peak_kb = None
    if tracemalloc.is_tracing():
        current, peak = tracemalloc.get_traced_memory()
        current_kb, peak_kb = current / 1024.0, peak / 1024.0
    maxrss_kb: Optional[float] = None
    try:
        import resource

        maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports KiB, macOS bytes; normalize to KiB.
        maxrss_kb = maxrss / 1024.0 if maxrss > 1 << 30 else float(maxrss)
    except Exception:  # pragma: no cover - non-POSIX platforms
        pass
    return {
        "tracemalloc_current_kb": current_kb,
        "tracemalloc_peak_kb": peak_kb,
        "ru_maxrss_kb": maxrss_kb,
        "perf_counter_ns": float(time.perf_counter_ns()),
    }


def _json_safe(value: object) -> object:
    """Replace non-finite floats so ``json.dump`` stays strict-safe."""
    if isinstance(value, float) and (value != value or value in (float("inf"), float("-inf"))):
        return None
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


def observability_artifact() -> Dict[str, object]:
    """One JSON-safe bundle of everything the layer observed.

    Sections: ``metrics`` (registry snapshot), ``spans`` (tracer
    per-name summary — empty with tracing off) and ``profile``
    (:func:`profile_snapshot`). Experiments and bench scripts embed
    this under the ``"observability"`` key of their JSON artifacts.
    """
    return {
        "metrics": _json_safe(get_registry().snapshot()),
        "spans": _json_safe(get_tracer().summary()),
        "profile": _json_safe(profile_snapshot()),
    }
