"""Bridges between legacy per-object counters and the registry.

The hot layers keep their own cheap counter objects —
``EngineStats`` dataclass fields in the routing engine,
``ManagerCounters`` on the DUST-Manager, plain ``int`` attributes on
clients and simulated networks. Those stay: a plain attribute add in a
pivot loop beats a locked registry update. This module folds their
*cumulative* totals into the registry at sync points (end of a pricing
call, end of an optimization round, end of a chaos run) without double
counting, via per-object delta mirroring:

* :func:`mirror_counters` remembers, per live source object, the last
  total it saw for each attribute and increments the registry counter
  by the growth since then. Mirroring the same object twice is a no-op;
  a *new* object (fresh ``EngineStats`` after ``reset_stats``, the
  standby's promoted manager, the next chaos run's network) starts from
  zero and contributes only its own activity.

To stay import-cycle-free this module never imports the mirrored
layers; the attribute lists below are plain data, validated against the
real dataclasses by ``tests/obs/test_adapters.py``.
"""

from __future__ import annotations

import threading
import weakref
from typing import Dict, Mapping

from repro.obs.registry import get_registry

__all__ = [
    "mirror_counters",
    "ENGINE_STATS_MIRROR",
    "MANAGER_COUNTERS_MIRROR",
    "CLIENT_MIRROR",
    "NETWORK_MIRROR",
    "FAULTY_NETWORK_MIRROR",
]

#: EngineStats field -> catalog name.
ENGINE_STATS_MIRROR: Dict[str, str] = {
    "serial_computes": "trmin.serial_computes",
    "parallel_computes": "trmin.parallel_computes",
    "cache_hits": "trmin.cache_hits",
    "full_computes": "trmin.full_computes",
    "incremental_updates": "trmin.incremental_updates",
    "pairs_repriced": "trmin.pairs_repriced",
    "gate_fallbacks": "trmin.gate_fallbacks",
    "matrix_computes": "trmin.matrix_computes",
}

#: ManagerCounters field -> catalog name. The four transport/network
#: mirror fields (``retransmissions``, ``sends_gave_up``,
#: ``network_messages_dropped``, ``network_duplicates_delivered``) are
#: deliberately absent: their ground truth already reaches the registry
#: from ReliableSender and the network mirrors, and mirroring the copy
#: would double-count.
MANAGER_COUNTERS_MIRROR: Dict[str, str] = {
    field: f"manager.{field}"
    for field in (
        "acks_sent",
        "stats_received",
        "optimization_rounds",
        "infeasible_rounds",
        "heuristic_fallbacks",
        "offload_requests_sent",
        "offloads_established",
        "offloads_rejected",
        "keepalives_received",
        "destinations_failed",
        "replicas_installed",
        "workloads_returned",
        "reclaims_issued",
        "duplicates_ignored",
        "stale_stats_dropped",
        "stale_acks_ignored",
        "acks_reconfirmed",
        "probes_sent",
        "orphans_reclaimed",
        "destinations_quarantined",
        "sources_abandoned",
        "resync_rounds",
        "resync_recovered",
        "redirects_unwound",
        "snapshots_persisted",
        "rounds_frozen",
        "placements_reset",
    )
}

#: DUSTClient attribute -> catalog name (retransmissions excluded for
#: the same double-count reason: the client's ReliableSender reports
#: into ``transport.retransmissions`` directly).
CLIENT_MIRROR: Dict[str, str] = {
    "stats_sent": "client.stats_sent",
    "keepalives_sent": "client.keepalives_sent",
    "requests_rejected": "client.requests_rejected",
    "duplicates_ignored": "client.duplicates_ignored",
    "announce_give_ups": "client.announce_give_ups",
}

#: MessageNetwork attribute -> catalog name.
NETWORK_MIRROR: Dict[str, str] = {
    "messages_sent": "network.messages_sent",
    "messages_delivered": "network.messages_delivered",
    "messages_dropped": "network.messages_dropped",
}

#: FaultyNetwork extras (on top of NETWORK_MIRROR).
FAULTY_NETWORK_MIRROR: Dict[str, str] = dict(
    NETWORK_MIRROR,
    faults_dropped="network.faults_dropped",
    partition_dropped="network.partition_dropped",
    duplicates_injected="network.duplicates_injected",
    reordered="network.reordered",
)

_MIRROR_LOCK = threading.Lock()
# Keyed by id() rather than a WeakKeyDictionary: mirrored sources are
# often eq-comparing dataclasses (EngineStats, ManagerCounters), which
# are unhashable. A weakref finalizer prunes each entry so id reuse
# after garbage collection can never resurrect stale baselines.
_LAST_SEEN: Dict[int, Dict[str, float]] = {}


def _forget(source_id: int) -> None:
    with _MIRROR_LOCK:
        _LAST_SEEN.pop(source_id, None)


def mirror_counters(source: object, mapping: Mapping[str, str]) -> None:
    """Fold ``source``'s cumulative counter attributes into the registry.

    Parameters
    ----------
    source :
        Any object carrying cumulative numeric counter attributes
        (an ``EngineStats``, ``ManagerCounters``, client, network, …).
        Tracked weakly, so mirroring never extends object lifetimes.
    mapping :
        Attribute name -> registry counter name, e.g.
        :data:`ENGINE_STATS_MIRROR`.

    Notes
    -----
    Only the *growth* of each attribute since this object was last
    mirrored is added, which makes the call idempotent at a given state
    and correct across any number of short-lived source objects mapping
    onto the same metric. Missing attributes count as zero, so mappings
    stay forward-compatible.
    """
    registry = get_registry()
    with _MIRROR_LOCK:
        source_id = id(source)
        last = _LAST_SEEN.get(source_id)
        if last is None:
            last = {}
            _LAST_SEEN[source_id] = last
            try:
                weakref.finalize(source, _forget, source_id)
            except TypeError:  # not weakref-able; entry stays resident
                pass
        for attr, metric_name in mapping.items():
            current = float(getattr(source, attr, 0) or 0)
            grown = current - last.get(attr, 0.0)
            if grown > 0:
                registry.counter(metric_name).inc(grown)
                last[attr] = current
