"""The metric catalog: every registry metric, declared in one place.

Each entry is ``(kind, name, unit, owner, description)``. The catalog
is registered into the process-wide registry when :mod:`repro.obs` is
imported, so the full metric namespace exists — at zero — before any
instrumented code runs. ``docs/observability.md`` renders this catalog
as a table, and the CI docs job fails when the two drift apart in
either direction (documented-but-unregistered or
registered-but-undocumented).

Naming convention: ``<layer>.<event>`` with the layer prefixes

========== ==========================================================
prefix     owner layer
========== ==========================================================
trmin      route-pricing engine (:mod:`repro.routing.engine`)
routing    path-enumeration kernel (:mod:`repro.routing.enumkernel`)
lp         LP/ILP backends (:mod:`repro.lp`)
placement  Eq.-3 placement engine/session (:mod:`repro.core.placement`)
heuristic  Algorithm-1 vectorized kernel (:mod:`repro.core.heuristic`)
manager    DUST-Manager protocol loops (:mod:`repro.core.manager`)
client     DUST-Client endpoints (:mod:`repro.core.client`)
network    message fabric (:mod:`repro.simulation.network_sim`)
transport  reliable-delivery layer (:mod:`repro.core.messages`)
failover   snapshot/standby machinery (:mod:`repro.core.failover`)
chaos      chaos harness (:mod:`repro.simulation.chaos`)
soak       soak harness + degradation ladder (:mod:`repro.simulation.soak`)
dsolve     distributed placement solve (:mod:`repro.lp.distributed` +
           :mod:`repro.simulation.distributed`)
topology   CSR adjacency cache (:mod:`repro.topology.graph`)
parallel   worker pools + shared-memory arenas (:mod:`repro.parallel`)
========== ==========================================================

:data:`COUNTER_ALIASES` maps the legacy, pre-catalog key spellings that
reports and JSON artifacts used to emit (``retransmits``,
``msgs_dropped``, ``dupes_injected``, …) onto catalog names;
:func:`normalize_counter_keys` applies the mapping so every artifact
speaks one vocabulary.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from repro.obs.registry import MetricsRegistry, get_registry

__all__ = [
    "CATALOG",
    "COUNTER_ALIASES",
    "canonical_counter_name",
    "normalize_counter_keys",
    "register_catalog",
]

#: (kind, name, unit, owner, description) for every catalog metric.
CATALOG: List[Tuple[str, str, str, str, str]] = [
    # -- trmin: route-pricing engine ------------------------------------------------
    ("counter", "trmin.serial_computes", "count", "repro.routing.engine",
     "Matrix pricings executed on the serial path"),
    ("counter", "trmin.parallel_computes", "count", "repro.routing.engine",
     "Matrix pricings fanned out onto the worker pool"),
    ("counter", "trmin.cache_hits", "count", "repro.routing.engine",
     "Pricings answered from the versioned TrminCache unchanged"),
    ("counter", "trmin.full_computes", "count", "repro.routing.engine",
     "Cache misses that re-priced the full matrix"),
    ("counter", "trmin.incremental_updates", "count", "repro.routing.engine",
     "Cache entries repaired by incremental re-pricing"),
    ("counter", "trmin.pairs_repriced", "count", "repro.routing.engine",
     "Individual (source, destination) pairs re-priced incrementally"),
    ("counter", "trmin.gate_fallbacks", "count", "repro.routing.engine",
     "Incremental repairs abandoned by the dp cost gate"),
    ("counter", "trmin.matrix_computes", "count", "repro.routing.engine",
     "All-sources pricings answered by the matrix DP kernel"),
    ("histogram", "trmin.price_seconds", "seconds", "repro.routing.engine",
     "Wall time of one resistance_matrix call"),
    # -- routing: frontier-expansion enumeration kernel -----------------------------
    ("counter", "routing.enum_kernel_calls", "count", "repro.routing.enumkernel",
     "Frontier-expansion kernel invocations (count + pricing entry points)"),
    ("counter", "routing.enum_frontier_rows", "count", "repro.routing.enumkernel",
     "Partial-path rows expanded across all kernel depth layers"),
    ("counter", "routing.enum_pruned_rows", "count", "repro.routing.enumkernel",
     "Partial-path extensions dropped by the admissible lower bound"),
    ("counter", "routing.enum_bound_cutoffs", "count", "repro.routing.enumkernel",
     "Complete paths dropped by the pricing bound before the fold"),
    # -- lp: solver backends --------------------------------------------------------
    ("counter", "lp.transportation.solves", "count", "repro.lp.transportation",
     "Transportation-simplex solves"),
    ("counter", "lp.transportation.pivots", "count", "repro.lp.transportation",
     "MODI pivots across all transportation solves"),
    ("histogram", "lp.transportation.solve_seconds", "seconds",
     "repro.lp.transportation", "Wall time of one transportation solve"),
    ("counter", "lp.simplex.solves", "count", "repro.lp.simplex",
     "Two-phase simplex solves"),
    ("counter", "lp.simplex.iterations", "count", "repro.lp.simplex",
     "Simplex pivots across all solves"),
    ("histogram", "lp.simplex.solve_seconds", "seconds", "repro.lp.simplex",
     "Wall time of one simplex solve"),
    ("counter", "lp.scipy.solves", "count", "repro.lp.scipy_backend",
     "HiGHS solves dispatched through scipy"),
    ("histogram", "lp.scipy.solve_seconds", "seconds", "repro.lp.scipy_backend",
     "Wall time of one scipy/HiGHS solve"),
    ("counter", "lp.bnb.solves", "count", "repro.lp.branch_and_bound",
     "Branch-and-bound MILP solves"),
    ("counter", "lp.bnb.nodes", "count", "repro.lp.branch_and_bound",
     "Branch-and-bound tree nodes explored"),
    ("histogram", "lp.bnb.solve_seconds", "seconds", "repro.lp.branch_and_bound",
     "Wall time of one branch-and-bound solve"),
    # -- placement: Eq. 3 engine + warm-start session -------------------------------
    ("counter", "placement.solves", "count", "repro.core.placement",
     "PlacementEngine.solve calls"),
    ("counter", "placement.infeasible", "count", "repro.core.placement",
     "Placement solves that ended INFEASIBLE (Fig. 7's io events)"),
    ("counter", "placement.warm_attempts", "count", "repro.core.placement",
     "Session solves that offered a warm basis to the LP"),
    ("counter", "placement.warm_hits", "count", "repro.core.placement",
     "Session solves where the LP actually started from that basis"),
    ("histogram", "placement.trmin_seconds", "seconds", "repro.core.placement",
     "Route-pricing phase of one placement solve"),
    ("histogram", "placement.lp_seconds", "seconds", "repro.core.placement",
     "LP phase of one placement solve"),
    ("histogram", "placement.total_seconds", "seconds", "repro.core.placement",
     "End-to-end wall time of one placement solve"),
    # -- heuristic: Algorithm-1 vectorized kernel ------------------------------------
    ("histogram", "heuristic.kernel.batch_size", "busy-nodes",
     "repro.core.heuristic",
     "Busy-node batch size of one vectorized kernel solve"),
    ("counter", "heuristic.kernel.fallbacks", "count", "repro.core.heuristic",
     "Solves routed to the reference loop (hop_radius > 1)"),
    # -- manager: protocol loops ----------------------------------------------------
    ("counter", "manager.acks_sent", "count", "repro.core.manager",
     "Admission ACKs sent to announcing clients"),
    ("counter", "manager.stats_received", "count", "repro.core.manager",
     "STAT reports received"),
    ("counter", "manager.optimization_rounds", "count", "repro.core.manager",
     "Periodic optimization rounds executed"),
    ("counter", "manager.infeasible_rounds", "count", "repro.core.manager",
     "Rounds whose Eq. 3 program was infeasible"),
    ("counter", "manager.heuristic_fallbacks", "count", "repro.core.manager",
     "Infeasible rounds relieved by Algorithm 1"),
    ("counter", "manager.offload_requests_sent", "count", "repro.core.manager",
     "Offload-Requests dispatched to destinations"),
    ("counter", "manager.offloads_established", "count", "repro.core.manager",
     "Offload-ACK accepted: ledger rows created"),
    ("counter", "manager.offloads_rejected", "count", "repro.core.manager",
     "Offload-ACK rejected by the destination"),
    ("counter", "manager.keepalives_received", "count", "repro.core.manager",
     "Keepalive heartbeats received from hosting destinations"),
    ("counter", "manager.destinations_failed", "count", "repro.core.manager",
     "Destinations evicted after keepalive expiry"),
    ("counter", "manager.replicas_installed", "count", "repro.core.manager",
     "Failed destinations re-homed onto replicas via REP"),
    ("counter", "manager.workloads_returned", "count", "repro.core.manager",
     "Evicted workloads returned to their sources (no replica fit)"),
    ("counter", "manager.reclaims_issued", "count", "repro.core.manager",
     "Reclaim messages issued after source recovery"),
    ("counter", "manager.duplicates_ignored", "count", "repro.core.manager",
     "Duplicate control messages suppressed by the dedup cache"),
    ("counter", "manager.stale_stats_dropped", "count", "repro.core.manager",
     "Out-of-order STATs discarded under lossy delivery"),
    ("counter", "manager.stale_acks_ignored", "count", "repro.core.manager",
     "Stale/raced Offload-ACKs ignored"),
    ("counter", "manager.acks_reconfirmed", "count", "repro.core.manager",
     "Re-confirmations of still-live ledger rows"),
    ("counter", "manager.probes_sent", "count", "repro.core.manager",
     "Probe-before-evict keepalive probes sent"),
    ("counter", "manager.orphans_reclaimed", "count", "repro.core.manager",
     "Orphaned hostings reclaimed after late acceptance"),
    ("counter", "manager.destinations_quarantined", "count", "repro.core.manager",
     "Destinations quarantined after retry-budget exhaustion"),
    ("counter", "manager.sources_abandoned", "count", "repro.core.manager",
     "Sources written off after an unconfirmed Redirect"),
    ("counter", "manager.resync_rounds", "count", "repro.core.manager",
     "Post-failover resync rounds opened"),
    ("counter", "manager.resync_recovered", "count", "repro.core.manager",
     "Ledger rows rebuilt from resync re-confirmations"),
    ("counter", "manager.redirects_unwound", "count", "repro.core.manager",
     "Takeover-restored ledger rows reclaimed: source never confirmed the Redirect"),
    ("counter", "manager.snapshots_persisted", "count", "repro.core.manager",
     "Manager state snapshots written to stable storage"),
    ("counter", "manager.rounds_frozen", "count", "repro.core.manager",
     "Optimization rounds skipped while the degradation ladder froze placement"),
    ("counter", "manager.placements_reset", "count", "repro.core.manager",
     "Forced from-scratch reconvergences (drift watchdog resets)"),
    ("histogram", "manager.optimization_round_seconds", "seconds",
     "repro.core.manager", "Wall time of one optimization round"),
    # -- client: per-node endpoints (aggregated over all clients) -------------------
    ("counter", "client.stats_sent", "count", "repro.core.client",
     "STAT reports sent by clients"),
    ("counter", "client.keepalives_sent", "count", "repro.core.client",
     "Keepalive heartbeats sent by hosting clients"),
    ("counter", "client.requests_rejected", "count", "repro.core.client",
     "Hosting requests rejected (projected load above CO_max)"),
    ("counter", "client.duplicates_ignored", "count", "repro.core.client",
     "Duplicate messages suppressed by client dedup caches"),
    ("counter", "client.announce_give_ups", "count", "repro.core.client",
     "Announcements abandoned after the retry budget"),
    # -- network: message fabric ----------------------------------------------------
    ("counter", "network.messages_sent", "count", "repro.simulation.network_sim",
     "Messages accepted by the fabric"),
    ("counter", "network.messages_delivered", "count",
     "repro.simulation.network_sim", "Messages delivered to a receiver"),
    ("counter", "network.messages_dropped", "count",
     "repro.simulation.network_sim",
     "Messages lost (faults, partitions, dead endpoints)"),
    ("counter", "network.faults_dropped", "count", "repro.simulation.network_sim",
     "Messages dropped by the fault lottery specifically"),
    ("counter", "network.partition_dropped", "count",
     "repro.simulation.network_sim", "Messages blocked by an active partition"),
    ("counter", "network.duplicates_injected", "count",
     "repro.simulation.network_sim", "Duplicate deliveries injected by faults"),
    ("counter", "network.reordered", "count", "repro.simulation.network_sim",
     "Messages delayed by the reordering fault"),
    # -- transport: reliable-delivery layer (manager + client senders) --------------
    ("counter", "transport.retransmissions", "count", "repro.core.messages",
     "ACK-gated retransmissions fired by any ReliableSender"),
    ("counter", "transport.sends_gave_up", "count", "repro.core.messages",
     "Reliable sends abandoned after the retry budget"),
    ("counter", "transport.dedup_lru_evictions", "count", "repro.core.messages",
     "Dedup-cache entries evicted by the LRU capacity bound"),
    ("counter", "transport.dedup_ttl_expirations", "count", "repro.core.messages",
     "Dedup-cache entries expired by the TTL sweep"),
    # -- failover: snapshots + standby ----------------------------------------------
    ("counter", "failover.heartbeats_seen", "count", "repro.core.failover",
     "Primary heartbeats observed by the standby"),
    ("counter", "failover.takeovers", "count", "repro.core.failover",
     "Successful standby promotions"),
    ("counter", "failover.takeover_aborts", "count", "repro.core.failover",
     "Takeovers aborted by the split-brain guard"),
    ("counter", "failover.snapshot_saves", "count", "repro.core.failover",
     "Snapshots accepted by the stable store"),
    ("counter", "failover.snapshot_load_failures", "count", "repro.core.failover",
     "Torn or corrupted on-disk snapshots rejected on load"),
    # -- chaos: scenario harness ----------------------------------------------------
    ("counter", "chaos.runs", "count", "repro.simulation.chaos",
     "Chaos scenarios executed (faulty and reference runs)"),
    ("counter", "chaos.scenarios_evaluated", "count", "repro.simulation.chaos",
     "evaluate_scenario comparisons completed"),
    ("histogram", "chaos.run_seconds", "seconds", "repro.simulation.chaos",
     "Wall time of one scenario run"),
    # -- soak: sustained-churn harness ------------------------------------------------
    ("counter", "soak.runs", "count", "repro.simulation.soak",
     "Soak runs executed"),
    ("counter", "soak.events_generated", "count", "repro.simulation.soak",
     "Events emitted by the open-loop arrival streams"),
    ("counter", "soak.events_applied", "count", "repro.simulation.soak",
     "Events drained from the ingress gate and applied"),
    ("counter", "soak.events_rejected", "count", "repro.simulation.soak",
     "Events dropped by the full ingress gate (backpressure)"),
    ("counter", "soak.events_shed", "count", "repro.simulation.soak",
     "Low-tier events shed by the degradation ladder"),
    ("counter", "soak.admissions", "count", "repro.simulation.soak",
     "Client admissions observed via the manager's admission hook"),
    ("counter", "soak.evictions", "count", "repro.simulation.soak",
     "Destination evictions observed via the manager's eviction hook"),
    ("counter", "soak.ladder_transitions", "count", "repro.core.degradation",
     "Degradation-ladder level changes"),
    ("gauge", "soak.ladder_level", "level", "repro.core.degradation",
     "Current degradation-ladder level (0=NORMAL .. 3=FREEZE)"),
    ("gauge", "soak.ingress_depth", "events", "repro.simulation.soak",
     "Ingress-gate queue depth after the latest drain tick"),
    ("counter", "soak.oracle_solves", "count", "repro.simulation.soak",
     "Drift-watchdog from-scratch oracle solves"),
    ("gauge", "soak.oracle_drift", "fraction", "repro.simulation.soak",
     "Latest relief divergence between ledger and oracle placement"),
    ("counter", "soak.watchdog_resets", "count", "repro.simulation.soak",
     "Forced reconvergences triggered by the drift watchdog"),
    ("gauge", "soak.events_per_min", "events/min", "repro.simulation.soak",
     "Wall-clock event-application throughput of the latest run"),
    ("histogram", "soak.event_latency_s", "seconds", "repro.simulation.soak",
     "Simulated arrival-to-application latency per event"),
    ("histogram", "soak.run_seconds", "seconds", "repro.simulation.soak",
     "Wall time of one soak run"),
    # -- dsolve: distributed placement solve ------------------------------------------
    ("counter", "dsolve.solves", "count", "repro.lp.distributed",
     "Distributed zone/coordinator solves completed"),
    ("counter", "dsolve.rounds", "count", "repro.lp.distributed",
     "Price-exchange epochs across all distributed solves"),
    ("counter", "dsolve.pivots", "count", "repro.lp.distributed",
     "Coordinator basis pivots across all distributed solves"),
    ("counter", "dsolve.bids", "count", "repro.lp.distributed",
     "Lane bids received from zone managers"),
    ("gauge", "dsolve.last_gap", "fraction", "repro.lp.distributed",
     "Certified relative duality gap of the latest distributed solve"),
    ("histogram", "dsolve.solve_seconds", "seconds", "repro.lp.distributed",
     "Summed zone + coordinator wall time of one distributed solve"),
    ("counter", "dsolve.messages", "count", "repro.simulation.distributed",
     "Protocol messages sent by the networked coordinator"),
    ("counter", "dsolve.retransmissions", "count", "repro.simulation.distributed",
     "Timed-out protocol requests re-sent by the networked coordinator"),
    ("histogram", "dsolve.round_trip_seconds", "seconds",
     "repro.simulation.distributed",
     "Simulated time from epoch broadcast to last zone bid"),
    # -- topology: CSR adjacency cache ----------------------------------------------
    ("counter", "topology.csr_cache_hits", "count", "repro.topology.graph",
     "csr_adjacency calls answered by the version-keyed cache"),
    ("counter", "topology.csr_cache_misses", "count", "repro.topology.graph",
     "csr_adjacency rebuilds after a topology version change"),
    # -- parallel: worker pools + shared-memory arenas -------------------------------
    ("counter", "parallel.shm_creates", "count", "repro.parallel",
     "Shared-memory arenas created (segments packed and published)"),
    ("counter", "parallel.shm_attaches", "count", "repro.parallel",
     "Zero-copy attaches to an existing arena by a fresh process"),
    ("counter", "parallel.shm_unlinks", "count", "repro.parallel",
     "Arena segment names removed from the shared-memory filesystem"),
    ("counter", "parallel.shm_bytes_shared", "bytes", "repro.parallel",
     "Total bytes packed into created arena segments"),
]

#: Legacy / shorthand counter keys -> catalog names. Applied to report
#: tables and ``--json`` artifacts so every consumer sees one spelling.
COUNTER_ALIASES: Dict[str, str] = {
    "retransmits": "transport.retransmissions",
    "retransmissions": "transport.retransmissions",
    "sends_gave_up": "transport.sends_gave_up",
    "messages_sent": "network.messages_sent",
    "msgs_sent": "network.messages_sent",
    "messages_delivered": "network.messages_delivered",
    "messages_dropped": "network.messages_dropped",
    "msgs_dropped": "network.messages_dropped",
    "faults_dropped": "network.faults_dropped",
    "duplicates_injected": "network.duplicates_injected",
    "dupes_injected": "network.duplicates_injected",
    "duplicates_delivered": "network.duplicates_injected",
    "partition_dropped": "network.partition_dropped",
    "reordered": "network.reordered",
    "snapshots_persisted": "manager.snapshots_persisted",
    "probes_sent": "manager.probes_sent",
}


def canonical_counter_name(key: str) -> str:
    """Catalog spelling of ``key`` (unmapped keys pass through)."""
    return COUNTER_ALIASES.get(key, key)


def normalize_counter_keys(counters: Mapping[str, float]) -> Dict[str, float]:
    """Re-key a counter mapping onto catalog names.

    Aliases that collapse onto the same canonical name are summed
    (e.g. a mapping holding both ``retransmits`` and
    ``client_retransmissions`` totals).

    Examples
    --------
    >>> normalize_counter_keys({"retransmits": 3, "msgs_dropped": 2})
    {'transport.retransmissions': 3, 'network.messages_dropped': 2}
    """
    out: Dict[str, float] = {}
    for key, value in counters.items():
        canonical = canonical_counter_name(key)
        if canonical in out:
            out[canonical] += value
        else:
            out[canonical] = value
    return out


def register_catalog(registry: MetricsRegistry = None) -> MetricsRegistry:
    """Register every catalog metric (idempotent); returns the registry."""
    registry = registry if registry is not None else get_registry()
    for kind, name, unit, owner, description in CATALOG:
        registry._register(kind, name, unit, owner, description)
    return registry
