"""Process-wide metrics registry: named counters, gauges and histograms.

The registry is the single source of truth for every quantitative
signal this package emits — solver activity (``trmin.*``, ``lp.*``,
``placement.*``), control-plane protocol activity (``manager.*``,
``client.*``), transport behaviour (``network.*``, ``transport.*``)
and recovery machinery (``failover.*``, ``chaos.*``). The full catalog,
with units and owning modules, lives in ``docs/observability.md``; a CI
check keeps that document and this registry in lockstep.

Design constraints, in order:

1. **zero dependencies** — stdlib only, importable from any layer
   without cycles;
2. **cheap** — instruments are plain attribute updates under one
   re-entrant lock; hot loops keep their own local counters (e.g.
   :class:`~repro.routing.engine.EngineStats`) and mirror them in at
   call granularity via :meth:`Counter.set_max`;
3. **mergeable** — a process-pool worker collects the *delta* its task
   produced (:meth:`MetricsRegistry.collect_delta`) and the parent
   folds it back in (:meth:`MetricsRegistry.merge_delta`), so metrics
   survive the fan-out in :func:`repro.parallel.map_with_pool_retry`.

Examples
--------
>>> from repro.obs import get_registry
>>> reg = get_registry()
>>> c = reg.counter("example.events", unit="count", owner="docs")
>>> c.inc()
>>> reg.value("example.events") >= 1
True
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
]


class MetricError(ValueError):
    """Raised for conflicting registrations or unknown metric names."""


class _Instrument:
    """Common base: name, unit, owner, description, shared lock."""

    kind = "instrument"

    def __init__(
        self, name: str, unit: str, owner: str, description: str, lock: threading.RLock
    ) -> None:
        self.name = name
        self.unit = unit
        self.owner = owner
        self.description = description
        self._lock = lock

    def describe(self) -> Dict[str, str]:
        """Static metadata for the metric catalog."""
        return {
            "kind": self.kind,
            "unit": self.unit,
            "owner": self.owner,
            "description": self.description,
        }


class Counter(_Instrument):
    """Monotonically non-decreasing count.

    Two update styles coexist:

    * :meth:`inc` — direct increments from the owning code path
      (e.g. one retransmission fired);
    * :meth:`set_max` — mirroring an external cumulative counter (a
      dataclass field like ``ManagerCounters.acks_sent``) without
      double-counting: the stored value only ever moves up to the
      mirrored total.
    """

    kind = "counter"

    def __init__(self, *args) -> None:
        super().__init__(*args)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise MetricError(f"counter {self.name} cannot decrease (inc {amount})")
        with self._lock:
            self._value += amount

    def set_max(self, value: float) -> None:
        """Raise the stored value to ``value`` if it is higher (mirror
        of an external cumulative counter; never decreases)."""
        with self._lock:
            if value > self._value:
                self._value = float(value)

    @property
    def value(self) -> float:
        return self._value

    def _snapshot(self) -> Dict[str, float]:
        return {"value": self._value}

    def _merge(self, delta: Mapping[str, float]) -> None:
        self.inc(float(delta.get("value", 0.0)))

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Gauge(_Instrument):
    """Point-in-time value (last write wins)."""

    kind = "gauge"

    def __init__(self, *args) -> None:
        super().__init__(*args)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        return self._value

    def _snapshot(self) -> Dict[str, float]:
        return {"value": self._value}

    def _merge(self, delta: Mapping[str, float]) -> None:
        self.set(float(delta.get("value", 0.0)))

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram(_Instrument):
    """Streaming summary of observations: count, sum, min, max, mean.

    Deliberately bucket-free — the consumers here (bench reports,
    experiment artifacts) want per-phase totals and extremes, and a
    four-float summary merges exactly across threads and pool workers.
    """

    kind = "histogram"

    def __init__(self, *args) -> None:
        super().__init__(*args)
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.minimum:
                self.minimum = value
            if value > self.maximum:
                self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    @property
    def value(self) -> float:
        """The mean — so ``registry.value(name)`` works uniformly."""
        return self.mean

    def _snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
        }

    def _merge(self, delta: Mapping[str, float]) -> None:
        with self._lock:
            self.count += int(delta.get("count", 0))
            self.total += float(delta.get("total", 0.0))
            self.minimum = min(self.minimum, float(delta.get("min", float("inf"))))
            self.maximum = max(self.maximum, float(delta.get("max", float("-inf"))))

    def _reset(self) -> None:
        with self._lock:
            self.count = 0
            self.total = 0.0
            self.minimum = float("inf")
            self.maximum = float("-inf")


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Named instrument store with idempotent registration.

    Registering the same name twice returns the existing instrument;
    registering it with a *different* kind raises :class:`MetricError`
    (a name means one thing, forever — that is what makes the metric
    catalog checkable).

    Parameters
    ----------
    name :
        Label included in snapshots (purely informational; the default
        process-wide registry is named ``"default"``).
    """

    def __init__(self, name: str = "default") -> None:
        self.name = name
        self._lock = threading.RLock()
        self._metrics: Dict[str, _Instrument] = {}

    # -- registration ---------------------------------------------------------
    def _register(
        self, kind: str, name: str, unit: str, owner: str, description: str
    ) -> _Instrument:
        # Fast path: repeat lookups of an existing metric skip name
        # validation and the lock (dict reads are atomic in CPython).
        existing = self._metrics.get(name)
        if existing is not None and existing.kind == kind:
            return existing
        if not name or any(ch.isspace() for ch in name):
            raise MetricError(f"invalid metric name {name!r}")
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if existing.kind != kind:
                    raise MetricError(
                        f"metric {name!r} already registered as {existing.kind}, "
                        f"cannot re-register as {kind}"
                    )
                return existing
            metric = _KINDS[kind](name, unit, owner, description, self._lock)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, unit: str = "count", owner: str = "", description: str = ""
    ) -> Counter:
        """Register (or fetch) the counter ``name``."""
        return self._register("counter", name, unit, owner, description)  # type: ignore[return-value]

    def gauge(
        self, name: str, unit: str = "value", owner: str = "", description: str = ""
    ) -> Gauge:
        """Register (or fetch) the gauge ``name``."""
        return self._register("gauge", name, unit, owner, description)  # type: ignore[return-value]

    def histogram(
        self, name: str, unit: str = "seconds", owner: str = "", description: str = ""
    ) -> Histogram:
        """Register (or fetch) the histogram ``name``."""
        return self._register("histogram", name, unit, owner, description)  # type: ignore[return-value]

    # -- lookup ---------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> List[str]:
        """All registered metric names, sorted."""
        return sorted(self._metrics)

    def get(self, name: str) -> Optional[_Instrument]:
        return self._metrics.get(name)

    def value(self, name: str) -> float:
        """Current value of ``name`` (histograms report their mean)."""
        metric = self._metrics.get(name)
        if metric is None:
            raise MetricError(f"unknown metric {name!r}")
        return metric.value

    def describe(self) -> Dict[str, Dict[str, str]]:
        """Catalog view: name -> {kind, unit, owner, description}."""
        with self._lock:
            return {name: m.describe() for name, m in sorted(self._metrics.items())}

    # -- snapshots & merging --------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Serializable dump of every metric's current state.

        The result is a plain dict (JSON-safe apart from infinities in
        empty histograms) tagged with the producing ``pid`` so pool
        merge logic can tell a forked worker's snapshot from its own.
        """
        with self._lock:
            return {
                "registry": self.name,
                "pid": os.getpid(),
                "metrics": {
                    name: dict(m._snapshot(), kind=m.kind, unit=m.unit, owner=m.owner)
                    for name, m in self._metrics.items()
                },
            }

    def collect_delta(self, baseline: Mapping[str, object]) -> Dict[str, object]:
        """What changed since ``baseline`` (a prior :meth:`snapshot`).

        Counter and histogram deltas are exact differences; gauges
        report their current value (last-write-wins has no meaningful
        delta). Metrics absent from the baseline contribute their full
        state. Used by pool workers: the fork inherited the parent's
        totals, so only the task's own contribution must travel back.
        """
        base: Mapping[str, Mapping[str, float]] = baseline.get("metrics", {})  # type: ignore[assignment]
        delta: Dict[str, object] = {"pid": os.getpid(), "metrics": {}}
        with self._lock:
            for name, metric in self._metrics.items():
                snap = metric._snapshot()
                prior = base.get(name, {})
                if metric.kind == "counter":
                    d = snap["value"] - float(prior.get("value", 0.0))
                    if d <= 0:
                        continue
                    entry = {"value": d}
                elif metric.kind == "gauge":
                    if snap["value"] == float(prior.get("value", 0.0)):
                        continue
                    entry = {"value": snap["value"]}
                else:  # histogram
                    d_count = snap["count"] - int(prior.get("count", 0))
                    if d_count <= 0:
                        continue
                    # min/max cannot be differenced; the cumulative
                    # extremes are merge-safe as-is (min/max are
                    # idempotent under re-merging).
                    entry = {
                        "count": d_count,
                        "total": snap["total"] - float(prior.get("total", 0.0)),
                        "min": snap["min"],
                        "max": snap["max"],
                    }
                entry.update(kind=metric.kind, unit=metric.unit, owner=metric.owner)
                delta["metrics"][name] = entry  # type: ignore[index]
        return delta

    def merge_delta(self, delta: Mapping[str, object]) -> None:
        """Fold a :meth:`collect_delta` result into this registry.

        Unknown metrics are registered on the fly from the metadata the
        delta carries, so a worker may legitimately be the first to
        touch a metric.
        """
        for name, entry in delta.get("metrics", {}).items():  # type: ignore[union-attr]
            kind = entry.get("kind", "counter")
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._register(
                    kind, name, entry.get("unit", ""), entry.get("owner", ""), ""
                )
            elif metric.kind != kind:
                raise MetricError(
                    f"cannot merge {kind} delta into {metric.kind} {name!r}"
                )
            metric._merge(entry)

    def reset(self) -> None:
        """Zero every value; registrations (the catalog) are kept."""
        with self._lock:
            for metric in self._metrics.values():
                metric._reset()


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry every layer publishes into."""
    return _REGISTRY
