"""Span-based tracer with a ring-buffer recorder and trace exporters.

One placement round decomposes into nested phases — Trmin route pricing
inside ``placement.solve``, the LP solve, the manager's message
exchange, retransmissions under loss — and this tracer records them as
spans so the whole round renders as a single timeline::

    with trace_span("lp.warm_solve", rows=m, cols=n):
        ...                       # nested trace_span calls nest visibly

Tracing is **off by default** and the disabled path is a single branch:
:func:`trace_span` returns a shared, stateless no-op context manager
without allocating anything (``benchmarks/bench_obs.py`` proves the
cost is nanoseconds per call — see ``BENCH_obs.json``). Enable it with
:meth:`Tracer.enable`, the ``REPRO_TRACE=1`` environment variable, or
the experiment CLI's ``--trace`` flag.

Completed spans land in a bounded ring buffer (oldest evicted first)
and can be exported two ways:

* :meth:`Tracer.export_chrome_trace` — the Chrome/Perfetto
  ``traceEvents`` JSON format (open in ``chrome://tracing`` or
  https://ui.perfetto.dev);
* :meth:`Tracer.export_jsonl` — one JSON object per line, for ad-hoc
  analysis.

With allocation profiling enabled (:func:`repro.obs.enable_profiling`)
each span additionally records the net ``tracemalloc`` delta across its
body.

Examples
--------
>>> from repro.obs import get_tracer, trace_span
>>> tracer = get_tracer()
>>> tracer.enable()
>>> with trace_span("docs.example", step=1):
...     pass
>>> tracer.records()[-1].name
'docs.example'
>>> tracer.disable(); tracer.clear()
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

__all__ = [
    "SpanRecord",
    "Tracer",
    "get_tracer",
    "trace_span",
    "trace_event",
]


@dataclass(frozen=True)
class SpanRecord:
    """One completed span (or instant event) in the ring buffer.

    Attributes
    ----------
    name :
        Dotted span name, e.g. ``"placement.lp"``.
    start_ns :
        ``time.perf_counter_ns`` at entry.
    duration_ns :
        Wall-clock nanoseconds spent inside the span (0 for events).
    depth :
        Nesting level within the recording thread (0 = top level).
    thread_id :
        ``threading.get_ident()`` of the recording thread.
    tags :
        Caller-supplied key/value annotations.
    phase :
        ``"X"`` for a complete span, ``"i"`` for an instant event —
        mirrors the Chrome-trace phase field.
    alloc_net_bytes :
        Net ``tracemalloc`` delta over the span body, or ``None`` when
        allocation profiling was off.
    """

    name: str
    start_ns: int
    duration_ns: int
    depth: int
    thread_id: int
    tags: Tuple[Tuple[str, object], ...] = ()
    phase: str = "X"
    alloc_net_bytes: Optional[int] = None


class _NoopSpan:
    """Shared, stateless context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def tag(self, **tags: object) -> None:
        """No-op counterpart of :meth:`_LiveSpan.tag`."""


_NOOP_SPAN = _NoopSpan()


class _LiveSpan:
    """Context manager recording one span into the tracer."""

    __slots__ = ("_tracer", "_name", "_tags", "_start_ns", "_depth", "_alloc0")

    def __init__(self, tracer: "Tracer", name: str, tags: Dict[str, object]) -> None:
        self._tracer = tracer
        self._name = name
        self._tags = tags
        self._start_ns = 0
        self._depth = 0
        self._alloc0: Optional[int] = None

    def tag(self, **tags: object) -> None:
        """Attach tags discovered mid-span (e.g. the solve status)."""
        self._tags.update(tags)

    def __enter__(self) -> "_LiveSpan":
        local = self._tracer._local
        self._depth = getattr(local, "depth", 0)
        local.depth = self._depth + 1
        if self._tracer.profile_allocations:
            import tracemalloc

            if tracemalloc.is_tracing():
                self._alloc0 = tracemalloc.get_traced_memory()[0]
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> bool:
        end_ns = time.perf_counter_ns()
        tracer = self._tracer
        tracer._local.depth = self._depth
        alloc: Optional[int] = None
        if self._alloc0 is not None:
            import tracemalloc

            if tracemalloc.is_tracing():
                alloc = tracemalloc.get_traced_memory()[0] - self._alloc0
        tracer._record(
            SpanRecord(
                name=self._name,
                start_ns=self._start_ns,
                duration_ns=end_ns - self._start_ns,
                depth=self._depth,
                thread_id=threading.get_ident(),
                tags=tuple(self._tags.items()),
                alloc_net_bytes=alloc,
            )
        )
        return False


class Tracer:
    """Ring-buffer span recorder.

    Parameters
    ----------
    max_records :
        Ring-buffer capacity; the oldest spans are evicted once full.
    enabled :
        Initial recording state. Defaults to the ``REPRO_TRACE``
        environment variable (any non-empty value other than ``"0"``).

    Notes
    -----
    All methods are thread-safe: spans carry their thread id and the
    buffer append is atomic (``collections.deque``). Nesting depth is
    tracked per thread.
    """

    def __init__(
        self, max_records: int = 65536, enabled: Optional[bool] = None
    ) -> None:
        if enabled is None:
            env = os.environ.get("REPRO_TRACE", "")
            enabled = bool(env) and env != "0"
        self.enabled = bool(enabled)
        self.profile_allocations = False
        self._records: Deque[SpanRecord] = deque(maxlen=max_records)
        self._local = threading.local()

    # -- recording ------------------------------------------------------------
    def span(self, name: str, tags: Optional[Dict[str, object]] = None) -> object:
        """Context manager for one span (no-op while disabled)."""
        if not self.enabled:
            return _NOOP_SPAN
        return _LiveSpan(self, name, dict(tags or {}))

    def event(self, name: str, **tags: object) -> None:
        """Record an instant event (e.g. one retransmission fired)."""
        if not self.enabled:
            return
        self._record(
            SpanRecord(
                name=name,
                start_ns=time.perf_counter_ns(),
                duration_ns=0,
                depth=getattr(self._local, "depth", 0),
                thread_id=threading.get_ident(),
                tags=tuple(tags.items()),
                phase="i",
            )
        )

    def _record(self, record: SpanRecord) -> None:
        self._records.append(record)

    # -- state ----------------------------------------------------------------
    def enable(self, profile_allocations: bool = False) -> None:
        """Start recording (optionally with per-span alloc deltas)."""
        self.enabled = True
        if profile_allocations:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
            self.profile_allocations = True

    def disable(self) -> None:
        """Stop recording; the buffer is kept for export."""
        self.enabled = False

    def clear(self) -> None:
        """Drop every buffered record."""
        self._records.clear()

    def records(self) -> List[SpanRecord]:
        """Buffered records, oldest first."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    # -- analysis -------------------------------------------------------------
    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-name aggregate: count, total/mean/max seconds, allocs."""
        out: Dict[str, Dict[str, float]] = {}
        for record in self._records:
            entry = out.setdefault(
                record.name,
                {"count": 0, "total_s": 0.0, "max_s": 0.0, "alloc_net_bytes": 0},
            )
            entry["count"] += 1
            entry["total_s"] += record.duration_ns / 1e9
            entry["max_s"] = max(entry["max_s"], record.duration_ns / 1e9)
            if record.alloc_net_bytes is not None:
                entry["alloc_net_bytes"] += record.alloc_net_bytes
        for entry in out.values():
            entry["mean_s"] = entry["total_s"] / entry["count"] if entry["count"] else 0.0
        return out

    # -- exporters ------------------------------------------------------------
    def chrome_trace(self) -> Dict[str, object]:
        """The buffer as a Chrome-trace ``traceEvents`` document.

        Timestamps are microseconds relative to the earliest buffered
        record, so the timeline starts at zero regardless of process
        uptime.
        """
        records = list(self._records)
        t0 = min((r.start_ns for r in records), default=0)
        events = []
        for r in records:
            event: Dict[str, object] = {
                "name": r.name,
                "ph": r.phase,
                "ts": (r.start_ns - t0) / 1000.0,
                "pid": os.getpid(),
                "tid": r.thread_id,
            }
            if r.phase == "X":
                event["dur"] = r.duration_ns / 1000.0
            args = dict(r.tags)
            if r.alloc_net_bytes is not None:
                args["alloc_net_bytes"] = r.alloc_net_bytes
            if args:
                event["args"] = args
            if r.phase == "i":
                event["s"] = "t"  # thread-scoped instant marker
            events.append(event)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def export_chrome_trace(self, path: str) -> int:
        """Write :meth:`chrome_trace` as JSON; returns the event count."""
        document = self.chrome_trace()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
            handle.write("\n")
        return len(document["traceEvents"])  # type: ignore[arg-type]

    def export_jsonl(self, path: str) -> int:
        """Write one JSON object per record; returns the record count."""
        records = list(self._records)
        with open(path, "w", encoding="utf-8") as handle:
            for r in records:
                handle.write(
                    json.dumps(
                        {
                            "name": r.name,
                            "start_ns": r.start_ns,
                            "duration_ns": r.duration_ns,
                            "depth": r.depth,
                            "thread_id": r.thread_id,
                            "phase": r.phase,
                            "tags": dict(r.tags),
                            "alloc_net_bytes": r.alloc_net_bytes,
                        }
                    )
                    + "\n"
                )
        return len(records)


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer (shared with :func:`trace_span`)."""
    return _TRACER


def trace_span(name: str, **tags: object) -> object:
    """Open a span on the global tracer — the primary instrumentation
    entry point.

    Returns a context manager; while tracing is disabled (the default)
    this is a single branch returning a shared no-op object, cheap
    enough for per-solve call sites (not per-pivot loops — those keep
    plain local counters).

    Examples
    --------
    >>> with trace_span("lp.warm_solve", rows=4, cols=7):
    ...     pass
    """
    tracer = _TRACER
    if not tracer.enabled:
        return _NOOP_SPAN
    return _LiveSpan(tracer, name, tags)


def trace_event(name: str, **tags: object) -> None:
    """Record an instant event on the global tracer (no-op when
    disabled) — used for point occurrences like message retransmits."""
    tracer = _TRACER
    if tracer.enabled:
        tracer.event(name, **tags)
