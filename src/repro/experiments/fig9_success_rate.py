"""Fig. 9 — heuristic vs optimization success split on the 4-k fat-tree.

Paper: over 100 iterations, the one-hop heuristic fully offloaded every
overloaded node in 18.37% of iterations, placed nothing (while the ILP
succeeded) in 6.13%, and partially offloaded in the remaining 75.5%.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.core.heuristic import solve_heuristic
from repro.core.metrics import (
    SuccessCategory,
    categorize_iteration,
    summarize_categories,
)
from repro.core.placement import PlacementEngine, PlacementProblem, PlacementSession
from repro.core.roles import classify_network
from repro.core.thresholds import ThresholdPolicy
from repro.experiments.common import ExperimentResult, IterationSampler
from repro.routing.response_time import PathEngine, ResponseTimeModel
from repro.topology.fattree import build_fat_tree


def run(
    iterations: int = 100,
    seed: int = 0,
    c_max: float = 80.0,
    co_max: float = 50.0,
    x_min: float = 10.0,
    max_hops: Optional[int] = None,
) -> ExperimentResult:
    """Regenerate Fig. 9's three-way split."""
    start = time.perf_counter()
    policy = ThresholdPolicy(c_max=c_max, co_max=co_max, x_min=x_min)
    topology = build_fat_tree(4)
    sampler = IterationSampler(topology, x_min=x_min, seed=seed)
    ilp_session = PlacementSession(
        engine=PlacementEngine(
            response_model=ResponseTimeModel(engine=PathEngine.DP, max_hops=max_hops),
            with_routes=False,
        )
    )
    categories = []
    hfrs = []
    for _, capacities in sampler.states(iterations):
        roles = classify_network(capacities, policy)
        busy, candidates = roles.busy, roles.candidates
        if not busy:
            categories.append(SuccessCategory.NO_OVERLOAD)
            continue
        problem = PlacementProblem(
            topology=topology,
            busy=tuple(busy),
            candidates=tuple(candidates),
            cs=np.array([policy.excess_load(capacities[b]) for b in busy]),
            cd=np.array([policy.spare_capacity(capacities[c]) for c in candidates]),
            data_mb=np.full(len(busy), 10.0),
            max_hops=max_hops,
        )
        heuristic = solve_heuristic(problem, trmin_engine=ilp_session.trmin_engine)
        ilp = ilp_session.solve(problem)
        categories.append(categorize_iteration(heuristic, ilp))
        hfrs.append(heuristic.hfr_pct)
    summary = summarize_categories(categories)
    rows = (
        (
            "heuristic full offload",
            summary.counts.get(SuccessCategory.HEURISTIC_FULL, 0),
            summary.pct(SuccessCategory.HEURISTIC_FULL),
            18.37,
        ),
        (
            "heuristic zero / ILP success",
            summary.counts.get(SuccessCategory.HEURISTIC_ZERO, 0),
            summary.pct(SuccessCategory.HEURISTIC_ZERO),
            6.13,
        ),
        (
            "partial (heuristic + ILP remainder)",
            summary.counts.get(SuccessCategory.PARTIAL, 0),
            summary.pct(SuccessCategory.PARTIAL),
            75.5,
        ),
    )
    return ExperimentResult(
        experiment_id="fig9",
        title="Heuristic vs ILP success split (4-k fat-tree)",
        columns=("category", "count", "measured %", "paper %"),
        rows=rows,
        paper_claim="18.37% heuristic-full / 6.13% heuristic-zero / 75.5% partial",
        observations=(
            f"partial dominates ({summary.pct(SuccessCategory.PARTIAL):.1f}%), "
            f"full ({summary.pct(SuccessCategory.HEURISTIC_FULL):.1f}%) > "
            f"zero ({summary.pct(SuccessCategory.HEURISTIC_ZERO):.1f}%); "
            f"mean HFR {np.mean(hfrs):.1f}%"
        ),
        elapsed_s=time.perf_counter() - start,
        params=(("iterations", iterations), ("seed", seed), ("c_max", c_max), ("co_max", co_max)),
    )
