"""Fig. 10 — ILP computation time vs max-hop, large-scale fat-trees.

Paper: with a 300 s response-time threshold the recommended max-hop is
7 on the 8-k (80-node) fabric (Fig. 10a) and 4 on the 16-k (320-node)
fabric (Fig. 10b); raising 16-k's max-hop from 4 to 5 costs roughly a
10x increase in average computation time.

The same enumeration-driven measurement as Fig. 8, at scale. The
default hop ranges keep the regeneration tractable on a laptop while
still exposing the blow-up factor; pass larger ``hops_*`` to push
further.

Beyond the paper's 16-k ceiling, a 32-k (1280-node) series runs on the
DP path-engine with the matrix Trmin kernel — exhaustive enumeration is
hopeless at that scale, but one all-sources DP plane per solve keeps
each point in seconds, which is exactly the regime the matrix kernel
exists for.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence, Tuple

from repro.experiments.common import ExperimentResult, run_sharded_sweep
from repro.experiments.fig8_maxhop_smallscale import mean_solve_time
from repro.routing.response_time import PathEngine

DEFAULT_HOPS_8K: Tuple[int, ...] = (2, 3, 4, 5, 6, 7)
DEFAULT_HOPS_16K: Tuple[int, ...] = (2, 3, 4, 5)
#: The extra-paper 32-k series (DP engine + matrix Trmin kernel).
DEFAULT_HOPS_32K: Tuple[int, ...] = (2, 3, 4)


def _sweep_point(payload: Tuple[int, int, int, int, PathEngine, str]) -> float:
    """One (k, max-hop) point — module-level so pool workers can run it.

    No arrays ride along here: ``mean_solve_time`` rebuilds through the
    fat-tree blueprint LRU, so each worker pays one build per k at most.
    """
    k, h, iters, seed, engine_kind, trmin_mode = payload
    mean_s, _ = mean_solve_time(
        k, h, iters, seed=seed, engine_kind=engine_kind, trmin_mode=trmin_mode
    )
    return mean_s


def run(
    iterations_8k: int = 3,
    iterations_16k: int = 1,
    iterations_32k: int = 1,
    hops_8k: Sequence[int] = DEFAULT_HOPS_8K,
    hops_16k: Sequence[int] = DEFAULT_HOPS_16K,
    hops_32k: Sequence[int] = DEFAULT_HOPS_32K,
    seed: int = 0,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Regenerate Fig. 10a/10b's time-vs-max-hop curves (+ 32-k extra).

    (k, max-hop) points are independent solves, so they shard over the
    worker pool like the fig11/fig12 scale points. The 8-k/16-k series
    replicate the paper's enumeration measurement; the 32-k series
    (pass ``hops_32k=()`` to skip) swaps in the DP engine with the
    matrix Trmin kernel, the only combination that prices a 1280-node
    fabric in reasonable time.
    """
    start = time.perf_counter()
    series = (
        (8, hops_8k, iterations_8k, PathEngine.ENUMERATION, "rows"),
        (16, hops_16k, iterations_16k, PathEngine.ENUMERATION, "rows"),
        (32, hops_32k, iterations_32k, PathEngine.DP, "matrix"),
    )
    payloads = [
        (k, h, iters, seed, engine_kind, trmin_mode)
        for k, hops, iters, engine_kind, trmin_mode in series
        for h in hops
    ]
    times = run_sharded_sweep(_sweep_point, payloads, workers=workers)
    rows = []
    times_16k = {}
    for (k, h, _, _, engine_kind, trmin_mode), mean_s in zip(payloads, times):
        engine_label = "enum" if engine_kind is PathEngine.ENUMERATION else f"dp/{trmin_mode}"
        rows.append((f"{k}-k", h, engine_label, mean_s))
        if k == 16:
            times_16k[h] = mean_s
    blowup = (
        times_16k[5] / times_16k[4]
        if 4 in times_16k and 5 in times_16k and times_16k[4] > 0
        else float("nan")
    )
    return ExperimentResult(
        experiment_id="fig10",
        title="ILP computation time vs max-hop, 8-k (80 nodes) and 16-k (320 nodes)",
        columns=("fat-tree", "max-hop", "engine", "mean solve s"),
        rows=tuple(rows),
        paper_claim=(
            "300s threshold => max-hop 7 (8-k) and 4 (16-k); 16-k hop 4->5 is a ~10x jump"
        ),
        observations=(
            f"16-k hop 4->5 time ratio: {blowup:.1f}x"
            if blowup == blowup
            else "hop range did not include both 4 and 5 on 16-k"
        ),
        elapsed_s=time.perf_counter() - start,
        params=(
            ("iterations_8k", iterations_8k),
            ("iterations_16k", iterations_16k),
            ("iterations_32k", iterations_32k),
            ("seed", seed),
        ),
    )
