"""Markdown report writer for experiment results.

Turns a set of :class:`~repro.experiments.common.ExperimentResult` into
a single EXPERIMENTS-style markdown document so a full regeneration run
can be archived next to the paper-vs-measured record::

    python -m repro.experiments all --output results.md
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.experiments.common import ExperimentResult
from repro.obs import canonical_counter_name


def _canonical_column(column: str) -> str:
    # Counter columns render under their metric-catalog names, so a
    # result built with a legacy spelling ("retransmits",
    # "msgs dropped") and one built with catalog names produce the
    # same table header. Non-counter columns pass through untouched.
    for candidate in (column, column.replace(" ", "_")):
        mapped = canonical_counter_name(candidate)
        if mapped != candidate:
            return mapped
    return column


def _markdown_table(columns: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    columns = [_canonical_column(c) for c in columns]
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            if cell != cell:
                return "nan"
            return f"{cell:.4g}"
        return str(cell)

    lines = [
        "| " + " | ".join(columns) + " |",
        "|" + "|".join("---" for _ in columns) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(fmt(c) for c in row) + " |")
    return "\n".join(lines)


def result_to_markdown(result: ExperimentResult) -> str:
    """One experiment as a markdown section."""
    parts: List[str] = [f"## {result.experiment_id} — {result.title}", ""]
    if result.params:
        params = ", ".join(f"`{k}={v}`" for k, v in result.params)
        parts.extend([f"Parameters: {params}", ""])
    parts.append(_markdown_table(result.columns, result.rows))
    parts.extend(["", f"**Paper:** {result.paper_claim}"])
    if result.observations:
        parts.append(f"**Measured:** {result.observations}")
    parts.append(f"*(regenerated in {result.elapsed_s:.1f} s)*")
    return "\n".join(parts)


def write_report(
    results: Sequence[ExperimentResult],
    path: str,
    title: str = "DUST reproduction — regenerated evaluation figures",
) -> str:
    """Write a full markdown report; returns the document text."""
    sections = [f"# {title}", ""]
    total = sum(r.elapsed_s for r in results)
    sections.append(
        f"{len(results)} experiment(s), total regeneration time {total:.1f} s."
    )
    sections.append("")
    for result in results:
        sections.append(result_to_markdown(result))
        sections.append("")
    document = "\n".join(sections)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(document)
    return document
