"""Extra study: hop counts to offload destinations (ILP vs heuristic).

The paper lists "the number of hops required to reach the destination"
among its comparison parameters but shows no dedicated figure for it.
This extra experiment fills the gap: load-weighted mean hop counts of
the ILP's chosen routes under different max-hop budgets, against the
heuristic's fixed single hop, plus the response-time premium the
one-hop restriction costs.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.heuristic import solve_heuristic
from repro.core.metrics import mean_hops
from repro.core.placement import PlacementEngine, PlacementProblem, PlacementSession
from repro.core.roles import classify_network
from repro.core.thresholds import ThresholdPolicy
from repro.experiments.common import ExperimentResult, IterationSampler
from repro.routing import TrminEngine
from repro.routing.response_time import PathEngine, ResponseTimeModel
from repro.topology.fattree import build_fat_tree

DEFAULT_BUDGETS: Tuple[Optional[int], ...] = (2, 4, 6, None)


def run(
    iterations: int = 50,
    budgets: Sequence[Optional[int]] = DEFAULT_BUDGETS,
    k: int = 4,
    seed: int = 0,
) -> ExperimentResult:
    """Measure mean hops and beta for ILP budgets vs Algorithm 1."""
    start = time.perf_counter()
    policy = ThresholdPolicy(c_max=80.0, co_max=50.0, x_min=10.0)
    topology = build_fat_tree(k)
    sampler = IterationSampler(topology, x_min=policy.x_min, seed=seed)

    per_budget_hops = {b: [] for b in budgets}
    per_budget_beta = {b: [] for b in budgets}
    heuristic_beta, heuristic_hfr = [], []

    # One session per hop budget for the whole sweep: consecutive
    # iterations reuse the Trmin cache and warm-start the LP basis
    # instead of paying a cold engine per (iteration, budget) pair.
    sessions = {
        b: PlacementSession(
            engine=PlacementEngine(
                response_model=ResponseTimeModel(engine=PathEngine.DP, max_hops=b),
            )
        )
        for b in budgets
    }
    heuristic_trmin = TrminEngine(ResponseTimeModel(engine=PathEngine.DP))

    for _, capacities in sampler.states(iterations):
        roles = classify_network(capacities, policy)
        busy, candidates = roles.busy, roles.candidates
        if not busy or not candidates:
            continue
        base = dict(
            topology=topology,
            busy=tuple(busy),
            candidates=tuple(candidates),
            cs=np.array([policy.excess_load(capacities[b]) for b in busy]),
            cd=np.array([policy.spare_capacity(capacities[c]) for c in candidates]),
            data_mb=np.full(len(busy), 10.0),
        )
        for budget in budgets:
            report = sessions[budget].solve(PlacementProblem(**base, max_hops=budget))
            if report.feasible and report.assignments:
                per_budget_hops[budget].append(mean_hops(report))
                per_budget_beta[budget].append(report.objective_beta)
        heuristic = solve_heuristic(
            PlacementProblem(**base), trmin_engine=heuristic_trmin
        )
        if heuristic.assignments:
            beta = sum(a.amount_pct * a.response_time_s for a in heuristic.assignments)
            heuristic_beta.append(beta)
        heuristic_hfr.append(heuristic.hfr_pct)

    rows = []
    for budget in budgets:
        hops_list = per_budget_hops[budget]
        beta_list = per_budget_beta[budget]
        rows.append((
            f"ILP max-hop {budget if budget is not None else 'none'}",
            float(np.mean(hops_list)) if hops_list else float("nan"),
            float(np.mean(beta_list)) if beta_list else float("nan"),
            0.0,
        ))
    rows.append((
        "heuristic (Algorithm 1)",
        1.0,
        float(np.mean(heuristic_beta)) if heuristic_beta else float("nan"),
        float(np.mean(heuristic_hfr)) if heuristic_hfr else float("nan"),
    ))
    return ExperimentResult(
        experiment_id="hops",
        title="Mean hops to offload destination: ILP budgets vs heuristic",
        columns=("strategy", "mean hops (load-weighted)", "mean beta (s)", "mean HFR %"),
        rows=tuple(rows),
        paper_claim=(
            "hops-to-destination is one of the paper's comparison parameters; "
            "no dedicated figure (extra study)"
        ),
        observations=(
            "tighter hop budgets shrink mean hops; the heuristic's 1-hop "
            "restriction trades HFR for locality"
        ),
        elapsed_s=time.perf_counter() - start,
        params=(("iterations", iterations), ("k", k), ("seed", seed)),
    )
