"""Command-line entry point: regenerate paper figures as text tables.

Usage::

    python -m repro.experiments fig7 --quick
    python -m repro.experiments all
    dust-experiments fig9 --iterations 200
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.common import notation_table
from repro.experiments.registry import all_experiments, run_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dust-experiments",
        description="Regenerate the DUST paper's evaluation figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (fig1, fig6, fig7, fig8, fig9, fig10, fig11, fig12), "
        "'all', or 'table1' for the notation glossary",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="use reduced iteration counts (CI-sized run)",
    )
    parser.add_argument(
        "--iterations", type=int, default=None,
        help="override the iteration count where the experiment takes one",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the master seed"
    )
    parser.add_argument(
        "--output", type=str, default=None,
        help="also write the results as a markdown report to this path",
    )
    parser.add_argument(
        "--json", type=str, default=None,
        help="write the regenerated results to this path as JSON "
        "(resilience and soak keep their richer metrics dumps)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker-pool size for the sharded sweeps (fig10/fig11/"
        "fig12); default: REPRO_WORKERS or the CPU count",
    )
    parser.add_argument(
        "--trace", type=str, default=None,
        help="record a span timeline of the run and write it to this "
        "path as Chrome-trace JSON (open in chrome://tracing or "
        "ui.perfetto.dev)",
    )
    return parser


def _write_results_json(results, path: str) -> None:
    """Machine-readable dump of :class:`ExperimentResult` rows."""
    import json

    payload = [
        {
            "experiment_id": r.experiment_id,
            "title": r.title,
            "columns": list(r.columns),
            "rows": [list(row) for row in r.rows],
            "params": {k: v for k, v in r.params},
            "observations": r.observations,
            "elapsed_s": r.elapsed_s,
        }
        for r in results
    ]
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, default=str)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "table1":
        print(notation_table())
        return 0
    if args.trace is not None:
        from repro.obs import get_tracer

        get_tracer().enable()
    overrides = {}
    if args.iterations is not None:
        overrides["iterations"] = args.iterations
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.json is not None:
        overrides["json_path"] = args.json
    ids = (
        [e.experiment_id for e in all_experiments()]
        if args.experiment == "all"
        else [args.experiment]
    )
    results = []
    for eid in ids:
        # Iteration overrides only apply to experiments that accept them.
        entry_overrides = dict(overrides)
        if eid in ("fig10", "fig11", "fig12") and "iterations" in entry_overrides:
            entry_overrides.pop("iterations")
        if eid in ("fig10", "fig11", "fig12") and args.workers is not None:
            entry_overrides["workers"] = args.workers
        if eid not in ("resilience", "soak", "distributed"):
            entry_overrides.pop("json_path", None)
        result = run_experiment(eid, quick=args.quick, **entry_overrides)
        results.append(result)
        print(result.to_text())
        print()
    if args.json is not None and ids not in (["resilience"], ["soak"], ["distributed"]):
        # Resilience, soak and distributed write their own metrics files;
        # every other run gets the generic results dump.
        _write_results_json(results, args.json)
        print(f"json written to {args.json}")
    if args.output:
        from repro.experiments.report import write_report

        write_report(results, args.output)
        print(f"report written to {args.output}")
    if args.trace is not None:
        from repro.obs import get_tracer

        events = get_tracer().export_chrome_trace(args.trace)
        print(f"trace with {events} events written to {args.trace}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    sys.exit(main())
