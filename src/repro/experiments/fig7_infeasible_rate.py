"""Fig. 7 — Infeasible Optimization (io) rate vs Δ_io.

Paper: over 1000 iterations on the 4-k fat-tree, the io rate ranges
from 0.2% (Δ_io = 3.5) to 69% (Δ_io = 0.8); the recommendation is to
configure thresholds with K_io ≥ 2.

Each Δ point fixes ``C_max`` and ``x_min`` and derives ``CO_max`` from
Eq. 5, then re-rolls the network state per iteration and counts
INFEASIBLE placement outcomes.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.placement import PlacementEngine, PlacementProblem, PlacementSession
from repro.core.roles import classify_network
from repro.core.thresholds import ThresholdPolicy
from repro.experiments.common import ExperimentResult, IterationSampler
from repro.lp.result import SolveStatus
from repro.routing.response_time import PathEngine, ResponseTimeModel
from repro.topology.fattree import build_fat_tree

#: Δ sweep matching the paper's reported range.
DEFAULT_DELTAS: Tuple[float, ...] = (0.8, 1.0, 1.25, 1.5, 2.0, 2.5, 3.0, 3.5)


def io_rate_for_policy(
    policy: ThresholdPolicy,
    iterations: int,
    k: int = 4,
    seed: Optional[int] = 0,
    max_hops: Optional[int] = None,
) -> float:
    """Infeasible-rate (%) of the placement program over random states."""
    topology = build_fat_tree(k)
    sampler = IterationSampler(topology, x_min=policy.x_min, seed=seed)
    session = PlacementSession(
        engine=PlacementEngine(
            response_model=ResponseTimeModel(engine=PathEngine.DP, max_hops=max_hops),
            with_routes=False,
        )
    )
    infeasible = 0
    considered = 0
    for _, capacities in sampler.states(iterations):
        roles = classify_network(capacities, policy)
        busy, candidates = roles.busy, roles.candidates
        if not busy:
            continue  # nothing to optimize, not an io event either way
        considered += 1
        problem = PlacementProblem(
            topology=topology,
            busy=tuple(busy),
            candidates=tuple(candidates),
            cs=np.array([policy.excess_load(capacities[b]) for b in busy]),
            cd=np.array([policy.spare_capacity(capacities[c]) for c in candidates]),
            data_mb=np.full(len(busy), 10.0),
            max_hops=max_hops,
        )
        report = session.solve(problem)
        if report.status is SolveStatus.INFEASIBLE:
            infeasible += 1
    if considered == 0:
        return 0.0
    return 100.0 * infeasible / considered


def run(
    iterations: int = 1000,
    deltas: Sequence[float] = DEFAULT_DELTAS,
    c_max: float = 82.0,
    x_min: float = 10.0,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate Fig. 7's io-rate curve."""
    start = time.perf_counter()
    rows = []
    rates = []
    for delta in deltas:
        policy = ThresholdPolicy.with_delta_io(delta, c_max=c_max, x_min=x_min)
        rate = io_rate_for_policy(policy, iterations, seed=seed)
        rates.append(rate)
        rows.append((delta, policy.co_max, rate, "yes" if delta >= 2.0 else "no"))
    monotone = all(a >= b - 2.0 for a, b in zip(rates, rates[1:]))
    low_at_2 = min(r for d, r in zip(deltas, rates) if d >= 2.0) if any(
        d >= 2.0 for d in deltas
    ) else float("nan")
    return ExperimentResult(
        experiment_id="fig7",
        title="Infeasible Optimization rate vs delta_io (4-k fat-tree)",
        columns=("delta_io", "CO_max (derived)", "io rate %", "meets K_io>=2"),
        rows=tuple(rows),
        paper_claim="io rate 69% at delta=0.8 falling to 0.2% at delta=3.5; set K_io >= 2",
        observations=(
            f"io rate falls {'monotonically' if monotone else 'non-monotonically'} "
            f"from {rates[0]:.1f}% to {rates[-1]:.1f}%; "
            f"min rate at delta>=2 is {low_at_2:.1f}%"
        ),
        elapsed_s=time.perf_counter() - start,
        params=(("iterations", iterations), ("c_max", c_max), ("x_min", x_min), ("seed", seed)),
    )
