"""Extra study: soak the control plane under sustained churn + chaos.

The paper evaluates one-shot placements on static snapshots; this study
drives the manager with hours of *open-loop* traffic — diurnal load
drift, Poisson offload demands, bursty admission/eviction churn —
through a bounded QoS-tiered ingress gate, and measures whether the
control plane keeps up (wall-clock event throughput, event latency
percentiles), degrades gracefully when it cannot (degradation-ladder
trajectory), and stays honest about its incremental re-placement (drift
watchdog against a from-scratch oracle solve). Each seed runs the soak
twice: chaos off (the throughput row) and with composed chaos — 20%
message loss, duplication/reordering, a timed network partition, and a
mid-soak manager crash recovered by the standby (the recovery row).
PRODUCTION-tier events must never be shed or rejected, and the
strict-priority QoS audit must show zero production-class loss.
"""

from __future__ import annotations

import json
import time
from dataclasses import replace
from pathlib import Path
from typing import Optional, Sequence

from repro.experiments.common import ExperimentResult
from repro.obs import normalize_counter_keys, observability_artifact
from repro.simulation.soak import SoakConfig, default_soak_chaos, run_soak

DEFAULT_SEEDS: Sequence[int] = (0, 1)


def _record(label: str, result) -> dict:
    counters = result.counters
    return {
        "mode": label,
        "seed": result.config.seed,
        "events_generated": result.events_generated,
        "events_applied": result.events_applied,
        "events_per_min": result.events_per_min,
        "wall_seconds": result.wall_seconds,
        "latency_p50_s": result.latency_p50_s,
        "latency_p95_s": result.latency_p95_s,
        "latency_p99_s": result.latency_p99_s,
        "ladder_max_level": int(result.ladder_max_level),
        "ladder_transitions": len(result.ladder_transitions),
        "final_drift": result.final_drift,
        "watchdog_resets": result.watchdog_resets,
        "production_losses": result.production_losses,
        "production_loss_mb": result.qos.production_loss_mb,
        "manager_took_over_at": result.took_over_at,
        "counters": normalize_counter_keys(
            {
                "offloads_established": counters.offloads_established,
                "rounds_frozen": counters.rounds_frozen,
                "placements_reset": counters.placements_reset,
                "retransmissions": counters.retransmissions,
                "messages_dropped": result.network.messages_dropped,
            }
        ),
    }


def run(
    seeds: Sequence[int] = DEFAULT_SEEDS,
    horizon_s: float = 600.0,
    json_path: Optional[str] = None,
) -> ExperimentResult:
    """Calm + chaotic soak per seed; optionally dumps the throughput,
    drift and QoS metrics as JSON (the CI soak-smoke artifact)."""
    start = time.perf_counter()
    base = SoakConfig(horizon_s=horizon_s)
    chaos = default_soak_chaos(crash_at=horizon_s / 2.0)
    rows = []
    records = []
    for seed in seeds:
        for label, config in (
            ("calm", replace(base, seed=seed)),
            ("chaos", replace(base, seed=seed, chaos=chaos)),
        ):
            result = run_soak(config)
            record = _record(label, result)
            records.append(record)
            rows.append(
                (
                    seed,
                    label,
                    result.events_applied,
                    f"{result.events_per_min:,.0f}",
                    f"{result.latency_p95_s:.2f}",
                    int(result.ladder_max_level),
                    round(result.final_drift, 3),
                    result.watchdog_resets,
                    result.production_losses,
                    result.qos.production_loss_mb,
                )
            )
    if json_path is not None:
        artifact = {"runs": records, "observability": observability_artifact()}
        Path(json_path).write_text(json.dumps(artifact, indent=2))
    calm = [r for r in records if r["mode"] == "calm"]
    chaotic = [r for r in records if r["mode"] == "chaos"]
    floor = min(r["events_per_min"] for r in calm) if calm else 0.0
    recovered = all(r["final_drift"] <= base.drift_bound for r in chaotic)
    clean_qos = all(
        r["production_losses"] == 0 and r["production_loss_mb"] == 0.0
        for r in records
    )
    return ExperimentResult(
        experiment_id="soak",
        title="Soak: sustained churn + composed chaos against the manager (extra)",
        columns=(
            "seed", "mode", "applied", "events/min", "p95 lat (s)",
            "ladder max", "final drift", "resets", "prod shed", "prod loss (MB)",
        ),
        rows=tuple(rows),
        paper_claim=(
            "the paper evaluates one-shot placements on static snapshots; "
            "sustained operation is not measured (no figure)"
        ),
        observations=(
            f"calm-soak throughput floor {floor:,.0f} events/min; chaotic runs "
            f"{'all' if recovered else 'did NOT all'} end within the drift "
            f"bound; production-class QoS loss {'stayed zero' if clean_qos else 'was observed'}"
        ),
        elapsed_s=time.perf_counter() - start,
        params=(("seeds", tuple(seeds)), ("horizon_s", horizon_s)),
    )
