"""Extra study: control-plane message overhead vs Update-Interval Time.

The paper chooses user-defined interval times "typically in minutes,
which align with the recommended collective interval times of
enterprise networks" (Section III-B) but does not quantify the control
cost. This study runs the full manager/client simulation at several
Update-Interval Times and reports the message volume per node per
minute — the budget an operator trades against detection latency.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.core.client import DUSTClient
from repro.core.manager import DUSTManager
from repro.core.thresholds import ThresholdPolicy
from repro.experiments.common import ExperimentResult
from repro.simulation.engine import SimulationEngine
from repro.simulation.network_sim import MessageNetwork
from repro.topology.fattree import build_fat_tree
from repro.topology.links import LinkUtilizationModel

DEFAULT_INTERVALS: Sequence[float] = (30.0, 60.0, 120.0, 300.0)


def overhead_for_interval(
    update_interval_s: float,
    k: int = 4,
    horizon_s: float = 3600.0,
    hot_nodes=(5, 9),
    seed: int = 3,
):
    """(messages/node/minute, offloads established, mean detection s)."""
    topology = build_fat_tree(k)
    LinkUtilizationModel(0.2, 0.7, seed=seed).apply(topology)
    policy = ThresholdPolicy(c_max=80.0, co_max=50.0, x_min=10.0)
    engine = SimulationEngine()
    network = MessageNetwork(topology, engine)
    manager = DUSTManager(
        node_id=0, topology=topology, engine=engine, network=network,
        policy=policy,
        update_interval_s=update_interval_s,
        optimization_period_s=max(update_interval_s, 60.0),
        keepalive_timeout_s=3.0 * update_interval_s,
    )
    manager.start()
    rng = np.random.default_rng(seed)
    clients = {}
    for node in range(1, topology.num_nodes):
        client = DUSTClient(
            node_id=node, engine=engine, network=network, manager_node=0,
            policy=policy,
            base_capacity=92.0 if node in hot_nodes else float(rng.uniform(15, 40)),
            keepalive_period_s=update_interval_s / 3.0,
        )
        client.start()
        clients[node] = client
    engine.run_until(horizon_s)
    nodes = len(clients)
    minutes = horizon_s / 60.0
    per_node_per_min = network.messages_sent / nodes / minutes
    # Detection latency proxy: first offload establishes after roughly
    # one STAT + one optimization round.
    first = (
        min(o.established_at for o in manager.ledger.active)
        if manager.ledger.active
        else float("nan")
    )
    return per_node_per_min, manager.counters.offloads_established, first


def run(
    intervals: Sequence[float] = DEFAULT_INTERVALS,
    k: int = 4,
    horizon_s: float = 3600.0,
    seed: int = 3,
) -> ExperimentResult:
    """Message volume and reaction speed per Update-Interval Time."""
    start = time.perf_counter()
    rows = []
    volumes = []
    for interval in intervals:
        per_node, established, first = overhead_for_interval(
            interval, k=k, horizon_s=horizon_s, seed=seed
        )
        volumes.append(per_node)
        rows.append((f"{interval:.0f} s", per_node, established, first))
    decreasing = all(a >= b - 1e-9 for a, b in zip(volumes, volumes[1:]))
    return ExperimentResult(
        experiment_id="overhead",
        title="Control-plane message volume vs Update-Interval Time (extra)",
        columns=("update interval", "msgs/node/minute", "offloads established",
                 "first offload at (s)"),
        rows=tuple(rows),
        paper_claim=(
            "interval times 'typically in minutes' are recommended; the control "
            "cost behind that advice is not quantified (no figure)"
        ),
        observations=(
            f"message volume {'falls monotonically' if decreasing else 'varies'} "
            "with the interval; longer intervals delay the first offload — the "
            "overhead/latency trade the minutes-scale recommendation balances"
        ),
        elapsed_s=time.perf_counter() - start,
        params=(("k", k), ("horizon_s", horizon_s), ("seed", seed)),
    )
