"""Fig. 8 — ILP computation time vs max-hop on the 4-k fat-tree.

Paper: averaged over 100 iterations, computation time grows with the
max-hop limit; with no limit it stays below 3.5 s, and a 0.5 s
threshold suggests max-hop = 10 for the 4-k (20-node) topology.

The time is dominated by the faithful exhaustive path enumeration
behind ``Trmin`` — exactly the paper's ``~k^6`` term — so the measured
curve has the same blow-up shape even though absolute numbers depend on
the host machine.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.placement import PlacementEngine, PlacementProblem, PlacementSession
from repro.core.roles import classify_network
from repro.core.thresholds import ThresholdPolicy
from repro.experiments.common import ExperimentResult, IterationSampler
from repro.routing.engine import TrminEngine
from repro.routing.response_time import PathEngine, ResponseTimeModel
from repro.topology.fattree import build_fat_tree

DEFAULT_HOPS: Tuple[Optional[int], ...] = (2, 4, 6, 8, 10, 12, None)


def mean_solve_time(
    k: int,
    max_hops: Optional[int],
    iterations: int,
    seed: int = 0,
    policy: Optional[ThresholdPolicy] = None,
    engine_kind: PathEngine = PathEngine.ENUMERATION,
    trmin_mode: str = "rows",
) -> Tuple[float, float]:
    """(mean total solve seconds, mean feasible beta) for one hop limit.

    ``trmin_mode="matrix"`` prices all busy sources through one
    all-sources DP plane (only meaningful with
    ``engine_kind=PathEngine.DP``) — this is what keeps the k=32 series
    of Fig. 10 tractable.
    """
    policy = policy or ThresholdPolicy(c_max=80.0, co_max=50.0, x_min=10.0)
    topology = build_fat_tree(k)
    sampler = IterationSampler(topology, x_min=policy.x_min, seed=seed)
    session = PlacementSession(
        engine=PlacementEngine(
            response_model=ResponseTimeModel(engine=engine_kind, max_hops=max_hops),
            with_routes=False,
            trmin_engine=TrminEngine(mode=trmin_mode),
        )
    )
    times = []
    betas = []
    for _, capacities in sampler.states(iterations):
        roles = classify_network(capacities, policy)
        busy, candidates = roles.busy, roles.candidates
        if not busy or not candidates:
            continue
        problem = PlacementProblem(
            topology=topology,
            busy=tuple(busy),
            candidates=tuple(candidates),
            cs=np.array([policy.excess_load(capacities[b]) for b in busy]),
            cd=np.array([policy.spare_capacity(capacities[c]) for c in candidates]),
            data_mb=np.full(len(busy), 10.0),
            max_hops=max_hops,
        )
        report = session.solve(problem)
        times.append(report.total_seconds)
        if report.feasible:
            betas.append(report.objective_beta)
    return (
        float(np.mean(times)) if times else float("nan"),
        float(np.mean(betas)) if betas else float("nan"),
    )


def run(
    iterations: int = 30,
    hops: Sequence[Optional[int]] = DEFAULT_HOPS,
    threshold_s: float = 0.5,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate Fig. 8's time-vs-max-hop curve on the 4-k fat-tree."""
    start = time.perf_counter()
    rows = []
    recommended: Optional[object] = None
    times = []
    for h in hops:
        mean_s, mean_beta = mean_solve_time(4, h, iterations, seed=seed)
        times.append(mean_s)
        within = mean_s <= threshold_s
        if within:
            recommended = h
        rows.append((h if h is not None else "none", mean_s, mean_beta, "yes" if within else "no"))
    increasing = all(a <= b * 1.5 + 1e-9 for a, b in zip(times, times[1:]))
    return ExperimentResult(
        experiment_id="fig8",
        title="ILP computation time vs max-hop (4-k fat-tree, enumeration engine)",
        columns=("max-hop", "mean solve s", "mean beta (s)", f"<= {threshold_s}s"),
        rows=tuple(rows),
        paper_claim="time grows with max-hop; < 3.5 s with no limit; 0.5 s threshold => max-hop 10",
        observations=(
            f"time {'grows' if increasing else 'varies'} with max-hop; largest hop "
            f"within the {threshold_s}s threshold: {recommended}"
        ),
        elapsed_s=time.perf_counter() - start,
        params=(("iterations", iterations), ("seed", seed)),
    )
