"""Fig. 6 — memory and CPU utilization: DUST vs local monitoring.

Paper: offloading the testbed's monitoring agents cuts average device
CPU from 31% to 15% (a ≈52% relative reduction) and memory from 70% to
62% (≈12% relative), with the monitoring workload holding ≈1.2 GiB.
"""

from __future__ import annotations

import time

from repro.experiments.common import ExperimentResult
from repro.testbed.monitoring_run import compare_local_vs_offloaded


def run(intervals: int = 120, interval_s: float = 60.0, seed: int = 42) -> ExperimentResult:
    """Regenerate Fig. 6a (memory) and 6b (CPU) as one comparison."""
    start = time.perf_counter()
    cmp = compare_local_vs_offloaded(intervals=intervals, interval_s=interval_s, seed=seed)
    rows = (
        (
            "device CPU % (avg)",
            cmp.local.avg_device_cpu_pct,
            cmp.offloaded.avg_device_cpu_pct,
            cmp.cpu_reduction_pct,
            "31 -> 15 (52%)",
        ),
        (
            "memory % (avg)",
            cmp.local.avg_memory_pct,
            cmp.offloaded.avg_memory_pct,
            cmp.memory_reduction_pct,
            "70 -> 62 (12%)",
        ),
        (
            "monitoring memory (MiB)",
            cmp.local.monitoring_memory_mb,
            cmp.offloaded.monitoring_memory_mb,
            float("nan"),
            "~1228 local (1.2 GiB)",
        ),
        (
            "module CPU % (avg)",
            cmp.local.avg_module_cpu_pct,
            cmp.offloaded.avg_module_cpu_pct,
            float("nan"),
            "(~100% local, Fig. 1)",
        ),
    )
    return ExperimentResult(
        experiment_id="fig6",
        title="Resource utilization: local monitoring vs DUST offloading",
        columns=("metric", "local", "DUST offloaded", "reduction %", "paper"),
        rows=rows,
        paper_claim="CPU 31%->15% (~52% cut), memory 70%->62% (~12% cut), ~1.2 GiB monitoring",
        observations=(
            f"CPU {cmp.local.avg_device_cpu_pct:.0f}%->"
            f"{cmp.offloaded.avg_device_cpu_pct:.0f}% "
            f"({cmp.cpu_reduction_pct:.0f}% cut), memory "
            f"{cmp.local.avg_memory_pct:.0f}%->{cmp.offloaded.avg_memory_pct:.0f}% "
            f"({cmp.memory_reduction_pct:.0f}% cut)"
        ),
        elapsed_s=time.perf_counter() - start,
        params=(("intervals", intervals), ("interval_s", interval_s), ("seed", seed)),
    )
