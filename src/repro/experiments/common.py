"""Shared experiment infrastructure: results, tables, iteration helpers.

Every ``figN`` module exposes ``run(**params) -> ExperimentResult``; the
result carries the regenerated rows/series plus the paper's reference
values so EXPERIMENTS.md and the CLI can print paper-vs-measured side
by side.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.simulation.random import spawn_seeds
from repro.topology.capacity import CapacityModel
from repro.topology.graph import ShmTopologyHandle, Topology, TopologyArrays
from repro.topology.links import LinkUtilizationModel


def render_table(columns: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width text table (monospace-aligned, GitHub-friendly)."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(c) for c in columns]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(widths[i]) for i, c in enumerate(cells)) + " |"
    sep = "|" + "|".join("-" * (w + 2) for w in widths) + "|"
    out = [line(list(columns)), sep]
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "nan"
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.001:
            return f"{cell:.3g}"
        return f"{cell:.3f}".rstrip("0").rstrip(".")
    return str(cell)


@dataclass(frozen=True)
class ExperimentResult:
    """One regenerated table/figure."""

    experiment_id: str  # e.g. "fig7"
    title: str
    columns: Tuple[str, ...]
    rows: Tuple[Tuple[object, ...], ...]
    paper_claim: str  # what the paper reports for this figure
    observations: str = ""  # measured-vs-paper commentary
    elapsed_s: float = 0.0
    params: Tuple[Tuple[str, object], ...] = ()

    def to_text(self) -> str:
        head = [f"== {self.experiment_id}: {self.title} =="]
        if self.params:
            head.append("params: " + ", ".join(f"{k}={v}" for k, v in self.params))
        body = render_table(self.columns, self.rows)
        tail = [f"paper: {self.paper_claim}"]
        if self.observations:
            tail.append(f"observed: {self.observations}")
        tail.append(f"(ran in {self.elapsed_s:.1f}s)")
        return "\n".join(head + [body] + tail)


class IterationSampler:
    """Per-iteration randomized network state for the placement studies.

    Each iteration draws fresh node capacities and link utilizations
    from independently-seeded streams, exactly like the paper's
    simulator re-rolls the dynamic network state.
    """

    def __init__(
        self,
        topology: Topology,
        x_min: float,
        seed: Optional[int],
        util_low: float = 0.1,
        util_high: float = 0.9,
    ) -> None:
        self.topology = topology
        self.x_min = x_min
        self.util_low = util_low
        self.util_high = util_high
        self._master_seed = seed

    def states(self, iterations: int):
        """Yield ``(iteration, capacities)`` with link state applied."""
        seeds = spawn_seeds(self._master_seed, iterations * 2)
        cap_model = CapacityModel(x_min=self.x_min)
        for it in range(iterations):
            cap_model.reseed(seeds[2 * it])
            LinkUtilizationModel(
                self.util_low, self.util_high, seed=seeds[2 * it + 1]
            ).apply(self.topology)
            yield it, cap_model.sample(self.topology.num_nodes)


def timed(fn: Callable[[], object]) -> Tuple[object, float]:
    """Run ``fn`` returning (result, elapsed_seconds)."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def publish_topology_arrays(arrays: TopologyArrays) -> ShmTopologyHandle:
    """Move a topology blueprint into a shared-memory arena.

    Returns the :class:`~repro.topology.graph.ShmTopologyHandle` to put
    in worker payloads: a ~100-byte (segment name, version) pair, so
    dispatch size stays flat no matter how large the fabric is. The
    caller owns the segment and should ``handle.unlink()`` in a
    ``finally`` once the sweep returns (idempotent — a pool-rebuild may
    already have unlinked it).
    """
    return arrays.to_shm()


def resolve_topology_arrays(
    blueprint: "TopologyArrays | ShmTopologyHandle | None",
) -> Optional[TopologyArrays]:
    """Resolve a payload's topology blueprint to plain arrays.

    Accepts either pre-shm payload styles (``TopologyArrays`` inline, or
    ``None`` for build-locally) or an :class:`ShmTopologyHandle`, which
    attaches zero-copy to the publisher's arena. Point functions call
    this so serial, forked, and legacy callers all take the same path.
    """
    if isinstance(blueprint, ShmTopologyHandle):
        return blueprint.resolve()
    return blueprint


def run_sharded_sweep(
    point_fn: Callable,
    payloads: Sequence,
    workers: Optional[int] = None,
    kind: str = "process",
    arenas: Sequence = (),
) -> List:
    """Shard independent experiment points over the worker pool.

    The unit of work is one *point* — e.g. one (k, seed) instance of a
    scalability sweep. ``point_fn`` must be a module-level (picklable)
    callable of one payload; payloads should carry either plain arrays
    (:class:`~repro.topology.graph.TopologyArrays`) or — for anything
    large — an :class:`~repro.topology.graph.ShmTopologyHandle` from
    :func:`publish_topology_arrays`, so workers attach the shared arena
    instead of unpickling megabytes of wiring. Results come back in
    payload order; each worker's obs-registry delta is merged into the
    parent registry via ``collect_metrics=True``, so counters and
    histograms read the same as a serial run.

    ``arenas`` are the :class:`~repro.parallel.ShmArena` objects backing
    the payload handles; they are forwarded to the pool so a broken-pool
    rebuild can unlink them (the parent's mappings survive, so the retry
    and the serial fallback still resolve through the in-process cache).

    Any pool failure (sandboxed environment, unpicklable payload,
    worker death twice) degrades to the serial loop, which is always
    correct — just slower.
    """
    from repro.parallel import map_with_pool_retry, resolve_workers

    payloads = list(payloads)
    workers = resolve_workers(workers, task_count=len(payloads))
    if workers <= 1 or len(payloads) < 2:
        return [point_fn(p) for p in payloads]
    results = map_with_pool_retry(
        point_fn, payloads, workers, kind=kind, collect_metrics=True, arenas=arenas
    )
    if results is None:
        return [point_fn(p) for p in payloads]
    return results


#: Paper Table I, rendered for completeness (the only table in the paper).
NOTATION_ROWS: Tuple[Tuple[str, str], ...] = (
    ("G = (V, E)", "undirected graph: V nodes, E links"),
    ("x_ij", "continuous optimization decision variable"),
    ("C_max (%)", "Busy node's threshold capacity"),
    ("CO_max (%)", "Offload-candidate node's threshold capacity"),
    ("C_j (%)", "utilized capacity of node j"),
    ("D_i (Mb)", "monitoring data of node i"),
    ("Lu_{i,j} (Mbps)", "link utilization bandwidth between i and j"),
    ("p", "set of all reachable paths between node pairs (V_b x V_o)"),
    ("Tr_{i,j}", "response time (s) between nodes i and j"),
    ("Trmin_{i,j}", "minimum response time among all paths p"),
    ("x_min", "nodes' minimum usage capacity"),
    ("Cs", "total resources to be offloaded from Busy nodes"),
    ("Cd", "total available resources of Offload-candidate nodes"),
    ("beta", "optimization objective"),
)


def notation_table() -> str:
    """Paper Table I as text."""
    return render_table(("Notation", "Explanation"), NOTATION_ROWS)
