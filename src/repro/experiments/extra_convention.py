"""Extra study: Eq. 1's bandwidth-convention ambiguity, quantified.

The paper defines ``Lu`` as *utilized* bandwidth yet divides by it to
get transfer time (see EXPERIMENTS.md note 3). This study runs the same
randomized placement workload under both readings and compares the
quantities the paper reports — showing which conclusions are and are
not sensitive to the choice.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.core.heuristic import solve_heuristic
from repro.core.metrics import mean_hops
from repro.core.placement import PlacementEngine, PlacementProblem, PlacementSession
from repro.core.roles import classify_network
from repro.core.thresholds import ThresholdPolicy
from repro.experiments.common import ExperimentResult, IterationSampler
from repro.routing.response_time import PathEngine, ResponseTimeModel
from repro.topology.fattree import build_fat_tree
from repro.topology.links import BandwidthConvention


def run(iterations: int = 60, k: int = 4, seed: int = 0) -> ExperimentResult:
    """Compare AVAILABLE vs UTILIZED_LITERAL over random states."""
    start = time.perf_counter()
    policy = ThresholdPolicy(c_max=80.0, co_max=50.0, x_min=10.0)
    topology = build_fat_tree(k)
    sampler = IterationSampler(topology, x_min=policy.x_min, seed=seed)

    stats = {
        conv: {"feasible": 0, "hops": [], "hfr": [], "solved": 0}
        for conv in BandwidthConvention
    }
    # One session per convention for the whole sweep, so consecutive
    # iterations share the Trmin cache and LP warm-start state instead
    # of rebuilding a cold PlacementEngine every time.
    sessions = {
        conv: PlacementSession(
            engine=PlacementEngine(
                response_model=ResponseTimeModel(
                    convention=conv, engine=PathEngine.DP
                ),
            )
        )
        for conv in BandwidthConvention
    }
    heuristic_trmins = {
        conv: sessions[conv].trmin_engine for conv in BandwidthConvention
    }
    agreement = 0
    considered = 0
    for _, capacities in sampler.states(iterations):
        roles = classify_network(capacities, policy)
        busy, candidates = roles.busy, roles.candidates
        if not busy or not candidates:
            continue
        considered += 1
        problem = PlacementProblem(
            topology=topology,
            busy=tuple(busy),
            candidates=tuple(candidates),
            cs=np.array([policy.excess_load(capacities[b]) for b in busy]),
            cd=np.array([policy.spare_capacity(capacities[c]) for c in candidates]),
            data_mb=np.full(len(busy), 10.0),
        )
        destinations = {}
        for conv in BandwidthConvention:
            report = sessions[conv].solve(problem)
            bucket = stats[conv]
            bucket["solved"] += 1
            if report.feasible:
                bucket["feasible"] += 1
                bucket["hops"].append(mean_hops(report))
                destinations[conv] = frozenset(report.destinations())
            bucket["hfr"].append(
                solve_heuristic(
                    problem,
                    convention=conv,
                    trmin_engine=heuristic_trmins[conv],
                ).hfr_pct
            )
        if len(destinations) == 2 and len(set(destinations.values())) == 1:
            agreement += 1

    rows = []
    for conv in BandwidthConvention:
        bucket = stats[conv]
        rows.append((
            conv.value,
            100.0 * bucket["feasible"] / bucket["solved"] if bucket["solved"] else 0.0,
            float(np.mean(bucket["hops"])) if bucket["hops"] else float("nan"),
            float(np.mean(bucket["hfr"])) if bucket["hfr"] else float("nan"),
        ))
    agree_pct = 100.0 * agreement / considered if considered else 0.0
    return ExperimentResult(
        experiment_id="convention",
        title="Eq. 1 bandwidth-convention sensitivity (extra)",
        columns=("convention", "feasible %", "mean hops", "mean heuristic HFR %"),
        rows=tuple(rows),
        paper_claim=(
            "the paper's text is ambiguous between utilized and available "
            "bandwidth as Eq. 1's denominator (no figure)"
        ),
        observations=(
            f"feasibility and HFR are convention-independent (capacity-driven); "
            f"identical destination sets in {agree_pct:.0f}% of iterations — only "
            "route pricing shifts"
        ),
        elapsed_s=time.perf_counter() - start,
        params=(("iterations", iterations), ("k", k), ("seed", seed)),
    )
