"""Extra study: control-plane resilience under chaos.

The paper assumes a stable control fabric; this study measures what its
protocol costs and guarantees when that assumption breaks. Each seed
runs the default chaos scenario (10% message drop, 5% duplication, 10%
reordering, delay jitter, and one mid-run manager crash recovered by a
standby) next to its fault-free twin, and reports whether the offload
ledger reconverged to the reference placement, how long recovery took,
the retransmission/message overhead, and the strict-priority QoS audit
(production-class loss must be zero).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.experiments.common import ExperimentResult
from repro.obs import normalize_counter_keys, observability_artifact
from repro.simulation.chaos import default_scenario, evaluate_scenario

DEFAULT_SEEDS: Sequence[int] = (0, 1, 2)


def run(
    seeds: Sequence[int] = DEFAULT_SEEDS,
    horizon_s: float = 3600.0,
    json_path: Optional[str] = None,
) -> ExperimentResult:
    """Chaos-vs-reference comparison per seed; optionally dumps the
    recovery metrics as JSON (the CI chaos-smoke artifact)."""
    start = time.perf_counter()
    rows = []
    records = []
    for seed in seeds:
        scenario = default_scenario(seed=seed)
        if horizon_s != scenario.horizon_s:
            crash_at = horizon_s / 2.0
            from dataclasses import replace

            scenario = replace(scenario, horizon_s=horizon_s, manager_crash_at=crash_at)
        comparison = evaluate_scenario(scenario)
        faulty = comparison.faulty
        counters = faulty.counters
        recovery = comparison.recovery_s
        # One vocabulary everywhere: the per-run counter block uses the
        # metric-catalog names (docs/observability.md), summing the
        # manager's and the clients' retransmissions like the transport
        # metric does.
        run_counters = normalize_counter_keys(
            {
                "messages_sent": faulty.messages_sent,
                "messages_dropped": faulty.messages_dropped,
                "faults_dropped": faulty.faults_dropped,
                "duplicates_injected": faulty.duplicates_injected,
                "retransmissions": counters.retransmissions
                + faulty.client_retransmissions,
            }
        )
        rows.append(
            (
                seed,
                "yes" if comparison.converged else "NO",
                round(comparison.divergence, 4),
                "n/a" if recovery is None else f"{recovery:.0f}",
                round(comparison.overhead_pct, 1),
                run_counters["network.faults_dropped"],
                run_counters["network.duplicates_injected"],
                run_counters["transport.retransmissions"],
                faulty.qos.production_loss_mb,
            )
        )
        records.append(
            {
                "seed": seed,
                "converged": comparison.converged,
                "placement_divergence": comparison.divergence,
                "recovery_time_s": recovery,
                "message_overhead_pct": comparison.overhead_pct,
                "counters": run_counters,
                "manager_took_over_at": faulty.took_over_at,
                "production_loss_mb": faulty.qos.production_loss_mb,
                "monitoring_dropped_mb": faulty.qos.monitoring_dropped_mb,
            }
        )
    if json_path is not None:
        artifact = {"runs": records, "observability": observability_artifact()}
        Path(json_path).write_text(json.dumps(artifact, indent=2))
    all_converged = all(r["converged"] for r in records)
    no_production_loss = all(r["production_loss_mb"] == 0.0 for r in records)
    return ExperimentResult(
        experiment_id="resilience",
        title="Chaos resilience: lossy fabric + manager failover (extra)",
        columns=(
            "seed", "converged", "divergence", "recovery (s)", "overhead (%)",
            "network.faults_dropped", "network.duplicates_injected",
            "transport.retransmissions", "prod loss (MB)",
        ),
        rows=tuple(rows),
        paper_claim=(
            "the paper's control plane assumes reliable delivery and a "
            "single always-up manager (no figure)"
        ),
        observations=(
            f"{'every' if all_converged else 'NOT every'} chaos run reconverged "
            "to the fault-free placement; production-class loss "
            f"{'stayed zero' if no_production_loss else 'was observed'} under "
            "strict-priority QoS"
        ),
        elapsed_s=time.perf_counter() - start,
        params=(("seeds", tuple(seeds)), ("horizon_s", horizon_s)),
    )
