"""Fig. 11 — scalability: heuristic HFR (a) and ILP time (b) vs size.

Paper: as the fat-tree grows from small to large scale, the heuristic's
HFR falls from 47.92% to 11.04% — approximately a power law with
exponent ≈ −0.5 in network size — while mean ILP optimization time
rises from 0.2 s to over 153 s. The crossover motivates zoning
networks at ≤ 80 nodes or switching to the heuristic.

HFR falls with k because node degree grows linearly in k: a busy switch
in a larger fabric simply has more one-hop candidates.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.heuristic import solve_heuristic
from repro.core.metrics import fit_power_law
from repro.core.placement import PlacementEngine, PlacementProblem, PlacementSession
from repro.core.roles import classify_network
from repro.core.thresholds import ThresholdPolicy
from repro.experiments.common import (
    ExperimentResult,
    IterationSampler,
    publish_topology_arrays,
    resolve_topology_arrays,
    run_sharded_sweep,
)
from repro.routing import TrminEngine
from repro.routing.response_time import PathEngine, ResponseTimeModel
from repro.topology.fattree import build_fat_tree, fat_tree_arrays
from repro.topology.graph import ShmTopologyHandle, Topology, TopologyArrays

#: (k, iterations, run_ilp, ilp_max_hops): the ILP column is produced for
#: sizes where the paper itself still ran the optimization; the paper
#: recommends zones of <= 80 nodes precisely because larger ILPs blow up.
DEFAULT_SCALES: Tuple[Tuple[int, int, bool, Optional[int]], ...] = (
    (4, 20, True, None),
    (8, 8, True, 5),
    (16, 3, True, 4),
    (32, 2, False, None),
    (64, 1, False, None),
)


def scalability_point(
    k: int,
    iterations: int,
    run_ilp: bool,
    ilp_max_hops: Optional[int],
    seed: int = 0,
    policy: Optional[ThresholdPolicy] = None,
    arrays: "Optional[TopologyArrays | ShmTopologyHandle]" = None,
) -> Tuple[float, float, float]:
    """(mean HFR %, mean ILP seconds, mean heuristic seconds) at size k.

    The default thresholds use ``CO_max = 35``: the paper does not state
    the thresholds behind Fig. 11, and this value reproduces its HFR
    band (≈48% at small scale decaying to ≈11% at 5120 nodes) — with
    more generous candidate thresholds one-hop capacity stops being
    scarce at scale and HFR collapses to zero instead.

    ``arrays`` is the sharded-sweep path (see fig12): plain arrays or a
    shared-memory handle a worker attaches zero-copy. The iteration
    stream depends only on ``seed``, so per-seed HFR values are
    identical whether this point runs inline or on a pool worker.
    """
    policy = policy or ThresholdPolicy(c_max=80.0, co_max=35.0, x_min=10.0)
    arrays = resolve_topology_arrays(arrays)
    topology = Topology.from_arrays(arrays) if arrays is not None else build_fat_tree(k)
    sampler = IterationSampler(topology, x_min=policy.x_min, seed=seed)
    ilp_session = PlacementSession(
        engine=PlacementEngine(
            response_model=ResponseTimeModel(
                engine=PathEngine.ENUMERATION, max_hops=ilp_max_hops
            ),
            with_routes=False,
        )
    )
    heuristic_trmin = TrminEngine(
        ResponseTimeModel(engine=PathEngine.DP), mode="matrix"
    )
    hfrs, ilp_times, heuristic_times = [], [], []
    for _, capacities in sampler.states(iterations):
        roles = classify_network(capacities, policy)
        busy, candidates = roles.busy, roles.candidates
        if not busy or not candidates:
            continue
        problem = PlacementProblem(
            topology=topology,
            busy=tuple(busy),
            candidates=tuple(candidates),
            cs=np.array([policy.excess_load(capacities[b]) for b in busy]),
            cd=np.array([policy.spare_capacity(capacities[c]) for c in candidates]),
            data_mb=np.full(len(busy), 10.0),
            max_hops=ilp_max_hops,
        )
        heuristic = solve_heuristic(problem, trmin_engine=heuristic_trmin)
        hfrs.append(heuristic.hfr_pct)
        heuristic_times.append(heuristic.total_seconds)
        if run_ilp:
            ilp_times.append(ilp_session.solve(problem).total_seconds)
    return (
        float(np.mean(hfrs)) if hfrs else float("nan"),
        float(np.mean(ilp_times)) if ilp_times else float("nan"),
        float(np.mean(heuristic_times)) if heuristic_times else float("nan"),
    )


def _sweep_point(payload: dict) -> Tuple[float, float, float]:
    """One (k, seed) scale point — module-level so pool workers can run it."""
    return scalability_point(
        payload["k"],
        payload["iterations"],
        payload["run_ilp"],
        payload["ilp_max_hops"],
        seed=payload["seed"],
        arrays=payload["arrays"],
    )


def run(
    scales: Sequence[Tuple[int, int, bool, Optional[int]]] = DEFAULT_SCALES,
    seed: int = 0,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Regenerate Fig. 11a (HFR vs size) and 11b (ILP time vs size).

    Scale points shard over the worker pool: one blueprint build per k,
    published into a shared-memory arena, and shipped to workers as a
    ~100-byte handle (see :func:`scalability_point`) — dispatch size no
    longer grows with the fabric.
    """
    start = time.perf_counter()
    handles = {
        k: publish_topology_arrays(fat_tree_arrays(k))
        for k in sorted({k for k, _, _, _ in scales})
    }
    payloads = [
        {
            "k": k,
            "iterations": iterations,
            "run_ilp": run_ilp,
            "ilp_max_hops": ilp_hops,
            "seed": seed,
            "arrays": handles[k],
        }
        for k, iterations, run_ilp, ilp_hops in scales
    ]
    try:
        points = run_sharded_sweep(
            _sweep_point, payloads, workers=workers, arenas=tuple(handles.values())
        )
    finally:
        for handle in handles.values():
            handle.unlink()
    rows = []
    sizes, hfr_series = [], []
    for (k, iterations, run_ilp, ilp_hops), (hfr, ilp_s, _) in zip(scales, points):
        nodes = 5 * k * k // 4
        rows.append((f"{k}-k", nodes, hfr, ilp_s if run_ilp else float("nan")))
        if hfr == hfr and hfr > 0:
            sizes.append(nodes)
            hfr_series.append(hfr)
    exponent = (
        fit_power_law(sizes, hfr_series) if len(hfr_series) >= 2 else float("nan")
    )
    return ExperimentResult(
        experiment_id="fig11",
        title="Scalability: heuristic HFR and ILP computation time vs network size",
        columns=("fat-tree", "nodes", "mean HFR %", "mean ILP solve s"),
        rows=tuple(rows),
        paper_claim=(
            "HFR falls 47.92% -> 11.04% (~size^-0.5); mean ILP time rises 0.2s -> 153s"
        ),
        observations=(
            f"HFR falls from {hfr_series[0]:.1f}% to {hfr_series[-1]:.1f}% "
            f"(power-law exponent {exponent:.2f}); ILP time grows with size"
            if hfr_series
            else "no overloaded iterations sampled"
        ),
        elapsed_s=time.perf_counter() - start,
        params=(("seed", seed),),
    )
