"""Experiment harness: one module per paper figure, plus registry/CLI."""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    IterationSampler,
    notation_table,
    render_table,
)

__all__ = [
    "ExperimentResult",
    "IterationSampler",
    "notation_table",
    "render_table",
]
