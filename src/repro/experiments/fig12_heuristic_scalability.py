"""Fig. 12 — heuristic execution time vs network size.

Paper: the heuristic stays tractable far past the ILP's limit, running
in ~124 s even on the 5120-node (64-k) fat-tree; for networks larger
than the recommended 80-node zones it "performs significantly better
than the optimization algorithm".

The regenerated series reports heuristic runtime per size next to the
zone-scale ILP time so the crossover is visible.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.heuristic import solve_heuristic
from repro.core.placement import PlacementProblem
from repro.core.roles import classify_network
from repro.core.thresholds import ThresholdPolicy
from repro.experiments.common import (
    ExperimentResult,
    IterationSampler,
    publish_topology_arrays,
    resolve_topology_arrays,
    run_sharded_sweep,
)
from repro.routing import PathEngine, ResponseTimeModel, TrminEngine
from repro.topology.fattree import build_fat_tree, fat_tree_arrays
from repro.topology.graph import ShmTopologyHandle, Topology, TopologyArrays

DEFAULT_SCALES: Tuple[Tuple[int, int], ...] = ((4, 10), (8, 5), (16, 3), (32, 2), (64, 1))


def heuristic_time_at_scale(
    k: int,
    iterations: int,
    seed: int = 0,
    policy: Optional[ThresholdPolicy] = None,
    arrays: "Optional[TopologyArrays | ShmTopologyHandle]" = None,
) -> Tuple[float, float, int]:
    """(mean heuristic seconds, mean HFR %, busy count of last state).

    ``arrays`` is the sharded-sweep path: a pool worker receives the
    fat-tree as a plain-array blueprint (or a shared-memory handle it
    attaches zero-copy) and materializes its own mutable topology,
    instead of unpickling a ``Topology`` object graph. The iteration
    stream depends only on ``seed``, so the sharded and serial runs
    sample identical network states.
    """
    policy = policy or ThresholdPolicy(c_max=80.0, co_max=50.0, x_min=10.0)
    arrays = resolve_topology_arrays(arrays)
    topology = Topology.from_arrays(arrays) if arrays is not None else build_fat_tree(k)
    sampler = IterationSampler(topology, x_min=policy.x_min, seed=seed)
    # Shared across iterations at this scale so lane pricing reuses the
    # version-cached Trmin matrices instead of re-deriving them per
    # state; matrix mode prices all busy sources in one DP plane.
    trmin = TrminEngine(ResponseTimeModel(engine=PathEngine.DP), mode="matrix")
    times, hfrs, busy_count = [], [], 0
    for _, capacities in sampler.states(iterations):
        roles = classify_network(capacities, policy)
        busy, candidates = roles.busy, roles.candidates
        if not busy or not candidates:
            continue
        busy_count = len(busy)
        problem = PlacementProblem(
            topology=topology,
            busy=tuple(busy),
            candidates=tuple(candidates),
            cs=np.array([policy.excess_load(capacities[b]) for b in busy]),
            cd=np.array([policy.spare_capacity(capacities[c]) for c in candidates]),
            data_mb=np.full(len(busy), 10.0),
        )
        report = solve_heuristic(problem, trmin_engine=trmin)
        times.append(report.total_seconds)
        hfrs.append(report.hfr_pct)
    return (
        float(np.mean(times)) if times else float("nan"),
        float(np.mean(hfrs)) if hfrs else float("nan"),
        busy_count,
    )


def _sweep_point(payload: dict) -> Tuple[float, float, int]:
    """One (k, seed) scale point — module-level so pool workers can run it."""
    return heuristic_time_at_scale(
        payload["k"],
        payload["iterations"],
        seed=payload["seed"],
        arrays=payload["arrays"],
    )


def run(
    scales: Sequence[Tuple[int, int]] = DEFAULT_SCALES,
    seed: int = 0,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Regenerate Fig. 12's heuristic-runtime-vs-size series.

    Scale points are independent, so they shard over the worker pool:
    each fat-tree is built once per k (the blueprint LRU), published
    into a shared-memory arena, and shipped to workers as a ~100-byte
    handle — dispatch size no longer grows with the fabric.
    """
    start = time.perf_counter()
    handles = {
        k: publish_topology_arrays(fat_tree_arrays(k))
        for k in sorted({k for k, _ in scales})
    }
    payloads = [
        {"k": k, "iterations": iterations, "seed": seed, "arrays": handles[k]}
        for k, iterations in scales
    ]
    try:
        points = run_sharded_sweep(
            _sweep_point, payloads, workers=workers, arenas=tuple(handles.values())
        )
    finally:
        for handle in handles.values():
            handle.unlink()
    rows = []
    times = []
    for (k, iterations), (mean_s, hfr, busy) in zip(scales, points):
        nodes = 5 * k * k // 4
        rows.append((f"{k}-k", nodes, mean_s, hfr, busy))
        times.append(mean_s)
    growing = all(a <= b + 1e-9 for a, b in zip(times, times[1:]))
    return ExperimentResult(
        experiment_id="fig12",
        title="Heuristic execution time vs network size",
        columns=("fat-tree", "nodes", "mean heuristic s", "mean HFR %", "busy nodes (last)"),
        rows=tuple(rows),
        paper_claim="heuristic completes in ~124 s at 5120 nodes, far below ILP blow-up",
        observations=(
            f"runtime {'grows monotonically' if growing else 'varies'} with size; "
            f"largest network solved in {times[-1]:.2f}s"
        ),
        elapsed_s=time.perf_counter() - start,
        params=(("seed", seed),),
    )
