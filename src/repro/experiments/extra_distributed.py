"""Extra study: distributed placement solve vs the centralized LP.

The paper's Eq. 3 program is solved by one manager holding the whole
network view. This study splits the same program across per-pod zone
managers (see ``docs/distributed_solve.md``): each zone prices only its
own busy rows and presolves its local block, and a thin coordinator
exchanges duals until the global optimum is certified. On every point
the distributed objective must match the centralized solve to float
precision — the speedup column is the *modeled parallel wall-clock*
(coordinator time plus the slowest zone, the same reading as the zoned
engine's ``max_zone_seconds``) against the measured centralized solve
on the same snapshot.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from repro.core.placement import PlacementEngine, PlacementProblem, PlacementSession
from repro.core.roles import classify_network
from repro.core.thresholds import ThresholdPolicy
from repro.core.zoning import DistributedPlacementEngine, partition_by_pod
from repro.experiments.common import ExperimentResult, IterationSampler
from repro.obs import observability_artifact
from repro.routing.engine import TrminEngine
from repro.routing.response_time import PathEngine, ResponseTimeModel
from repro.topology.fattree import build_fat_tree

DEFAULT_KS: Sequence[int] = (16, 32)
#: Relative objective agreement demanded between the two solvers.
GAP_TOLERANCE = 1e-6


def _engine(max_hops: Optional[int]) -> PlacementEngine:
    """A DP-engine PlacementEngine; each solver gets its own instance so
    neither side warms the other's route cache."""
    return PlacementEngine(
        response_model=ResponseTimeModel(engine=PathEngine.DP, max_hops=max_hops),
        with_routes=False,
        trmin_engine=TrminEngine(mode="rows"),
    )


def solve_point(
    k: int,
    seed: int = 0,
    max_hops: Optional[int] = 4,
    price_rule: str = "block",
    policy: Optional[ThresholdPolicy] = None,
) -> dict:
    """Solve one fat-tree snapshot both ways; return the comparison.

    Builds the k-ary fat tree, samples one randomized network state,
    and solves the identical :class:`PlacementProblem` with the
    centralized warm-started session and with the per-pod distributed
    engine. Raises ``AssertionError`` if the objectives disagree beyond
    :data:`GAP_TOLERANCE` — the study is a correctness gate first and a
    speedup curve second.
    """
    policy = policy or ThresholdPolicy(c_max=80.0, co_max=50.0, x_min=10.0)
    topology = build_fat_tree(k)
    sampler = IterationSampler(topology, x_min=policy.x_min, seed=seed)
    _, capacities = next(iter(sampler.states(1)))
    roles = classify_network(capacities, policy)
    busy, candidates = roles.busy, roles.candidates
    problem = PlacementProblem(
        topology=topology,
        busy=tuple(busy),
        candidates=tuple(candidates),
        cs=np.array([policy.excess_load(capacities[b]) for b in busy]),
        cd=np.array([policy.spare_capacity(capacities[c]) for c in candidates]),
        data_mb=np.full(len(busy), 10.0),
        max_hops=max_hops,
    )

    central = PlacementSession(engine=_engine(max_hops)).solve(problem)
    zones = partition_by_pod(topology)
    distributed = DistributedPlacementEngine(
        zones=zones, engine=_engine(max_hops), price_rule=price_rule
    ).solve(problem)

    rel_diff = abs(distributed.objective_beta - central.objective_beta) / max(
        1.0, abs(central.objective_beta)
    )
    assert distributed.status == central.status, (
        f"k={k}: distributed {distributed.status} != centralized {central.status}"
    )
    if central.feasible:
        assert rel_diff <= GAP_TOLERANCE, (
            f"k={k}: objectives diverge by {rel_diff:.3e} > {GAP_TOLERANCE}"
        )
    speedup = central.total_seconds / max(1e-12, distributed.critical_path_seconds)
    return {
        "k": k,
        "nodes": topology.num_nodes,
        "zones": distributed.zones,
        "busy": len(busy),
        "candidates": len(candidates),
        "centralized_s": central.total_seconds,
        "critical_path_s": distributed.critical_path_seconds,
        "coordinator_s": distributed.coordinator_seconds,
        "speedup": speedup,
        "rounds": distributed.rounds,
        "pivots": distributed.pivots,
        "messages": distributed.dsolve_messages,
        "gap": distributed.gap,
        "objective_rel_diff": rel_diff,
        "objective_beta": distributed.objective_beta,
        "presolve_warm_hits": distributed.presolve_warm_hits,
    }


def run(
    ks: Sequence[int] = DEFAULT_KS,
    seed: int = 0,
    max_hops: Optional[int] = 4,
    price_rule: str = "block",
    json_path: Optional[str] = None,
) -> ExperimentResult:
    """Speedup curve of the distributed solve vs the centralized LP.

    One point per fat-tree ``k``; optionally dumps the points (plus the
    observability bundle) as JSON — the CI ``dsolve-smoke`` artifact.
    """
    start = time.perf_counter()
    points = [
        solve_point(k, seed=seed, max_hops=max_hops, price_rule=price_rule)
        for k in ks
    ]
    if json_path is not None:
        artifact = {
            "points": points,
            "gap_tolerance": GAP_TOLERANCE,
            "observability": observability_artifact(),
        }
        Path(json_path).write_text(json.dumps(artifact, indent=2))
    rows = tuple(
        (
            p["k"],
            p["zones"],
            p["busy"],
            p["candidates"],
            f"{p['centralized_s']:.3f}",
            f"{p['critical_path_s']:.3f}",
            f"{p['speedup']:.2f}x",
            p["rounds"],
            f"{p['gap']:.1e}",
            f"{p['objective_rel_diff']:.1e}",
        )
        for p in points
    )
    best = max(p["speedup"] for p in points)
    exact = all(p["objective_rel_diff"] <= GAP_TOLERANCE for p in points)
    return ExperimentResult(
        experiment_id="distributed",
        title="Distributed placement solve vs centralized LP (extra)",
        columns=(
            "k", "zones", "busy", "cand", "central s", "critical path s",
            "speedup", "rounds", "gap", "obj rel diff",
        ),
        rows=rows,
        paper_claim=(
            "the paper solves Eq. 3 at one manager; a zone-decomposed solve "
            "is not evaluated (no figure)"
        ),
        observations=(
            f"objectives {'matched' if exact else 'DID NOT match'} the "
            f"centralized LP within {GAP_TOLERANCE:g} on every point; best "
            f"modeled speedup {best:.2f}x"
        ),
        elapsed_s=time.perf_counter() - start,
        params=(
            ("ks", tuple(ks)), ("seed", seed), ("max_hops", max_hops),
            ("price_rule", price_rule),
        ),
    )
