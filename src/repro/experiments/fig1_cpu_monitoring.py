"""Fig. 1 — CPU utilization of the in-device monitoring module.

Paper: on an 8-core Aruba 8325 under 20% line-rate VxLAN overlay
traffic, the monitoring module averages ≈100% CPU (one full core) and
spikes as high as ≈600%.

This experiment runs the emulated DUT and reports the module-CPU time
series (downsampled) plus the summary statistics.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.testbed.monitoring_run import run_monitoring
from repro.testbed.vxlan import VxlanWorkload


def run(
    intervals: int = 120,
    interval_s: float = 60.0,
    seed: int = 42,
    bucket: int = 10,
) -> ExperimentResult:
    """Regenerate Fig. 1. ``bucket`` controls time-series downsampling
    for the printed table (statistics use all samples)."""
    start = time.perf_counter()
    result = run_monitoring(
        "local", intervals=intervals, interval_s=interval_s,
        workload=VxlanWorkload(seed=seed),
    )
    series = result.module_cpu_pct
    rows = []
    for begin in range(0, series.size, bucket):
        chunk = series[begin : begin + bucket]
        t_min = begin * interval_s / 60.0
        rows.append(
            (
                f"{t_min:.0f}-{t_min + chunk.size * interval_s / 60.0:.0f} min",
                float(chunk.mean()),
                float(chunk.max()),
            )
        )
    rows.append(("OVERALL", result.avg_module_cpu_pct, result.peak_module_cpu_pct))
    return ExperimentResult(
        experiment_id="fig1",
        title="CPU utilization of monitoring module (local, VxLAN 20% line rate)",
        columns=("window", "module CPU% mean", "module CPU% max"),
        rows=tuple(rows),
        paper_claim="average ~100% module CPU, spikes up to ~600% on the 8-core DUT",
        observations=(
            f"measured mean {result.avg_module_cpu_pct:.0f}%, "
            f"peak {result.peak_module_cpu_pct:.0f}%"
        ),
        elapsed_s=time.perf_counter() - start,
        params=(("intervals", intervals), ("interval_s", interval_s), ("seed", seed)),
    )
