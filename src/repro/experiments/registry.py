"""Experiment registry: one entry per paper table/figure."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.errors import ReproError
from repro.experiments import (
    extra_convention,
    extra_distributed,
    extra_hops,
    extra_overhead,
    extra_resilience,
    extra_soak,
    fig1_cpu_monitoring,
    fig6_offload_savings,
    fig7_infeasible_rate,
    fig8_maxhop_smallscale,
    fig9_success_rate,
    fig10_maxhop_largescale,
    fig11_scalability,
    fig12_heuristic_scalability,
)
from repro.experiments.common import ExperimentResult


@dataclass(frozen=True)
class ExperimentEntry:
    """One registered experiment."""

    experiment_id: str
    description: str
    run: Callable[..., ExperimentResult]
    quick_params: Dict[str, object]  # reduced-size parameters for CI


_REGISTRY: Dict[str, ExperimentEntry] = {}


def _register(entry: ExperimentEntry) -> None:
    _REGISTRY[entry.experiment_id] = entry


_register(ExperimentEntry(
    "fig1", "CPU utilization of the monitoring module under VxLAN load",
    fig1_cpu_monitoring.run, {"intervals": 30},
))
_register(ExperimentEntry(
    "fig6", "Local vs DUST-offloaded CPU and memory utilization",
    fig6_offload_savings.run, {"intervals": 30},
))
_register(ExperimentEntry(
    "fig7", "Infeasible Optimization rate vs delta_io",
    fig7_infeasible_rate.run, {"iterations": 150},
))
_register(ExperimentEntry(
    "fig8", "ILP computation time vs max-hop (small scale, 4-k)",
    fig8_maxhop_smallscale.run, {"iterations": 5, "hops": (2, 4, 6, 8)},
))
_register(ExperimentEntry(
    "fig9", "Heuristic vs ILP success split (4-k)",
    fig9_success_rate.run, {"iterations": 40},
))
_register(ExperimentEntry(
    "fig10", "ILP computation time vs max-hop (large scale, 8-k/16-k)",
    fig10_maxhop_largescale.run,
    {
        "iterations_8k": 2,
        "iterations_16k": 1,
        "hops_8k": (2, 3, 4),
        "hops_16k": (2, 3),
        "hops_32k": (),
    },
))
_register(ExperimentEntry(
    "fig11", "Scalability: HFR and ILP time vs network size",
    fig11_scalability.run,
    {"scales": ((4, 5, True, None), (8, 3, True, 4), (16, 2, False, None), (64, 1, False, None))},
))
_register(ExperimentEntry(
    "fig12", "Heuristic execution time vs network size",
    fig12_heuristic_scalability.run, {"scales": ((4, 3), (8, 2), (16, 1), (64, 1))},
))
# Extra (beyond-the-paper) studies — runnable by id, excluded from `all`
# which regenerates exactly the paper's figures.
_register(ExperimentEntry(
    "hops", "Mean hops to destination: ILP budgets vs heuristic (extra)",
    extra_hops.run, {"iterations": 15},
))
_register(ExperimentEntry(
    "convention", "Eq. 1 bandwidth-convention sensitivity (extra)",
    extra_convention.run, {"iterations": 20},
))
_register(ExperimentEntry(
    "overhead", "Control-plane message volume vs update interval (extra)",
    extra_overhead.run, {"intervals": (60.0, 300.0), "horizon_s": 1800.0},
))
_register(ExperimentEntry(
    "resilience", "Chaos resilience: lossy fabric + manager failover (extra)",
    extra_resilience.run, {"seeds": (0,), "horizon_s": 1800.0},
))
_register(ExperimentEntry(
    "soak", "Soak: sustained churn + composed chaos against the manager (extra)",
    extra_soak.run, {"seeds": (0,), "horizon_s": 300.0},
))
_register(ExperimentEntry(
    "distributed",
    "Distributed placement solve vs centralized LP (extra)",
    extra_distributed.run, {"ks": (16,)},
))

#: Paper figures, in publication order (the `all` target).
PAPER_FIGURE_IDS = ("fig1", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12")


def all_experiments() -> Tuple[ExperimentEntry, ...]:
    """Entries in figure order (paper figures only)."""
    return tuple(_REGISTRY[eid] for eid in PAPER_FIGURE_IDS)


def get_experiment(experiment_id: str) -> ExperimentEntry:
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise ReproError(
            f"unknown experiment {experiment_id!r}; known: {sorted(_REGISTRY)}"
        ) from None


def run_experiment(experiment_id: str, quick: bool = False, **overrides) -> ExperimentResult:
    """Run one experiment, optionally with its quick (CI-sized) params."""
    entry = get_experiment(experiment_id)
    params = dict(entry.quick_params) if quick else {}
    params.update(overrides)
    return entry.run(**params)
