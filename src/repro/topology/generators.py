"""Topology generators beyond the fat-tree.

DUST claims deployability "across various network topologies"; these
generators let the tests and ablation benches exercise the placement
machinery on leaf-spine fabrics, folded Clos, rings, lines, stars,
grids and connected random graphs.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx
import numpy as np

from repro.errors import TopologyError
from repro.topology.graph import NodeKind, Topology
from repro.topology.links import Link


def _link(capacity_mbps: float, latency_ms: float) -> Link:
    return Link(capacity_mbps=capacity_mbps, utilization=0.0, latency_ms=latency_ms)


def build_leaf_spine(
    num_spines: int,
    num_leaves: int,
    capacity_mbps: float = 40_000.0,
    latency_ms: float = 0.05,
) -> Topology:
    """Two-tier leaf-spine fabric: every leaf connects to every spine."""
    if num_spines < 1 or num_leaves < 1:
        raise TopologyError("leaf-spine needs at least one spine and one leaf")
    topo = Topology(name=f"leaf-spine-{num_spines}x{num_leaves}")
    spines = [
        topo.add_node(name=f"spine-{s}", kind=NodeKind.AGG_SWITCH) for s in range(num_spines)
    ]
    leaves = [
        topo.add_node(name=f"leaf-{l}", kind=NodeKind.EDGE_SWITCH) for l in range(num_leaves)
    ]
    for spine in spines:
        for leaf in leaves:
            topo.add_edge(spine, leaf, _link(capacity_mbps, latency_ms))
    return topo


def build_ring(num_nodes: int, capacity_mbps: float = 10_000.0, latency_ms: float = 0.1) -> Topology:
    """A cycle of ``num_nodes`` switches (num_nodes >= 3)."""
    if num_nodes < 3:
        raise TopologyError(f"ring needs >= 3 nodes, got {num_nodes}")
    topo = Topology(name=f"ring-{num_nodes}")
    nodes = [topo.add_node(kind=NodeKind.SWITCH) for _ in range(num_nodes)]
    for i in range(num_nodes):
        topo.add_edge(nodes[i], nodes[(i + 1) % num_nodes], _link(capacity_mbps, latency_ms))
    return topo


def build_line(num_nodes: int, capacity_mbps: float = 10_000.0, latency_ms: float = 0.1) -> Topology:
    """A path graph — the worst case for one-hop heuristic offloading."""
    if num_nodes < 2:
        raise TopologyError(f"line needs >= 2 nodes, got {num_nodes}")
    topo = Topology(name=f"line-{num_nodes}")
    nodes = [topo.add_node(kind=NodeKind.SWITCH) for _ in range(num_nodes)]
    for i in range(num_nodes - 1):
        topo.add_edge(nodes[i], nodes[i + 1], _link(capacity_mbps, latency_ms))
    return topo


def build_star(num_leaves: int, capacity_mbps: float = 10_000.0, latency_ms: float = 0.05) -> Topology:
    """One hub connected to ``num_leaves`` leaves (node 0 is the hub)."""
    if num_leaves < 1:
        raise TopologyError(f"star needs >= 1 leaf, got {num_leaves}")
    topo = Topology(name=f"star-{num_leaves}")
    hub = topo.add_node(name="hub", kind=NodeKind.AGG_SWITCH)
    for _ in range(num_leaves):
        leaf = topo.add_node(kind=NodeKind.EDGE_SWITCH)
        topo.add_edge(hub, leaf, _link(capacity_mbps, latency_ms))
    return topo


def build_grid(rows: int, cols: int, capacity_mbps: float = 10_000.0, latency_ms: float = 0.1) -> Topology:
    """``rows x cols`` mesh grid."""
    if rows < 1 or cols < 1:
        raise TopologyError("grid needs positive dimensions")
    if rows * cols < 2:
        raise TopologyError("grid needs at least 2 nodes")
    topo = Topology(name=f"grid-{rows}x{cols}")
    ids = [[topo.add_node(kind=NodeKind.SWITCH) for _ in range(cols)] for _ in range(rows)]
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                topo.add_edge(ids[r][c], ids[r][c + 1], _link(capacity_mbps, latency_ms))
            if r + 1 < rows:
                topo.add_edge(ids[r][c], ids[r + 1][c], _link(capacity_mbps, latency_ms))
    return topo


def build_random_connected(
    num_nodes: int,
    edge_probability: float = 0.15,
    seed: Optional[int] = None,
    capacity_mbps: float = 10_000.0,
    latency_ms: float = 0.1,
    max_tries: int = 100,
) -> Topology:
    """Connected Erdős–Rényi graph (resampled until connected).

    A random spanning tree is forced first so even sparse probabilities
    terminate quickly; extra edges are then sampled independently.
    """
    if num_nodes < 2:
        raise TopologyError(f"random graph needs >= 2 nodes, got {num_nodes}")
    if not 0.0 <= edge_probability <= 1.0:
        raise TopologyError(f"edge probability must be in [0, 1], got {edge_probability}")
    rng = np.random.default_rng(seed)
    topo = Topology(name=f"random-{num_nodes}")
    nodes = [topo.add_node(kind=NodeKind.SWITCH) for _ in range(num_nodes)]
    # Random spanning tree via random attachment order.
    order = rng.permutation(num_nodes)
    for idx in range(1, num_nodes):
        u = int(order[idx])
        v = int(order[rng.integers(0, idx)])
        topo.add_edge(u, v, _link(capacity_mbps, latency_ms))
    # Independent extra edges.
    for u in range(num_nodes):
        for v in range(u + 1, num_nodes):
            if not topo.has_edge(u, v) and rng.random() < edge_probability:
                topo.add_edge(u, v, _link(capacity_mbps, latency_ms))
    del max_tries  # retained for API stability; tree construction removed the retry loop
    del nodes
    return topo


def from_networkx_generator(graph: "nx.Graph", name: str = "") -> Topology:
    """Wrap any networkx graph as a :class:`Topology` (convenience)."""
    return Topology.from_networkx(graph, name=name or None)
