"""The :class:`Topology` graph type used across the reproduction.

A thin, explicit undirected multigraph-free graph: integer node ids,
node metadata (kind/name/pod), one :class:`~repro.topology.links.Link`
per edge, adjacency lists, and vectorized accessors for the routing
layer. ``networkx`` interop is provided for generators and for users
who want to bring their own graphs, but the hot paths (path
enumeration, hop-constrained shortest path) run on plain arrays and
adjacency lists — per the HPC guide, the heavy lifting stays out of
generic-object traversal.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import TopologyError
from repro.topology.links import BandwidthConvention, Link

#: Mutation-journal length cap; once exceeded the oldest entries are
#: dropped and caches older than the journal horizon must recompute.
_JOURNAL_CAP = 4096


class NodeKind(enum.Enum):
    """Hardware persona of a node — DUST is hardware-agnostic, so every
    kind can host monitoring agents; the kind only affects capacity
    profiles and reporting."""

    CORE_SWITCH = "core-switch"
    AGG_SWITCH = "agg-switch"
    EDGE_SWITCH = "edge-switch"
    SWITCH = "switch"
    SERVER = "server"
    DPU = "dpu"
    SMARTNIC = "smartnic"


@dataclass
class Node:
    """A network node: id, display name, hardware kind, optional pod."""

    node_id: int
    name: str
    kind: NodeKind = NodeKind.SWITCH
    pod: Optional[int] = None
    attrs: Dict[str, object] = field(default_factory=dict)


class Topology:
    """Undirected graph of :class:`Node` connected by :class:`Link`.

    Nodes are dense integers ``0..n-1``. Parallel edges and self-loops
    are rejected — neither occurs in the paper's fat-tree testbeds and
    allowing them would complicate path semantics for no modeling gain.
    """

    def __init__(self, name: str = "topology") -> None:
        self.name = name
        self._nodes: List[Node] = []
        self._links: List[Link] = []
        self._endpoints: List[Tuple[int, int]] = []
        self._adjacency: List[List[Tuple[int, int]]] = []  # node -> [(neighbor, edge_id)]
        self._edge_index: Dict[Tuple[int, int], int] = {}
        self._version = 0
        # Journal of (version-after-bump, dirty edge ids or None for a
        # structural change); consumed by dirty_edges_since().
        self._journal: List[Tuple[int, Optional[Tuple[int, ...]]]] = []

    # -- versioning ---------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotonically increasing mutation counter. Every structural
        change (node/edge added) and every link-state change made
        through the topology mutation API bumps it; route-pricing
        caches key their entries on this value."""
        return self._version

    def _bump(self, dirty_edges: Optional[Iterable[int]]) -> None:
        self._version += 1
        entry = None if dirty_edges is None else tuple(dirty_edges)
        self._journal.append((self._version, entry))
        if len(self._journal) > _JOURNAL_CAP:
            del self._journal[: len(self._journal) - _JOURNAL_CAP]

    def dirty_edges_since(self, version: int) -> Optional[frozenset]:
        """Edge ids whose link state may have changed after ``version``.

        Returns an empty set when nothing changed, ``None`` when the
        answer is unknown (a structural change happened, the version is
        from the future, or the journal no longer reaches back that
        far) — callers must then treat *everything* as dirty.
        """
        if version == self._version:
            return frozenset()
        if version > self._version:
            return None
        start = self._journal[0][0] if self._journal else self._version + 1
        if start > version + 1:
            return None  # journal truncated below the requested version
        dirty: set = set()
        for entry_version, edges in self._journal:
            if entry_version <= version:
                continue
            if edges is None:
                return None
            dirty.update(edges)
        return frozenset(dirty)

    # -- link-state mutation API --------------------------------------------------
    # Writing through these (rather than mutating Link objects in
    # place) is what keeps ``version``/``dirty_edges_since`` truthful —
    # the contract the incremental Trmin cache depends on.
    def set_utilization(self, edge_id: int, utilization: float) -> None:
        """Set one link's utilization and mark the edge dirty."""
        link = self.link(edge_id)
        if not 0.0 <= utilization <= 1.0:
            raise TopologyError(
                f"link utilization must be in [0, 1], got {utilization}"
            )
        link.utilization = float(utilization)
        self._bump((edge_id,))

    def set_capacity(self, edge_id: int, capacity_mbps: float) -> None:
        """Set one link's capacity and mark the edge dirty."""
        link = self.link(edge_id)
        if capacity_mbps <= 0:
            raise TopologyError(
                f"link capacity must be positive, got {capacity_mbps}"
            )
        link.capacity_mbps = float(capacity_mbps)
        self._bump((edge_id,))

    def set_link_utilizations(self, utilizations: Sequence[float]) -> None:
        """Bulk utilization update (one value per edge, by edge id);
        bumps the version once with every edge marked dirty."""
        values = np.asarray(utilizations, dtype=float)
        if values.shape != (self.num_edges,):
            raise TopologyError(
                f"need {self.num_edges} utilizations, got shape {values.shape}"
            )
        if values.size and (values.min() < 0.0 or values.max() > 1.0):
            raise TopologyError("link utilizations must be in [0, 1]")
        for link, value in zip(self._links, values):
            link.utilization = float(value)
        self._bump(range(self.num_edges))

    def touch_links(self, edge_ids: Optional[Iterable[int]] = None) -> None:
        """Declare that the given links (all, when ``None``) were
        mutated out of band — e.g. by writing ``Link`` fields directly —
        so version-keyed caches reprice them."""
        if edge_ids is None:
            self._bump(range(self.num_edges))
            return
        ids = tuple(edge_ids)
        for edge_id in ids:
            self.link(edge_id)  # validates existence
        self._bump(ids)

    # -- construction -----------------------------------------------------------
    def add_node(
        self,
        name: Optional[str] = None,
        kind: NodeKind = NodeKind.SWITCH,
        pod: Optional[int] = None,
        **attrs: object,
    ) -> int:
        """Add a node; returns its integer id."""
        node_id = len(self._nodes)
        self._nodes.append(
            Node(node_id=node_id, name=name or f"n{node_id}", kind=kind, pod=pod, attrs=attrs)
        )
        self._adjacency.append([])
        self._bump(None)
        return node_id

    def add_edge(self, u: int, v: int, link: Optional[Link] = None) -> int:
        """Connect ``u`` and ``v``; returns the edge id."""
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise TopologyError(f"self-loop on node {u} is not allowed")
        key = (min(u, v), max(u, v))
        if key in self._edge_index:
            raise TopologyError(f"duplicate edge between {u} and {v}")
        edge_id = len(self._links)
        self._links.append(link if link is not None else Link())
        self._endpoints.append(key)
        self._edge_index[key] = edge_id
        self._adjacency[u].append((v, edge_id))
        self._adjacency[v].append((u, edge_id))
        self._bump(None)
        return edge_id

    def _check_node(self, node_id: int) -> None:
        if not 0 <= node_id < len(self._nodes):
            raise TopologyError(
                f"node {node_id} does not exist in topology {self.name!r} "
                f"({len(self._nodes)} nodes)"
            )

    # -- basic queries ------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return len(self._links)

    @property
    def nodes(self) -> Sequence[Node]:
        return tuple(self._nodes)

    @property
    def links(self) -> Sequence[Link]:
        return tuple(self._links)

    @property
    def edges(self) -> Sequence[Tuple[int, int]]:
        """Edge endpoint pairs ``(u, v)`` with ``u < v``, indexed by edge id."""
        return tuple(self._endpoints)

    def node(self, node_id: int) -> Node:
        self._check_node(node_id)
        return self._nodes[node_id]

    def link(self, edge_id: int) -> Link:
        if not 0 <= edge_id < len(self._links):
            raise TopologyError(f"edge {edge_id} does not exist")
        return self._links[edge_id]

    def link_between(self, u: int, v: int) -> Link:
        """Link on the edge {u, v}; raises if absent."""
        return self._links[self.edge_id(u, v)]

    def edge_id(self, u: int, v: int) -> int:
        self._check_node(u)
        self._check_node(v)
        key = (min(u, v), max(u, v))
        try:
            return self._edge_index[key]
        except KeyError:
            raise TopologyError(f"no edge between {u} and {v}") from None

    def has_edge(self, u: int, v: int) -> bool:
        return (min(u, v), max(u, v)) in self._edge_index

    def neighbors(self, node_id: int) -> List[int]:
        self._check_node(node_id)
        return [nbr for nbr, _ in self._adjacency[node_id]]

    def incident(self, node_id: int) -> List[Tuple[int, int]]:
        """``(neighbor, edge_id)`` pairs around ``node_id``."""
        self._check_node(node_id)
        return list(self._adjacency[node_id])

    def degree(self, node_id: int) -> int:
        self._check_node(node_id)
        return len(self._adjacency[node_id])

    def nodes_of_kind(self, kind: NodeKind) -> List[int]:
        return [n.node_id for n in self._nodes if n.kind is kind]

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes)

    def __repr__(self) -> str:
        return f"Topology({self.name!r}, nodes={self.num_nodes}, edges={self.num_edges})"

    # -- vectorized views -----------------------------------------------------------
    def effective_bandwidths(
        self, convention: BandwidthConvention = BandwidthConvention.AVAILABLE
    ) -> np.ndarray:
        """Per-edge ``Lu_e`` vector (Mbps), indexed by edge id."""
        return np.array([link.effective_mbps(convention) for link in self._links])

    def edge_endpoint_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Endpoint arrays ``(us, vs)`` for all edges."""
        if not self._endpoints:
            return np.zeros(0, dtype=int), np.zeros(0, dtype=int)
        arr = np.asarray(self._endpoints, dtype=int)
        return arr[:, 0], arr[:, 1]

    # -- structure checks --------------------------------------------------------------
    def is_connected(self) -> bool:
        """BFS connectivity check (empty graph counts as connected)."""
        if self.num_nodes == 0:
            return True
        seen = np.zeros(self.num_nodes, dtype=bool)
        stack = [0]
        seen[0] = True
        count = 1
        while stack:
            u = stack.pop()
            for v, _ in self._adjacency[u]:
                if not seen[v]:
                    seen[v] = True
                    count += 1
                    stack.append(v)
        return count == self.num_nodes

    def validate(self) -> None:
        """Raise :class:`TopologyError` unless the topology is usable for
        placement (non-empty and connected)."""
        if self.num_nodes == 0:
            raise TopologyError("topology has no nodes")
        if not self.is_connected():
            raise TopologyError(f"topology {self.name!r} is not connected")

    # -- networkx interop ------------------------------------------------------------------
    def to_networkx(self):
        """Export as ``networkx.Graph`` with link attributes on edges."""
        import networkx as nx

        g = nx.Graph(name=self.name)
        for node in self._nodes:
            g.add_node(node.node_id, name=node.name, kind=node.kind.value, pod=node.pod)
        for edge_id, (u, v) in enumerate(self._endpoints):
            link = self._links[edge_id]
            g.add_edge(
                u,
                v,
                capacity_mbps=link.capacity_mbps,
                utilization=link.utilization,
                latency_ms=link.latency_ms,
            )
        return g

    @classmethod
    def from_networkx(cls, graph, name: Optional[str] = None) -> "Topology":
        """Import a ``networkx.Graph``; node labels may be arbitrary
        hashables and are relabeled densely (original label kept in
        ``Node.attrs["label"]``)."""
        topo = cls(name=name or str(graph.name or "from-networkx"))
        mapping = {}
        for label in graph.nodes:
            data = graph.nodes[label]
            kind = data.get("kind")
            mapping[label] = topo.add_node(
                name=str(data.get("name", label)),
                kind=NodeKind(kind) if isinstance(kind, str) else NodeKind.SWITCH,
                pod=data.get("pod"),
                label=label,
            )
        for u, v, data in graph.edges(data=True):
            if u == v:
                continue  # drop self-loops silently on import
            topo.add_edge(
                mapping[u],
                mapping[v],
                Link(
                    capacity_mbps=float(data.get("capacity_mbps", 10_000.0)),
                    utilization=float(data.get("utilization", 0.0)),
                    latency_ms=float(data.get("latency_ms", 0.05)),
                ),
            )
        return topo
