"""The :class:`Topology` graph type used across the reproduction.

A thin, explicit undirected multigraph-free graph: integer node ids,
node metadata (kind/name/pod), one :class:`~repro.topology.links.Link`
per edge, adjacency lists, and vectorized accessors for the routing
layer. ``networkx`` interop is provided for generators and for users
who want to bring their own graphs, but the hot paths (path
enumeration, hop-constrained shortest path) run on plain arrays and
adjacency lists — per the HPC guide, the heavy lifting stays out of
generic-object traversal.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import TopologyError
from repro.topology.links import (
    MIN_EFFECTIVE_BANDWIDTH_MBPS,
    BandwidthConvention,
    Link,
)

#: Mutation-journal length cap; once exceeded the oldest entries are
#: dropped and caches older than the journal horizon must recompute.
_JOURNAL_CAP = 4096


@dataclass(frozen=True)
class CSRAdjacency:
    """Compressed-sparse-row view of a topology's adjacency.

    ``indices[indptr[v]:indptr[v + 1]]`` are ``v``'s neighbors in
    adjacency-list (insertion) order, ``edge_ids`` the matching edge
    ids, and ``edge_costs`` the per-*edge* resistance ``1 / Lu_e``
    (indexed by edge id, not by lane — gather with ``edge_ids``).
    The arrays are read-only; the vectorized heuristic kernel slices
    them instead of walking :meth:`Topology.incident` dicts.
    """

    version: int
    indptr: np.ndarray
    indices: np.ndarray
    edge_ids: np.ndarray
    edge_costs: np.ndarray


@dataclass(frozen=True)
class TopologyArrays:
    """Pickle-light snapshot of a topology: plain arrays, no objects.

    Sweep shards ship these to pool workers instead of full
    :class:`Topology` graphs (object graphs of per-edge dataclasses
    pickle slowly and defeat fork-time page sharing); a worker
    materializes a real topology with :meth:`Topology.from_arrays`.
    Node ``attrs`` are not carried — they are display metadata only.
    """

    name: str
    num_nodes: int
    node_names: Tuple[str, ...]
    node_kinds: Tuple[str, ...]
    node_pods: np.ndarray  # -1 encodes "no pod"
    us: np.ndarray
    vs: np.ndarray
    capacity_mbps: np.ndarray
    utilization: np.ndarray
    latency_ms: np.ndarray
    #: Shared CSR wiring (see :class:`CSRAdjacency`): computed once at
    #: export, so every worker's :meth:`Topology.from_arrays` prefills
    #: its CSR structure cache instead of re-deriving it per point.
    csr_indptr: Optional[np.ndarray] = None
    csr_indices: Optional[np.ndarray] = None
    csr_edge_ids: Optional[np.ndarray] = None

    # -- shared-memory transport ----------------------------------------------------
    def to_shm(self, version: Optional[int] = None) -> "ShmTopologyHandle":
        """Publish this snapshot into a shared-memory arena.

        Returns a :class:`ShmTopologyHandle` — a few dozen bytes that
        pickle in O(1) — instead of the megabytes of arrays themselves.
        Sweep payloads ship the handle; workers re-materialize with
        :meth:`from_shm`, which maps the arena zero-copy (fork workers
        resolve through the inherited in-process cache and never copy
        at all). The caller owns the arena: unlink it through
        :meth:`ShmTopologyHandle.unlink` when the sweep is done.
        """
        from repro.parallel import ShmArena

        meta = json.dumps(
            {
                "name": self.name,
                "node_names": list(self.node_names),
                "node_kinds": list(self.node_kinds),
                "csr": self.csr_indptr is not None,
            }
        ).encode()
        arrays = {
            "meta": np.frombuffer(meta, dtype=np.uint8),
            "node_pods": self.node_pods,
            "us": self.us,
            "vs": self.vs,
            "capacity_mbps": self.capacity_mbps,
            "utilization": self.utilization,
            "latency_ms": self.latency_ms,
        }
        if self.csr_indptr is not None:
            arrays["csr_indptr"] = self.csr_indptr
            arrays["csr_indices"] = self.csr_indices
            arrays["csr_edge_ids"] = self.csr_edge_ids
        arena = ShmArena.create(arrays, version=version)
        return ShmTopologyHandle(segment=arena.name, version=arena.version)

    @classmethod
    def from_shm(cls, handle: "ShmTopologyHandle") -> "TopologyArrays":
        """Re-materialize a snapshot from its arena, zero-copy.

        Every numpy field of the result is a read-only view straight
        into the mapped segment; only the node name/kind tuples (display
        metadata) are decoded. Raises
        :class:`~repro.parallel.ShmArenaError` when the segment is gone
        or its version stamp does not match the handle — the guard that
        keeps a worker from pricing against re-published wiring.
        """
        from repro.parallel import attach_shared

        arena = attach_shared(handle.segment, expected_version=handle.version)
        views = arena.arrays
        meta = json.loads(bytes(views["meta"]))
        has_csr = bool(meta["csr"])
        return cls(
            name=meta["name"],
            num_nodes=len(meta["node_names"]),
            node_names=tuple(meta["node_names"]),
            node_kinds=tuple(meta["node_kinds"]),
            node_pods=views["node_pods"],
            us=views["us"],
            vs=views["vs"],
            capacity_mbps=views["capacity_mbps"],
            utilization=views["utilization"],
            latency_ms=views["latency_ms"],
            csr_indptr=views["csr_indptr"] if has_csr else None,
            csr_indices=views["csr_indices"] if has_csr else None,
            csr_edge_ids=views["csr_edge_ids"] if has_csr else None,
        )


@dataclass(frozen=True)
class ShmTopologyHandle:
    """Pickle-light pointer to a :class:`TopologyArrays` snapshot living
    in a shared-memory arena: segment name + the arena's version stamp.
    This is the entire worker dispatch payload for a topology — its
    pickled size is constant no matter how large the fabric is."""

    segment: str
    version: int

    def resolve(self) -> TopologyArrays:
        """Shorthand for :meth:`TopologyArrays.from_shm`."""
        return TopologyArrays.from_shm(self)

    def unlink(self) -> None:
        """Remove the backing segment (idempotent; owner's duty)."""
        from repro.parallel import ShmArenaError, attach_shared

        try:
            attach_shared(self.segment).unlink()
        except ShmArenaError:
            pass  # already unlinked (e.g. by a broken-pool cleanup)


class NodeKind(enum.Enum):
    """Hardware persona of a node — DUST is hardware-agnostic, so every
    kind can host monitoring agents; the kind only affects capacity
    profiles and reporting."""

    CORE_SWITCH = "core-switch"
    AGG_SWITCH = "agg-switch"
    EDGE_SWITCH = "edge-switch"
    SWITCH = "switch"
    SERVER = "server"
    DPU = "dpu"
    SMARTNIC = "smartnic"


@dataclass
class Node:
    """A network node: id, display name, hardware kind, optional pod."""

    node_id: int
    name: str
    kind: NodeKind = NodeKind.SWITCH
    pod: Optional[int] = None
    attrs: Dict[str, object] = field(default_factory=dict)


class Topology:
    """Undirected graph of :class:`Node` connected by :class:`Link`.

    Nodes are dense integers ``0..n-1``. Parallel edges and self-loops
    are rejected — neither occurs in the paper's fat-tree testbeds and
    allowing them would complicate path semantics for no modeling gain.
    """

    def __init__(self, name: str = "topology") -> None:
        self.name = name
        self._nodes: List[Node] = []
        self._links_store: List[Link] = []
        # Deferred link state set by from_arrays(): (capacity, utilization,
        # latency) plain lists. Link objects are only materialized when a
        # caller actually needs them — sweep workers that run the CSR
        # kernel never do, which keeps from_arrays() allocation-light.
        self._lazy_links: Optional[Tuple[List[float], List[float], List[float]]] = None
        self._endpoints: List[Tuple[int, int]] = []
        # node -> [(neighbor, edge_id)]; may also be deferred, backed by
        # the CSR wiring shipped inside TopologyArrays.
        self._adjacency_store: List[List[Tuple[int, int]]] = []
        self._lazy_adjacency: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._edge_index: Dict[Tuple[int, int], int] = {}
        self._version = 0
        # Journal of (version-after-bump, dirty edge ids or None for a
        # structural change); consumed by dirty_edges_since().
        self._journal: List[Tuple[int, Optional[Tuple[int, ...]]]] = []
        # CSR export caches: structure arrays keyed on (nodes, edges) —
        # the graph is append-only, so those two counts pin the wiring —
        # and one costed view per bandwidth convention keyed on version.
        self._csr_structure: Optional[
            Tuple[Tuple[int, int], np.ndarray, np.ndarray, np.ndarray]
        ] = None
        self._csr_cache: Dict[object, CSRAdjacency] = {}
        # Version-cached (capacity, utilization) edge vectors backing
        # the vectorized effective_bandwidths().
        self._link_state_cache: Optional[Tuple[int, np.ndarray, np.ndarray]] = None

    # -- lazy materialization -----------------------------------------------------
    @property
    def _links(self) -> List[Link]:
        """Link objects, materialized from deferred arrays on first use."""
        if self._lazy_links is not None:
            caps, utils, lats = self._lazy_links
            trusted = Link.trusted
            self._links_store = [
                trusted(caps[e], utils[e], lats[e]) for e in range(len(caps))
            ]
            self._lazy_links = None
        return self._links_store

    @_links.setter
    def _links(self, value: List[Link]) -> None:
        self._links_store = value
        self._lazy_links = None

    @property
    def _adjacency(self) -> List[List[Tuple[int, int]]]:
        """Adjacency lists, materialized from the CSR wiring on first use."""
        if self._lazy_adjacency is not None:
            ptr_a, nbrs_a, eids_a = self._lazy_adjacency
            ptr, nbrs, eids = ptr_a.tolist(), nbrs_a.tolist(), eids_a.tolist()
            self._adjacency_store = [
                list(zip(nbrs[ptr[i] : ptr[i + 1]], eids[ptr[i] : ptr[i + 1]]))
                for i in range(len(ptr) - 1)
            ]
            self._lazy_adjacency = None
        return self._adjacency_store

    @_adjacency.setter
    def _adjacency(self, value: List[List[Tuple[int, int]]]) -> None:
        self._adjacency_store = value
        self._lazy_adjacency = None

    # -- versioning ---------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotonically increasing mutation counter. Every structural
        change (node/edge added) and every link-state change made
        through the topology mutation API bumps it; route-pricing
        caches key their entries on this value."""
        return self._version

    def _bump(self, dirty_edges: Optional[Iterable[int]]) -> None:
        self._version += 1
        entry = None if dirty_edges is None else tuple(dirty_edges)
        self._journal.append((self._version, entry))
        if len(self._journal) > _JOURNAL_CAP:
            del self._journal[: len(self._journal) - _JOURNAL_CAP]

    def dirty_edges_since(self, version: int) -> Optional[frozenset]:
        """Edge ids whose link state may have changed after ``version``.

        Returns an empty set when nothing changed, ``None`` when the
        answer is unknown (a structural change happened, the version is
        from the future, or the journal no longer reaches back that
        far) — callers must then treat *everything* as dirty.
        """
        if version == self._version:
            return frozenset()
        if version > self._version:
            return None
        start = self._journal[0][0] if self._journal else self._version + 1
        if start > version + 1:
            return None  # journal truncated below the requested version
        dirty: set = set()
        for entry_version, edges in self._journal:
            if entry_version <= version:
                continue
            if edges is None:
                return None
            dirty.update(edges)
        return frozenset(dirty)

    # -- link-state mutation API --------------------------------------------------
    # Writing through these (rather than mutating Link objects in
    # place) is what keeps ``version``/``dirty_edges_since`` truthful —
    # the contract the incremental Trmin cache depends on.
    def set_utilization(self, edge_id: int, utilization: float) -> None:
        """Set one link's utilization and mark the edge dirty."""
        link = self.link(edge_id)
        if not 0.0 <= utilization <= 1.0:
            raise TopologyError(
                f"link utilization must be in [0, 1], got {utilization}"
            )
        link.utilization = float(utilization)
        self._bump((edge_id,))

    def set_capacity(self, edge_id: int, capacity_mbps: float) -> None:
        """Set one link's capacity and mark the edge dirty."""
        link = self.link(edge_id)
        if capacity_mbps <= 0:
            raise TopologyError(
                f"link capacity must be positive, got {capacity_mbps}"
            )
        link.capacity_mbps = float(capacity_mbps)
        self._bump((edge_id,))

    def set_link_utilizations(self, utilizations: Sequence[float]) -> None:
        """Bulk utilization update (one value per edge, by edge id);
        bumps the version once with every edge marked dirty."""
        values = np.asarray(utilizations, dtype=float)
        if values.shape != (self.num_edges,):
            raise TopologyError(
                f"need {self.num_edges} utilizations, got shape {values.shape}"
            )
        if values.size and (values.min() < 0.0 or values.max() > 1.0):
            raise TopologyError("link utilizations must be in [0, 1]")
        prev = self._link_state_cache
        prev_current = prev is not None and prev[0] == self._version
        if self._lazy_links is not None:
            caps, _, lats = self._lazy_links
            self._lazy_links = (caps, values.tolist(), lats)
        else:
            for link, value in zip(self._links_store, values.tolist()):
                link.utilization = value
        self._bump(range(self.num_edges))
        # The new state is already in hand — when the cached capacity
        # vector was current, refresh the cache in place instead of
        # re-walking every Link on the next read.
        if prev_current:
            self._link_state_cache = (self._version, prev[1], values.copy())

    def touch_links(self, edge_ids: Optional[Iterable[int]] = None) -> None:
        """Declare that the given links (all, when ``None``) were
        mutated out of band — e.g. by writing ``Link`` fields directly —
        so version-keyed caches reprice them."""
        if edge_ids is None:
            self._bump(range(self.num_edges))
            return
        ids = tuple(edge_ids)
        for edge_id in ids:
            self.link(edge_id)  # validates existence
        self._bump(ids)

    # -- construction -----------------------------------------------------------
    def add_node(
        self,
        name: Optional[str] = None,
        kind: NodeKind = NodeKind.SWITCH,
        pod: Optional[int] = None,
        **attrs: object,
    ) -> int:
        """Add a node; returns its integer id."""
        node_id = len(self._nodes)
        self._nodes.append(
            Node(node_id=node_id, name=name or f"n{node_id}", kind=kind, pod=pod, attrs=attrs)
        )
        self._adjacency.append([])
        self._bump(None)
        return node_id

    def add_edge(self, u: int, v: int, link: Optional[Link] = None) -> int:
        """Connect ``u`` and ``v``; returns the edge id."""
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise TopologyError(f"self-loop on node {u} is not allowed")
        key = (min(u, v), max(u, v))
        if key in self._edge_index:
            raise TopologyError(f"duplicate edge between {u} and {v}")
        edge_id = len(self._links)
        self._links.append(link if link is not None else Link())
        self._endpoints.append(key)
        self._edge_index[key] = edge_id
        self._adjacency[u].append((v, edge_id))
        self._adjacency[v].append((u, edge_id))
        self._bump(None)
        return edge_id

    def _check_node(self, node_id: int) -> None:
        if not 0 <= node_id < len(self._nodes):
            raise TopologyError(
                f"node {node_id} does not exist in topology {self.name!r} "
                f"({len(self._nodes)} nodes)"
            )

    # -- basic queries ------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        if self._lazy_links is not None:
            return len(self._lazy_links[0])
        return len(self._links_store)

    @property
    def nodes(self) -> Sequence[Node]:
        return tuple(self._nodes)

    @property
    def links(self) -> Sequence[Link]:
        return tuple(self._links)

    @property
    def edges(self) -> Sequence[Tuple[int, int]]:
        """Edge endpoint pairs ``(u, v)`` with ``u < v``, indexed by edge id."""
        return tuple(self._endpoints)

    def node(self, node_id: int) -> Node:
        self._check_node(node_id)
        return self._nodes[node_id]

    def link(self, edge_id: int) -> Link:
        if not 0 <= edge_id < len(self._links):
            raise TopologyError(f"edge {edge_id} does not exist")
        return self._links[edge_id]

    def link_between(self, u: int, v: int) -> Link:
        """Link on the edge {u, v}; raises if absent."""
        return self._links[self.edge_id(u, v)]

    def edge_id(self, u: int, v: int) -> int:
        self._check_node(u)
        self._check_node(v)
        key = (min(u, v), max(u, v))
        try:
            return self._edge_index[key]
        except KeyError:
            raise TopologyError(f"no edge between {u} and {v}") from None

    def has_edge(self, u: int, v: int) -> bool:
        return (min(u, v), max(u, v)) in self._edge_index

    def neighbors(self, node_id: int) -> List[int]:
        self._check_node(node_id)
        return [nbr for nbr, _ in self._adjacency[node_id]]

    def incident(self, node_id: int) -> List[Tuple[int, int]]:
        """``(neighbor, edge_id)`` pairs around ``node_id``."""
        self._check_node(node_id)
        return list(self._adjacency[node_id])

    def degree(self, node_id: int) -> int:
        self._check_node(node_id)
        return len(self._adjacency[node_id])

    def nodes_of_kind(self, kind: NodeKind) -> List[int]:
        return [n.node_id for n in self._nodes if n.kind is kind]

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes)

    def __repr__(self) -> str:
        return f"Topology({self.name!r}, nodes={self.num_nodes}, edges={self.num_edges})"

    # -- vectorized views -----------------------------------------------------------
    def _link_state_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Version-cached ``(capacity_mbps, utilization)`` edge vectors.

        Rebuilt lazily from the ``Link`` objects when the version moved;
        the versioned mutation API keeps them truthful the same way it
        keeps the CSR cache truthful.
        """
        cached = self._link_state_cache
        if cached is not None and cached[0] == self._version:
            return cached[1], cached[2]
        if self._lazy_links is not None:
            caps, utils, _ = self._lazy_links
            capacity = np.asarray(caps, dtype=float)
            utilization = np.asarray(utils, dtype=float)
        else:
            links = self._links_store
            n = len(links)
            capacity = np.fromiter(
                (link.capacity_mbps for link in links), dtype=float, count=n
            )
            utilization = np.fromiter(
                (link.utilization for link in links), dtype=float, count=n
            )
        self._link_state_cache = (self._version, capacity, utilization)
        return capacity, utilization

    def _effective_bandwidths_cached(
        self, convention: BandwidthConvention
    ) -> np.ndarray:
        """Vectorized ``Lu_e`` from the version-cached state arrays.

        Elementwise identical to ``Link.effective_mbps`` per edge (same
        IEEE multiply and floor). Only version-keyed consumers (the CSR
        export) may use this: out-of-band ``Link`` writes are invisible
        until ``touch_links`` bumps the version — exactly the staleness
        contract ``csr_adjacency`` already documents.
        """
        capacity, utilization = self._link_state_arrays()
        if convention is BandwidthConvention.AVAILABLE:
            raw = capacity * (1.0 - utilization)
        else:
            raw = capacity * utilization
        return np.maximum(raw, MIN_EFFECTIVE_BANDWIDTH_MBPS)

    def effective_bandwidths(
        self, convention: BandwidthConvention = BandwidthConvention.AVAILABLE
    ) -> np.ndarray:
        """Per-edge ``Lu_e`` vector (Mbps), indexed by edge id.

        Always re-reads the ``Link`` objects so that direct field
        writes (no version bump) stay visible, matching the historical
        contract relied on by rerouting and the LP pricing paths.
        """
        if self._lazy_links is not None:
            # No Link objects exist yet, so no out-of-band writes can
            # have happened; compute straight from the deferred arrays.
            caps, utils, _ = self._lazy_links
            capacity = np.asarray(caps, dtype=float)
            utilization = np.asarray(utils, dtype=float)
            if convention is BandwidthConvention.AVAILABLE:
                raw = capacity * (1.0 - utilization)
            else:
                raw = capacity * utilization
            return np.maximum(raw, MIN_EFFECTIVE_BANDWIDTH_MBPS)
        return np.array(
            [link.effective_mbps(convention) for link in self._links_store]
        )

    def edge_endpoint_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Endpoint arrays ``(us, vs)`` for all edges."""
        if not self._endpoints:
            return np.zeros(0, dtype=int), np.zeros(0, dtype=int)
        arr = np.asarray(self._endpoints, dtype=int)
        return arr[:, 0], arr[:, 1]

    def _ensure_csr_structure(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Read-only ``(indptr, indices, edge_ids)`` wiring arrays,
        rebuilt only when the node/edge counts changed (the graph is
        append-only, so those two counts pin the wiring)."""
        structure_key = (self.num_nodes, self.num_edges)
        if self._csr_structure is None or self._csr_structure[0] != structure_key:
            n = self.num_nodes
            degrees = np.fromiter(
                (len(adj) for adj in self._adjacency), dtype=np.int64, count=n
            )
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(degrees, out=indptr[1:])
            total = int(indptr[-1])
            indices = np.fromiter(
                (nbr for adj in self._adjacency for nbr, _ in adj),
                dtype=np.int64,
                count=total,
            )
            edge_ids = np.fromiter(
                (eid for adj in self._adjacency for _, eid in adj),
                dtype=np.int64,
                count=total,
            )
            for arr in (indptr, indices, edge_ids):
                arr.setflags(write=False)
            self._csr_structure = (structure_key, indptr, indices, edge_ids)
        _, indptr, indices, edge_ids = self._csr_structure
        return indptr, indices, edge_ids

    def csr_structure(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Read-only CSR wiring ``(indptr, indices, edge_ids)`` without
        costs — for kernels that bring their own edge-weight vector
        (e.g. the matrix Trmin DP)."""
        return self._ensure_csr_structure()

    def csr_adjacency(
        self, convention: BandwidthConvention = BandwidthConvention.AVAILABLE
    ) -> CSRAdjacency:
        """Cached CSR adjacency export (see :class:`CSRAdjacency`).

        Keyed on the topology :attr:`version`, so any mutation made
        through the versioned API (including PR 1's dirty-edge journal
        writers) invalidates the costed view for free; the structure
        arrays survive pure link-state changes. Cache traffic is
        reported on the ``topology.csr_cache_hits`` / ``_misses``
        counters.
        """
        from repro.obs import get_registry

        cached = self._csr_cache.get(convention)
        if cached is not None and cached.version == self._version:
            get_registry().counter("topology.csr_cache_hits").inc()
            return cached
        get_registry().counter("topology.csr_cache_misses").inc()

        indptr, indices, edge_ids = self._ensure_csr_structure()

        with np.errstate(divide="ignore"):
            edge_costs = 1.0 / self._effective_bandwidths_cached(convention)
        edge_costs.setflags(write=False)
        csr = CSRAdjacency(
            version=self._version,
            indptr=indptr,
            indices=indices,
            edge_ids=edge_ids,
            edge_costs=edge_costs,
        )
        self._csr_cache[convention] = csr
        return csr

    # -- bulk array import/export ---------------------------------------------------
    def to_arrays(self) -> TopologyArrays:
        """Export the full graph state as :class:`TopologyArrays`."""
        us, vs = self.edge_endpoint_arrays()
        indptr, indices, edge_ids = self._ensure_csr_structure()
        return TopologyArrays(
            name=self.name,
            num_nodes=self.num_nodes,
            node_names=tuple(n.name for n in self._nodes),
            node_kinds=tuple(n.kind.value for n in self._nodes),
            node_pods=np.array(
                [-1 if n.pod is None else n.pod for n in self._nodes], dtype=np.int64
            ),
            us=us,
            vs=vs,
            capacity_mbps=np.array([l.capacity_mbps for l in self._links]),
            utilization=np.array([l.utilization for l in self._links]),
            latency_ms=np.array([l.latency_ms for l in self._links]),
            csr_indptr=indptr,
            csr_indices=indices,
            csr_edge_ids=edge_ids,
        )

    @classmethod
    def from_arrays(cls, arrays: TopologyArrays) -> "Topology":
        """Materialize a fresh topology from :class:`TopologyArrays`.

        Bulk construction: one journal entry instead of one per
        ``add_node``/``add_edge`` call, no per-edge duplicate checks
        (the arrays came from a validated topology). Each call returns
        an independent, freely mutable graph.
        """
        topo = cls(name=arrays.name)
        topo._nodes = [
            Node(
                node_id=i,
                name=arrays.node_names[i],
                kind=NodeKind(arrays.node_kinds[i]),
                pod=None if arrays.node_pods[i] < 0 else int(arrays.node_pods[i]),
            )
            for i in range(arrays.num_nodes)
        ]
        caps = arrays.capacity_mbps.tolist()
        utils = arrays.utilization.tolist()
        lats = arrays.latency_ms.tolist()
        m = len(caps)
        endpoints = list(
            zip(
                np.minimum(arrays.us, arrays.vs).tolist(),
                np.maximum(arrays.us, arrays.vs).tolist(),
            )
        )
        edge_index = dict(zip(endpoints, range(m)))
        # Link objects and adjacency lists are deferred: the properties
        # materialize them on first access, and sweep workers running
        # the CSR kernel never need either.
        topo._lazy_links = (caps, utils, lats)
        topo._endpoints = endpoints
        topo._edge_index = edge_index
        if arrays.csr_indptr is not None:
            # The exporter shipped the CSR wiring: prefill the structure
            # cache and back the deferred adjacency with it.
            for arr in (arrays.csr_indptr, arrays.csr_indices, arrays.csr_edge_ids):
                arr.setflags(write=False)
            topo._csr_structure = (
                (arrays.num_nodes, m),
                arrays.csr_indptr,
                arrays.csr_indices,
                arrays.csr_edge_ids,
            )
            topo._lazy_adjacency = (
                arrays.csr_indptr,
                arrays.csr_indices,
                arrays.csr_edge_ids,
            )
        else:
            adjacency: List[List[Tuple[int, int]]] = [
                [] for _ in range(arrays.num_nodes)
            ]
            us, vs = arrays.us.tolist(), arrays.vs.tolist()
            for eid in range(m):
                adjacency[us[eid]].append((vs[eid], eid))
                adjacency[vs[eid]].append((us[eid], eid))
            topo._adjacency = adjacency
        topo._bump(None)
        topo._link_state_cache = (
            topo._version,
            arrays.capacity_mbps.astype(float, copy=True),
            arrays.utilization.astype(float, copy=True),
        )
        return topo

    # -- structure checks --------------------------------------------------------------
    def is_connected(self) -> bool:
        """BFS connectivity check (empty graph counts as connected)."""
        if self.num_nodes == 0:
            return True
        seen = np.zeros(self.num_nodes, dtype=bool)
        stack = [0]
        seen[0] = True
        count = 1
        while stack:
            u = stack.pop()
            for v, _ in self._adjacency[u]:
                if not seen[v]:
                    seen[v] = True
                    count += 1
                    stack.append(v)
        return count == self.num_nodes

    def validate(self) -> None:
        """Raise :class:`TopologyError` unless the topology is usable for
        placement (non-empty and connected)."""
        if self.num_nodes == 0:
            raise TopologyError("topology has no nodes")
        if not self.is_connected():
            raise TopologyError(f"topology {self.name!r} is not connected")

    # -- networkx interop ------------------------------------------------------------------
    def to_networkx(self):
        """Export as ``networkx.Graph`` with link attributes on edges."""
        import networkx as nx

        g = nx.Graph(name=self.name)
        for node in self._nodes:
            g.add_node(node.node_id, name=node.name, kind=node.kind.value, pod=node.pod)
        for edge_id, (u, v) in enumerate(self._endpoints):
            link = self._links[edge_id]
            g.add_edge(
                u,
                v,
                capacity_mbps=link.capacity_mbps,
                utilization=link.utilization,
                latency_ms=link.latency_ms,
            )
        return g

    @classmethod
    def from_networkx(cls, graph, name: Optional[str] = None) -> "Topology":
        """Import a ``networkx.Graph``; node labels may be arbitrary
        hashables and are relabeled densely (original label kept in
        ``Node.attrs["label"]``)."""
        topo = cls(name=name or str(graph.name or "from-networkx"))
        mapping = {}
        for label in graph.nodes:
            data = graph.nodes[label]
            kind = data.get("kind")
            mapping[label] = topo.add_node(
                name=str(data.get("name", label)),
                kind=NodeKind(kind) if isinstance(kind, str) else NodeKind.SWITCH,
                pod=data.get("pod"),
                label=label,
            )
        for u, v, data in graph.edges(data=True):
            if u == v:
                continue  # drop self-loops silently on import
            topo.add_edge(
                mapping[u],
                mapping[v],
                Link(
                    capacity_mbps=float(data.get("capacity_mbps", 10_000.0)),
                    utilization=float(data.get("utilization", 0.0)),
                    latency_ms=float(data.get("latency_ms", 0.05)),
                ),
            )
        return topo
