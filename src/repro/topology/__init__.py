"""Network topology substrate: graphs, generators, links, capacities."""

from __future__ import annotations

from repro.topology.capacity import CapacityDistribution, CapacityModel
from repro.topology.fattree import (
    PAPER_FAT_TREE_SIZES,
    FatTreeLayout,
    build_fat_tree,
    build_fat_tree_with_layout,
    fat_tree_arrays,
    fat_tree_cache_clear,
    fat_tree_cache_info,
    fat_tree_edge_count,
    fat_tree_node_count,
)
from repro.topology.generators import (
    build_grid,
    build_leaf_spine,
    build_line,
    build_random_connected,
    build_ring,
    build_star,
)
from repro.topology.graph import CSRAdjacency, Node, NodeKind, Topology, TopologyArrays
from repro.topology.links import (
    MIN_EFFECTIVE_BANDWIDTH_MBPS,
    BandwidthConvention,
    Link,
    LinkUtilizationModel,
    effective_bandwidths,
)

__all__ = [
    "BandwidthConvention",
    "CSRAdjacency",
    "CapacityDistribution",
    "CapacityModel",
    "FatTreeLayout",
    "TopologyArrays",
    "Link",
    "LinkUtilizationModel",
    "MIN_EFFECTIVE_BANDWIDTH_MBPS",
    "Node",
    "NodeKind",
    "PAPER_FAT_TREE_SIZES",
    "Topology",
    "build_fat_tree",
    "build_fat_tree_with_layout",
    "build_grid",
    "build_leaf_spine",
    "build_line",
    "build_random_connected",
    "build_ring",
    "build_star",
    "effective_bandwidths",
    "fat_tree_arrays",
    "fat_tree_cache_clear",
    "fat_tree_cache_info",
    "fat_tree_edge_count",
    "fat_tree_node_count",
]
