"""Node utilized-capacity models (the ``C_j`` of Table I).

Constraint 3e of the paper bounds each node's utilized capacity to
``[x_min, 100]`` percent. The scalability simulator redraws node states
every iteration; :class:`CapacityModel` is that redraw. Several
distributions are provided because the io-rate experiment (Fig. 7) is
sensitive to the mass the distribution places above ``C_max`` (busy
mass) versus below ``CO_max`` (candidate capacity).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import CapacityError


class CapacityDistribution(enum.Enum):
    """Shape of the per-node utilized-capacity draw."""

    UNIFORM = "uniform"
    #: Beta(2, 2) stretched over [x_min, 100] — mid-loaded cluster.
    BETA_MID = "beta-mid"
    #: Bimodal: mostly idle nodes plus a hot minority — the "transient
    #: server workloads" regime the paper's assumptions describe.
    BIMODAL = "bimodal"


@dataclass
class CapacityModel:
    """Sampler for utilized node capacities in percent.

    Parameters
    ----------
    x_min:
        Minimum utilized capacity of any node (paper's ``x_min``).
    distribution:
        One of :class:`CapacityDistribution`.
    hot_fraction:
        For :attr:`CapacityDistribution.BIMODAL` — fraction of nodes in
        the hot (near-overloaded) mode.
    seed:
        Seed for the internal generator; use :meth:`reseed` to branch.
    """

    x_min: float = 10.0
    distribution: CapacityDistribution = CapacityDistribution.UNIFORM
    hot_fraction: float = 0.25
    seed: Optional[int] = None
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.x_min < 100.0:
            raise CapacityError(f"x_min must be in [0, 100), got {self.x_min}")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise CapacityError(f"hot_fraction must be in [0, 1], got {self.hot_fraction}")
        self._rng = np.random.default_rng(self.seed)

    def reseed(self, seed: int) -> None:
        """Reset the generator (used to make experiment iterations
        independently reproducible)."""
        self._rng = np.random.default_rng(seed)

    def sample(self, num_nodes: int) -> np.ndarray:
        """Draw utilized capacities (percent) for ``num_nodes`` nodes,
        each guaranteed to lie in ``[x_min, 100]``."""
        if num_nodes < 0:
            raise CapacityError(f"num_nodes must be non-negative, got {num_nodes}")
        span = 100.0 - self.x_min
        if self.distribution is CapacityDistribution.UNIFORM:
            values = self._rng.uniform(self.x_min, 100.0, size=num_nodes)
        elif self.distribution is CapacityDistribution.BETA_MID:
            values = self.x_min + span * self._rng.beta(2.0, 2.0, size=num_nodes)
        elif self.distribution is CapacityDistribution.BIMODAL:
            hot = self._rng.random(num_nodes) < self.hot_fraction
            cool_vals = self.x_min + span * self._rng.beta(2.0, 5.0, size=num_nodes)
            hot_vals = self.x_min + span * self._rng.beta(8.0, 1.5, size=num_nodes)
            values = np.where(hot, hot_vals, cool_vals)
        else:  # pragma: no cover - enum is closed
            raise CapacityError(f"unknown distribution {self.distribution}")
        return np.clip(values, self.x_min, 100.0)
