"""Three-level k-port fat-tree builder (Al-Fares et al., SIGCOMM'08).

The paper's scalability testbeds are switch-level fat-trees:

===== ======= ======= =========
k     nodes   edges   paper class
===== ======= ======= =========
4     20      32      small-scale
8     80      256     large-scale
16    320     2048    large-scale
64    5120    131072  large-scale
===== ======= ======= =========

Node/edge counts follow from the standard construction with k pods,
``k/2`` edge and ``k/2`` aggregation switches per pod and ``(k/2)^2``
core switches: ``5k^2/4`` switches, ``k^3/2`` switch-to-switch links
(``k^3/4`` edge-agg + ``k^3/4`` agg-core). Servers are *not*
materialized by default (the paper counts only network nodes) but can
be attached with ``with_servers=True`` for testbed-style scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Tuple

from repro.errors import TopologyError
from repro.topology.graph import NodeKind, Topology, TopologyArrays
from repro.topology.links import Link


@dataclass(frozen=True)
class FatTreeLayout:
    """Index bookkeeping for a built fat-tree."""

    k: int
    core: List[int]
    aggregation: List[int]
    edge: List[int]
    servers: List[int]

    @property
    def switches(self) -> List[int]:
        return self.core + self.aggregation + self.edge


def fat_tree_node_count(k: int) -> int:
    """Number of switches in a k-port 3-level fat-tree: ``5k^2/4``."""
    return 5 * k * k // 4


def fat_tree_edge_count(k: int) -> int:
    """Number of switch-to-switch links: ``k^3/2``."""
    return k**3 // 2


def build_fat_tree(
    k: int,
    capacity_mbps: float = 10_000.0,
    latency_ms: float = 0.05,
    with_servers: bool = False,
    name: str = "",
) -> Topology:
    """Build a k-port fat-tree. ``k`` must be even and ≥ 2.

    Wiring follows the canonical scheme: core switch ``(i, j)`` (for
    ``i, j in range(k/2)``) connects to aggregation switch ``i`` of
    every pod; within a pod, aggregation and edge layers form a
    complete bipartite graph. With ``with_servers=True``, each edge
    switch additionally hosts ``k/2`` server nodes.
    """
    topo, _ = build_fat_tree_with_layout(
        k,
        capacity_mbps=capacity_mbps,
        latency_ms=latency_ms,
        with_servers=with_servers,
        name=name,
    )
    return topo


def build_fat_tree_with_layout(
    k: int,
    capacity_mbps: float = 10_000.0,
    latency_ms: float = 0.05,
    with_servers: bool = False,
    name: str = "",
):
    """Like :func:`build_fat_tree` but also returns the
    :class:`FatTreeLayout` index map.

    Construction is memoized per parameter tuple: the O(k^3) wiring
    runs once, is cached as a plain-array blueprint, and every call
    materializes a fresh, independently mutable :class:`Topology` from
    it (so mutating one build — and its ``version`` counter — never
    leaks into another).
    """
    arrays, layout = _fat_tree_blueprint(
        k, float(capacity_mbps), float(latency_ms), bool(with_servers), str(name)
    )
    topo = Topology.from_arrays(arrays)
    return topo, FatTreeLayout(
        k=layout.k,
        core=list(layout.core),
        aggregation=list(layout.aggregation),
        edge=list(layout.edge),
        servers=list(layout.servers),
    )


def fat_tree_arrays(
    k: int,
    capacity_mbps: float = 10_000.0,
    latency_ms: float = 0.05,
    with_servers: bool = False,
    name: str = "",
) -> TopologyArrays:
    """The cached array blueprint of a fat-tree, without materializing
    a :class:`Topology` — what sweep shards ship to pool workers."""
    arrays, _ = _fat_tree_blueprint(
        k, float(capacity_mbps), float(latency_ms), bool(with_servers), str(name)
    )
    return arrays


def fat_tree_cache_info():
    """``functools.lru_cache`` statistics of the blueprint memo."""
    return _fat_tree_blueprint.cache_info()


def fat_tree_cache_clear() -> None:
    """Drop every memoized blueprint (mostly for tests)."""
    _fat_tree_blueprint.cache_clear()


@lru_cache(maxsize=16)
def _fat_tree_blueprint(
    k: int,
    capacity_mbps: float,
    latency_ms: float,
    with_servers: bool,
    name: str,
) -> Tuple[TopologyArrays, FatTreeLayout]:
    topo, layout = _build_fat_tree_uncached(
        k,
        capacity_mbps=capacity_mbps,
        latency_ms=latency_ms,
        with_servers=with_servers,
        name=name,
    )
    return topo.to_arrays(), layout


def _build_fat_tree_uncached(
    k: int,
    capacity_mbps: float = 10_000.0,
    latency_ms: float = 0.05,
    with_servers: bool = False,
    name: str = "",
):
    if k < 2 or k % 2 != 0:
        raise TopologyError(f"fat-tree requires an even k >= 2, got {k}")
    half = k // 2
    topo = Topology(name=name or f"fat-tree-{k}")

    core = [
        topo.add_node(name=f"core-{i}-{j}", kind=NodeKind.CORE_SWITCH)
        for i in range(half)
        for j in range(half)
    ]
    aggregation: List[int] = []
    edge: List[int] = []
    servers: List[int] = []

    def new_link() -> Link:
        return Link(capacity_mbps=capacity_mbps, utilization=0.0, latency_ms=latency_ms)

    for pod in range(k):
        pod_agg = [
            topo.add_node(name=f"agg-{pod}-{a}", kind=NodeKind.AGG_SWITCH, pod=pod)
            for a in range(half)
        ]
        pod_edge = [
            topo.add_node(name=f"edge-{pod}-{e}", kind=NodeKind.EDGE_SWITCH, pod=pod)
            for e in range(half)
        ]
        aggregation.extend(pod_agg)
        edge.extend(pod_edge)
        # Pod-internal complete bipartite agg <-> edge.
        for agg_node in pod_agg:
            for edge_node in pod_edge:
                topo.add_edge(agg_node, edge_node, new_link())
        # Core uplinks: agg switch a of the pod reaches core row a.
        for a, agg_node in enumerate(pod_agg):
            for j in range(half):
                topo.add_edge(core[a * half + j], agg_node, new_link())
        if with_servers:
            for e, edge_node in enumerate(pod_edge):
                for s in range(half):
                    server = topo.add_node(
                        name=f"srv-{pod}-{e}-{s}", kind=NodeKind.SERVER, pod=pod
                    )
                    servers.append(server)
                    topo.add_edge(edge_node, server, new_link())

    layout = FatTreeLayout(k=k, core=core, aggregation=aggregation, edge=edge, servers=servers)
    return topo, layout


#: Fat-tree sizes evaluated in the paper, keyed by its own labels.
PAPER_FAT_TREE_SIZES = {
    "small-scale (4-k)": 4,
    "large-scale (8-k)": 8,
    "large-scale (16-k)": 16,
    "large-scale (64-k)": 64,
}
