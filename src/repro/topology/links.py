"""Link bandwidth / utilization models.

The paper's response-time metric (Eq. 1) divides the monitoring data
volume ``D_i`` (Mb) by a per-edge bandwidth term ``Lu_e`` (Mbps). The
text defines ``Lu`` as "the utilized bandwidth … determined by
multiplying the physical link bandwidth and the dynamic utilization
rate". Transfer time over a loaded link physically depends on the
*remaining* (headroom) bandwidth, so this module supports both
conventions and lets the routing layer choose:

* :attr:`BandwidthConvention.AVAILABLE` (default) —
  ``capacity * (1 - utilization)``: busier links look slower, which is
  the behaviour the paper's objective ("prioritizing data locality,
  minimizing bandwidth usage across relay nodes") rewards.
* :attr:`BandwidthConvention.UTILIZED_LITERAL` —
  ``capacity * utilization``: the literal Eq.-1 reading, kept for
  faithfulness experiments.

Either way the value feeds Eq. 1 as the denominator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.errors import TopologyError

#: Floor (Mbps) used in place of a zero denominator so a fully utilized
#: (or fully idle, under the literal convention) link yields a huge but
#: finite response time instead of a division error.
MIN_EFFECTIVE_BANDWIDTH_MBPS = 1e-3


class BandwidthConvention(enum.Enum):
    """How ``Lu_e`` in Eq. 1 is derived from capacity and utilization."""

    AVAILABLE = "available"
    UTILIZED_LITERAL = "utilized-literal"


@dataclass
class Link:
    """A physical link between two nodes.

    Attributes
    ----------
    capacity_mbps:
        Physical line rate in Mbps (e.g. 10_000 for 10 GbE).
    utilization:
        Fraction of the capacity consumed by data-plane traffic,
        in ``[0, 1]``.
    latency_ms:
        Propagation + forwarding latency, used by the discrete-event
        simulator for control-message delivery (not part of Eq. 1).
    """

    capacity_mbps: float = 10_000.0
    utilization: float = 0.0
    latency_ms: float = 0.05

    def __post_init__(self) -> None:
        if self.capacity_mbps <= 0:
            raise TopologyError(f"link capacity must be positive, got {self.capacity_mbps}")
        if not 0.0 <= self.utilization <= 1.0:
            raise TopologyError(f"link utilization must be in [0, 1], got {self.utilization}")
        if self.latency_ms < 0:
            raise TopologyError(f"link latency must be non-negative, got {self.latency_ms}")

    @classmethod
    def trusted(
        cls, capacity_mbps: float, utilization: float, latency_ms: float
    ) -> "Link":
        """Construct without re-validating — for bulk materialization
        from arrays that were exported from an already-valid topology."""
        link = object.__new__(cls)
        link.capacity_mbps = capacity_mbps
        link.utilization = utilization
        link.latency_ms = latency_ms
        return link

    @property
    def available_mbps(self) -> float:
        """Headroom bandwidth: ``capacity * (1 - utilization)``."""
        return self.capacity_mbps * (1.0 - self.utilization)

    @property
    def utilized_mbps(self) -> float:
        """Data-plane traffic bandwidth: ``capacity * utilization``."""
        return self.capacity_mbps * self.utilization

    def effective_mbps(self, convention: BandwidthConvention) -> float:
        """``Lu_e`` under the chosen convention, floored away from zero."""
        raw = (
            self.available_mbps
            if convention is BandwidthConvention.AVAILABLE
            else self.utilized_mbps
        )
        return max(raw, MIN_EFFECTIVE_BANDWIDTH_MBPS)


@dataclass
class LinkUtilizationModel:
    """Randomized data-plane load applied to every link of a topology.

    Samples per-link utilization from a uniform range — the paper's
    simulator draws dynamic network states per iteration; this model is
    what `iterate` re-samples.
    """

    low: float = 0.1
    high: float = 0.9
    seed: Optional[int] = None
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.low <= self.high <= 1.0:
            raise TopologyError(
                f"utilization range must satisfy 0 <= low <= high <= 1, "
                f"got [{self.low}, {self.high}]"
            )
        self._rng = np.random.default_rng(self.seed)

    def sample(self, num_links: int) -> np.ndarray:
        """Draw one utilization per link."""
        return self._rng.uniform(self.low, self.high, size=num_links)

    def apply(self, topology) -> None:
        """Assign fresh utilizations to every link of ``topology``."""
        values = self.sample(topology.num_edges)
        if hasattr(topology, "set_link_utilizations"):
            # Bump the topology version so Trmin caches see the change.
            topology.set_link_utilizations(values)
        else:  # bare link containers (tests, duck-typed graphs)
            for link, value in zip(topology.links, values):
                link.utilization = float(value)


def effective_bandwidths(
    links, convention: BandwidthConvention = BandwidthConvention.AVAILABLE
) -> np.ndarray:
    """Vector of ``Lu_e`` for an iterable of links (vectorized helper)."""
    return np.array([link.effective_mbps(convention) for link in links])
