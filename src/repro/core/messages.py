"""DUST control-plane message vocabulary (paper Section III-B/C).

The workflow:

1. every client sends **Offload-capable** (1 = willing, 0 =
   None-offloading) with its ``C_max``/``CO_max`` thresholds;
2. the manager replies **ACK**, carrying the *Update-Interval Time*;
3. clients then send periodic **STAT** reports regardless of role;
4. on placement, the manager sends **Offload-Request** to the selected
   destination, answered by **Offload-ACK**; sources are told where to
   redirect with **Redirect** (implied by the paper's "monitoring data
   D_i … is subsequently redirected");
5. destinations send **Keepalive** while hosting; a missed keepalive
   makes the manager substitute a replica and announce it via **REP**.

Beyond the paper's vocabulary, this module carries the reliability
layer the lossy-network mode needs (the paper assumes a stable fabric):

* **Receipt** — an application-level delivery confirmation for the two
  message types that have no protocol-level reply (Redirect, Reclaim),
  so their retransmission can be ACK-gated like Offload-Request/REP;
* **ManagerHeartbeat** / **Resync** — primary→standby liveness and the
  post-failover state-reconciliation round;
* :class:`RetryPolicy` / :class:`ReliableSender` — ACK-gated
  retransmission with exponential backoff and a retry budget;
* :class:`DedupCache` — bounded per-sender duplicate suppression with a
  reply cache, making every handler idempotent under duplication and
  retransmission.
"""

from __future__ import annotations

import enum
import itertools
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.obs import get_registry, trace_event

_message_counter = itertools.count()


class MessageType(enum.Enum):
    OFFLOAD_CAPABLE = "offload-capable"
    ACK = "ack"
    STAT = "stat"
    OFFLOAD_REQUEST = "offload-request"
    OFFLOAD_ACK = "offload-ack"
    REDIRECT = "redirect"
    KEEPALIVE = "keepalive"
    REP = "rep"
    RECLAIM = "reclaim"
    RECEIPT = "receipt"
    MANAGER_HEARTBEAT = "manager-heartbeat"
    RESYNC = "resync"


@dataclass(frozen=True)
class ControlMessage:
    """Base class: every message carries a type tag and a unique id."""

    msg_id: int = field(default_factory=lambda: next(_message_counter), init=False)

    @property
    def type(self) -> MessageType:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclass(frozen=True)
class OffloadCapable(ControlMessage):
    """Client → Manager: participation declaration + thresholds."""

    node_id: int
    capable: bool
    c_max: float
    co_max: float

    @property
    def type(self) -> MessageType:
        return MessageType.OFFLOAD_CAPABLE


@dataclass(frozen=True)
class Ack(ControlMessage):
    """Manager → Client: admission + Update-Interval Time (seconds)."""

    node_id: int
    update_interval_s: float

    @property
    def type(self) -> MessageType:
        return MessageType.ACK


@dataclass(frozen=True)
class Stat(ControlMessage):
    """Client → Manager: periodic resource report.

    ``capacity_pct`` is the node's utilized capacity ``C_j``;
    ``data_mb`` the monitoring volume ``D_i`` it would export if
    offloaded; ``num_agents`` the installed monitor-agent count.

    ``reliable`` marks an admission STAT: a hardened client sets it on
    every report until the manager confirms one with a Receipt, so a
    lossy fabric cannot keep a node out of the candidate set. Steady-
    state reports leave it False — they are naturally redundant, the
    next period supersedes a lost one.
    """

    node_id: int
    capacity_pct: float
    data_mb: float
    num_agents: int
    timestamp: float
    reliable: bool = False

    @property
    def type(self) -> MessageType:
        return MessageType.STAT


@dataclass(frozen=True)
class OffloadRequest(ControlMessage):
    """Manager → destination: host ``amount_pct`` of ``source``'s
    monitoring load, reached over ``route`` (node-id tuple)."""

    destination: int
    source: int
    amount_pct: float
    data_mb: float
    route: Tuple[int, ...]

    @property
    def type(self) -> MessageType:
        return MessageType.OFFLOAD_REQUEST


@dataclass(frozen=True)
class OffloadAck(ControlMessage):
    """Destination → Manager: accept/reject a hosting request.

    ``request_id`` echoes the ``msg_id`` of the Offload-Request / REP
    being answered so the manager's reliable sender can cancel the
    matching retransmission timer; ``amount_pct`` is only meaningful in
    resync re-confirmations (it lets a recovering manager rebuild a
    ledger row the snapshot missed).
    """

    destination: int
    source: int
    accepted: bool
    reason: str = ""
    request_id: Optional[int] = None
    amount_pct: float = 0.0

    @property
    def type(self) -> MessageType:
        return MessageType.OFFLOAD_ACK


@dataclass(frozen=True)
class Redirect(ControlMessage):
    """Manager → source (Busy node): redirect ``amount_pct`` of its
    monitoring workload to ``destination`` along ``route``."""

    source: int
    destination: int
    amount_pct: float
    route: Tuple[int, ...]

    @property
    def type(self) -> MessageType:
        return MessageType.REDIRECT


@dataclass(frozen=True)
class Keepalive(ControlMessage):
    """Destination → Manager: hosting heartbeat."""

    node_id: int
    hosted_sources: Tuple[int, ...]
    timestamp: float

    @property
    def type(self) -> MessageType:
        return MessageType.KEEPALIVE


@dataclass(frozen=True)
class Rep(ControlMessage):
    """Manager → replica node: take over a failed destination's hosted
    workload (the paper's REP message)."""

    replica: int
    failed_destination: int
    source: int
    amount_pct: float
    route: Tuple[int, ...]

    @property
    def type(self) -> MessageType:
        return MessageType.REP


@dataclass(frozen=True)
class Reclaim(ControlMessage):
    """Manager → destination: the source has spare capacity again and
    reclaims its workload ("a Busy node … reclaim its local resources
    when they become available")."""

    source: int
    destination: int
    amount_pct: float

    @property
    def type(self) -> MessageType:
        return MessageType.RECLAIM


@dataclass(frozen=True)
class Receipt(ControlMessage):
    """Client → Manager: delivery confirmation for a Redirect/Reclaim.

    Those two message types have no protocol-level response in the
    paper, so under lossy transport their retransmission is gated on
    this receipt instead. ``acked_msg_id`` is the confirmed message's
    ``msg_id``.
    """

    node_id: int
    acked_msg_id: int

    @property
    def type(self) -> MessageType:
        return MessageType.RECEIPT


@dataclass(frozen=True)
class ManagerHeartbeat(ControlMessage):
    """Primary manager → standby: liveness beacon carrying the latest
    persisted snapshot version (for observability; the snapshot itself
    lives in stable storage, not on the wire)."""

    manager_node: int
    snapshot_version: int
    timestamp: float

    @property
    def type(self) -> MessageType:
        return MessageType.MANAGER_HEARTBEAT


@dataclass(frozen=True)
class Resync(ControlMessage):
    """New primary → all clients after failover: report your state now.

    Clients answer with an immediate STAT plus one accepting
    Offload-ACK per hosted workload (carrying ``amount_pct``), letting
    the manager reconcile the restored snapshot against ground truth.
    """

    manager_node: int
    timestamp: float

    @property
    def type(self) -> MessageType:
        return MessageType.RESYNC


# ---------------------------------------------------------------------------
# Reliability layer: retry policy, ACK-gated retransmission, dedup.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Retransmission schedule for ACK-gated control messages.

    The first retransmission fires ``base_timeout_s`` after the
    original send; each subsequent one backs off by ``backoff`` up to
    ``max_timeout_s``. After ``max_retries`` unacknowledged
    retransmissions the sender gives up and invokes the caller's
    give-up hook (graceful degradation, not an exception).

    ``jitter`` (0..1) enables decorrelated jitter: each timeout is
    drawn from the upper ``jitter`` fraction of
    ``[base_timeout_s, min(max_timeout_s, previous * backoff)]``, so
    retransmissions from many clients that lost messages in the same
    burst do not re-synchronize into the next loss burst. Draws come
    from a per-sender seeded generator (see :class:`ReliableSender`),
    so a run stays a pure function of its seed; with ``jitter=0`` the
    schedule is the deterministic exponential one and no RNG is ever
    consulted.
    """

    base_timeout_s: float = 5.0
    backoff: float = 2.0
    max_timeout_s: float = 60.0
    max_retries: int = 4
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.base_timeout_s <= 0 or self.max_timeout_s < self.base_timeout_s:
            raise ValueError("need 0 < base_timeout_s <= max_timeout_s")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def timeout_for(self, attempt: int) -> float:
        """Deterministic timeout preceding retransmission ``attempt``
        (0-based); the jitter-free schedule, and the upper bound the
        jittered one never exceeds."""
        return min(self.base_timeout_s * self.backoff**attempt, self.max_timeout_s)


class DedupCache:
    """Bounded (sender, msg_id) duplicate filter with a reply cache.

    ``check`` returns ``(is_duplicate, cached_reply)``; handlers that
    answered a request remember the reply via ``remember`` so a
    retransmitted request re-elicits the same answer without the state
    transition running twice — the classic at-most-once RPC cache.

    Boundedness matters for soak runs that push millions of events
    through one endpoint: the cache evicts least-recently-touched
    entries past ``capacity`` (LRU) and, with ``ttl_s`` set, entries
    untouched for longer than the TTL (read off ``clock``, typically
    the simulation engine's virtual clock). Retransmission windows are
    bounded by the retry budget, so a TTL comfortably above the give-up
    horizon loses no dedup coverage. Evictions are counted on the
    instance (:attr:`lru_evictions` / :attr:`ttl_expirations`) and
    mirrored into the ``transport.dedup_lru_evictions`` /
    ``transport.dedup_ttl_expirations`` metrics.
    """

    def __init__(
        self,
        capacity: int = 4096,
        ttl_s: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError(f"ttl_s must be positive, got {ttl_s}")
        if ttl_s is not None and clock is None:
            raise ValueError("a TTL needs a clock to expire against")
        self.capacity = capacity
        self.ttl_s = ttl_s
        self._clock = clock
        self.lru_evictions = 0
        self.ttl_expirations = 0
        # key -> (reply, last-touch time); ordered oldest-touch first.
        self._seen: "OrderedDict[Tuple[int, int], Tuple[Optional[ControlMessage], float]]" = (
            OrderedDict()
        )

    def _now(self) -> float:
        return self._clock() if self._clock is not None else 0.0

    def _expire(self, now: float) -> None:
        if self.ttl_s is None:
            return
        cutoff = now - self.ttl_s
        expired = 0
        while self._seen:
            _, (_, touched) = next(iter(self._seen.items()))
            if touched > cutoff:
                break
            self._seen.popitem(last=False)
            expired += 1
        if expired:
            self.ttl_expirations += expired
            get_registry().counter("transport.dedup_ttl_expirations").inc(expired)

    def check(self, sender: int, msg_id: int) -> Tuple[bool, Optional["ControlMessage"]]:
        now = self._now()
        self._expire(now)
        key = (sender, msg_id)
        entry = self._seen.get(key)
        if entry is not None:
            self._seen[key] = (entry[0], now)
            self._seen.move_to_end(key)
            return True, entry[0]
        return False, None

    def remember(
        self, sender: int, msg_id: int, reply: Optional["ControlMessage"] = None
    ) -> None:
        now = self._now()
        self._expire(now)
        key = (sender, msg_id)
        self._seen[key] = (reply, now)
        self._seen.move_to_end(key)
        evicted = 0
        while len(self._seen) > self.capacity:
            self._seen.popitem(last=False)
            evicted += 1
        if evicted:
            self.lru_evictions += evicted
            get_registry().counter("transport.dedup_lru_evictions").inc(evicted)

    def clear(self) -> None:
        self._seen.clear()

    def __len__(self) -> int:
        return len(self._seen)


@dataclass
class _Outstanding:
    """One un-acknowledged reliable send."""

    destination: int
    payload: Any
    attempt: int  # retransmissions performed so far
    timer: Any  # ScheduledEvent
    on_give_up: Optional[Callable[[int, Any], None]]
    prev_timeout: float = 0.0  # last armed timeout (decorrelated jitter state)


class ReliableSender:
    """ACK-gated retransmission on top of a fire-and-forget network.

    Each reliable send is keyed on the payload's ``msg_id``;
    ``acknowledge(msg_id)`` (called when the application-level response
    arrives) cancels the pending timer. On a loss-free fabric no timer
    ever fires, so behaviour — counters included — is identical to
    plain sends.

    Parameters
    ----------
    network : MessageNetwork
        The (possibly faulty) fabric messages travel on.
    engine : SimulationEngine
        Event engine used to schedule retransmission timers.
    node_id : int
        The sending endpoint's node id.
    policy : RetryPolicy
        Timeout schedule and retry budget.

    Attributes
    ----------
    retransmissions : int
        Timer-driven re-sends performed (also published process-wide
        as the ``transport.retransmissions`` metric).
    gave_up : int
        Sends abandoned after the retry budget (metric:
        ``transport.sends_gave_up``). Each retransmission / give-up
        additionally records a ``transport.retransmit`` /
        ``transport.give_up`` instant event when tracing is on, so
        retries are visible on the placement-round timeline.
    """

    def __init__(
        self,
        network,
        engine,
        node_id: int,
        policy: RetryPolicy,
        seed: int = 0,
    ) -> None:
        self.network = network
        self.engine = engine
        self.node_id = node_id
        self.policy = policy
        self._outstanding: Dict[int, _Outstanding] = {}
        self.retransmissions = 0
        self.gave_up = 0
        # Jitter draws come from a stream keyed on (seed, node id), so
        # two endpoints sharing one policy still desynchronize while a
        # whole run stays reproducible from its seed. Created lazily —
        # a jitter-free policy never touches numpy's RNG machinery.
        self._jitter_seed = (int(seed), int(node_id))
        self._jitter_rng = None

    def _timeout_for(self, entry: _Outstanding) -> float:
        """Next retransmission timeout: deterministic exponential, or a
        decorrelated-jitter draw when the policy asks for one."""
        policy = self.policy
        if policy.jitter <= 0.0:
            return policy.timeout_for(entry.attempt)
        if self._jitter_rng is None:
            import numpy as _np

            self._jitter_rng = _np.random.default_rng(self._jitter_seed)
        prev = entry.prev_timeout if entry.prev_timeout > 0.0 else policy.base_timeout_s
        cap = min(policy.max_timeout_s, max(policy.base_timeout_s, prev * policy.backoff))
        low = policy.base_timeout_s + (1.0 - policy.jitter) * (cap - policy.base_timeout_s)
        timeout = float(self._jitter_rng.uniform(low, cap))
        entry.prev_timeout = timeout
        return timeout

    @property
    def pending(self) -> int:
        return len(self._outstanding)

    def send(
        self,
        destination: int,
        payload: "ControlMessage",
        on_give_up: Optional[Callable[[int, Any], None]] = None,
    ) -> None:
        """Send ``payload`` and retransmit until acknowledged or the
        retry budget is exhausted (then ``on_give_up(dest, payload)``)."""
        key = payload.msg_id
        if key in self._outstanding:  # already in flight: keep its timer
            return
        self.network.send(self.node_id, destination, payload)
        entry = _Outstanding(
            destination=destination, payload=payload, attempt=0, timer=None,
            on_give_up=on_give_up,
        )
        self._outstanding[key] = entry
        self._arm(key, entry)

    def _arm(self, key: int, entry: _Outstanding) -> None:
        entry.timer = self.engine.schedule_after(
            self._timeout_for(entry),
            lambda engine, key=key: self._on_timeout(key),
            label=f"retx-{self.node_id}-{key}",
        )

    def _on_timeout(self, key: int) -> None:
        entry = self._outstanding.get(key)
        if entry is None:  # acknowledged in the meantime
            return
        if entry.attempt >= self.policy.max_retries:
            del self._outstanding[key]
            self.gave_up += 1
            get_registry().counter("transport.sends_gave_up").inc()
            trace_event(
                "transport.give_up", node=self.node_id, dest=entry.destination
            )
            if entry.on_give_up is not None:
                entry.on_give_up(entry.destination, entry.payload)
            return
        entry.attempt += 1
        self.retransmissions += 1
        get_registry().counter("transport.retransmissions").inc()
        trace_event(
            "transport.retransmit",
            node=self.node_id,
            dest=entry.destination,
            attempt=entry.attempt,
        )
        self.network.send(self.node_id, entry.destination, entry.payload)
        self._arm(key, entry)

    def acknowledge(self, msg_id: Optional[int]) -> bool:
        """Cancel the retransmission for ``msg_id``; returns whether one
        was outstanding (``None`` ids — legacy acks — are ignored)."""
        if msg_id is None:
            return False
        entry = self._outstanding.pop(msg_id, None)
        if entry is None:
            return False
        if entry.timer is not None:
            entry.timer.cancel()
        return True

    def cancel_all(self) -> None:
        """Drop every outstanding send (e.g. the endpoint crashed)."""
        for entry in self._outstanding.values():
            if entry.timer is not None:
                entry.timer.cancel()
        self._outstanding.clear()
