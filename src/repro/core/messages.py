"""DUST control-plane message vocabulary (paper Section III-B/C).

The workflow:

1. every client sends **Offload-capable** (1 = willing, 0 =
   None-offloading) with its ``C_max``/``CO_max`` thresholds;
2. the manager replies **ACK**, carrying the *Update-Interval Time*;
3. clients then send periodic **STAT** reports regardless of role;
4. on placement, the manager sends **Offload-Request** to the selected
   destination, answered by **Offload-ACK**; sources are told where to
   redirect with **Redirect** (implied by the paper's "monitoring data
   D_i … is subsequently redirected");
5. destinations send **Keepalive** while hosting; a missed keepalive
   makes the manager substitute a replica and announce it via **REP**.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

_message_counter = itertools.count()


class MessageType(enum.Enum):
    OFFLOAD_CAPABLE = "offload-capable"
    ACK = "ack"
    STAT = "stat"
    OFFLOAD_REQUEST = "offload-request"
    OFFLOAD_ACK = "offload-ack"
    REDIRECT = "redirect"
    KEEPALIVE = "keepalive"
    REP = "rep"
    RECLAIM = "reclaim"


@dataclass(frozen=True)
class ControlMessage:
    """Base class: every message carries a type tag and a unique id."""

    msg_id: int = field(default_factory=lambda: next(_message_counter), init=False)

    @property
    def type(self) -> MessageType:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclass(frozen=True)
class OffloadCapable(ControlMessage):
    """Client → Manager: participation declaration + thresholds."""

    node_id: int
    capable: bool
    c_max: float
    co_max: float

    @property
    def type(self) -> MessageType:
        return MessageType.OFFLOAD_CAPABLE


@dataclass(frozen=True)
class Ack(ControlMessage):
    """Manager → Client: admission + Update-Interval Time (seconds)."""

    node_id: int
    update_interval_s: float

    @property
    def type(self) -> MessageType:
        return MessageType.ACK


@dataclass(frozen=True)
class Stat(ControlMessage):
    """Client → Manager: periodic resource report.

    ``capacity_pct`` is the node's utilized capacity ``C_j``;
    ``data_mb`` the monitoring volume ``D_i`` it would export if
    offloaded; ``num_agents`` the installed monitor-agent count.
    """

    node_id: int
    capacity_pct: float
    data_mb: float
    num_agents: int
    timestamp: float

    @property
    def type(self) -> MessageType:
        return MessageType.STAT


@dataclass(frozen=True)
class OffloadRequest(ControlMessage):
    """Manager → destination: host ``amount_pct`` of ``source``'s
    monitoring load, reached over ``route`` (node-id tuple)."""

    destination: int
    source: int
    amount_pct: float
    data_mb: float
    route: Tuple[int, ...]

    @property
    def type(self) -> MessageType:
        return MessageType.OFFLOAD_REQUEST


@dataclass(frozen=True)
class OffloadAck(ControlMessage):
    """Destination → Manager: accept/reject a hosting request."""

    destination: int
    source: int
    accepted: bool
    reason: str = ""

    @property
    def type(self) -> MessageType:
        return MessageType.OFFLOAD_ACK


@dataclass(frozen=True)
class Redirect(ControlMessage):
    """Manager → source (Busy node): redirect ``amount_pct`` of its
    monitoring workload to ``destination`` along ``route``."""

    source: int
    destination: int
    amount_pct: float
    route: Tuple[int, ...]

    @property
    def type(self) -> MessageType:
        return MessageType.REDIRECT


@dataclass(frozen=True)
class Keepalive(ControlMessage):
    """Destination → Manager: hosting heartbeat."""

    node_id: int
    hosted_sources: Tuple[int, ...]
    timestamp: float

    @property
    def type(self) -> MessageType:
        return MessageType.KEEPALIVE


@dataclass(frozen=True)
class Rep(ControlMessage):
    """Manager → replica node: take over a failed destination's hosted
    workload (the paper's REP message)."""

    replica: int
    failed_destination: int
    source: int
    amount_pct: float
    route: Tuple[int, ...]

    @property
    def type(self) -> MessageType:
        return MessageType.REP


@dataclass(frozen=True)
class Reclaim(ControlMessage):
    """Manager → destination: the source has spare capacity again and
    reclaims its workload ("a Busy node … reclaim its local resources
    when they become available")."""

    source: int
    destination: int
    amount_pct: float

    @property
    def type(self) -> MessageType:
        return MessageType.RECLAIM
