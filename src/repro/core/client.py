"""DUST-Client: the per-node agent of the control plane.

A client can run "on switches, servers, or any available compute
resources such as DPUs" — here it is an event-driven endpoint on the
:class:`~repro.simulation.network_sim.MessageNetwork`. Its life cycle
follows Section III-B:

1. announce itself with **Offload-capable**;
2. on **ACK**, start the periodic **STAT** loop at the manager-assigned
   Update-Interval Time;
3. as a *destination*: accept **Offload-Request** / **REP** when the
   projected utilization stays at/below ``CO_max``, then heartbeat with
   **Keepalive**;
4. as a *source*: apply **Redirect** (its monitoring load leaves the
   node) and **Reclaim** (it returns).

The utilized capacity it reports is ``base(t) − offloaded + hosted``
(the homogeneity assumption), where ``base`` is a constant or a
callable of virtual time supplied by the experiment.

Lossy-network hardening: every handler is idempotent — a
:class:`~repro.core.messages.DedupCache` suppresses duplicated or
retransmitted messages and replays the original response instead of
re-running the state transition. With ``retry_policy`` set the
announcement is retransmitted until ACKed (give-up reverts to local
telemetry and re-announces later) and Redirect/Reclaim are confirmed
with **Receipt** messages so the manager can gate its own
retransmissions. With ``retry_policy=None`` (the default) the wire
behaviour is byte-identical to the pre-hardening client.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.core.messages import (
    Ack,
    ControlMessage,
    DedupCache,
    Keepalive,
    OffloadAck,
    OffloadCapable,
    OffloadRequest,
    Receipt,
    Reclaim,
    Redirect,
    ReliableSender,
    Rep,
    Resync,
    RetryPolicy,
    Stat,
)
from repro.core.thresholds import ThresholdPolicy
from repro.errors import ProtocolError
from repro.simulation.engine import SimulationEngine
from repro.simulation.network_sim import Message, MessageNetwork

CapacityFn = Union[float, Callable[[float], float]]


@dataclass
class HostedWorkload:
    """A workload this client hosts for a remote Busy node."""

    source: int
    amount_pct: float
    data_mb: float
    via_replica: bool = False


class DUSTClient:
    """Event-driven DUST client endpoint."""

    def __init__(
        self,
        node_id: int,
        engine: SimulationEngine,
        network: MessageNetwork,
        manager_node: int,
        policy: ThresholdPolicy,
        base_capacity: CapacityFn = 30.0,
        data_mb: float = 10.0,
        num_agents: int = 10,
        capable: bool = True,
        keepalive_period_s: float = 10.0,
        retry_policy: Optional[RetryPolicy] = None,
        reannounce_delay_s: float = 60.0,
        dedup_ttl_s: Optional[float] = None,
        transport_seed: int = 0,
    ) -> None:
        self.node_id = node_id
        self.engine = engine
        self.network = network
        self.manager_node = manager_node
        self.policy = policy
        self._base_capacity = base_capacity
        self.data_mb = data_mb
        self.num_agents = num_agents
        self.capable = capable
        self.keepalive_period_s = keepalive_period_s
        self.retry_policy = retry_policy
        self.reannounce_delay_s = reannounce_delay_s

        self.update_interval_s: Optional[float] = None
        self.hosted: Dict[int, HostedWorkload] = {}
        self.offloaded_to: Dict[int, float] = {}  # destination -> amount
        self.alive = True
        self._keepalive_running = False
        self.stats_sent = 0
        self.keepalives_sent = 0
        self.requests_rejected = 0
        self.duplicates_ignored = 0
        self.announce_give_ups = 0

        self._dedup = DedupCache(ttl_s=dedup_ttl_s, clock=lambda: engine.now)
        self._reliable: Optional[ReliableSender] = (
            ReliableSender(network, engine, node_id, retry_policy, seed=transport_seed)
            if retry_policy is not None
            else None
        )
        self._announce_msg_id: Optional[int] = None
        self._stat_confirmed = False  # manager receipted an admission STAT

    # -- capacity model -----------------------------------------------------------
    def base_capacity(self, now: float) -> float:
        """Intrinsic (pre-DUST) utilized capacity at virtual time."""
        if callable(self._base_capacity):
            return float(self._base_capacity(now))
        return float(self._base_capacity)

    def current_capacity(self, now: float) -> float:
        """Reported ``C_j``: base − offloaded + hosted, clamped to
        [x_min, 100]."""
        cap = (
            self.base_capacity(now)
            - sum(self.offloaded_to.values())
            + sum(h.amount_pct for h in self.hosted.values())
        )
        return float(min(100.0, max(self.policy.x_min, cap)))

    @property
    def hosted_amount(self) -> float:
        return float(sum(h.amount_pct for h in self.hosted.values()))

    @property
    def offloaded_amount(self) -> float:
        return float(sum(self.offloaded_to.values()))

    @property
    def retransmissions(self) -> int:
        return self._reliable.retransmissions if self._reliable is not None else 0

    # -- lifecycle -------------------------------------------------------------------
    def start(self) -> None:
        """Register on the network and announce participation."""
        self.network.register(self.node_id, self._receive)
        self._announce()

    def _announce(self) -> None:
        if not self.alive:
            return
        announce = OffloadCapable(
            node_id=self.node_id,
            capable=self.capable,
            c_max=self.policy.c_max,
            co_max=self.policy.co_max,
        )
        self._announce_msg_id = announce.msg_id
        if self._reliable is not None:
            self._reliable.send(
                self.manager_node, announce, on_give_up=self._on_announce_give_up
            )
        else:
            self.network.send(self.node_id, self.manager_node, announce)

    def _on_announce_give_up(self, destination: int, payload: ControlMessage) -> None:
        """Manager unreachable: keep monitoring locally (the default —
        nothing was offloaded yet) and re-announce after a quiet
        period, like a fresh boot onto a flaky fabric."""
        self.announce_give_ups += 1
        self.engine.schedule_after(
            self.reannounce_delay_s,
            lambda engine: self._announce(),
            label=f"reannounce-{self.node_id}",
        )

    def fail(self) -> None:
        """Crash the node: stop responding, stop all loops. Used by the
        failure-recovery experiments to trigger replica substitution."""
        self.alive = False
        self.network.unregister(self.node_id)
        if self._reliable is not None:
            self._reliable.cancel_all()

    def recover(self) -> None:
        """Restart after a crash: state is lost (hosted workloads were
        re-homed by the manager; any of our own offloads were recorded
        there too), so the client re-announces like a fresh boot."""
        if self.alive:
            raise ProtocolError(f"client {self.node_id} is not failed")
        self.hosted.clear()
        self.offloaded_to.clear()
        self.update_interval_s = None
        self._keepalive_running = False
        self._stat_confirmed = False
        self._dedup.clear()
        self.alive = True
        self.start()

    # -- message handling -------------------------------------------------------------
    def _receive(self, message: Message) -> None:
        if not self.alive:
            return
        payload = message.payload
        if not isinstance(payload, ControlMessage):
            raise ProtocolError(f"client {self.node_id} received non-DUST payload")
        duplicate, cached_reply = self._dedup.check(message.source, payload.msg_id)
        if duplicate:
            # Idempotent replay: re-elicit the original answer (so a
            # lost response is recovered by the peer's retransmission)
            # without re-running the state transition.
            self.duplicates_ignored += 1
            if cached_reply is not None:
                self.network.send(self.node_id, message.source, cached_reply)
            return
        reply: Optional[ControlMessage] = None
        if isinstance(payload, Ack):
            self._on_ack(payload)
        elif isinstance(payload, OffloadRequest):
            reply = self._on_offload_request(payload)
        elif isinstance(payload, Rep):
            reply = self._on_rep(payload)
        elif isinstance(payload, Redirect):
            reply = self._on_redirect(payload)
        elif isinstance(payload, Reclaim):
            reply = self._on_reclaim(payload)
        elif isinstance(payload, Resync):
            reply = self._on_resync(payload)
        elif isinstance(payload, Receipt) and self._reliable is not None:
            self._reliable.acknowledge(payload.acked_msg_id)
            self._stat_confirmed = True
        else:
            raise ProtocolError(
                f"client {self.node_id} cannot handle {payload.type.value!r}"
            )
        self._dedup.remember(message.source, payload.msg_id, reply)

    def _on_ack(self, ack: Ack) -> None:
        if ack.node_id != self.node_id:
            raise ProtocolError(
                f"client {self.node_id} got ACK addressed to {ack.node_id}"
            )
        if self._reliable is not None:
            self._reliable.acknowledge(self._announce_msg_id)
        first_start = self.update_interval_s is None
        self.update_interval_s = ack.update_interval_s
        if first_start:
            self.engine.schedule_periodic(
                ack.update_interval_s,
                lambda engine: self._send_stat(),
                label=f"stat-{self.node_id}",
                first_delay=0.0,
                condition=lambda: self.alive,
            )

    def _send_stat(self) -> None:
        self.stats_sent += 1
        unconfirmed = self._reliable is not None and not self._stat_confirmed
        stat = Stat(
            node_id=self.node_id,
            capacity_pct=self.current_capacity(self.engine.now),
            data_mb=self.data_mb,
            num_agents=self.num_agents,
            timestamp=self.engine.now,
            reliable=unconfirmed,
        )
        if unconfirmed:
            # Admission STAT: retransmit until the manager's Receipt
            # confirms the NMDB has seen this node at least once.
            self._reliable.send(self.manager_node, stat)
        else:
            self.network.send(self.node_id, self.manager_node, stat)

    def _accept_hosting(self, source: int, amount: float, data_mb: float, via_replica: bool) -> bool:
        projected = self.current_capacity(self.engine.now) + amount
        if projected > self.policy.co_max + 1e-9:
            self.requests_rejected += 1
            return False
        existing = self.hosted.get(source)
        if existing is None:
            self.hosted[source] = HostedWorkload(
                source=source, amount_pct=amount, data_mb=data_mb, via_replica=via_replica
            )
        else:
            existing.amount_pct += amount
            existing.data_mb += data_mb
        self._ensure_keepalive_loop()
        return True

    def _on_offload_request(self, req: OffloadRequest) -> OffloadAck:
        if req.destination != self.node_id:
            raise ProtocolError(
                f"client {self.node_id} got Offload-Request for {req.destination}"
            )
        accepted = self._accept_hosting(req.source, req.amount_pct, req.data_mb, False)
        ack = OffloadAck(
            destination=self.node_id,
            source=req.source,
            accepted=accepted,
            reason="" if accepted else "projected utilization above CO_max",
            request_id=req.msg_id,
        )
        self.network.send(self.node_id, self.manager_node, ack)
        return ack

    def _on_rep(self, rep: Rep) -> OffloadAck:
        if rep.replica != self.node_id:
            raise ProtocolError(f"client {self.node_id} got REP for {rep.replica}")
        accepted = self._accept_hosting(rep.source, rep.amount_pct, 0.0, True)
        ack = OffloadAck(
            destination=self.node_id,
            source=rep.source,
            accepted=accepted,
            reason="replica" if accepted else "replica rejected: above CO_max",
            request_id=rep.msg_id,
        )
        self.network.send(self.node_id, self.manager_node, ack)
        return ack

    def _receipt_for(self, msg: ControlMessage) -> Optional[Receipt]:
        """Confirm delivery of an un-answered message type when the
        reliability layer is active (the manager gates retransmission
        of Redirect/Reclaim on this)."""
        if self._reliable is None:
            return None
        receipt = Receipt(node_id=self.node_id, acked_msg_id=msg.msg_id)
        self.network.send(self.node_id, self.manager_node, receipt)
        return receipt

    def _on_redirect(self, redirect: Redirect) -> Optional[Receipt]:
        if redirect.source != self.node_id:
            raise ProtocolError(
                f"client {self.node_id} got Redirect for source {redirect.source}"
            )
        self.offloaded_to[redirect.destination] = (
            self.offloaded_to.get(redirect.destination, 0.0) + redirect.amount_pct
        )
        return self._receipt_for(redirect)

    def _on_reclaim(self, reclaim: Reclaim) -> Optional[Receipt]:
        if reclaim.destination == self.node_id:
            # Drop the hosted workload for this source.
            hosted = self.hosted.get(reclaim.source)
            if hosted is not None:
                hosted.amount_pct -= reclaim.amount_pct
                if hosted.amount_pct <= 1e-9:
                    del self.hosted[reclaim.source]
        elif reclaim.source == self.node_id:
            # Take the workload back locally.
            current = self.offloaded_to.get(reclaim.destination, 0.0)
            remaining = current - reclaim.amount_pct
            if remaining <= 1e-9:
                self.offloaded_to.pop(reclaim.destination, None)
            else:
                self.offloaded_to[reclaim.destination] = remaining
        else:
            raise ProtocolError(
                f"client {self.node_id} got Reclaim for "
                f"{reclaim.source}->{reclaim.destination}"
            )
        return self._receipt_for(reclaim)

    def _on_resync(self, resync: Resync) -> Optional[Receipt]:
        """A recovering manager asked for ground truth: report state
        now — a fresh STAT, one accepting Offload-ACK per hosted
        workload (carrying its amount so a stale snapshot can be
        repaired) and, if hosting, an immediate keepalive. The Receipt
        doubles as the proof-of-life a keepalive probe asks for."""
        self.manager_node = resync.manager_node
        self._send_stat()
        for source, workload in sorted(self.hosted.items()):
            report = OffloadAck(
                destination=self.node_id,
                source=source,
                accepted=True,
                reason="resync",
                amount_pct=workload.amount_pct,
            )
            if self._reliable is not None:
                # A lost resync report leaves the recovering manager
                # blind to this hosting forever — retransmit until the
                # manager's Receipt confirms it arrived.
                self._reliable.send(self.manager_node, report)
            else:
                self.network.send(self.node_id, self.manager_node, report)
        if self.hosted:
            self.keepalives_sent += 1
            self.network.send(
                self.node_id,
                self.manager_node,
                Keepalive(
                    node_id=self.node_id,
                    hosted_sources=tuple(sorted(self.hosted)),
                    timestamp=self.engine.now,
                ),
            )
        return self._receipt_for(resync)

    # -- keepalive loop ------------------------------------------------------------------
    def _ensure_keepalive_loop(self) -> None:
        if self._keepalive_running:
            return
        self._keepalive_running = True

        def beat(engine: SimulationEngine) -> None:
            if not self.alive or not self.hosted:
                self._keepalive_running = False
                return
            self.keepalives_sent += 1
            self.network.send(
                self.node_id,
                self.manager_node,
                Keepalive(
                    node_id=self.node_id,
                    hosted_sources=tuple(sorted(self.hosted)),
                    timestamp=engine.now,
                ),
            )
            engine.schedule_after(self.keepalive_period_s, beat, f"ka-{self.node_id}")

        self.engine.schedule_after(0.0, beat, f"ka-{self.node_id}")
