"""System-consistency auditor for manager/client deployments.

A running DUST system maintains distributed state: the manager's ledger
of active offloads, each source's record of where its load went, and
each destination's hosted workloads. :func:`audit_system` cross-checks
them and returns a list of human-readable violations (empty = clean).
The integration tests assert a clean audit after every scenario, which
catches protocol regressions (lost Redirects, stale ledger rows,
double-hosted workloads) that individual unit tests cannot see.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

from repro.core.client import DUSTClient
from repro.core.manager import DUSTManager

_TOL = 1e-6


@dataclass(frozen=True)
class AuditReport:
    """Outcome of one audit pass."""

    violations: tuple

    @property
    def clean(self) -> bool:
        return not self.violations

    def __bool__(self) -> bool:  # truthy == clean, so `assert audit(...)` reads well
        return self.clean

    def __repr__(self) -> str:
        if self.clean:
            return "AuditReport(clean)"
        return "AuditReport(violations=[\n  " + "\n  ".join(self.violations) + "\n])"


def audit_system(
    manager: DUSTManager, clients: Mapping[int, DUSTClient]
) -> AuditReport:
    """Cross-check manager ledger against live client state.

    Checks (alive clients only — crashed nodes legitimately diverge
    until the keepalive sweep cleans them up):

    1. every ledger offload's source records at least that amount
       toward the destination;
    2. every ledger offload's destination hosts that source;
    3. no client hosts a workload the ledger does not know about;
    4. no destination exceeds ``CO_max``;
    5. aggregate conservation: total hosted == total offloaded ==
       ledger total (over alive endpoints).
    """
    violations: List[str] = []
    policy = manager.policy
    now = manager.engine.now

    ledger_by_pair: Dict[tuple, float] = {}
    for offload in manager.ledger.active:
        key = (offload.source, offload.destination)
        ledger_by_pair[key] = ledger_by_pair.get(key, 0.0) + offload.amount_pct

    # 1 + 2: ledger -> clients.
    for (source, destination), amount in ledger_by_pair.items():
        src = clients.get(source)
        dst = clients.get(destination)
        if src is not None and src.alive:
            recorded = src.offloaded_to.get(destination, 0.0)
            if recorded + _TOL < amount:
                violations.append(
                    f"source {source} records {recorded:.3f} toward {destination}, "
                    f"ledger says {amount:.3f}"
                )
        if dst is not None and dst.alive:
            hosted = dst.hosted.get(source)
            if hosted is None:
                violations.append(
                    f"destination {destination} does not host source {source} "
                    f"(ledger says {amount:.3f})"
                )
            elif hosted.amount_pct + _TOL < amount:
                violations.append(
                    f"destination {destination} hosts {hosted.amount_pct:.3f} for "
                    f"{source}, ledger says {amount:.3f}"
                )

    # 3: clients -> ledger (no ghost hosting).
    for node_id, client in clients.items():
        if not client.alive:
            continue
        for source, workload in client.hosted.items():
            known = ledger_by_pair.get((source, node_id), 0.0)
            if workload.amount_pct > known + _TOL:
                violations.append(
                    f"node {node_id} hosts {workload.amount_pct:.3f} for {source} "
                    f"but ledger knows only {known:.3f}"
                )

    # 4: destination capacity invariant (constraint 3a's runtime analogue).
    for node_id, client in clients.items():
        if client.alive and client.hosted_amount > 0:
            capacity = client.current_capacity(now)
            if capacity > policy.co_max + _TOL:
                violations.append(
                    f"destination {node_id} at {capacity:.2f}% exceeds "
                    f"CO_max {policy.co_max}%"
                )

    # 5: aggregate conservation over alive endpoints.
    alive_pairs = [
        (pair, amount)
        for pair, amount in ledger_by_pair.items()
        if clients.get(pair[0]) is not None
        and clients.get(pair[1]) is not None
        and clients[pair[0]].alive
        and clients[pair[1]].alive
    ]
    ledger_total = sum(a for _, a in alive_pairs)
    hosted_total = sum(
        c.hosted_amount for c in clients.values() if c.alive
    )
    offloaded_total = sum(
        c.offloaded_amount for c in clients.values() if c.alive
    )
    if abs(hosted_total - ledger_total) > 1e-3 and not any(
        not c.alive for c in clients.values()
    ):
        violations.append(
            f"hosted total {hosted_total:.3f} != ledger total {ledger_total:.3f}"
        )
    if abs(offloaded_total - ledger_total) > 1e-3 and not any(
        not c.alive for c in clients.values()
    ):
        violations.append(
            f"offloaded total {offloaded_total:.3f} != ledger total {ledger_total:.3f}"
        )

    return AuditReport(violations=tuple(violations))
