"""Multi-resource placement: CPU *and* memory constraints.

The paper's evaluation measures both CPU and memory savings (Fig. 6)
but its formulation tracks a single capacity dimension. This extension
generalizes Eq. 3 to R resources: each Busy node must shed a
per-resource excess vector ``Cs_i^r``, each candidate offers a
per-resource spare vector ``Cd_j^r``, and one unit of the decision
variable ``x_ij`` (a fraction of node i's monitoring workload) moves
``demand_i^r`` of each resource:

    minimize   Σ_ij  x_ij · Trmin_ij
    subject to Σ_j   x_ij = 1                      (ship all of i's workload)
               Σ_i   x_ij · demand_i^r  ≤  Cd_j^r  (3a, per resource)
               x ≥ 0

``demand_i^r`` is Busy node i's total excess of resource r, so
``x_ij`` is the fraction of i's monitoring workload placed on j — the
flexible full/partial offloading of the paper, with every resource
dimension respected simultaneously.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.placement import PlacementAssignment
from repro.errors import PlacementError
from repro.lp import LinearProgram, SolveStatus, lp_sum, solve_scipy
from repro.routing.response_time import PathEngine, ResponseTimeModel
from repro.topology.graph import Topology

_TOL = 1e-9

#: Conventional resource ordering used by the helpers.
DEFAULT_RESOURCES: Tuple[str, ...] = ("cpu_pct", "memory_pct")


@dataclass(frozen=True)
class MultiResourceProblem:
    """A placement instance over R resource dimensions.

    Attributes
    ----------
    topology:
        Graph to route on.
    busy / candidates:
        Node id tuples (disjoint).
    demands:
        ``(len(busy), R)`` — resource r shed by fully offloading busy
        node i's monitoring workload.
    spares:
        ``(len(candidates), R)`` — resource r available on candidate j.
    data_mb:
        Monitoring volume ``D_i`` per busy node (prices the routes).
    resources:
        Resource names, for reporting.
    max_hops:
        Route hop budget for Trmin.
    """

    topology: Topology
    busy: Tuple[int, ...]
    candidates: Tuple[int, ...]
    demands: np.ndarray
    spares: np.ndarray
    data_mb: np.ndarray
    resources: Tuple[str, ...] = DEFAULT_RESOURCES
    max_hops: Optional[int] = None

    def __post_init__(self) -> None:
        demands = np.atleast_2d(np.asarray(self.demands, dtype=float))
        spares = np.atleast_2d(np.asarray(self.spares, dtype=float))
        data = np.asarray(self.data_mb, dtype=float)
        object.__setattr__(self, "demands", demands)
        object.__setattr__(self, "spares", spares)
        object.__setattr__(self, "data_mb", data)
        r = len(self.resources)
        if demands.shape != (len(self.busy), r):
            raise PlacementError(
                f"demands shape {demands.shape} != ({len(self.busy)}, {r})"
            )
        if spares.shape != (len(self.candidates), r):
            raise PlacementError(
                f"spares shape {spares.shape} != ({len(self.candidates)}, {r})"
            )
        if data.shape != (len(self.busy),):
            raise PlacementError("data_mb needs one entry per busy node")
        if (demands < 0).any() or (spares < 0).any() or (data < 0).any():
            raise PlacementError("demands, spares and data must be non-negative")
        if set(self.busy) & set(self.candidates):
            raise PlacementError("busy and candidate sets overlap")
        for node in (*self.busy, *self.candidates):
            self.topology.node(node)

    @property
    def num_resources(self) -> int:
        return len(self.resources)


@dataclass(frozen=True)
class MultiResourceReport:
    """Solve outcome; amounts are workload *fractions* scaled to the
    dominant resource for :class:`PlacementAssignment` compatibility."""

    status: SolveStatus
    objective_beta: float
    fractions: np.ndarray  # (busy, candidates) workload fractions
    assignments: Tuple[PlacementAssignment, ...]
    per_resource_usage: Dict[str, np.ndarray]  # resource -> per-candidate load
    total_seconds: float

    @property
    def feasible(self) -> bool:
        return self.status.is_optimal


def solve_multiresource(
    problem: MultiResourceProblem,
    response_model: Optional[ResponseTimeModel] = None,
) -> MultiResourceReport:
    """Solve the R-resource placement LP (HiGHS)."""
    start = time.perf_counter()
    m, n = len(problem.busy), len(problem.candidates)
    model = response_model or ResponseTimeModel(
        engine=PathEngine.DP, max_hops=problem.max_hops
    )
    if m == 0:
        return MultiResourceReport(
            status=SolveStatus.OPTIMAL,
            objective_beta=0.0,
            fractions=np.zeros((0, n)),
            assignments=(),
            per_resource_usage={r: np.zeros(n) for r in problem.resources},
            total_seconds=time.perf_counter() - start,
        )
    if n == 0:
        return MultiResourceReport(
            status=SolveStatus.INFEASIBLE,
            objective_beta=float("nan"),
            fractions=np.zeros((m, 0)),
            assignments=(),
            per_resource_usage={r: np.zeros(0) for r in problem.resources},
            total_seconds=time.perf_counter() - start,
        )

    trmin, hops, paths = model.trmin_matrix(
        problem.topology,
        list(problem.busy),
        list(problem.candidates),
        problem.data_mb,
        with_paths=True,
    )

    lp = LinearProgram("dust-multiresource")
    variables: Dict[Tuple[int, int], object] = {}
    for i in range(m):
        for j in range(n):
            if np.isfinite(trmin[i, j]):
                variables[(i, j)] = lp.add_variable(f"x_{i}_{j}", upper=1.0)
    for i in range(m):
        row = [variables[(i, j)] for j in range(n) if (i, j) in variables]
        if not row:
            return MultiResourceReport(
                status=SolveStatus.INFEASIBLE,
                objective_beta=float("nan"),
                fractions=np.zeros((m, n)),
                assignments=(),
                per_resource_usage={r: np.zeros(n) for r in problem.resources},
                total_seconds=time.perf_counter() - start,
            )
        lp.add_constraint(lp_sum(row) == 1.0, name=f"workload_{i}")
    for j in range(n):
        for r in range(problem.num_resources):
            col = [
                float(problem.demands[i, r]) * variables[(i, j)]
                for i in range(m)
                if (i, j) in variables and problem.demands[i, r] > _TOL
            ]
            if col:
                lp.add_constraint(
                    lp_sum(col) <= float(problem.spares[j, r]),
                    name=f"cap_{j}_{problem.resources[r]}",
                )
    lp.set_objective(lp_sum(trmin[i, j] * v for (i, j), v in variables.items()))
    solution = solve_scipy(lp)

    fractions = np.zeros((m, n))
    assignments: List[PlacementAssignment] = []
    usage = {r: np.zeros(n) for r in problem.resources}
    if solution.status.is_optimal:
        for (i, j), var in variables.items():
            frac = solution.value(f"x_{i}_{j}")
            if frac <= _TOL:
                continue
            fractions[i, j] = frac
            src, dst = problem.busy[i], problem.candidates[j]
            assignments.append(
                PlacementAssignment(
                    busy=src,
                    candidate=dst,
                    amount_pct=float(frac * problem.demands[i, 0]),
                    response_time_s=float(trmin[i, j]),
                    hops=int(hops[i, j]),
                    route=paths.get((src, dst)),
                )
            )
            for r, name in enumerate(problem.resources):
                usage[name][j] += frac * problem.demands[i, r]

    return MultiResourceReport(
        status=solution.status,
        objective_beta=float(solution.objective) if solution.status.is_optimal else float("nan"),
        fractions=fractions,
        assignments=tuple(assignments),
        per_resource_usage=usage,
        total_seconds=time.perf_counter() - start,
    )
