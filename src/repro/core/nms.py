"""Network Monitor Service (NMS) — Fig. 2's monitoring front-end.

Per the architecture: *"Our 'Network Monitor Service' (NMS) can
initiate network monitoring either based on user input or through
automated triggers. NMS collects a comprehensive set of metrics for the
service and then transmits the pertinent information to the DUST
client, effectively creating a 'Monitor Agent' for each required
metric."*

:class:`NetworkMonitorService` turns a monitoring *request* (a set of
metrics with thresholds) into concrete agent installs on a device,
threshold rules in its TSDB, and — via :meth:`poll_triggers` — the
automated alerts that feed DUST's Busy detection. The catalog maps
metric names to the paper's ten agents, so requesting ``cpu_pct`` and
``rx_pps`` installs exactly the agents that emit them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import TelemetryError
from repro.telemetry.agents import MonitorAgentSpec, paper_agent_specs
from repro.telemetry.device import NetworkDevice
from repro.telemetry.tsdb import ThresholdRule


@dataclass(frozen=True)
class MonitoringRequest:
    """One user- or trigger-originated monitoring ask.

    Attributes
    ----------
    name:
        Request identity (unique per service).
    metrics:
        Metric names to monitor (must exist in the agent catalog).
    alert_above:
        Optional per-metric upper alert bounds; a
        :class:`~repro.telemetry.tsdb.ThresholdRule` is installed for
        each, evaluated by :meth:`NetworkMonitorService.poll_triggers`.
    window_s:
        Aggregation window for the alert rules.
    """

    name: str
    metrics: Tuple[str, ...]
    alert_above: Mapping[str, float] = field(default_factory=dict)
    window_s: float = 300.0

    def __post_init__(self) -> None:
        if not self.metrics:
            raise TelemetryError(f"request {self.name!r} names no metrics")
        unknown = set(self.alert_above) - set(self.metrics)
        if unknown:
            raise TelemetryError(
                f"request {self.name!r} sets alerts on unmonitored metrics "
                f"{sorted(unknown)}"
            )
        if self.window_s <= 0:
            raise TelemetryError("alert window must be positive")


def default_catalog() -> Dict[str, MonitorAgentSpec]:
    """Metric name → emitting agent, from the paper's ten-agent set."""
    catalog: Dict[str, MonitorAgentSpec] = {}
    for spec in paper_agent_specs():
        for metric in spec.emits:
            catalog[metric] = spec
    return catalog


@dataclass(frozen=True)
class TriggerEvent:
    """One fired alert, consumed by DUST's automated workflows."""

    device: str
    request: str
    rule: str
    timestamp: float


class NetworkMonitorService:
    """Maps monitoring requests onto device agents and alert rules."""

    def __init__(self, catalog: Optional[Mapping[str, MonitorAgentSpec]] = None) -> None:
        self.catalog: Dict[str, MonitorAgentSpec] = dict(catalog or default_catalog())
        self._requests: Dict[str, Tuple[MonitoringRequest, NetworkDevice]] = {}
        self.trigger_log: List[TriggerEvent] = []

    # -- catalog ------------------------------------------------------------------
    def agents_for(self, metrics: Sequence[str]) -> List[MonitorAgentSpec]:
        """Deduplicated agent set needed to observe ``metrics``."""
        specs: Dict[str, MonitorAgentSpec] = {}
        for metric in metrics:
            try:
                spec = self.catalog[metric]
            except KeyError:
                raise TelemetryError(
                    f"no agent in the catalog emits metric {metric!r}"
                ) from None
            specs[spec.name] = spec
        return list(specs.values())

    # -- request lifecycle -----------------------------------------------------------
    def submit(self, request: MonitoringRequest, device: NetworkDevice) -> List[str]:
        """Install the agents and rules a request needs; returns the
        names of agents newly installed on the device."""
        if request.name in self._requests:
            raise TelemetryError(f"request {request.name!r} already active")
        installed: List[str] = []
        present = set(device.local_agents) | set(device.offloaded_agents)
        for spec in self.agents_for(request.metrics):
            if spec.name not in present:
                device.install_agent(spec)
                installed.append(spec.name)
        for metric, bound in request.alert_above.items():
            device.tsdb.add_rule(
                ThresholdRule(
                    name=f"{request.name}/{metric}",
                    series=_tagged_series(metric, device),
                    window_s=request.window_s,
                    aggregate="mean",
                    comparison=">",
                    bound=float(bound),
                )
            )
        self._requests[request.name] = (request, device)
        return installed

    def withdraw(self, request_name: str) -> None:
        """Remove a request's alert rules (agents stay — other requests
        or baseline monitoring may share them)."""
        try:
            request, device = self._requests.pop(request_name)
        except KeyError:
            raise TelemetryError(f"unknown request {request_name!r}") from None
        for metric in request.alert_above:
            device.tsdb.remove_rule(f"{request.name}/{metric}")

    @property
    def active_requests(self) -> Tuple[str, ...]:
        return tuple(sorted(self._requests))

    # -- automated triggers -------------------------------------------------------------
    def poll_triggers(self, now: float) -> List[TriggerEvent]:
        """Evaluate every active request's rules; fired rules become
        :class:`TriggerEvent` entries (also appended to the log)."""
        events: List[TriggerEvent] = []
        for name, (request, device) in self._requests.items():
            for rule_name in device.tsdb.evaluate_rules(now):
                if not rule_name.startswith(f"{name}/"):
                    continue
                event = TriggerEvent(
                    device=device.profile.name,
                    request=name,
                    rule=rule_name,
                    timestamp=now,
                )
                events.append(event)
                self.trigger_log.append(event)
        return events


def _tagged_series(metric: str, device: NetworkDevice) -> str:
    """Series key as written by a locally installed agent."""
    from repro.telemetry.tsdb import series_key

    return series_key(metric, {"device": device.profile.name})
